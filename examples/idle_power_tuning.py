#!/usr/bin/env python
"""Idle-power tuning: why C-state management matters on Rome (§VI).

Demonstrates, on the simulated machine, the three operational findings
an administrator needs:

1. a *single* hardware thread kept out of the deepest C-state costs
   +81 W on an otherwise idle dual-socket system (Fig 7);
2. each further core held in C1 costs only ~0.09 W — the first one is
   what hurts;
3. disabling SMT siblings via hotplug (an optimization on Intel!)
   backfires: the offline threads park in C1 and pin the whole system
   at the C1 power level until re-onlined (§VI-B).

Run:  python examples/idle_power_tuning.py
"""

from repro import Machine, Quirks


def measure_w(machine: Machine) -> float:
    return machine.measure(10.0).ac_mean_w


def main() -> None:
    machine = Machine("EPYC 7502", seed=1)

    baseline = measure_w(machine)
    print(f"all threads in C2:                 {baseline:7.1f} W")

    # One CPU loses its deep idle state (e.g. a busy-polling driver).
    machine.os.sysfs.write("/sys/devices/system/cpu/cpu0/cpuidle/state2/disable", "1")
    one_c1 = measure_w(machine)
    print(f"one thread limited to C1:          {one_c1:7.1f} W   (+{one_c1 - baseline:.1f})")

    # Eight more: barely measurable on top.
    for cpu in range(1, 9):
        machine.os.sysfs.write(
            f"/sys/devices/system/cpu/cpu{cpu}/cpuidle/state2/disable", "1"
        )
    nine_c1 = measure_w(machine)
    print(f"nine threads limited to C1:        {nine_c1:7.1f} W   (+{nine_c1 - one_c1:.2f} for 8 more)")

    for cpu in range(9):
        machine.os.sysfs.write(
            f"/sys/devices/system/cpu/cpu{cpu}/cpuidle/state2/disable", "0"
        )

    # The SMT-offline trap.
    n_cores = machine.topology.n_cores
    siblings = [cpu for cpu in machine.os.all_cpus() if cpu >= n_cores]
    for cpu in siblings:
        machine.os.sysfs.write(f"/sys/devices/system/cpu/cpu{cpu}/online", "0")
    offline = measure_w(machine)
    print(f"SMT siblings offlined:             {offline:7.1f} W   (stuck at the C1 level!)")

    for cpu in siblings:
        machine.os.sysfs.write(f"/sys/devices/system/cpu/cpu{cpu}/online", "1")
    restored = measure_w(machine)
    print(f"siblings re-onlined:               {restored:7.1f} W   (back to baseline)")
    machine.shutdown()

    # Contrast: a machine without the Rome quirk (Intel-like behaviour).
    clean = Machine("EPYC 7502", seed=1, quirks=Quirks(offline_parks_in_c1=False))
    for cpu in siblings:
        clean.os.sysfs.write(f"/sys/devices/system/cpu/cpu{cpu}/online", "0")
    print(f"same offlining without the quirk:  {measure_w(clean):7.1f} W   (what one would expect)")
    clean.shutdown()


if __name__ == "__main__":
    main()
