#!/usr/bin/env python
"""Where does a cache line live, and what does moving it cost?

The paper's latency benchmark descends from Molka et al.'s coherence
study; this example walks the simulated Rome topology measuring
core-to-core transfer latencies by distance (same CCX, across the I/O
die, across sockets) and by line state, and shows how the §V-C/§V-D
clock domains and the §VI sleep states reach into coherence traffic:

* downclocking the CCX raises intra-CCX transfer cost;
* the I/O-die P-state taxes every cross-CCX transfer;
* a sleeping xGMI link turns the first cross-socket transfer into a
  25 µs retrain event.

Run:  python examples/coherence_explorer.py
"""

from repro import FclkMode, Machine
from repro.core.analysis.tables import format_table
from repro.cstate.package import XgmiLinkState
from repro.memory.coherence import CoherenceModel, LineState
from repro.units import ghz
from repro.workloads import SPIN


def main() -> None:
    m = Machine("EPYC 7502", seed=12)
    model = CoherenceModel()
    m.os.set_all_frequencies(ghz(2.5))
    m.os.run(SPIN, [0, 1, 8, 32])

    rows = []
    for label, dst in [("same CCX", 1), ("same package, other CCD", 8),
                       ("other socket", 32)]:
        dirty = model.transfer_ns(m, 0, dst, LineState.MODIFIED)
        clean = model.transfer_ns(m, 0, dst, LineState.SHARED)
        rows.append((label, clean, dirty))
    print("transfer latency from cpu0 (ns), awake machine at 2.5 GHz:")
    print(format_table(["destination", "shared line", "modified line"], rows,
                       float_fmt="{:.1f}"))

    # clock-domain coupling — remember §V-A: the idle SMT siblings also
    # vote, so downclocking a core means downclocking its sibling too.
    for cpu in (0, 1):
        m.os.set_frequency(cpu, ghz(1.5))
        m.os.set_frequency(m.topology.thread(cpu).sibling.cpu_id, ghz(1.5))
    slow_ccx = model.transfer_ns(m, 0, 1, LineState.MODIFIED)
    print(f"\nsame-CCX modified transfer with the CCX at 1.5 GHz: "
          f"{slow_ccx:.1f} ns (clock domains matter, §V-C)")

    m.set_fclk_mode(FclkMode.P2)
    taxed = model.transfer_ns(m, 0, 8, LineState.SHARED)
    print(f"cross-CCD shared transfer at fclk P2: {taxed:.1f} ns "
          f"(the I/O-die P-state taxes coherence, §V-D)")
    m.set_fclk_mode(FclkMode.AUTO)

    # the sleeping link
    cold = model.cross_package_ns(
        LineState.SHARED, ghz(2.5), ghz(2.5), ghz(1.467),
        xgmi=XgmiLinkState.LOW_POWER,
    )
    print(f"\nfirst cross-socket transfer over a low-power xGMI link: "
          f"{cold / 1000:.1f} us (link retrain - the memory-side face of §VI)")
    m.shutdown()


if __name__ == "__main__":
    main()
