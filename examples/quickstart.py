#!/usr/bin/env python
"""Quickstart: build a machine, run a workload, read the instruments.

This walks the basic public API: a simulated dual-socket EPYC 7502,
the OS-level control surface (cpufreq / workload pinning), the external
AC power analyzer and the RAPL energy counters read through the MSR
interface, exactly as the paper's test setup does (§IV).

Run:  python examples/quickstart.py
"""

from repro import Machine
from repro.instruments.energy import X86EnergyReader
from repro.units import ghz
from repro.workloads import FIRESTARTER, STREAM_TRIAD


def main() -> None:
    machine = Machine("EPYC 7502", seed=42)

    # --- idle baseline -----------------------------------------------------
    rec = machine.measure(10.0)
    print(f"idle (all threads in C2):        {rec.ac_mean_w:7.1f} W at the wall")

    # --- a memory-bound workload on one socket ------------------------------
    machine.os.set_all_frequencies(ghz(2.5))
    one_socket = [t.cpu_id for t in machine.topology.packages[0].threads()]
    machine.os.run(STREAM_TRIAD, one_socket)
    rec = machine.measure(10.0)
    print(f"STREAM on socket 0:              {rec.ac_mean_w:7.1f} W "
          f"(RAPL sees only {rec.rapl_pkg_total_w:.1f} W - no DRAM domain)")

    # --- full-load FIRESTARTER: watch the EDC manager throttle --------------
    machine.os.run(FIRESTARTER, machine.os.all_cpus())
    machine.preheat()  # the paper pre-heats 15 min for stable temperature
    rec = machine.measure(10.0)
    core0 = machine.topology.thread(0).core
    print(f"FIRESTARTER on all 128 threads:  {rec.ac_mean_w:7.1f} W, "
          f"cores throttled to {core0.applied_freq_hz / 1e9:.2f} GHz "
          f"(nominal is 2.50 GHz)")

    # --- raw RAPL readout through the MSR interface --------------------------
    reader = X86EnergyReader(machine.msr)
    before = reader.read_package(0)
    machine.measure(10.0)
    after = reader.read_package(0)
    print(f"RAPL package 0 energy over 10 s: {reader.delta_joules(before, after):7.1f} J "
          f"({reader.average_power_w(before, after, 10.0):.1f} W)")

    machine.shutdown()


if __name__ == "__main__":
    main()
