#!/usr/bin/env python
"""An Adagio-style per-phase DVFS tuner meets Rome (§V).

Runtime systems like Adagio (cited in §V-B) lower the core clock during
memory-bound program phases, where frequency barely buys performance.
Whether that works depends on the very mechanisms this paper measures:

* the request-to-effect latency is 0.4-1.4 ms on Rome (Fig 3) — phases
  shorter than a few milliseconds cannot be tuned;
* the idle SMT sibling's cpufreq request silently vetoes the tuner's
  downclock (§V-A) unless the runtime also parks the sibling request.

This example simulates an application alternating compute and memory
phases and compares energy for: no tuning, naive tuning, tuning with
phases shorter than the transition latency, and tuning on a machine
whose sibling requests were never configured.

Run:  python examples/dvfs_tuner.py
"""

from repro import Machine
from repro.core.analysis.tables import format_table
from repro.units import ghz
from repro.workloads import SPIN, STREAM_TRIAD

COMPUTE_F = ghz(2.5)
MEMORY_F = ghz(1.5)
TRANSITION_LATENCY_S = 0.0014  # Fig 3 worst case


def run_app(tune: bool, phase_s: float, park_siblings: bool, n_phases: int = 8):
    """Alternate compute/memory phases; return (energy J, runtime s)."""
    m = Machine("EPYC 7502", seed=17)
    cpus = m.os.first_thread_cpus(32)  # one socket's worth of workers
    siblings = [m.topology.thread(c).sibling.cpu_id for c in cpus]
    m.os.set_all_frequencies(COMPUTE_F)
    if park_siblings:
        for s in siblings:
            m.os.set_frequency(s, ghz(1.5))

    energy_j = 0.0
    runtime_s = 0.0
    for phase in range(n_phases):
        memory_phase = phase % 2 == 1
        wl = STREAM_TRIAD if memory_phase else SPIN
        m.os.run(wl, cpus)
        target = MEMORY_F if (tune and memory_phase) else COMPUTE_F
        for c in cpus:
            m.os.set_frequency(c, target)

        # A request only takes effect if the phase outlives the
        # transition; otherwise the previous clock carries through.
        effective_tuned = phase_s > 2 * TRANSITION_LATENCY_S
        if not effective_tuned:
            for c in cpus:
                m.os.set_frequency(c, COMPUTE_F)

        # memory phases run at full speed regardless of clock; compute
        # phases stretch when downclocked
        applied = m.topology.thread(cpus[0]).core.applied_freq_hz
        slowdown = 1.0 if memory_phase else COMPUTE_F / applied
        duration = phase_s * slowdown
        power = m.power_model.system_power_w(m, m.thermal_state.temps_c)
        energy_j += power * duration
        runtime_s += duration
    m.shutdown()
    return energy_j, runtime_s


def main() -> None:
    phase_long = 0.100  # 100 ms phases: tunable
    phase_short = 0.002  # 2 ms phases: inside the transition window

    rows = []
    base_e, base_t = run_app(tune=False, phase_s=phase_long, park_siblings=True)
    rows.append(("no tuning", base_e, base_t, 0.0))
    for label, tune, phase, park in [
        ("tuned, 100 ms phases", True, phase_long, True),
        ("tuned, 2 ms phases", True, phase_short, True),
        ("tuned, siblings not parked", True, phase_long, False),
    ]:
        e, t = run_app(tune=tune, phase_s=phase, park_siblings=park)
        scale = base_e * (phase / phase_long)
        rows.append((label, e, t, 100.0 * (1.0 - e / scale)))

    print(format_table(
        ["scenario", "energy J", "runtime s", "energy saved %"],
        rows,
        float_fmt="{:.1f}",
    ))
    print("\n100 ms phases save real energy; 2 ms phases can't (the switch")
    print("never lands inside the phase, Fig 3); and forgetting the idle")
    print("siblings' cpufreq requests silently disables the whole tuner (§V-A).")


if __name__ == "__main__":
    main()
