#!/usr/bin/env python
"""An operator's eye view: turbostat-style status through a scenario.

Walks the simulated machine through a day-in-the-life sequence — idle,
a partial HPC job, a full FIRESTARTER burn, a power cap, a misbehaving
interrupt source — printing the turbostat-style summary after each step
plus the machine's own self-check at the end.

Run:  python examples/operator_dashboard.py
"""

from repro import Machine
from repro.core.selfcheck import selfcheck
from repro.oslayer import turbostat
from repro.units import ghz
from repro.workloads import FIRESTARTER, STREAM_TRIAD


def show(title: str, machine: Machine) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))
    print(turbostat.report(machine, max_cores=4))


def main() -> None:
    m = Machine("EPYC 7502", seed=8)
    show("idle, all C2", m)

    m.os.set_all_frequencies(ghz(2.5))
    m.os.run(STREAM_TRIAD, m.os.cpus_of_ccx(0))
    show("STREAM on CCX 0", m)

    m.os.run(FIRESTARTER, m.os.all_cpus())
    m.preheat()
    show("FIRESTARTER everywhere (watch the EDC throttle)", m)

    m.set_power_limit_w(130.0)
    show("operator sets a 130 W package cap", m)
    m.set_power_limit_w(1000.0)

    m.os.stop()
    m.os.register_interrupt("chatty_nic", 3, 50_000.0)
    show("idle again - but a 50 kHz NIC queue pins cpu3 at C1", m)
    report = m.sleep.report()
    print(f"\nsleep blockers: {report.blockers} "
          f"(package states: {[s.value for s in report.package_states]})")
    m.os.unregister_interrupt("chatty_nic")

    print("\n=== machine self-check " + "=" * 37)
    print(selfcheck(m).render())
    m.shutdown()


if __name__ == "__main__":
    main()
