#!/usr/bin/env python
"""Design a stress payload and see what the machine does with it.

FIRESTARTER 2 (the paper's stress tool, §V-E) generates its payload
dynamically from instruction groups. This example uses the analogous
:class:`repro.workloads.PayloadSpec` generator to explore the design
space: how the FMA/memory mix and loop sizing determine sustained IPC,
EDC throttling, and power — and reproduces why FIRESTARTER's specific
choices (past the op cache, inside L1I, FMA-saturated) maximize stress.

Run:  python examples/payload_designer.py
"""

from repro import Machine
from repro.core.analysis.tables import format_table
from repro.units import ghz
from repro.workloads import PayloadSpec, firestarter_spec


def evaluate(spec: PayloadSpec) -> tuple:
    wl = spec.generate()
    m = Machine("EPYC 7502", seed=5)
    m.os.set_all_frequencies(ghz(2.5))
    m.os.run(wl, m.os.all_cpus())
    m.preheat()
    rec = m.measure(10.0)
    freq = m.topology.thread(0).core.applied_freq_hz / 1e9
    m.shutdown()
    return (spec.name, wl.ipc_2t, wl.edc_weight, freq, rec.ac_mean_w)


def main() -> None:
    candidates = [
        firestarter_spec(),
        PayloadSpec(name="op_cache_resident", fma_fraction=0.5,
                    load_store_fraction=0.25, integer_fraction=0.25,
                    mem_level="L1", unrolled_instructions=1000),
        PayloadSpec(name="fma_only", fma_fraction=1.0,
                    load_store_fraction=0.0, integer_fraction=0.0),
        PayloadSpec(name="l3_stream", fma_fraction=0.25,
                    load_store_fraction=0.5, integer_fraction=0.25,
                    mem_level="L3"),
        PayloadSpec(name="ram_stream", fma_fraction=0.1,
                    load_store_fraction=0.7, integer_fraction=0.2,
                    mem_level="RAM"),
        PayloadSpec(name="integer_mix", fma_fraction=0.0,
                    load_store_fraction=0.3, integer_fraction=0.7),
    ]
    rows = [evaluate(spec) for spec in candidates]
    rows.sort(key=lambda r: (r[3], -r[4]))
    print(format_table(
        ["payload", "IPC/core", "EDC weight", "applied GHz", "system AC W"],
        rows,
        float_fmt="{:.2f}",
    ))
    print("\nonly the FIRESTARTER-class mixes trip the EDC manager (applied")
    print("clock drops below the 2.5 GHz request): maximum stress needs FMA")
    print("pressure *and* a full 4-wide instruction stream, which is exactly")
    print("why FIRESTARTER interleaves integer and load/store fillers (§V-E).")
    print("A pure-FMA loop issues too few instructions to hit the current")
    print("limit and keeps the full clock - the EDC manager throttles on")
    print("activity-driven current, not on power.")


if __name__ == "__main__":
    main()
