#!/usr/bin/env python
"""Frequency-control pitfalls for per-core DVFS tuning (§V).

A DVFS-based energy-efficiency optimizer (Adagio-style) assumes that
setting a core's frequency actually controls that core.  On Rome, three
mechanisms break the assumption; this example triggers each one:

1. **sibling votes** — an idle SMT sibling whose cpufreq request is
   higher raises the core's clock (§V-A);
2. **CCX coupling** — neighbours on the same CCX at a higher clock
   *reduce* the tuned core's effective frequency (Table I);
3. **transition latency** — a frequency change takes 0.4-1.4 ms to land
   (Fig 3), far above Intel's tens of microseconds, which bounds how
   fine-grained per-region DVFS can be.

Run:  python examples/frequency_pitfalls.py
"""

from repro import Machine
from repro.core import ExperimentConfig, FrequencyTransitionExperiment
from repro.units import ghz
from repro.workloads import SPIN


def main() -> None:
    machine = Machine("EPYC 7502", seed=3)
    perf = machine.os.perf

    # --- pitfall 1: the idle sibling votes ---------------------------------
    machine.os.run(SPIN, [0])
    machine.os.set_frequency(0, ghz(1.5))
    sibling = machine.topology.thread(0).sibling.cpu_id
    machine.os.set_frequency(sibling, ghz(2.5))  # sibling is *idle*
    print(f"tuned core set to 1.5 GHz, idle sibling requests 2.5 GHz")
    print(f"  -> observed: {perf.mean_freq_hz(0) / 1e9:.3f} GHz (sibling wins)")
    machine.os.set_frequency(sibling, ghz(1.5))
    print(f"  -> after fixing the sibling request: {perf.mean_freq_hz(0) / 1e9:.3f} GHz")

    # --- pitfall 2: CCX neighbours -------------------------------------------
    ccx_cpus = machine.os.cpus_of_ccx(0)
    machine.os.run(SPIN, ccx_cpus)
    machine.os.set_frequency(ccx_cpus[0], ghz(2.2))
    for cpu in ccx_cpus[1:]:
        machine.os.set_frequency(cpu, ghz(2.5))
    print("\ntuned core at 2.2 GHz, three CCX neighbours at 2.5 GHz")
    print(f"  -> observed: {perf.mean_freq_hz(ccx_cpus[0]) / 1e9:.3f} GHz "
          "(200 MHz lost to CCX coupling)")
    machine.shutdown()

    # --- pitfall 3: transition latency ----------------------------------------
    exp = FrequencyTransitionExperiment(ExperimentConfig(seed=3))
    res = exp.measure_pair(ghz(2.2), ghz(1.5), n_samples=400)
    print("\nfrequency switch 2.2 -> 1.5 GHz, request-to-effect latency:")
    print(f"  min {res.min_us:.0f} us / mean {res.mean_us:.0f} us / max {res.max_us:.0f} us")
    print("  (1 ms SMU update slots + ~0.4 ms execution: don't re-tune "
          "faster than every few ms)")


if __name__ == "__main__":
    main()
