#!/usr/bin/env python
"""Can RAPL leak operand data on Zen 2?  (§VII-B / Fig 10, PLATYPUS-style)

Lipp et al. showed RAPL-based power side channels on Intel and hinted at
AMD.  The paper's measurement: operand Hamming weight moves *wall* power
by 21 W for 256-bit vxorps — trivially distinguishable — while the RAPL
readings barely move and overlap heavily.  This probe reproduces the
analysis, including the ten-random-subset ECDF stability check, and
estimates how many samples an attacker would need on each channel.

Run:  python examples/sidechannel_probe.py
"""

import numpy as np

from repro.core import DataPowerExperiment, ExperimentConfig
from repro.core.analysis.stats import overlap_fraction


def samples_to_distinguish(a: np.ndarray, b: np.ndarray) -> float:
    """Samples per class for ~95 % accuracy distinguishing two means."""
    gap = abs(a.mean() - b.mean())
    if gap == 0:
        return float("inf")
    pooled = np.sqrt((a.var() + b.var()) / 2)
    # two-class threshold test: n ~ (z * sigma / (gap/2))^2
    return float((1.96 * pooled / (gap / 2)) ** 2)


def main() -> None:
    exp = DataPowerExperiment(ExperimentConfig(seed=23, scale=0.1))
    res = exp.measure("vxorps")

    w0, w1 = res.samples[0.0], res.samples[1.0]
    print("vxorps, operand Hamming weight 0 vs 1 (all threads):\n")
    print(f"  wall power:   {w0.ac_w.mean():.1f} W vs {w1.ac_w.mean():.1f} W "
          f"(spread {res.ac_spread_w():.1f} W, overlap "
          f"{overlap_fraction(w0.ac_w, w1.ac_w):.2f})")
    print(f"  RAPL package: {w0.rapl_pkg_w.mean():.2f} W vs {w1.rapl_pkg_w.mean():.2f} W "
          f"(spread {100 * res.rapl_pkg_spread_rel():.3f} %, overlap "
          f"{overlap_fraction(w0.rapl_pkg_w, w1.rapl_pkg_w):.2f})")

    n_ac = samples_to_distinguish(w0.ac_w, w1.ac_w)
    n_rapl = samples_to_distinguish(w0.rapl_pkg_w, w1.rapl_pkg_w)
    print(f"\n  samples needed to distinguish weights:")
    print(f"    physical measurement: ~{max(1, round(n_ac))}")
    print(f"    RAPL:                 ~{round(n_rapl)}  "
          f"({n_rapl / max(n_ac, 1):.0f}x more)")

    # ECDF stability (the Fig 10 ten-subset check).
    subsets = res.ecdf_subsets(1.0, channel="pkg")
    meds = [float(vals[np.searchsorted(probs, 0.5)]) for vals, probs in subsets]
    print(f"\n  RAPL ECDF medians across 10 random subsets: "
          f"{min(meds):.3f}..{max(meds):.3f} W (stable distribution)")

    print("\nconclusion: the modelled RAPL implementation hides operand data;")
    print("the tiny residual signal is thermal (leakage follows temperature).")


if __name__ == "__main__":
    main()
