#!/usr/bin/env python
"""Audit RAPL against a reference measurement (§VII-A / Fig 9).

A cluster operator wants to know: can the node's built-in RAPL counters
replace a wall-power meter for energy accounting?  This audit runs a
workload grid, fits the best single linear mapping RAPL -> AC, and
reports the residuals — which is exactly how the paper concludes that
AMD's RAPL "is unsuitable to optimize total energy consumption".

Run:  python examples/rapl_accuracy_audit.py
"""

import numpy as np

from repro.core import ExperimentConfig, RaplQualityExperiment
from repro.core.analysis.tables import format_table


def main() -> None:
    exp = RaplQualityExperiment(ExperimentConfig(seed=11, interval_s=10.0))
    result = exp.measure(placements=("all", "half"))
    pts = result.points

    rapl = np.array([p.rapl_pkg_w for p in pts])
    ac = np.array([p.ac_w for p in pts])

    # Best single affine mapping RAPL -> AC (what an operator would fit).
    slope, intercept = np.polyfit(rapl, ac, 1)
    residuals = ac - (slope * rapl + intercept)

    print(f"configurations measured: {len(pts)}")
    print(f"best linear fit: AC = {slope:.2f} * RAPL + {intercept:.1f} W")
    print(f"residuals: std {residuals.std():.1f} W, worst {np.abs(residuals).max():.1f} W")
    print("-> no single mapping captures all workloads; per-workload bias below\n")

    rows = []
    for name in sorted({p.workload for p in pts}):
        sel = [i for i, p in enumerate(pts) if p.workload == name]
        rows.append(
            (
                name,
                float(np.mean(ac[sel])),
                float(np.mean(rapl[sel])),
                float(np.mean(residuals[sel])),
            )
        )
    rows.sort(key=lambda r: r[3])
    print(format_table(["workload", "AC [W]", "RAPL pkg [W]", "fit residual [W]"], rows,
                       float_fmt="{:.1f}"))
    print("\nmemory-heavy workloads sit far above the fit: their DRAM power is")
    print("invisible to RAPL (no DRAM domain, package domain misses it).")


if __name__ == "__main__":
    main()
