"""Extension study: wake-up rate vs idle power (menu-governor cliff)."""

from repro.core.analysis.tables import format_table
from repro.core.idle_governor import IdleGovernorExperiment

from _common import bench_config, publish


def test_ext_idle_governor_cliff(benchmark):
    exp = IdleGovernorExperiment(bench_config())
    result = benchmark.pedantic(exp.measure, rounds=1, iterations=1)
    rows = [
        (f"{rate:.0f} Hz", state, power)
        for rate, state, power in zip(
            result.rates_hz, result.selected_state, result.power_w
        )
    ]
    grid = format_table(
        ["wake-up rate", "governor pick", "system AC W"], rows, float_fmt="{:.1f}"
    )
    publish(
        "ext_idle_governor",
        "== Extension: one busy interrupt source vs idle power ==\n"
        + grid
        + f"\n\ncliff at {result.cliff_rate_hz():.0f} Hz: one CPU stuck at C1 "
        "costs the full +81 W deep-sleep penalty (§VI-A) with no sysfs "
        "change at all.",
    )
    assert exp.breakeven_matches_governor_table(result)
    assert max(result.power_w) - min(result.power_w) > 80.0
