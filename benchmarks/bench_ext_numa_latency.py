"""Extension study: NPS interleaving modes and the latency curve.

The paper's future work names the memory architecture; these two sweeps
extend the Fig 5 machinery to the BIOS NUMA-per-socket options and to
the classic working-set latency curve.
"""

from repro.core.analysis.tables import format_table
from repro.core.latency_curve import LatencyCurveExperiment
from repro.iodie.fclk import FclkController
from repro.memory.numa_perf import NpsPerformanceModel
from repro.topology import NumaConfig, build_topology

from _common import bench_config, publish


def test_ext_nps_modes(benchmark):
    def run():
        topo = build_topology("EPYC 7502", n_packages=1)
        fc = FclkController(topo.packages[0].io_die)
        model = NpsPerformanceModel()
        return [
            model.operating_point(nps, 16, fc)
            for nps in (NumaConfig.NPS4, NumaConfig.NPS2, NumaConfig.NPS1)
        ]

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (p.nps.name, p.bandwidth_gbs, p.latency_ns, p.limiter) for p in points
    ]
    publish(
        "ext_nps_modes",
        "== Extension: NUMA-per-socket modes (16 cores on one node) ==\n"
        + format_table(
            ["mode", "node bandwidth GB/s", "local latency ns", "limiter"],
            rows,
            float_fmt="{:.1f}",
        )
        + "\n\nNPS1 trades the paper's NPS4 latency (92 ns) for socket-wide "
        "bandwidth — the interleave choice behind §IV's BIOS setting.",
    )
    bw = [p.bandwidth_gbs for p in points]
    lat = [p.latency_ns for p in points]
    assert bw == sorted(bw)
    assert lat == sorted(lat)


def test_ext_latency_curve(benchmark):
    exp = LatencyCurveExperiment(bench_config())
    curve = benchmark.pedantic(exp.measure, rounds=1, iterations=1)
    rows = [
        (f"{size // 1024} KiB", level, lat)
        for size, level, lat in zip(curve.sizes_bytes, curve.levels, curve.latencies_ns)
    ]
    publish(
        "ext_latency_curve",
        "== Extension: working-set latency curve (pointer chase) ==\n"
        + format_table(["working set", "level", "latency ns"], rows, float_fmt="{:.2f}"),
    )
    assert curve.plateau_ns("L1D") < curve.plateau_ns("L2") < curve.plateau_ns("L3")
    assert curve.plateau_ns("DRAM") > 85.0
