"""Fig 5: DRAM bandwidth and latency vs I/O-die P-state and MEMCLK."""

from repro.core import MemoryPerformanceExperiment
from repro.core.analysis.plots import ascii_series
from repro.core.analysis.tables import format_table
from repro.core.memperf import DRAM_GRADES, FCLK_MODES

from _common import bench_config, check, publish


def test_fig05_bandwidth_and_latency(benchmark):
    exp = MemoryPerformanceExperiment(bench_config())

    def run():
        return exp.measure_bandwidth(), exp.measure_latency()

    bw, lat = benchmark.pedantic(run, rounds=1, iterations=1)
    table = exp.compare_with_paper(bw, lat)

    bw_rows = [
        (f"{mode.name} {dram}", *(round(float(v), 1) for v in bw.series[(mode.name, dram)]))
        for mode in FCLK_MODES
        for dram in DRAM_GRADES
    ]
    bw_grid = format_table(
        ["config", *(str(c) for c in bw.core_counts)], bw_rows, float_fmt="{:.1f}"
    )
    lat_rows = [
        (mode.name, *(lat.at(mode, dram) for dram in DRAM_GRADES))
        for mode in FCLK_MODES
    ]
    lat_grid = format_table(
        ["fclk mode", *DRAM_GRADES], lat_rows, float_fmt="{:.1f}"
    )
    curves = ascii_series(
        {
            f"{mode.name}@3200": (bw.core_counts, bw.series[(mode.name, "DDR4-3200")])
            for mode in FCLK_MODES
        },
        x_label="active cores",
        y_label="GB/s",
        width=56,
        height=14,
    )
    publish(
        "fig05_membw_latency",
        table.render()
        + "\n\nSTREAM-Triad bandwidth (GB/s) vs active cores:\n"
        + bw_grid
        + "\n\n"
        + curves
        + "\n\nmain-memory latency (ns):\n"
        + lat_grid,
    )
    check(table)
