"""Shared helpers for the benchmark harness.

Every bench regenerates one paper artifact (table or figure), prints the
paper-vs-measured rows, asserts the acceptance bands, and archives the
rendered table under ``benchmarks/results/``.  Run with::

    pytest benchmarks/ --benchmark-only

Use ``-s`` to see the tables inline; they are always written to the
results directory regardless.
"""

from __future__ import annotations

import os

from repro.cache import ResultCache
from repro.core import ExperimentConfig
from repro.core.report import ComparisonTable

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Benches run bigger than the integration tests but far below the
#: paper's (often 100k-sample) counts; override with REPRO_BENCH_SCALE=1.0
#: for a full-scale run.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2021"))

#: Worker processes for the suite bench (1 = serial in-process); the
#: structured runner guarantees byte-identical output either way.
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "4"))


def bench_cache() -> ResultCache | None:
    """The result cache for suite benches.

    Enabled by default (rooted at ``REPRO_CACHE_DIR`` or
    ``~/.cache/repro-zen2``) so repeated bench invocations of identical
    configurations re-use prior results; ``REPRO_BENCH_NO_CACHE=1``
    forces cold recomputation.
    """
    if os.environ.get("REPRO_BENCH_NO_CACHE"):
        return None
    return ResultCache()


def bench_config(**overrides) -> ExperimentConfig:
    """The standard bench configuration."""
    params = dict(seed=BENCH_SEED, scale=BENCH_SCALE)
    params.update(overrides)
    return ExperimentConfig(**params)


def publish(name: str, text: str) -> None:
    """Print a rendered artifact and archive it."""
    print(f"\n{text}\n")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")


def check(table: ComparisonTable) -> None:
    """Assert the acceptance bands of a comparison table."""
    assert table.all_ok, "acceptance failures:\n" + table.render()
