"""Fig 3: frequency-transition delay histogram (2.2 -> 1.5 GHz).

Regenerates the histogram (25 µs bins) with the §V-B methodology and the
anomaly observations for the 2.2 <-> 2.5 GHz pairs.
"""

from repro.core import FrequencyTransitionExperiment
from repro.units import ghz

from _common import bench_config, check, publish


def test_fig03_transition_histogram(benchmark):
    exp = FrequencyTransitionExperiment(bench_config())
    result = benchmark.pedantic(
        lambda: exp.measure_pair(ghz(2.2), ghz(1.5)), rounds=1, iterations=1
    )
    table = exp.compare_with_paper(result)
    text = (
        table.render()
        + f"\n\nsamples: {len(result.latencies_us)}, invalid discarded: {result.n_invalid}"
        + "\n\nhistogram (25 us bins):\n"
        + result.histogram.render_ascii(40)
    )
    publish("fig03_transition_delay", text)
    check(table)


def test_fig03_fast_return_anomalies(benchmark):
    exp = FrequencyTransitionExperiment(bench_config())

    def run():
        up = exp.measure_pair(ghz(2.2), ghz(2.5), n_samples=600)
        down = exp.measure_pair(ghz(2.5), ghz(2.2), n_samples=600)
        up_slow = exp.measure_pair(ghz(2.2), ghz(2.5), n_samples=200, min_wait_ms=5.0)
        return up, down, up_slow

    up, down, up_slow = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        "== §V-B anomalies for the 2.2 <-> 2.5 GHz pair ==\n"
        f"2.2 -> 2.5: min {up.min_us:8.2f} us  "
        f"({100 * (up.latencies_us < 10).mean():.0f} % instantaneous)\n"
        f"2.5 -> 2.2: min {down.min_us:8.2f} us  (partial transitions below 390 us)\n"
        f"2.2 -> 2.5 with >= 5 ms waits: min {up_slow.min_us:8.2f} us (effect gone)"
    )
    publish("fig03_anomalies", text)
    assert up.min_us < 10.0
    assert 100.0 < down.min_us < 385.0
    assert up_slow.min_us > 300.0
