"""§V-A (text observation): idle/offline sibling threads raise the core clock."""

from repro.core import IdleSiblingExperiment

from _common import bench_config, check, publish


def test_sec5a_idle_sibling(benchmark):
    exp = IdleSiblingExperiment(bench_config())
    result = benchmark.pedantic(exp.measure, rounds=1, iterations=1)
    table = exp.compare_with_paper(result)
    text = (
        table.render()
        + "\n\nobserved idle-sibling housekeeping: "
        + f"{result.idle_sibling_cycles_per_s:.0f} cycles/s (paper: < 60000)"
    )
    publish("sec5a_idle_sibling", text)
    check(table)
