"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation switches one modelled mechanism off (or to its Intel-like
variant) and regenerates the affected observable, quantifying how much of
the paper's finding that mechanism carries.
"""

from repro.core.analysis.tables import format_table
from repro.machine import Machine, Quirks
from repro.units import ghz
from repro.workloads import FIRESTARTER, SPIN

from _common import BENCH_SEED, publish


def test_ablation_sibling_vote(benchmark):
    """§V-A quirk off -> the tuned core keeps its own frequency."""

    def run():
        out = {}
        for vote in (True, False):
            m = Machine(
                "EPYC 7502",
                seed=BENCH_SEED,
                quirks=Quirks(offline_threads_vote_on_frequency=vote),
            )
            m.os.run(SPIN, [0])
            m.os.set_frequency(0, ghz(1.5))
            m.os.set_frequency(64, ghz(2.5))  # idle sibling
            out[vote] = m.topology.thread(0).core.applied_freq_hz / 1e9
            m.shutdown()
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [("Rome (sibling votes)", result[True]), ("Intel-like", result[False])]
    publish(
        "ablation_sibling_vote",
        "== Ablation: idle-sibling frequency vote ==\n"
        + format_table(["behaviour", "core GHz (set 1.5, sibling 2.5)"], rows),
    )
    assert result[True] == 2.5
    assert result[False] == 1.5


def test_ablation_offline_c1_parking(benchmark):
    """§VI-B quirk off -> no idle-power anomaly."""

    def run():
        out = {}
        for quirk in (True, False):
            m = Machine(
                "EPYC 7502", seed=BENCH_SEED, quirks=Quirks(offline_parks_in_c1=quirk)
            )
            for cpu in range(64, 128):
                m.os.hotplug.set_offline(cpu)
            out[quirk] = m.measure(10.0).ac_mean_w
            m.shutdown()
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [("Rome (C1 parking)", result[True]), ("fixed OS/firmware", result[False])]
    publish(
        "ablation_offline_parking",
        "== Ablation: offline threads parked in C1 ==\n"
        + format_table(["behaviour", "idle AC W, siblings offline"], rows),
    )
    assert result[True] - result[False] > 80.0


def test_ablation_edc_limit(benchmark):
    """EDC limit raised -> no throttle, but package current explodes."""

    def run():
        rows = []
        for limit_scale in (1.0, 1.1, 1.3):
            m = Machine("EPYC 7502", seed=BENCH_SEED)
            for smu in m.smus:
                smu.edc.limit_a *= limit_scale
            m.os.set_all_frequencies(ghz(2.5))
            m.os.run(FIRESTARTER, m.os.all_cpus())
            freq = m.topology.thread(0).core.applied_freq_hz / 1e9
            demand = m.smus[0].edc.package_demand_a(
                m.topology.packages[0], m.topology.thread(0).core.applied_freq_hz
            )
            rows.append((f"{limit_scale:.1f}x EDC limit", freq, demand))
            m.shutdown()
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        "ablation_edc_limit",
        "== Ablation: EDC limit vs FIRESTARTER operating point ==\n"
        + format_table(["config", "applied GHz", "package current A"], rows),
    )
    freqs = [r[1] for r in rows]
    assert freqs == sorted(freqs)  # higher limit -> higher frequency


def test_ablation_ccx_coupling(benchmark):
    """Coupling penalty removed -> Table I becomes diagonal-clean."""
    from repro.power.calibration import Calibration
    from repro.core import ExperimentConfig, MixedFrequencyExperiment

    def run():
        coupled = MixedFrequencyExperiment(
            ExperimentConfig(seed=BENCH_SEED, scale=0.1)
        ).measure_applied_frequencies(20)
        # a calibration without penalties
        clean_cal = Calibration(
            ccx_penalty_mhz=(),
            ccx_equal_shortfall_mhz=(),
            set_2g5_slow_others_shortfall_mhz=0.0,
            set_2g5_mid_others_shortfall_mhz=0.0,
        )
        import repro.core.mixed_freq as mf
        from repro.machine import Machine

        grid = {}
        for set_g in (1.5, 2.2):
            m = Machine("EPYC 7502", seed=BENCH_SEED, calibration=clean_cal)
            cpus = m.os.cpus_of_ccx(0)
            m.os.run(SPIN, cpus)
            m.os.set_frequency(cpus[0], ghz(set_g))
            for cpu in cpus[1:]:
                m.os.set_frequency(cpu, ghz(2.5))
            grid[set_g] = m.os.perf.mean_freq_hz(cpus[0], count=10) / 1e9
            m.shutdown()
        return coupled, grid

    coupled, clean = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ("set 1.5, others 2.5", coupled.cell(1.5, 2.5), clean[1.5]),
        ("set 2.2, others 2.5", coupled.cell(2.2, 2.5), clean[2.2]),
    ]
    publish(
        "ablation_ccx_coupling",
        "== Ablation: CCX coupling penalty ==\n"
        + format_table(["cell", "with coupling (Table I)", "without"], rows),
    )
    assert clean[2.2] > coupled.cell(2.2, 2.5) + 0.15
