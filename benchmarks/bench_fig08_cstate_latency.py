"""Fig 8: C-state wake-up transition times (caller/callee)."""

import numpy as np

from repro.core import CStateLatencyExperiment
from repro.core.analysis.tables import format_table

from _common import bench_config, check, publish


def test_fig08_cstate_latencies(benchmark):
    exp = CStateLatencyExperiment(bench_config(scale=1.0))  # paper: 200 samples
    result = benchmark.pedantic(exp.measure, rounds=1, iterations=1)
    table = exp.compare_with_paper(result)

    rows = []
    for state in exp.STATES:
        for freq in exp.FREQS_GHZ:
            local = result.get(state, freq)
            remote = result.get(state, freq, remote=True)
            rows.append(
                (
                    state,
                    freq,
                    local.median_us,
                    float(np.percentile(local.latencies_us, 95)),
                    remote.median_us,
                )
            )
    grid = format_table(
        ["state", "GHz", "local median us", "local p95 us", "remote median us"],
        rows,
        float_fmt="{:.2f}",
    )
    entry = exp.measure_entry()
    entry_rows = [
        (state, freq, entry[(state, freq)])
        for state in ("C1", "C2")
        for freq in exp.FREQS_GHZ
    ]
    entry_grid = format_table(
        ["state", "GHz", "entry median us"], entry_rows, float_fmt="{:.2f}"
    )
    publish(
        "fig08_cstate_latency",
        table.render()
        + "\n\n"
        + grid
        + "\n\nentry latencies (companion metric, Ilsche et al. [6]):\n"
        + entry_grid,
    )
    check(table)
    assert entry[("C2", 2.5)] < result.get("C2", 2.5).median_us  # enter < exit
