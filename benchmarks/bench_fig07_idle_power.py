"""Fig 7: full-system AC power across idle-state combinations."""

from repro.core import IdlePowerExperiment
from repro.core.analysis.tables import format_table

from _common import bench_config, check, publish


def test_fig07_idle_staircase(benchmark):
    exp = IdlePowerExperiment(bench_config())

    def run():
        cpus = list(range(24))  # the staircase slope is visible early
        return exp.sweep_c1(step_cpus=cpus), exp.sweep_c0(step_cpus=cpus)

    c1, c0 = benchmark.pedantic(run, rounds=1, iterations=1)
    table = exp.compare_with_paper(c1, c0)

    rows = [
        (c1.steps[i], c1.power_w[i], c0.steps[i], c0.power_w[i])
        for i in range(min(len(c1.steps), len(c0.steps)))
    ]
    grid = format_table(
        ["C1 sweep step", "AC W", "C0 sweep step", "AC W"], rows, float_fmt="{:.2f}"
    )
    publish("fig07_idle_power", table.render() + "\n\n" + grid)
    check(table)


def test_sec6b_offline_anomaly(benchmark):
    """§VI-B: offline hardware threads pin power at the C1 level."""
    exp = IdlePowerExperiment(bench_config())
    res = benchmark.pedantic(exp.offline_anomaly, rounds=1, iterations=1)
    text = (
        "== §VI-B offline-thread anomaly ==\n"
        f"all C2 baseline:        {res['baseline_w']:7.1f} W\n"
        f"SMT siblings offlined:  {res['offline_w']:7.1f} W  (C1-level!)\n"
        f"siblings re-onlined:    {res['restored_w']:7.1f} W"
    )
    publish("sec6b_offline_anomaly", text)
    assert res["offline_w"] > res["baseline_w"] + 80.0
    assert abs(res["restored_w"] - res["baseline_w"]) < 0.5
