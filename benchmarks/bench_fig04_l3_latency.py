"""Fig 4: L3-cache latencies in a mixed-frequency CCX."""

from repro.core import MixedFrequencyExperiment
from repro.core.analysis.tables import format_table

from _common import bench_config, publish


def test_fig04_l3_latency(benchmark):
    exp = MixedFrequencyExperiment(bench_config())
    result = benchmark.pedantic(exp.measure_l3_latencies, rounds=1, iterations=1)

    rows = [
        (f"set {s} GHz", *(result.cell(s, o) for o in exp.FREQS_GHZ))
        for s in exp.FREQS_GHZ
    ]
    grid = format_table(
        ["measured core", *(f"others {o}" for o in exp.FREQS_GHZ)],
        rows,
        float_fmt="{:.2f}",
    )
    mono = exp.check_l3_monotonicity(result)
    publish(
        "fig04_l3_latency",
        "== Fig 4: L3 latency (ns), pointer chase, prefetchers off ==\n"
        + grid
        + f"\n\nL3 latency falls as neighbours speed up (1.5 GHz row): {mono}",
    )
    assert mono
    # the 2.5 GHz row is flat: the measured core already owns the L3 clock
    flat = [result.cell(2.5, o) for o in exp.FREQS_GHZ]
    assert max(flat) - min(flat) < 0.5
