"""Extension study: optimal frequency per workload class."""

from repro.core.analysis.tables import format_table
from repro.core.energy_efficiency import EnergyEfficiencyExperiment
from repro.workloads import SPIN, STREAM_TRIAD, instruction_block

from _common import bench_config, publish


def test_ext_energy_efficiency(benchmark):
    exp = EnergyEfficiencyExperiment(bench_config())
    result = benchmark.pedantic(
        lambda: exp.measure(
            workloads=(SPIN, STREAM_TRIAD, instruction_block("add_pd"))
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        (p.workload, p.freq_ghz, p.runtime_s, p.energy_j, p.edp)
        for p in result.points
    ]
    grid = format_table(
        ["workload", "req GHz", "runtime s", "energy J", "EDP J*s"],
        rows,
        float_fmt="{:.1f}",
    )
    opt_rows = [
        (name, result.optimal_freq_ghz(name, "energy_j"), result.optimal_freq_ghz(name, "edp"))
        for name in ("spin", "stream_triad", "add_pd")
    ]
    publish(
        "ext_energy_efficiency",
        "== Extension: energy-to-solution vs frequency (64 cores) ==\n"
        + grid
        + "\n\noptimal frequency:\n"
        + format_table(["workload", "min energy", "min EDP"], opt_rows, float_fmt="{:.1f}")
        + "\n\ncompute-bound work races to idle at the top clock; memory-bound"
        "\nwork downclocks for free — the decision a DVFS runtime must make"
        "\nper phase (examples/dvfs_tuner.py).",
    )
    assert result.optimal_freq_ghz("stream_triad") == 1.5
    assert result.optimal_freq_ghz("spin") == 2.5
