"""Fig 10: AC and RAPL power distributions by operand Hamming weight."""

import numpy as np

from repro.core import DataPowerExperiment
from repro.core.analysis.plots import ascii_ecdf
from repro.core.analysis.tables import format_table

from _common import bench_config, check, publish


def _ecdf_sketch(samples: np.ndarray, width: int = 40) -> str:
    """A terminal ECDF: quantiles across the distribution."""
    qs = np.linspace(0.05, 0.95, 10)
    vals = np.quantile(samples, qs)
    lo, hi = samples.min(), samples.max()
    lines = []
    for q, v in zip(qs, vals):
        pos = int((v - lo) / (hi - lo + 1e-12) * width)
        lines.append(f"  p{int(q * 100):02d} {'.' * pos}* {v:.3f}")
    return "\n".join(lines)


def test_fig10_vxorps_and_shr(benchmark):
    exp = DataPowerExperiment(bench_config(scale=0.2))  # ~600 blocks

    def run():
        return exp.measure("vxorps"), exp.measure("shr")

    vxorps, shr = benchmark.pedantic(run, rounds=1, iterations=1)
    table = exp.compare_with_paper(vxorps, shr)

    rows = []
    for w in (0.0, 0.5, 1.0):
        s = vxorps.samples[w]
        rows.append(
            (
                f"weight {w:g}",
                float(s.ac_w.mean()),
                float(s.ac_w.std()),
                float(s.rapl_pkg_w.mean()),
                float(s.rapl_pkg_w.std()),
            )
        )
    grid = format_table(
        ["vxorps operand", "AC mean W", "AC std", "RAPL pkg mean W", "RAPL std"],
        rows,
        float_fmt="{:.3f}",
    )
    ac_plot = ascii_ecdf(
        {f"w={w:g}": vxorps.samples[w].ac_w for w in (0.0, 0.5, 1.0)},
        x_label="system AC W",
        width=56,
        height=14,
    )
    rapl_plot = ascii_ecdf(
        {f"w={w:g}": vxorps.samples[w].rapl_pkg_w for w in (0.0, 0.5, 1.0)},
        x_label="RAPL pkg W",
        width=56,
        height=14,
    )
    text = (
        table.render()
        + "\n\n"
        + grid
        + "\n\nFig 10a: AC ECDFs per operand weight (fully separated):\n"
        + ac_plot
        + "\n\nFig 10b: RAPL ECDFs per operand weight (overlapping):\n"
        + rapl_plot
        + "\n\nAC quantiles, weight 1.0:\n"
        + _ecdf_sketch(vxorps.samples[1.0].ac_w)
    )
    publish("fig10_hamming_ecdf", text)
    check(table)
