"""Table I: applied mean core frequencies in a mixed-frequency CCX."""

from repro.core import MixedFrequencyExperiment
from repro.core.analysis.tables import format_table

from _common import bench_config, check, publish


def test_tab01_mixed_frequencies(benchmark):
    exp = MixedFrequencyExperiment(bench_config(scale=0.5))
    result = benchmark.pedantic(exp.measure_applied_frequencies, rounds=1, iterations=1)
    table = exp.compare_with_paper(result)

    rows = [
        (f"set {s} GHz", *(result.cell(s, o) for o in exp.FREQS_GHZ))
        for s in exp.FREQS_GHZ
    ]
    grid = format_table(
        ["measured core", *(f"others {o}" for o in exp.FREQS_GHZ)],
        rows,
        float_fmt="{:.3f}",
    )
    publish("tab01_mixed_freq", table.render() + "\n\napplied mean GHz:\n" + grid)
    check(table)
