"""§VII (text): the RAPL MSR update rate, measured by tight polling."""

import numpy as np

from repro.core import RaplUpdateRateExperiment

from _common import bench_config, check, publish


def test_sec7_rapl_update_rate(benchmark):
    exp = RaplUpdateRateExperiment(bench_config())
    result = benchmark.pedantic(
        lambda: exp.measure(n_updates=100), rounds=1, iterations=1
    )
    table = exp.compare_with_paper(result)
    text = (
        table.render()
        + f"\n\nintervals between counter updates: median {result.median_ms:.3f} ms, "
        + f"min {result.intervals_ms.min():.3f}, max {result.intervals_ms.max():.3f}, "
        + f"n={result.intervals_ms.size}"
    )
    publish("sec7_rapl_update_rate", text)
    check(table)
    assert float(np.std(result.intervals_ms)) < 0.05  # a fixed grid, not jittered
