"""Fig 1: Green500 2021/07 efficiency of x86 architectures.

Regenerates the per-architecture efficiency distribution (the figure's
boxes) from the embedded statistical reconstruction and verifies the
headline: AMD Zen architectures lead the x86 field.
"""

from repro.core.analysis.tables import format_table
from repro.datasets.green500 import (
    ARCHITECTURE_BANDS,
    amd_leads_x86,
    architecture_summary,
    synthesize_green500,
)

from _common import BENCH_SEED, publish


def _run():
    entries = synthesize_green500(BENCH_SEED)
    return entries, architecture_summary(entries)


def test_fig01_green500(benchmark):
    entries, summary = benchmark.pedantic(_run, rounds=3, iterations=1)
    rows = [
        (
            band.architecture,
            band.vendor,
            int(summary[band.architecture]["n"]),
            summary[band.architecture]["q1"],
            summary[band.architecture]["median"],
            summary[band.architecture]["q3"],
        )
        for band in ARCHITECTURE_BANDS
    ]
    text = "== Fig 1: Green500 2021/07 x86 efficiency (GFlops/W) ==\n" + format_table(
        ["architecture", "vendor", "n", "q1", "median", "q3"], rows, float_fmt="{:.2f}"
    )
    publish("fig01_green500", text)
    assert amd_leads_x86(entries)
    assert len(entries) == sum(b.n_systems for b in ARCHITECTURE_BANDS)
