"""Fig 6: FIRESTARTER at nominal frequency — EDC throttling."""

import pytest

from repro.core import ThroughputLimitExperiment
from repro.core.analysis.tables import format_table

from _common import bench_config, check, publish


def test_fig06_firestarter(benchmark):
    exp = ThroughputLimitExperiment(bench_config())

    def run():
        return exp.measure(smt=True), exp.measure(smt=False)

    two, one = benchmark.pedantic(run, rounds=1, iterations=1)
    table = exp.compare_with_paper(two, one)

    rows = [
        ("2 threads/core", two.mean_freq_ghz, two.std_freq_mhz, two.ipc_per_core,
         two.ac_power_w, two.rapl_per_pkg_w),
        ("1 thread/core", one.mean_freq_ghz, one.std_freq_mhz, one.ipc_per_core,
         one.ac_power_w, one.rapl_per_pkg_w),
    ]
    grid = format_table(
        ["config", "freq GHz", "freq std MHz", "IPC/core", "AC W", "RAPL W/pkg"],
        rows,
        float_fmt="{:.2f}",
    )
    publish("fig06_firestarter", table.render() + "\n\n" + grid)
    check(table)


def test_fig06_frequency_sweep(benchmark):
    """Where the EDC limit starts to bind (requested vs applied)."""
    exp = ThroughputLimitExperiment(bench_config())
    rows = benchmark.pedantic(exp.frequency_sweep, rounds=1, iterations=1)
    grid = format_table(
        ["requested GHz", "applied GHz", "system AC W"], rows, float_fmt="{:.2f}"
    )
    publish(
        "fig06_frequency_sweep",
        "== Fig 6 companion: FIRESTARTER requested vs applied clock ==\n"
        + grid
        + "\n\nrequests at/below the EDC point are honoured; above it they "
        "clip to 2.0 GHz\n(no documented AVX-frequency table to predict "
        "this from - §V-E's warning).",
    )
    # below the throttle point: exact; above: clipped
    assert rows[0][1] == rows[0][0]
    assert rows[-1][1] == pytest.approx(2.0, abs=0.001)


def test_fig06_future_work_core_scaling(benchmark):
    """§VIII: throttling vs core count across the SKU catalogue."""
    exp = ThroughputLimitExperiment(bench_config())
    scaling = benchmark.pedantic(exp.core_count_scaling, rounds=1, iterations=1)
    rows = [(name, f) for name, f in scaling.items()]
    grid = format_table(["SKU", "throttled GHz (FIRESTARTER, SMT)"], rows, float_fmt="{:.3f}")
    publish("fig06_core_scaling", "== §VIII future work: throttle vs core count ==\n" + grid)
    assert scaling["EPYC 7742"] < scaling["EPYC 7502"]
