"""Fig 9: RAPL vs AC reference across the workload grid."""

import numpy as np

from repro.core import RaplQualityExperiment
from repro.core.analysis.plots import ascii_scatter
from repro.core.analysis.tables import format_table

from _common import bench_config, check, publish


def test_fig09_rapl_quality(benchmark):
    exp = RaplQualityExperiment(bench_config())
    result = benchmark.pedantic(
        lambda: exp.measure(placements=("all", "half")), rounds=1, iterations=1
    )
    table = exp.compare_with_paper(result)

    # per-workload summary at 2.5 GHz, all threads (the Fig 9a points)
    rows = []
    for name in sorted({p.workload for p in result.points}):
        pts = [
            p
            for p in result.points
            if p.workload == name and p.freq_ghz == 2.5 and p.smt
        ]
        if not pts:
            pts = [p for p in result.points if p.workload == name]
        rows.append(
            (
                name,
                float(np.mean([p.ac_w for p in pts])),
                float(np.mean([p.rapl_pkg_w for p in pts])),
                float(np.mean([p.rapl_core_w for p in pts])),
                float(np.mean([p.pkg_minus_core_w for p in pts])),
            )
        )
    grid = format_table(
        ["workload", "AC W", "RAPL pkg W", "RAPL core W", "pkg-core W"],
        rows,
        float_fmt="{:.1f}",
    )
    scatter = ascii_scatter(
        [p.rapl_pkg_w for p in result.points],
        [p.ac_w for p in result.points],
        x_label="RAPL package W",
        y_label="AC W",
        width=56,
        height=18,
    )
    publish(
        "fig09_rapl_quality",
        table.render()
        + "\n\n(2.5 GHz, all threads)\n"
        + grid
        + "\n\nFig 9a shape (every config): no single mapping function\n"
        + scatter,
    )
    check(table)
