"""Extension study: power capping through the modelled PPT loop.

Not a numbered paper artifact — the §II-B capping context combined with
the §VII accuracy findings: the SMU holds the cap against its *model*,
so workloads whose power the model under-states violate the cap at the
wall.
"""

from repro.core.analysis.tables import format_table
from repro.core.power_capping import PowerCappingExperiment

from _common import bench_config, publish


def test_ext_power_capping(benchmark):
    exp = PowerCappingExperiment(bench_config())
    result = benchmark.pedantic(
        lambda: exp.measure(caps_w=(75.0, 100.0, 130.0, 160.0)),
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            p.workload,
            p.cap_w,
            p.applied_ghz,
            p.modelled_pkg_w,
            p.true_pkg_w,
            p.cap_violation_w,
            f"{100 * p.relative_performance:.0f}%",
        )
        for p in result.points
    ]
    grid = format_table(
        ["workload", "cap W", "GHz", "modelled W", "true W", "violation W", "perf"],
        rows,
        float_fmt="{:.2f}",
    )
    worst = result.worst_violation()
    publish(
        "ext_power_capping",
        "== Extension: power capping vs model accuracy ==\n"
        + grid
        + f"\n\nworst wall-side violation: {worst.cap_violation_w:.1f} W "
        f"({worst.workload} at a {worst.cap_w:.0f} W cap) — the §VII model "
        "gaps turned into an enforcement gap.",
    )
    assert result.worst_violation().cap_violation_w > 3.0
    fs = result.of_workload("firestarter")
    assert all(p.modelled_pkg_w <= p.cap_w + 1.0 for p in fs)
