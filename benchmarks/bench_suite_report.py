"""The structured suite: every paper artifact in one run, archived.

Produces ``benchmarks/results/suite_report.json`` (regression-trackable)
and ``suite_report.md`` (the EXPERIMENTS.md shape) from a single seeded
execution of all ten experiment runners.
"""

import os

from repro.core.report_md import render_markdown
from repro.core.serialize import dump_json
from repro.core.suite import run_suite, suite_to_dict

from _common import BENCH_JOBS, RESULTS_DIR, bench_cache, bench_config, publish


def test_suite_report(benchmark):
    cfg = bench_config(scale=0.02)
    cache = bench_cache()
    result = benchmark.pedantic(
        lambda: run_suite(cfg, parallel=BENCH_JOBS, cache=cache),
        rounds=1,
        iterations=1,
    )

    os.makedirs(RESULTS_DIR, exist_ok=True)
    dump_json(suite_to_dict(result), os.path.join(RESULTS_DIR, "suite_report.json"))
    with open(os.path.join(RESULTS_DIR, "suite_report.md"), "w") as fh:
        fh.write(render_markdown(result) + "\n")

    summary = "\n".join(
        f"  {'ok ' if table.all_ok else 'FAIL'}  {name}  "
        f"({len(table.comparisons)} quantities)"
        for name, table in result.tables.items()
    )
    publish(
        "suite_summary",
        "== Structured suite: all paper artifacts, one seeded run ==\n"
        + summary
        + f"\n\nverdict: {'all within acceptance bands' if result.all_ok else 'FAILURES'}"
        + "\nartifacts: suite_report.json / suite_report.md",
    )
    assert result.all_ok, result.render()
    assert len(result.tables) == 10
