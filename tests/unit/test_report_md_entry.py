"""Markdown report rendering and C-state entry latencies."""

import numpy as np
import pytest

from repro.core import ExperimentConfig
from repro.core.report_md import render_markdown, write_markdown
from repro.core.suite import run_suite
from repro.cstate.wakeup import WakeupModel
from repro.errors import CStateError
from repro.units import ghz


class TestEntryLatency:
    def _model(self):
        return WakeupModel(rng=np.random.default_rng(0))

    def test_c1_entry_sub_microsecond(self):
        lat = self._model().entry_latency_ns("C1", ghz(2.5))
        assert 100 <= lat <= 1000

    def test_c2_entry_slower_than_c1(self):
        model = self._model()
        assert model.entry_latency_ns("C2", ghz(2.5)) > 5 * model.entry_latency_ns(
            "C1", ghz(2.5)
        )

    def test_entry_faster_than_exit_for_c2(self):
        # entering saves state; waking additionally re-powers the core
        model = self._model()
        assert model.entry_latency_ns("C2", ghz(2.5)) < model.nominal_latency_ns(
            "C2", ghz(2.5)
        )

    def test_entry_scales_with_clock(self):
        model = self._model()
        assert model.entry_latency_ns("C1", ghz(1.5)) > model.entry_latency_ns(
            "C1", ghz(2.5)
        )

    def test_c0_entry_free(self):
        assert self._model().entry_latency_ns("C0", ghz(2.5)) == 0.0

    def test_unknown_state(self):
        with pytest.raises(CStateError):
            self._model().entry_latency_ns("C6", ghz(2.5))

    def test_entry_samples_jittered_around_centre(self):
        model = self._model()
        samples = model.sample_entry_ns("C2", ghz(2.5), n=500)
        centre = model.entry_latency_ns("C2", ghz(2.5))
        assert np.median(samples) == pytest.approx(centre, rel=0.05)
        assert samples.std() > 0


class TestMarkdownReport:
    @pytest.fixture(scope="class")
    def result(self):
        return run_suite(
            ExperimentConfig(seed=2021, scale=0.02),
            only=["sec5a_idle_sibling", "sec7_rapl_update_rate"],
        )

    def test_render_contains_titles_and_rows(self, result):
        md = render_markdown(result)
        assert "§V-A — idle sibling" in md
        assert "RAPL update rate" in md
        assert "| quantity |" in md
        assert "all experiments within bands" in md

    def test_write(self, result, tmp_path):
        path = tmp_path / "report.md"
        write_markdown(result, str(path))
        assert "Reproduction report" in path.read_text()

    def test_deviations_flagged(self):
        from repro.core.report import ComparisonTable
        from repro.core.suite import SuiteResult

        table = ComparisonTable("broken")
        table.add("x", 1.0, 5.0)
        fake = SuiteResult(config=ExperimentConfig(), tables={"broken": table})
        md = render_markdown(fake)
        assert "DEVIATES" in md and "DEVIATIONS PRESENT" in md
