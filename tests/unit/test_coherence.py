"""Cache-coherence transfer latency model."""

import pytest

from repro.cstate.package import XgmiLinkState
from repro.machine import Machine
from repro.memory.coherence import CoherenceModel, LineState
from repro.units import ghz
from repro.workloads import SPIN


@pytest.fixture
def model():
    return CoherenceModel()


class TestDistanceOrdering:
    def test_ccx_lt_package_lt_socket(self, model):
        args = (LineState.MODIFIED, ghz(2.5), ghz(2.5))
        ccx = model.same_ccx_ns(*args)
        pkg = model.same_package_ns(*args, fclk_hz=ghz(1.467))
        remote = model.cross_package_ns(*args, fclk_hz=ghz(1.467))
        assert ccx < pkg < remote

    def test_dirty_line_costs_more(self, model):
        clean = model.same_ccx_ns(LineState.SHARED, ghz(2.5), ghz(2.5))
        dirty = model.same_ccx_ns(LineState.MODIFIED, ghz(2.5), ghz(2.5))
        assert dirty > clean

    def test_l3_clock_matters(self, model):
        slow = model.same_ccx_ns(LineState.MODIFIED, ghz(2.5), ghz(1.5))
        fast = model.same_ccx_ns(LineState.MODIFIED, ghz(2.5), ghz(2.5))
        assert slow > fast

    def test_fclk_matters_across_ccx(self, model):
        args = (LineState.SHARED, ghz(2.5), ghz(2.5))
        p0 = model.same_package_ns(*args, fclk_hz=ghz(1.467))
        p2 = model.same_package_ns(*args, fclk_hz=ghz(0.8))
        assert p2 > p0


class TestXgmiStates:
    def test_reduced_width_slower(self, model):
        args = (LineState.SHARED, ghz(2.5), ghz(2.5))
        full = model.cross_package_ns(*args, fclk_hz=ghz(1.467), xgmi=XgmiLinkState.FULL_WIDTH)
        reduced = model.cross_package_ns(*args, fclk_hz=ghz(1.467), xgmi=XgmiLinkState.REDUCED_WIDTH)
        assert reduced > full

    def test_low_power_link_retrain_dominates(self, model):
        args = (LineState.SHARED, ghz(2.5), ghz(2.5))
        lp = model.cross_package_ns(*args, fclk_hz=ghz(1.467), xgmi=XgmiLinkState.LOW_POWER)
        assert lp > 40_000.0  # tens of microseconds


class TestOnMachine:
    @pytest.fixture
    def m(self):
        machine = Machine("EPYC 7502", seed=0)
        machine.os.set_all_frequencies(ghz(2.5))
        yield machine
        machine.shutdown()

    def test_topology_aware_dispatch(self, m, model):
        m.os.run(SPIN, [0, 1, 8, 32])  # cpu1: same CCX; cpu8: other CCD; cpu32: other socket
        same_ccx = model.transfer_ns(m, 0, 1)
        same_pkg = model.transfer_ns(m, 0, 8)
        cross = model.transfer_ns(m, 0, 32)
        assert same_ccx < same_pkg < cross

    def test_awake_machine_uses_full_width_link(self, m, model):
        m.os.run(SPIN, [0, 32])
        cross = model.transfer_ns(m, 0, 32, LineState.SHARED)
        assert cross < 300.0  # no retrain penalty while awake

    def test_transfer_scale_plausible(self, m, model):
        m.os.run(SPIN, [0, 1])
        # Zen 2 same-CCX dirty transfers are tens of ns
        assert 15.0 < model.transfer_ns(m, 0, 1) < 50.0
