"""The Machine facade: settling, measuring, BIOS options, modes."""

import pytest

from repro.iodie.fclk import FclkMode
from repro.machine import Machine, Quirks
from repro.units import ghz, ms
from repro.workloads import FIRESTARTER, SPIN


class TestConstruction:
    def test_default_build(self, machine):
        assert machine.sku.name == "EPYC 7502"
        assert machine.topology.n_threads == 128
        assert machine.cstates.system_in_deep_sleep()

    def test_seeded_reproducibility(self):
        a = Machine("EPYC 7502", seed=7)
        b = Machine("EPYC 7502", seed=7)
        ra = a.measure(10.0).ac_mean_w
        rb = b.measure(10.0).ac_mean_w
        a.shutdown()
        b.shutdown()
        assert ra == rb

    def test_different_seeds_differ(self):
        a = Machine("EPYC 7502", seed=1)
        b = Machine("EPYC 7502", seed=2)
        assert a.measure(10.0).ac_mean_w != b.measure(10.0).ac_mean_w
        a.shutdown()
        b.shutdown()

    def test_single_socket(self):
        m = Machine("EPYC 7502", n_packages=1, seed=0)
        assert len(m.topology.packages) == 1
        assert len(m.smus) == 1
        m.shutdown()


class TestReconfigure:
    def test_state_version_bumps(self, machine):
        v = machine.state_version
        machine.os.run(SPIN, [0])
        assert machine.state_version > v

    def test_applied_frequency_follows_request(self, machine):
        machine.os.run(SPIN, [0])
        machine.os.set_frequency(0, ghz(2.2))
        assert machine.topology.thread(0).core.applied_freq_hz == ghz(2.2)

    def test_l3_clock_updated(self, machine):
        machine.os.run(SPIN, machine.os.cpus_of_ccx(0))
        for cpu in machine.os.cpus_of_ccx(0):
            machine.os.set_frequency(cpu, ghz(2.5))
        assert machine.topology.thread(0).core.ccx.l3_freq_hz == ghz(2.5)

    def test_observable_mean_cached(self, machine):
        machine.os.run(SPIN, [0])
        machine.os.set_frequency(0, ghz(2.2))
        core = machine.topology.thread(0).core
        assert machine.observable_mean_hz(core) == pytest.approx(ghz(2.2))


class TestMeasure:
    def test_record_fields(self, machine):
        rec = machine.measure(10.0)
        assert rec.duration_s == 10.0
        assert rec.ac.power_w.size == 200
        assert len(rec.rapl_pkg_w) == 2
        assert len(rec.rapl_core_w) == 64
        assert rec.ac_mean_w > 0

    def test_clock_advances(self, machine):
        t0 = machine.sim.now_ns
        machine.measure(10.0)
        assert machine.sim.now_ns == t0 + 10_000_000_000

    def test_breakdown_sums_to_true_power(self, machine):
        rec = machine.measure(10.0)
        assert sum(rec.breakdown.values()) == pytest.approx(rec.true_power_w, rel=1e-6)

    def test_temperatures_rise_under_load(self, machine):
        machine.os.run(FIRESTARTER, machine.os.all_cpus())
        t_before = list(machine.thermal_state.temps_c)
        machine.measure(10.0)
        assert all(
            after > before
            for after, before in zip(machine.thermal_state.temps_c, t_before)
        )

    def test_preheat_reaches_equilibrium(self, machine):
        machine.os.run(FIRESTARTER, machine.os.all_cpus())
        machine.preheat()
        temps = list(machine.thermal_state.temps_c)
        machine.measure(10.0)
        # already settled: barely moves
        assert all(
            abs(a - b) < 0.5 for a, b in zip(machine.thermal_state.temps_c, temps)
        )


class TestBiosOptions:
    def test_set_fclk_mode(self, machine):
        machine.set_fclk_mode(FclkMode.P2)
        for pkg in machine.topology.packages:
            assert pkg.io_die.fclk_hz == ghz(0.8)

    def test_set_dram(self, machine):
        machine.set_dram("DDR4-2666")
        for pkg in machine.topology.packages:
            assert pkg.io_die.memclk_hz == ghz(1.333)

    def test_dram_change_recouples_auto_fclk(self, machine):
        machine.set_dram("DDR4-2666")
        assert machine.topology.packages[0].io_die.fclk_hz == ghz(1.333)


class TestEventMode:
    def test_requests_are_deferred(self, machine):
        machine.os.run(SPIN, [0])
        machine.enable_event_mode()
        machine.os.set_frequency(0, ghz(2.5))
        core = machine.topology.thread(0).core
        assert core.applied_freq_hz != ghz(2.5)
        machine.sim.run_for(ms(3))
        assert core.applied_freq_hz == ghz(2.5)

    def test_disable_event_mode_settles(self, machine):
        machine.os.run(SPIN, [0])
        machine.enable_event_mode()
        machine.os.set_frequency(0, ghz(2.5))
        machine.disable_event_mode()
        assert machine.topology.thread(0).core.applied_freq_hz == ghz(2.5)

    def test_rapl_ticks_only_in_event_mode(self, machine):
        raw0 = machine.rapl_msrs.read_pkg_raw(0)
        machine.sim.run_for(ms(10))
        assert machine.rapl_msrs.read_pkg_raw(0) == raw0
        machine.enable_event_mode(rapl_ticks=True)
        machine.sim.run_for(ms(10))
        assert machine.rapl_msrs.read_pkg_raw(0) > raw0


class TestQuirks:
    def test_quirk_free_machine_is_intel_like(self):
        m = Machine(
            "EPYC 7502",
            seed=0,
            quirks=Quirks(
                offline_threads_vote_on_frequency=False, offline_parks_in_c1=False
            ),
        )
        m.os.run(SPIN, [0])
        m.os.set_frequency(0, ghz(1.5))
        m.os.set_frequency(64, ghz(2.5))  # idle sibling
        assert m.topology.thread(0).core.applied_freq_hz == ghz(1.5)
        m.os.hotplug.set_offline(70)
        assert m.topology.thread(70).effective_cstate == "C2"
        m.shutdown()


class TestPreheatConvergence:
    """The power<->temperature fixed point must iterate to tolerance,
    not a hard-coded sweep count (the legacy loop ran exactly 4)."""

    @staticmethod
    def _leaky_machine(leakage_w_per_k, resistance_k_per_w):
        from dataclasses import replace

        from repro.power.calibration import CALIBRATION

        cal = replace(
            CALIBRATION,
            leakage_w_per_k_pkg=leakage_w_per_k,
            thermal_resistance_k_per_w=resistance_k_per_w,
        )
        return Machine("EPYC 7502", seed=0, calibration=cal)

    def test_four_sweeps_provably_insufficient_when_leaky(self):
        # Contraction ratio r = 0.45 * 1.5 = 0.675: each sweep removes
        # only ~1/3 of the residual, so 4 sweeps cannot reach 0.01 K.
        from repro.errors import ConvergenceWarning

        m = self._leaky_machine(1.5, 0.45)
        try:
            m.os.run(FIRESTARTER, m.os.all_cpus())
            with pytest.warns(ConvergenceWarning):
                residual = m.preheat(max_sweeps=Machine.PREHEAT_MIN_SWEEPS)
            assert residual > Machine.PREHEAT_TOL_C
        finally:
            m.shutdown()

    def test_tolerance_iteration_reaches_fixed_point_when_leaky(self):
        import warnings

        m = self._leaky_machine(1.5, 0.45)
        try:
            m.os.run(FIRESTARTER, m.os.all_cpus())
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                residual = m.preheat()
            assert residual <= Machine.PREHEAT_TOL_C
            # Self-consistency: the settled temperatures reproduce
            # themselves through the power model (true fixed point).
            temps = m.thermal_state.temps_c
            for pkg in m.topology.packages:
                p = m.power_model.package_power_w(m, pkg, temps)
                assert m.thermal.equilibrium_c(p) == pytest.approx(
                    temps[pkg.index], abs=0.05
                )
        finally:
            m.shutdown()

    def test_thermal_runaway_warns(self):
        # r = 0.45 * 2.5 > 1: leakage grows faster than the heatsink
        # sheds it — there is no stable equilibrium to converge to.
        from repro.errors import ConvergenceWarning

        m = self._leaky_machine(2.5, 0.45)
        try:
            m.os.run(FIRESTARTER, m.os.all_cpus())
            with pytest.warns(ConvergenceWarning):
                m.preheat()
        finally:
            m.shutdown()

    def test_default_calibration_converges_in_legacy_sweep_count(self, machine):
        # r ~= 0.053 at the shipped calibration: 4 sweeps always land
        # within tolerance, so results stay bit-identical to the legacy
        # fixed-count loop (the golden suite pins this globally).
        import warnings

        machine.os.run(FIRESTARTER, machine.os.all_cpus())
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            residual = machine.preheat()
        assert residual <= Machine.PREHEAT_TOL_C
