"""Fault injection for the process-pool runner.

Workers that misbehave in every way the OS allows — raise, hang past
the timeout, or die without a Python traceback (``os._exit``) — must be
retried up to the bound and then reported as structured failures, while
innocent tasks in the same gang still complete.  Result order must
always equal submission order.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.errors import ParallelError
from repro.parallel import Task, TaskFailure, run_tasks


# --- worker functions (module-level: must be picklable) --------------------


def _double(x: int) -> int:
    return x * 2


def _slow_double(x: int) -> int:
    time.sleep(0.05 * (x % 3))
    return x * 2


def _boom() -> None:
    raise ValueError("boom")  # EXC001: injected fault, deliberately outside ReproError


def _die() -> None:
    os._exit(17)


def _hang() -> None:
    time.sleep(30.0)


def _flaky_crash(marker: str) -> str:
    """Dies on the first call, succeeds once the marker exists."""
    if not os.path.exists(marker):
        open(marker, "w").close()
        os._exit(9)
    return "recovered"


def _flaky_raise(marker: str) -> str:
    """Raises on the first call, succeeds once the marker exists."""
    if not os.path.exists(marker):
        open(marker, "w").close()
        raise RuntimeError("transient")  # EXC001: injected fault, deliberately outside ReproError
    return "recovered"


class TestOrderingAndSuccess:
    def test_results_in_submission_order(self):
        outcomes = run_tasks(
            [Task(f"t{i}", _slow_double, (i,)) for i in range(9)], jobs=4
        )
        assert [o.name for o in outcomes] == [f"t{i}" for i in range(9)]
        assert [o.value for o in outcomes] == [2 * i for i in range(9)]
        assert all(o.ok and o.attempts == 1 for o in outcomes)

    def test_empty_task_list(self):
        assert run_tasks([], jobs=4) == []

    def test_single_worker_pool(self):
        outcomes = run_tasks(
            [Task(f"t{i}", _double, (i,)) for i in range(3)], jobs=1
        )
        assert [o.value for o in outcomes] == [0, 2, 4]


class TestValidation:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ParallelError, match="duplicate task names"):
            run_tasks([Task("a", _double, (1,)), Task("a", _double, (2,))])

    def test_bad_jobs_rejected(self):
        with pytest.raises(ParallelError, match="jobs"):
            run_tasks([Task("a", _double, (1,))], jobs=0)

    def test_bad_retries_rejected(self):
        with pytest.raises(ParallelError, match="retries"):
            run_tasks([Task("a", _double, (1,))], retries=-1)

    def test_bad_timeout_rejected(self):
        with pytest.raises(ParallelError, match="timeout_s"):
            run_tasks([Task("a", _double, (1,))], timeout_s=0.0)


class TestFaultInjection:
    def test_raising_task_is_structured_failure(self):
        outcomes = run_tasks(
            [
                Task("a", _double, (1,)),
                Task("b", _boom),
                Task("c", _double, (3,)),
            ],
            jobs=2,
            retries=1,
        )
        by_name = {o.name: o for o in outcomes}
        assert by_name["a"].ok and by_name["a"].value == 2
        assert by_name["c"].ok and by_name["c"].value == 6
        failure = by_name["b"].failure
        assert isinstance(failure, TaskFailure)
        assert failure.kind == "error"
        assert "boom" in failure.message
        assert failure.attempts == 2  # gang attempt + one isolated retry

    def test_dying_worker_does_not_sink_the_gang(self):
        outcomes = run_tasks(
            [
                Task("a", _double, (1,)),
                Task("d", _die),
                Task("c", _double, (3,)),
            ],
            jobs=2,
            retries=1,
        )
        by_name = {o.name: o for o in outcomes}
        assert by_name["a"].ok and by_name["a"].value == 2
        assert by_name["c"].ok and by_name["c"].value == 6
        failure = by_name["d"].failure
        assert failure is not None
        assert failure.kind == "crash"
        assert failure.attempts == 2

    def test_timeout_is_bounded_and_attributed(self):
        t0 = time.perf_counter()  # lint: disable=DET001 (test bounds host wall-clock)
        outcomes = run_tasks(
            [Task("h", _hang), Task("a", _double, (5,))],
            jobs=2,
            timeout_s=0.3,
            retries=0,
        )
        elapsed = time.perf_counter() - t0  # lint: disable=DET001 (test bounds host wall-clock)
        by_name = {o.name: o for o in outcomes}
        assert by_name["a"].ok and by_name["a"].value == 10
        failure = by_name["h"].failure
        assert failure is not None
        assert failure.kind == "timeout"
        # One gang timeout, no retries; the hung worker was terminated,
        # not awaited (a join would take the task's full 30 s sleep).
        assert elapsed < 10.0

    def test_crash_retry_recovers_flaky_task(self, tmp_path):
        marker = str(tmp_path / "crash-marker")
        outcomes = run_tasks(
            [Task("f", _flaky_crash, (marker,))], jobs=2, retries=2
        )
        assert outcomes[0].ok
        assert outcomes[0].value == "recovered"

    def test_raise_retry_recovers_flaky_task(self, tmp_path):
        marker = str(tmp_path / "raise-marker")
        outcomes = run_tasks(
            [Task("f", _flaky_raise, (marker,))], jobs=2, retries=1
        )
        assert outcomes[0].ok
        assert outcomes[0].value == "recovered"
        assert outcomes[0].attempts == 2

    def test_retry_bound_exhausts(self, tmp_path):
        outcomes = run_tasks([Task("b", _boom)], jobs=1, retries=3)
        failure = outcomes[0].failure
        assert failure is not None
        assert failure.attempts == 4  # 1 + 3 retries

    @pytest.mark.skipif(
        not os.path.isdir("/proc"), reason="zombie scan needs /proc"
    )
    def test_timeout_retry_cycle_leaves_no_zombie_workers(self, tmp_path):
        """Terminated workers must be reaped, not abandoned as zombies.

        The scan reads /proc directly instead of using multiprocessing
        APIs: ``active_children()`` joins (reaps) as a side effect, which
        would hide exactly the leak this test exists to catch.
        """

        def zombie_children() -> list[int]:
            me = str(os.getpid())
            zombies = []
            for entry in os.listdir("/proc"):
                if not entry.isdigit():
                    continue
                try:
                    with open(f"/proc/{entry}/stat") as fh:
                        fields = fh.read().rpartition(")")[2].split()
                except OSError:
                    continue
                # After the comm field: fields[0]=state, fields[1]=ppid.
                if len(fields) > 1 and fields[1] == me and fields[0] == "Z":
                    zombies.append(int(entry))
            return zombies

        outcomes = run_tasks(
            [Task("h", _hang), Task("a", _double, (5,))],
            jobs=2,
            timeout_s=0.3,
            retries=1,
        )
        by_name = {o.name: o for o in outcomes}
        assert by_name["h"].failure is not None
        assert by_name["h"].failure.kind == "timeout"
        assert by_name["a"].ok
        # _terminate joins each worker before returning, so no child of
        # this process may still be defunct.  A short grace loop absorbs
        # unrelated pytest/plugin children finishing asynchronously.
        deadline = time.perf_counter() + 5.0  # lint: disable=DET001 (test bounds host wall-clock)
        while zombie_children() and time.perf_counter() < deadline:  # lint: disable=DET001
            time.sleep(0.05)
        assert zombie_children() == []

    def test_failure_as_dict_is_json_shaped(self):
        outcomes = run_tasks([Task("b", _boom)], jobs=1, retries=0)
        doc = outcomes[0].failure.as_dict()
        assert doc == {
            "name": "b",
            "kind": "error",
            "message": doc["message"],
            "attempts": 1,
        }
        assert "boom" in doc["message"]
