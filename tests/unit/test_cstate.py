"""C-state definitions, controller resolution, wake-up model."""

import numpy as np
import pytest

from repro.cstate import CStateController, WakeupModel, cstate_by_name, deeper, depth_of
from repro.cstate.states import CSTATES, UINT_MAX, shallower
from repro.errors import CStateError
from repro.topology import build_topology
from repro.units import ghz, us
from repro.workloads import SPIN


class TestStates:
    def test_three_states(self):
        assert [c.name for c in CSTATES] == ["C0", "C1", "C2"]

    def test_acpi_latencies_match_paper(self):
        assert cstate_by_name("C1").acpi_latency_ns == us(1)
        assert cstate_by_name("C2").acpi_latency_ns == us(400)

    def test_acpi_power_values_useless(self):
        # §VI: UINT_MAX for C0, 0 for idle states
        assert cstate_by_name("C0").acpi_power_w == float(UINT_MAX)
        assert cstate_by_name("C1").acpi_power_w == 0.0
        assert cstate_by_name("C2").acpi_power_w == 0.0

    def test_entry_methods(self):
        assert cstate_by_name("C1").entry_method == "mwait"
        assert cstate_by_name("C2").entry_method == "ioport"

    def test_depth_ordering(self):
        assert depth_of("C0") < depth_of("C1") < depth_of("C2")

    def test_deeper_shallower(self):
        assert deeper("C1", "C2") == "C2"
        assert shallower("C1", "C2") == "C1"

    def test_unknown_state_raises(self):
        with pytest.raises(CStateError):
            depth_of("C6")
        with pytest.raises(CStateError):
            cstate_by_name("C7")


class TestController:
    def _topo_ctrl(self, **kwargs):
        topo = build_topology("EPYC 7502", n_packages=1)
        ctrl = CStateController(topo, **kwargs)
        ctrl.refresh()
        return topo, ctrl

    def test_idle_threads_reach_c2(self):
        topo, ctrl = self._topo_ctrl()
        assert all(t.effective_cstate == "C2" for t in topo.threads())
        assert ctrl.system_in_deep_sleep()

    def test_workload_forces_c0(self):
        topo, ctrl = self._topo_ctrl()
        t = topo.thread(0)
        t.workload = SPIN
        ctrl.refresh()
        assert t.effective_cstate == "C0"
        assert not ctrl.system_in_deep_sleep()

    def test_disable_c2_falls_back_to_c1(self):
        topo, ctrl = self._topo_ctrl()
        ctrl.disable_state(0, "C2")
        assert topo.thread(0).effective_cstate == "C1"
        assert not ctrl.system_in_deep_sleep()

    def test_disable_both_idle_states_leaves_c0(self):
        topo, ctrl = self._topo_ctrl()
        ctrl.disable_state(0, "C2")
        ctrl.disable_state(0, "C1")
        assert ctrl.deepest_enabled(0) == "C0"
        assert topo.thread(0).effective_cstate == "C0"

    def test_reenable_restores_c2(self):
        topo, ctrl = self._topo_ctrl()
        ctrl.disable_state(0, "C2")
        ctrl.enable_state(0, "C2")
        assert topo.thread(0).effective_cstate == "C2"

    def test_c0_cannot_be_disabled(self):
        _, ctrl = self._topo_ctrl()
        with pytest.raises(ValueError):
            ctrl.disable_state(0, "C0")

    def test_offline_parks_in_c1_by_default(self):
        topo, ctrl = self._topo_ctrl()
        t = topo.thread(5)
        t.online = False
        ctrl.refresh()
        assert t.effective_cstate == "C1"
        assert not ctrl.system_in_deep_sleep()  # the §VI-B anomaly

    def test_offline_without_quirk_stays_c2(self):
        topo, ctrl = self._topo_ctrl(offline_parks_in_c1=False)
        t = topo.thread(5)
        t.online = False
        ctrl.refresh()
        assert t.effective_cstate == "C2"
        assert ctrl.system_in_deep_sleep()

    def test_core_gated_when_both_threads_idle(self):
        topo, ctrl = self._topo_ctrl()
        core = next(topo.cores())
        assert ctrl.core_gated(core)
        core.threads[0].workload = SPIN
        ctrl.refresh()
        assert not ctrl.core_gated(core)

    def test_count_by_effective_state(self):
        topo, ctrl = self._topo_ctrl()
        topo.thread(0).workload = SPIN
        ctrl.disable_state(1, "C2")
        counts = ctrl.count_by_effective_state()
        assert counts["C0"] == 1
        assert counts["C1"] == 1
        assert counts["C2"] == topo.n_threads - 2

    def test_cores_by_shallowest_state(self):
        topo, ctrl = self._topo_ctrl()
        ctrl.disable_state(0, "C2")  # core 0 -> C1 level
        counts = ctrl.cores_by_shallowest_state()
        assert counts["C1"] == 1
        assert counts["C2"] == topo.n_cores - 1


class TestWakeup:
    def test_c1_latency_near_1us_at_nominal(self):
        model = WakeupModel(rng=np.random.default_rng(0))
        lat = model.nominal_latency_ns("C1", ghz(2.5))
        assert 900 <= lat <= 1100

    def test_c1_latency_1_5us_at_min_freq(self):
        model = WakeupModel(rng=np.random.default_rng(0))
        lat = model.nominal_latency_ns("C1", ghz(1.5))
        assert 1400 <= lat <= 1700

    def test_c2_latency_in_20_25us_band(self):
        model = WakeupModel(rng=np.random.default_rng(0))
        for f in (1.5, 2.2, 2.5):
            lat = model.nominal_latency_ns("C2", ghz(f))
            assert 20_000 <= lat <= 25_000

    def test_c2_far_below_acpi_reported_value(self):
        model = WakeupModel(rng=np.random.default_rng(0))
        assert model.nominal_latency_ns("C2", ghz(2.5)) < us(400) / 4

    def test_remote_adds_about_1us(self):
        model = WakeupModel(rng=np.random.default_rng(0))
        local = model.nominal_latency_ns("C1", ghz(2.5))
        remote = model.nominal_latency_ns("C1", ghz(2.5), remote=True)
        assert remote - local == pytest.approx(1000.0)

    def test_unknown_state_raises(self):
        model = WakeupModel(rng=np.random.default_rng(0))
        with pytest.raises(CStateError):
            model.nominal_latency_ns("C6", ghz(2.5))

    def test_samples_have_outlier_tail(self):
        model = WakeupModel(rng=np.random.default_rng(1))
        samples = model.sample_ns("C2", ghz(2.5), n=5000)
        centre = model.nominal_latency_ns("C2", ghz(2.5))
        assert (samples > 2 * centre).mean() > 0.005  # outliers exist
        assert np.median(samples) == pytest.approx(centre, rel=0.05)

    def test_samples_reproducible(self):
        a = WakeupModel(rng=np.random.default_rng(3)).sample_ns("C1", ghz(2.5), n=10)
        b = WakeupModel(rng=np.random.default_rng(3)).sample_ns("C1", ghz(2.5), n=10)
        assert np.array_equal(a, b)
