"""FIRESTARTER-style payload generation."""

import pytest

from repro.errors import WorkloadError
from repro.machine import Machine
from repro.units import ghz
from repro.workloads import FIRESTARTER
from repro.workloads.generator import (
    OP_CACHE_OPS,
    PayloadSpec,
    firestarter_spec,
)


class TestSpecValidation:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(WorkloadError):
            PayloadSpec(fma_fraction=0.5, load_store_fraction=0.5, integer_fraction=0.5)

    def test_negative_fraction_rejected(self):
        with pytest.raises(WorkloadError):
            PayloadSpec(fma_fraction=-0.2, load_store_fraction=0.6, integer_fraction=0.6)

    def test_unknown_mem_level(self):
        with pytest.raises(WorkloadError):
            PayloadSpec(mem_level="L4")

    def test_too_short_loop(self):
        with pytest.raises(WorkloadError):
            PayloadSpec(unrolled_instructions=4)


class TestStructuralAnalysis:
    def test_op_cache_residency(self):
        small = PayloadSpec(unrolled_instructions=1000)
        big = PayloadSpec(unrolled_instructions=6000)
        assert small.fits_op_cache and not big.fits_op_cache
        assert small.front_end_ipc_limit() > big.front_end_ipc_limit()

    def test_l1i_miss_halves_front_end(self):
        huge = PayloadSpec(unrolled_instructions=20_000)
        assert not huge.fits_l1i
        assert huge.front_end_ipc_limit() == pytest.approx(2.0)

    def test_fma_pipes_bind_heavy_fma_mix(self):
        heavy = PayloadSpec(fma_fraction=0.8, load_store_fraction=0.1, integer_fraction=0.1)
        assert heavy.back_end_ipc_limit() == pytest.approx(
            2.0 / 0.8 * 1.0, rel=0.01
        )

    def test_ram_level_collapses_ipc(self):
        l1 = PayloadSpec(mem_level="L1", load_store_fraction=0.5,
                         fma_fraction=0.25, integer_fraction=0.25)
        ram = PayloadSpec(mem_level="RAM", load_store_fraction=0.5,
                          fma_fraction=0.25, integer_fraction=0.25)
        assert ram.sustained_ipc(2) < l1.sustained_ipc(2) / 2

    def test_smt_raises_sustained_ipc(self):
        spec = firestarter_spec()
        assert spec.sustained_ipc(2) > spec.sustained_ipc(1)


class TestGeneration:
    def test_canonical_spec_matches_firestarter_descriptor(self):
        gen = firestarter_spec().generate()
        assert gen.ipc_2t == pytest.approx(FIRESTARTER.ipc_2t, abs=0.02)
        assert gen.ipc_1t == pytest.approx(FIRESTARTER.ipc_1t, abs=0.02)
        assert gen.power_coeff_2t == pytest.approx(FIRESTARTER.power_coeff_2t, rel=0.02)
        assert gen.edc_weight == pytest.approx(FIRESTARTER.edc_weight, abs=0.05)

    def test_canonical_spec_sized_for_l1i_not_op_cache(self):
        spec = firestarter_spec()
        assert spec.unrolled_instructions > OP_CACHE_OPS
        assert spec.fits_l1i

    def test_generated_payload_throttles_like_firestarter(self):
        m = Machine("EPYC 7502", seed=0)
        m.os.set_all_frequencies(ghz(2.5))
        m.os.run(firestarter_spec().generate(), m.os.all_cpus())
        f = m.topology.thread(0).core.applied_freq_hz
        m.shutdown()
        assert abs(f - ghz(2.0)) <= 75e6  # within 3 grid steps

    def test_ram_payload_generates_traffic(self):
        spec = PayloadSpec(
            name="ram", fma_fraction=0.2, load_store_fraction=0.6,
            integer_fraction=0.2, mem_level="RAM",
        )
        wl = spec.generate()
        assert wl.dram_gbs_1t > 5.0
        assert wl.edc_weight < 0.6  # memory-bound code draws less current

    def test_operand_weight_propagates(self):
        wl = PayloadSpec(operand_hamming_weight=1.0).generate()
        assert wl.toggle_rate == 1.0

    def test_integer_only_payload_scalar(self):
        wl = PayloadSpec(
            fma_fraction=0.0, load_store_fraction=0.2, integer_fraction=0.8
        ).generate()
        assert wl.simd_width_bits == 0
