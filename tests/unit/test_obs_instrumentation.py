"""Instrumentation wiring: obs attached through the hot layers.

The contract under test everywhere: attaching an obs bundle changes
*what is recorded*, never *what is computed* — and a disabled bundle
collapses to the uninstrumented fast path at the attach boundary.
"""

from __future__ import annotations

import pytest

from repro.machine import Machine
from repro.obs import Obs, effective_obs
from repro.obs.export import trace_document
from repro.obs.schema import validate_trace_document
from repro.parallel import Task, run_tasks
from repro.sim.engine import Simulator
from repro.units import ghz
from repro.workloads import PAUSE_LOOP


def _counter_value(obs: Obs, name: str, **labels) -> float:
    return obs.metrics.counter(name, **labels).value


# ---------------------------------------------------------------------------
# simulator
# ---------------------------------------------------------------------------


def test_disabled_obs_collapses_to_none():
    assert effective_obs(None) is None
    assert effective_obs(Obs(enabled=False)) is None
    obs = Obs()
    assert effective_obs(obs) is obs


def test_simulator_counts_dispatches_and_records_spans():
    obs = Obs()
    sim = Simulator(obs=obs)
    fired = []
    for t in (100, 200, 300):
        sim.schedule_at(t, lambda t=t: fired.append(t))
    sim.run_until(1_000)
    assert fired == [100, 200, 300]
    assert _counter_value(obs, "sim.events_dispatched", machine="sim0") == 3
    spans = obs.tracer.spans("sim.dispatch")
    assert spans and all("t0_sim_ns" in s for s in spans)
    assert validate_trace_document(trace_document(obs.tracer)) == []


def test_simulator_disabled_obs_leaves_no_hooks():
    sim = Simulator(obs=Obs(enabled=False))
    assert sim._obs is None
    done = []
    sim.schedule_at(10, lambda: done.append(1))
    sim.run_until(100)
    assert done == [1]


def test_simulator_results_identical_with_and_without_obs():
    def run(obs):
        sim = Simulator(obs=obs)
        order = []
        sim.schedule_at(50, lambda: order.append("b"))
        sim.schedule_at(50, lambda: order.append("c"))
        sim.schedule_at(10, lambda: order.append("a"))
        sim.run_until(100)
        return order, sim.now_ns

    assert run(None) == run(Obs())


# ---------------------------------------------------------------------------
# machine
# ---------------------------------------------------------------------------


@pytest.fixture
def machine():
    m = Machine("EPYC 7302", seed=7)
    yield m
    m.shutdown()


def test_machine_measure_spans_and_counters(machine):
    obs = Obs()
    machine.attach_obs(obs)
    machine.os.set_all_frequencies(ghz(2.2))
    machine.os.run(PAUSE_LOOP, [0, 1])
    machine.measure(0.05)
    machine.measure(0.05)
    assert _counter_value(obs, "machine.measures", machine="machine0") == 2
    spans = obs.tracer.spans("machine.measure")
    assert len(spans) == 2
    assert all("t0_sim_ns" in s and "t1_sim_ns" in s for s in spans)
    assert validate_trace_document(trace_document(obs.tracer)) == []


def test_machine_measure_identical_with_and_without_obs():
    def run(obs):
        m = Machine("EPYC 7302", seed=7, obs=obs)
        try:
            m.os.set_all_frequencies(ghz(2.2))
            m.os.run(PAUSE_LOOP, [0, 1])
            rec = m.measure(0.05)
            return rec.true_power_w, rec.rapl_pkg_total_w, rec.ac.power_w.tolist()
        finally:
            m.shutdown()

    assert run(None) == run(Obs())


def test_tracepoint_bridge_lands_on_per_cpu_threads(machine):
    obs = Obs()
    machine.attach_obs(obs)
    machine.trace.emit(1_000, "sched_waking", 3, target_cpu=3)
    machine.trace.emit(2_000, "power_cpu_frequency", 3, state=2_200_000)
    insts = obs.tracer.instants()
    names = {r["name"] for r in insts}
    assert {"sched_waking", "power_cpu_frequency"} <= names
    assert all(r["cpu"] == 3 for r in insts if r["name"] in names)
    doc = trace_document(obs.tracer)
    assert validate_trace_document(doc) == []
    # Both tracepoints merge onto the one cpu3 thread of the machine track.
    tids = {
        e["tid"]
        for e in doc["traceEvents"]
        if e.get("ph") == "i" and e["name"] in names
    }
    assert tids == {4}


def test_tracepoint_bridge_survives_clear(machine):
    obs = Obs()
    machine.attach_obs(obs)
    machine.trace.emit(1_000, "sched_waking", 0)
    machine.trace.clear()
    # The bridge saw the event at emit time; clearing the buffer later
    # must not lose it from the exported timeline.
    assert len(obs.tracer.instants("sched_waking")) == 1


# ---------------------------------------------------------------------------
# invariant monitor
# ---------------------------------------------------------------------------


def test_monitor_emits_structured_findings(machine):
    from repro.lint.monitor import InvariantMonitor

    obs = Obs()
    machine.attach_obs(obs)
    mon = InvariantMonitor(machine, raise_on_violation=False, obs=obs).attach()
    machine.os.set_all_frequencies(ghz(2.2))
    machine.measure(0.05)
    mon.detach()
    assert _counter_value(obs, "invariant.checks") == mon.checks_run
    assert _counter_value(obs, "invariant.violations") == len(mon.violations)
    if mon.violations:  # pragma: no cover - depends on machine state
        insts = obs.tracer.instants("invariant.violation")
        assert all(r["severity"] == "error" for r in insts)


def test_monitor_without_attach_never_baselines():
    from repro.lint.monitor import InvariantMonitor

    m = Machine("EPYC 7302", seed=7)
    try:
        mon = InvariantMonitor(m)
        assert not mon._baselined  # lazy: no estimator sweep on __init__
        mon.attach()
        assert mon._baselined
        mon.detach()
    finally:
        m.shutdown()


# ---------------------------------------------------------------------------
# cache
# ---------------------------------------------------------------------------


def test_cache_mirrors_stats_into_metrics(tmp_path):
    from repro.cache import ResultCache

    obs = Obs()
    cache = ResultCache(str(tmp_path))
    cache.attach_obs(obs)
    assert cache.get("0" * 40) is None
    cache.put("0" * 40, {"x": 1})
    assert cache.get("0" * 40) == {"x": 1}
    assert _counter_value(obs, "cache.lookups", result="hit") == 1
    assert _counter_value(obs, "cache.lookups", result="miss") == 1
    assert _counter_value(obs, "cache.stores") == 1
    assert obs.metrics.histogram("cache.get_latency_s").count == 2


# ---------------------------------------------------------------------------
# pool
# ---------------------------------------------------------------------------


def _square(x: int) -> int:
    return x * x


def _fail_once_then_square(x: int) -> int:
    raise ValueError("always fails")  # EXC001: injected fault for the test


def test_pool_records_task_spans_and_outcomes():
    obs = Obs()
    tasks = [Task(name=f"t{i}", fn=_square, args=(i,)) for i in range(3)]
    outcomes = run_tasks(tasks, jobs=2, obs=obs)
    assert [o.value for o in outcomes] == [0, 1, 4]
    assert _counter_value(obs, "pool.tasks", result="ok") == 3
    spans = obs.tracer.spans()
    names = {s["name"] for s in spans}
    assert "pool.gang" in names
    assert {f"pool.task:t{i}" for i in range(3)} <= names
    # Per-task spans ride separate lanes so overlap stays renderable.
    assert validate_trace_document(trace_document(obs.tracer)) == []


def test_pool_counts_retries_and_failures():
    obs = Obs()
    tasks = [Task(name="bad", fn=_fail_once_then_square, args=(2,))]
    outcomes = run_tasks(tasks, jobs=1, retries=1, obs=obs)
    assert not outcomes[0].ok
    assert _counter_value(obs, "pool.tasks", result="error") == 1
    assert _counter_value(obs, "pool.retries") == 1
    assert obs.tracer.spans("pool.isolation")


def test_pool_results_identical_with_and_without_obs():
    tasks = [Task(name=f"t{i}", fn=_square, args=(i,)) for i in range(4)]
    plain = run_tasks(tasks, jobs=2)
    traced = run_tasks(tasks, jobs=2, obs=Obs())
    assert [o.value for o in plain] == [o.value for o in traced]
    assert run_tasks(tasks, jobs=2, obs=Obs(enabled=False))[0].value == 0
