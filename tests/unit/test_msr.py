"""MSR register file and the machine's MSR wiring."""

import pytest

from repro.errors import MsrError
from repro.msr.definitions import (
    MSR_APERF,
    MSR_CSTATE_BASE_ADDR,
    MSR_CORE_ENERGY_STAT,
    MSR_MPERF,
    MSR_NAMES,
    MSR_PKG_ENERGY_STAT,
    MSR_PSTATE_CUR_LIM,
    MSR_RAPL_PWR_UNIT,
    pstate_msr_address,
)
from repro.msr.registers import MsrFile
from repro.pstate.table import decode_pstate_msr
from repro.units import ghz
from repro.workloads import SPIN


class TestMsrFile:
    def test_static_register(self):
        f = MsrFile()
        f.register_static(0x10, 42)
        assert f.read(0, 0x10) == 42

    def test_static_is_readonly(self):
        f = MsrFile()
        f.register_static(0x10, 42)
        with pytest.raises(MsrError):
            f.write(0, 0x10, 1)

    def test_handler_receives_cpu_id(self):
        f = MsrFile()
        f.register(0x20, reader=lambda cpu: cpu * 2)
        assert f.read(7, 0x20) == 14

    def test_write_handler(self):
        f = MsrFile()
        store = {}
        f.register(0x30, writer=lambda cpu, v: store.update({cpu: v}))
        f.write(3, 0x30, 99)
        assert store == {3: 99}

    def test_unimplemented_read(self):
        with pytest.raises(MsrError, match="unimplemented"):
            MsrFile().read(0, 0xDEAD)

    def test_unimplemented_write(self):
        with pytest.raises(MsrError):
            MsrFile().write(0, 0xDEAD, 1)

    def test_values_masked_to_64_bits(self):
        f = MsrFile()
        f.register(0x40, reader=lambda cpu: 1 << 70)
        assert f.read(0, 0x40) == 0

    def test_implemented_probe(self):
        f = MsrFile()
        f.register_static(0x10, 0)
        assert f.implemented(0x10)
        assert not f.implemented(0x11)


class TestDefinitions:
    def test_pstate_addresses(self):
        assert pstate_msr_address(0) == 0xC0010064
        assert pstate_msr_address(7) == 0xC001006B

    def test_pstate_index_bounds(self):
        with pytest.raises(MsrError):
            pstate_msr_address(8)

    def test_names_cover_key_registers(self):
        for addr in (MSR_RAPL_PWR_UNIT, MSR_PKG_ENERGY_STAT, MSR_PSTATE_CUR_LIM):
            assert addr in MSR_NAMES


class TestMachineWiring:
    def test_pstate_limit_reports_slowest_state(self, machine):
        # three P-states -> current limit index 2 (§III-B polling)
        assert machine.msr.read(0, MSR_PSTATE_CUR_LIM) == 2

    def test_pstate_definitions_decodable(self, machine):
        freqs = set()
        for i in range(3):
            ps = decode_pstate_msr(machine.msr.read(0, pstate_msr_address(i)), i)
            freqs.add(ps.freq_hz)
        assert freqs == {ghz(1.5), ghz(2.2), ghz(2.5)}

    def test_cstate_base_address(self, machine):
        assert machine.msr.read(0, MSR_CSTATE_BASE_ADDR) == 0x813

    def test_pkg_energy_routed_by_package(self, machine):
        machine.os.run(SPIN, [0])  # activity on package 0 only
        machine.measure(10.0)
        pkg0 = machine.msr.read(0, MSR_PKG_ENERGY_STAT)
        pkg1 = machine.msr.read(32, MSR_PKG_ENERGY_STAT)  # cpu32 is pkg 1
        assert pkg0 != pkg1

    def test_core_energy_routed_by_core(self, machine):
        machine.os.run(SPIN, [0])
        machine.measure(10.0)
        c0 = machine.msr.read(0, MSR_CORE_ENERGY_STAT)
        c0_sibling = machine.msr.read(64, MSR_CORE_ENERGY_STAT)
        assert c0 == c0_sibling  # same core, same counter

    def test_aperf_mperf_advance_when_active(self, machine):
        machine.os.run(SPIN, [0])
        machine.os.set_frequency(0, ghz(2.5))
        a0 = machine.msr.read(0, MSR_APERF)
        m0 = machine.msr.read(0, MSR_MPERF)
        machine.measure(10.0)
        assert machine.msr.read(0, MSR_APERF) > a0
        assert machine.msr.read(0, MSR_MPERF) > m0

    def test_counters_halt_in_idle(self, machine):
        # §VI-A: aperf/mperf do not advance on C1/C2 cores
        a0 = machine.msr.read(5, MSR_APERF)
        machine.measure(10.0)
        assert machine.msr.read(5, MSR_APERF) == a0
