"""procfs rendering."""

import pytest

from repro.errors import SysfsError
from repro.units import ghz
from repro.workloads import SPIN


class TestCpuinfo:
    def test_stanza_per_online_cpu(self, machine):
        text = machine.os.proc.read("/proc/cpuinfo")
        assert text.count("processor\t:") == 128
        assert "AuthenticAMD" in text
        assert "EPYC 7502" in text

    def test_offline_cpu_omitted(self, machine):
        machine.os.hotplug.set_offline(5)
        text = machine.os.proc.cpuinfo()
        assert "processor\t: 5\n" not in text
        assert text.count("processor\t:") == 127

    def test_mhz_reflects_applied_clock(self, machine):
        machine.os.run(SPIN, [0])
        machine.os.set_frequency(0, ghz(2.2))
        text = machine.os.proc.cpuinfo()
        assert "cpu MHz\t\t: 2200.000" in text

    def test_family_and_physical_id(self, machine):
        text = machine.os.proc.cpuinfo()
        assert "cpu family\t: 23" in text  # family 17h
        assert "physical id\t: 1" in text  # second socket appears


class TestInterrupts:
    def test_empty_when_quiet(self, machine):
        text = machine.os.proc.read("/proc/interrupts")
        assert text.splitlines()[0].startswith("IRQ")
        assert len(text.splitlines()) == 1

    def test_registered_sources_listed(self, machine):
        machine.os.register_interrupt("nic_rx", 3, 5000.0)
        machine.os.register_interrupt("timer", 7, 250.0)
        text = machine.os.proc.interrupts()
        assert "nic_rx" in text and "timer" in text
        assert "\t3\t5000\t" in text


class TestStat:
    def test_busy_flag_follows_workload(self, machine):
        machine.os.run(SPIN, [0])
        lines = machine.os.proc.read("/proc/stat").splitlines()
        assert lines[0].startswith("cpu0 100")
        assert lines[1].startswith("cpu1 0")


class TestDispatch:
    def test_unknown_file(self, machine):
        with pytest.raises(SysfsError):
            machine.os.proc.read("/proc/meminfo")
