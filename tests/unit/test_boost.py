"""Core Performance Boost model."""

import pytest

from repro.machine import Machine
from repro.pstate.boost import BoostModel
from repro.topology.skus import sku_by_name
from repro.units import ghz
from repro.workloads import FIRESTARTER, SPIN


@pytest.fixture
def boosted():
    m = Machine("EPYC 7502", seed=0, boost_enabled=True)
    yield m
    m.shutdown()


class TestBoostModel:
    def test_disabled_model_never_lifts(self):
        sku = sku_by_name("EPYC 7502")
        model = BoostModel(sku, enabled=False)
        m = Machine("EPYC 7502", seed=0)
        pkg = m.topology.packages[0]
        decision = model.ceiling_hz(pkg)
        assert model.boosted_target_hz(ghz(2.5), decision) == ghz(2.5)
        m.shutdown()

    def test_single_core_gets_full_boost(self, boosted):
        boosted.os.run(SPIN, [0])
        boosted.os.set_frequency(0, ghz(2.5))
        core = boosted.topology.thread(0).core
        assert core.applied_freq_hz == pytest.approx(ghz(3.35))

    def test_more_active_cores_lower_the_ceiling(self, boosted):
        boosted.os.set_all_frequencies(ghz(2.5))
        boosted.os.run(SPIN, [0])
        single = boosted.topology.thread(0).core.applied_freq_hz
        boosted.os.run(SPIN, list(range(8)))
        many = boosted.topology.thread(0).core.applied_freq_hz
        assert many < single
        assert many >= ghz(2.5)

    def test_explicit_low_request_is_honoured(self, boosted):
        # a userspace request below nominal caps the core; boost must not
        # override the administrator
        boosted.os.run(SPIN, [0])
        boosted.os.set_frequency(0, ghz(1.5))
        assert boosted.topology.thread(0).core.applied_freq_hz == ghz(1.5)

    def test_boost_ceiling_on_25mhz_grid(self, boosted):
        boosted.os.set_all_frequencies(ghz(2.5))
        boosted.os.run(SPIN, list(range(5)))
        f = boosted.topology.thread(0).core.applied_freq_hz
        assert f / 25e6 == pytest.approx(round(f / 25e6))

    def test_hot_package_does_not_boost(self):
        sku = sku_by_name("EPYC 7502")
        model = BoostModel(sku, enabled=True)
        m = Machine("EPYC 7502", seed=0)
        m.os.run(SPIN, [0])
        decision = model.ceiling_hz(m.topology.packages[0], temp_c=90.0)
        assert decision.ceiling_hz == sku.nominal_freq_hz
        m.shutdown()

    def test_firestarter_unaffected_by_boost(self, boosted):
        # §V-E: "Enabling Core Performance Boost has almost no influence"
        boosted.os.set_all_frequencies(ghz(2.5))
        boosted.os.run(FIRESTARTER, boosted.os.all_cpus())
        assert boosted.topology.thread(0).core.applied_freq_hz == ghz(2.0)

    def test_boost_power_follows_v2f(self, boosted):
        plain = Machine("EPYC 7502", seed=0)
        for m in (boosted, plain):
            m.os.set_all_frequencies(ghz(2.5))
            m.os.run(SPIN, [0])
        p_boost = boosted.power_model.breakdown(boosted).total_w
        p_plain = plain.power_model.breakdown(plain).total_w
        plain.shutdown()
        assert p_boost > p_plain
