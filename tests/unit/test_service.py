"""Unit coverage for the experiment service's queue and job model.

Everything here runs against a stub runner — no HTTP, no process pool —
so admission control, single-flight dedup, quotas, drain, and the
``repro.service/job`` schema are exercised in milliseconds.  The real
daemon (sockets, run_suite, SIGTERM) is covered by
``tests/integration/test_service_daemon.py`` and the CI smoke.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import threading

import pytest

from repro.core.experiment import ExperimentConfig
from repro.core.suite import SUITE
from repro.errors import ServiceError
from repro.obs import MetricsRegistry
from repro.service import (
    JobQueue,
    JobSpec,
    QueueFull,
    QuotaExceeded,
    ServiceDraining,
    ServiceLimits,
    entry_keys,
    job_document,
    job_key,
    validate_job_document,
)


def _spec(seed: int = 0, tenant: str = "t0", entries=("sec5a_idle_sibling",)):
    return JobSpec.from_request(
        {
            "tenant": tenant,
            "entries": list(entries),
            "config": {"seed": seed, "scale": 0.01},
        }
    )


class TestJobSpec:
    def test_defaults_cover_whole_suite(self):
        spec = JobSpec.from_request({})
        assert spec.tenant == "anonymous"
        assert list(spec.entries) == list(SUITE)

    def test_backend_is_pinned_like_run_suite(self):
        # The default backend resolves to a concrete name, so the job
        # key equals the execution-time cache key.
        spec = _spec()
        assert spec.config.backend is not None

    @pytest.mark.parametrize(
        "doc",
        [
            [],
            {"bogus": 1},
            {"tenant": ""},
            {"tenant": 7},
            {"entries": "sec5a_idle_sibling"},
            {"entries": ["no_such_entry"]},
            {"entries": ["sec5a_idle_sibling", "sec5a_idle_sibling"]},
            {"entries": []},
            {"config": 3},
            {"config": {"bogus_field": 1}},
            {"config": {"seed": "zero"}},
            {"config": {"seed": True}},
            {"config": {"scale": 0}},
            {"config": {"scale": "big"}},
            {"config": {"interval_s": -1.0}},
            {"config": {"sku": ""}},
            {"config": {"n_packages": 0}},
        ],
    )
    def test_bad_requests_rejected(self, doc):
        with pytest.raises(ServiceError):
            JobSpec.from_request(doc)

    def test_job_key_ignores_tenant_but_not_config(self):
        assert job_key(_spec(tenant="a")) == job_key(_spec(tenant="b"))
        assert job_key(_spec(seed=0)) != job_key(_spec(seed=1))
        assert job_key(_spec()) != job_key(
            _spec(entries=("sec5a_idle_sibling", "sec7_rapl_update_rate"))
        )

    def test_entry_keys_match_cache_keys(self):
        from repro.cache import cache_key

        spec = _spec(entries=("sec5a_idle_sibling", "sec7_rapl_update_rate"))
        keys = entry_keys(spec)
        assert set(keys) == set(spec.entries)
        assert keys["sec5a_idle_sibling"] == cache_key(
            "sec5a_idle_sibling", spec.config
        )


class _Gate:
    """A runner whose jobs block until released, from the loop thread."""

    def __init__(self, fail: bool = False):
        self.event = threading.Event()
        self.calls: list[JobSpec] = []
        self.fail = fail
        self._lock = threading.Lock()

    def __call__(self, job) -> dict:
        spec = job.spec
        with self._lock:
            self.calls.append(spec)
        assert self.event.wait(timeout=30.0)
        if self.fail:
            raise ServiceError("injected job failure")
        return {"seed": spec.config.seed, "entries": list(spec.entries)}


def _run(coro):
    return asyncio.run(coro)


class TestJobQueue:
    def test_single_flight_dedup_runs_once(self):
        gate = _Gate()

        async def scenario():
            queue = JobQueue(gate, metrics=MetricsRegistry())
            await queue.start()
            leader, joined = await queue.submit(_spec(tenant="a"))
            assert not joined
            follower, joined = await queue.submit(_spec(tenant="b"))
            assert joined
            assert follower is leader
            assert leader.clients == 2
            assert leader.dedup == "inflight"
            gate.event.set()
            await asyncio.wait_for(leader.finished.wait(), 30)
            await queue.drain()
            return leader

        leader = _run(scenario())
        assert len(gate.calls) == 1  # one run served both clients
        assert leader.state == "done"
        assert leader.result == {"seed": 0, "entries": ["sec5a_idle_sibling"]}

    def test_distinct_configs_all_execute(self):
        gate = _Gate()

        async def scenario():
            queue = JobQueue(
                gate,
                metrics=MetricsRegistry(),
                limits=ServiceLimits(workers=4),
            )
            await queue.start()
            jobs = [(await queue.submit(_spec(seed=s)))[0] for s in range(3)]
            gate.event.set()
            for job in jobs:
                await asyncio.wait_for(job.finished.wait(), 30)
            await queue.drain()
            return jobs

        jobs = _run(scenario())
        assert len(gate.calls) == 3
        assert sorted(j.result["seed"] for j in jobs) == [0, 1, 2]

    def test_tenant_quota_rejects_with_retry_hint(self):
        gate = _Gate()

        async def scenario():
            queue = JobQueue(
                gate,
                metrics=MetricsRegistry(),
                limits=ServiceLimits(tenant_quota=2, retry_after_s=2.5),
            )
            await queue.start()
            for seed in range(2):
                await queue.submit(_spec(seed=seed, tenant="greedy"))
            with pytest.raises(QuotaExceeded) as excinfo:
                await queue.submit(_spec(seed=9, tenant="greedy"))
            assert excinfo.value.retry_after_s == 2.5
            assert excinfo.value.http_status == 429
            # Another tenant still gets in; joining an in-flight job is
            # free even for the throttled tenant.
            await queue.submit(_spec(seed=3, tenant="modest"))
            _, joined = await queue.submit(_spec(seed=0, tenant="greedy"))
            assert joined
            gate.event.set()
            await queue.drain()

        _run(scenario())

    def test_queue_budget_rejects_everyone(self):
        gate = _Gate()

        async def scenario():
            queue = JobQueue(
                gate,
                metrics=MetricsRegistry(),
                limits=ServiceLimits(queue_limit=2, tenant_quota=8),
            )
            await queue.start()
            for seed in range(2):
                await queue.submit(_spec(seed=seed))
            with pytest.raises(QueueFull):
                await queue.submit(_spec(seed=7))
            gate.event.set()
            await queue.drain()

        _run(scenario())

    def test_quota_frees_up_after_completion(self):
        gate = _Gate()

        async def scenario():
            queue = JobQueue(
                gate,
                metrics=MetricsRegistry(),
                limits=ServiceLimits(tenant_quota=1),
            )
            await queue.start()
            first, _ = await queue.submit(_spec(seed=0))
            gate.event.set()
            await asyncio.wait_for(first.finished.wait(), 30)
            second, joined = await queue.submit(_spec(seed=1))
            assert not joined
            await asyncio.wait_for(second.finished.wait(), 30)
            await queue.drain()
            return first, second

        first, second = _run(scenario())
        assert first.state == "done" and second.state == "done"

    def test_failed_runner_yields_failed_job_not_crash(self):
        gate = _Gate(fail=True)

        async def scenario():
            queue = JobQueue(gate, metrics=MetricsRegistry())
            await queue.start()
            job, _ = await queue.submit(_spec())
            gate.event.set()
            await asyncio.wait_for(job.finished.wait(), 30)
            # The worker survives to run the next job.
            gate.fail = False
            ok_job, _ = await queue.submit(_spec(seed=5))
            await asyncio.wait_for(ok_job.finished.wait(), 30)
            await queue.drain()
            return job, ok_job

        job, ok_job = _run(scenario())
        assert job.state == "failed"
        assert "injected job failure" in job.error
        assert ok_job.state == "done"

    def test_drain_finishes_admitted_work_then_rejects(self):
        gate = _Gate()

        async def scenario():
            queue = JobQueue(gate, metrics=MetricsRegistry())
            await queue.start()
            job, _ = await queue.submit(_spec())
            drainer = asyncio.create_task(queue.drain())
            await asyncio.sleep(0)  # let drain set the flag
            with pytest.raises(ServiceDraining) as excinfo:
                await queue.submit(_spec(seed=8))
            assert excinfo.value.http_status == 503
            gate.event.set()
            await asyncio.wait_for(drainer, 30)
            return job

        job = _run(scenario())
        assert job.state == "done"  # admitted before drain => completed

    def test_cache_hit_jobs_do_not_count_as_executions(self):
        gate = _Gate()

        class _AllCached:
            def contains(self, key: str) -> bool:
                return True

        async def scenario():
            metrics = MetricsRegistry()
            queue = JobQueue(gate, metrics=metrics, cache=_AllCached())
            await queue.start()
            job, _ = await queue.submit(_spec())
            gate.event.set()
            await asyncio.wait_for(job.finished.wait(), 30)
            await queue.drain()
            return job, metrics

        job, metrics = _run(scenario())
        assert job.dedup == "cache"
        assert job.state == "done"
        text = metrics.to_prometheus()
        series = dict(
            line.rsplit(" ", 1)
            for line in text.splitlines()
            if not line.startswith("#") and line
        )
        assert series["repro_service_executions"] == "0"
        assert series['repro_service_dedup{source="cache"}'] == "1"

    def test_bad_limits_rejected(self):
        for kwargs in (
            {"queue_limit": 0},
            {"tenant_quota": 0},
            {"workers": 0},
            {"retry_after_s": 0.0},
        ):
            with pytest.raises(ServiceError):
                ServiceLimits(**kwargs)


class TestJobSchema:
    def _done_job(self):
        gate = _Gate()

        async def scenario():
            queue = JobQueue(gate, metrics=MetricsRegistry())
            await queue.start()
            job, _ = await queue.submit(_spec())
            gate.event.set()
            await asyncio.wait_for(job.finished.wait(), 30)
            await queue.drain()
            return job

        return _run(scenario())

    def test_job_document_round_trips_validation(self):
        job = self._done_job()
        doc = json.loads(json.dumps(job_document(job)))
        assert validate_job_document(doc) == []
        assert doc["schema"] == "repro.service/job"
        assert doc["state"] == "done"
        assert doc["result_ready"] is True
        assert doc["config"]["seed"] == 0

    def test_validator_rejects_mutations(self):
        job = self._done_job()
        base = job_document(job)
        assert validate_job_document("nope") != []
        for mutation in (
            {"schema": "other/schema"},
            {"schema_version": 99},
            {"state": "exploded"},
            {"state": "failed", "error": None},
            {"dedup": "telepathy"},
            {"entries": []},
            {"entries": ["a", "a"]},
            {"clients": 0},
            {"clients": True},
            {"config": None},
            {"result_ready": "yes"},
            {"result_ready": True, "state": "running"},
            {"trace_id": ""},
            {"trace_id": 7},
            {"diagnostics_ready": "no"},
        ):
            doc = {**base, **mutation}
            assert validate_job_document(doc) != [], mutation

    def test_queued_job_document_validates(self):
        spec = _spec()
        from repro.service.jobs import Job

        job = Job(id="job-000001", spec=spec, key=job_key(spec))
        assert validate_job_document(job_document(job)) == []


class TestServiceHelpers:
    def test_execute_matches_direct_run_suite(self):
        # The service's runner must produce the exact suite_to_dict
        # document a direct call produces (mode-independence).
        from repro.core.suite import run_suite, suite_to_dict
        from repro.service.server import ExperimentService

        from repro.service.jobs import Job

        service = ExperimentService(pool_jobs=1)
        spec = _spec()
        via_service = service._execute(
            Job(id="job-000001", spec=spec, key=job_key(spec))
        )
        direct = suite_to_dict(
            run_suite(
                dataclasses.replace(spec.config),
                only=list(spec.entries),
            )
        )
        assert json.dumps(via_service, sort_keys=True) == json.dumps(
            direct, sort_keys=True
        )
