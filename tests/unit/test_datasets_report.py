"""Green500 dataset synthesis and the comparison reporting."""

import pytest

from repro.core.report import Comparison, ComparisonTable
from repro.datasets.green500 import (
    ARCHITECTURE_BANDS,
    amd_leads_x86,
    architecture_summary,
    synthesize_green500,
)


class TestGreen500:
    def test_entry_counts_match_bands(self):
        entries = synthesize_green500(0)
        assert len(entries) == sum(b.n_systems for b in ARCHITECTURE_BANDS)

    def test_ranks_dense_and_sorted(self):
        entries = synthesize_green500(0)
        assert [e.rank for e in entries] == list(range(1, len(entries) + 1))
        effs = [e.efficiency_gflops_w for e in entries]
        assert effs == sorted(effs, reverse=True)

    def test_medians_near_band_medians(self):
        summary = architecture_summary(synthesize_green500(0))
        for band in ARCHITECTURE_BANDS:
            assert summary[band.architecture]["median"] == pytest.approx(
                band.median, rel=0.25
            )

    def test_reproducible(self):
        a = synthesize_green500(5)
        b = synthesize_green500(5)
        assert [e.efficiency_gflops_w for e in a] == [e.efficiency_gflops_w for e in b]

    def test_amd_leads_headline(self):
        # the Fig 1 message must hold across seeds
        for seed in range(5):
            assert amd_leads_x86(synthesize_green500(seed))

    def test_outliers_clipped(self):
        entries = synthesize_green500(0)
        for band in ARCHITECTURE_BANDS:
            vals = [
                e.efficiency_gflops_w
                for e in entries
                if e.architecture == band.architecture
            ]
            iqr = band.q3 - band.q1
            assert max(vals) <= band.q3 + 2 * iqr + 1e-9
            assert min(vals) >= band.q1 - 2 * iqr - 1e-9


class TestReport:
    def test_deviation_and_ok(self):
        c = Comparison("x", 100.0, 103.0, "W", tolerance_rel=0.05)
        assert c.deviation_rel == pytest.approx(0.03)
        assert c.ok

    def test_deviation_fails_outside_band(self):
        assert not Comparison("x", 100.0, 110.0, "W", tolerance_rel=0.05).ok

    def test_zero_paper_value_absolute_convention(self):
        c = Comparison("cv", 0.0, 0.15, "", tolerance_rel=0.2)
        assert c.deviation_rel == pytest.approx(0.15)
        assert c.ok

    def test_table_aggregation(self):
        table = ComparisonTable("demo")
        table.add("a", 1.0, 1.0)
        table.add("b", 1.0, 2.0)
        assert not table.all_ok
        assert [c.quantity for c in table.failures()] == ["b"]

    def test_render_contains_status(self):
        table = ComparisonTable("demo")
        table.add("a", 1.0, 1.0)
        out = table.render()
        assert "demo" in out and "ok" in out
