"""Whole-program flow analysis: fixtures, lattice, cache, baseline, SARIF."""

from __future__ import annotations

import json
import os

import pytest

from repro.lint.engine import lint_paths, parse_module
from repro.lint.flow import FLOW_RULE_IDS, analyze_modules, analyze_paths
from repro.lint.flow.baseline import (
    fingerprint,
    load_baseline,
    split_baselined,
    write_baseline,
)
from repro.lint.flow.lattice import (
    AbsValue,
    Dim,
    binop,
    dim_for_suffix,
    join,
)
from repro.lint.formatters import format_sarif

FIXTURES = os.path.join("tests", "fixtures", "flow")

#: Every seeded true positive in the fixture corpus, by (rule, file, line).
#: DET002 lines sit where the tainted value is *stored into state*, which
#: for taints arriving through a call is inside the callee body.
EXPECTED = {
    ("DIM001", "power_model.py", 13),  # power + time
    ("DIM001", "power_model.py", 17),  # us argument into dt_ns param
    ("DIM002", "power_model.py", 26),  # bare literal 250 into limit_ns
    ("DIM003", "power_model.py", 28),  # cross-module float into now_ns
    ("DET002", "sim_machine.py", 22),  # set-iteration taint via advance()
    ("DIM001", "sim_machine.py", 25),  # energy_j += W * ns (missing rescale)
    ("DET002", "sim_machine.py", 31),  # rng taint via schedule_at()
    ("DIM003", "sim_machine.py", 36),  # float return of latency_ns()
    ("DIM003", "sim_machine.py", 44),  # float into the t_ns local
    ("DIM001", "sim_machine.py", 47),  # ns + us arithmetic
    ("DET002", "sim_machine.py", 50),  # wall-clock into Machine.now_ns
    ("DIM003", "sim_machine.py", 51),  # float jitter into t_ns argument
}


def _run_fixture():
    return analyze_paths([FIXTURES], use_cache=False)


class TestFixtureCorpus:
    def test_every_seeded_bug_is_found(self):
        report = _run_fixture()
        got = {
            (f.rule, os.path.basename(f.path), f.line) for f in report.findings
        }
        assert got == EXPECTED

    def test_all_rules_are_exercised(self):
        report = _run_fixture()
        assert {f.rule for f in report.findings} == FLOW_RULE_IDS

    def test_clean_module_stays_silent(self):
        report = _run_fixture()
        assert not [
            f for f in report.findings if f.path.endswith("clean_model.py")
        ]

    def test_severities(self):
        report = _run_fixture()
        by_rule = {f.rule: f.severity for f in report.findings}
        assert by_rule["DIM002"] == "warning"
        assert by_rule["DIM001"] == "error"
        assert by_rule["DIM003"] == "error"
        assert by_rule["DET002"] == "error"

    def test_taint_messages_carry_source_witness(self):
        report = _run_fixture()
        wall = [
            f
            for f in report.findings
            if f.rule == "DET002" and "wall-clock" in f.message
        ]
        assert wall and all("time.monotonic()" in f.message for f in wall)


class TestLattice:
    def test_same_kind_different_scale_is_a_mismatch(self):
        ns = AbsValue(dim=dim_for_suffix("ns"), rep="int")
        us = AbsValue(dim=dim_for_suffix("us"), rep="int")
        result = binop("add", ns, us)
        assert result.mismatch is not None
        assert "different scale" in result.mismatch

    def test_power_times_time_is_energy(self):
        w = AbsValue(dim=dim_for_suffix("w"), rep="float")
        s = AbsValue(dim=dim_for_suffix("s"), rep="float")
        result = binop("mult", w, s)
        assert result.value.dim == Dim("energy", 1.0)

    def test_scale_constant_numerator_rescales_quotient(self):
        # NS_PER_S / rate_hz is a nanosecond count, not seconds.
        ns_per_s = AbsValue(
            dim=Dim("dimensionless", 1.0), rep="int", const=1e9, scale_const=True
        )
        hz = AbsValue(dim=dim_for_suffix("hz"), rep="float")
        result = binop("div", ns_per_s, hz)
        assert result.value.dim == Dim("time", 1e-9)
        assert result.mismatch is None

    def test_join_widens_factor_not_kind(self):
        ns = AbsValue(dim=dim_for_suffix("ns"))
        us = AbsValue(dim=dim_for_suffix("us"))
        joined = join(ns, us)
        assert joined.dim == Dim("time", None)


class TestCache:
    def test_warm_run_replays_without_reanalysis(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        cold = analyze_paths([FIXTURES])
        assert not cold.cache_hit and cold.findings
        warm = analyze_paths([FIXTURES])
        assert warm.cache_hit
        key = lambda r: sorted((f.rule, f.path, f.line) for f in r.findings)
        assert key(warm) == key(cold)

    def test_source_edit_invalidates(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        src = "def f(t_ns):\n    return t_ns\n"
        first = analyze_modules([parse_module(src, "m.py")])
        assert not first.cache_hit
        edited = analyze_modules([parse_module(src + "\nX = 1\n", "m.py")])
        assert not edited.cache_hit

    def test_cached_run_replays_suppression_usage(self, monkeypatch, tmp_path):
        # A suppression used only by a flow finding must stay "used" on a
        # cache hit, or LINT001 would flag it as stale.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        src = (
            "def f(t_ns, t_us):\n"
            "    return t_ns + t_us  # lint: disable=DIM001\n"
        )
        for _ in range(2):  # cold, then warm
            report = lint_paths_src(src)
            assert [f.rule for f in report.findings] == []
            assert report.suppressed == 1


def lint_paths_src(src: str):
    """Full lint (flow included) of one in-memory module."""
    parsed = parse_module(src, "mem.py")
    flow = analyze_modules([parsed])
    from repro.lint.engine import unused_suppression_findings

    findings = list(flow.findings)
    stale, _ = unused_suppression_findings(parsed, FLOW_RULE_IDS)
    findings.extend(stale)

    class _R:
        pass

    out = _R()
    out.findings = findings
    out.suppressed = flow.suppressed
    return out


class TestBaseline:
    def test_roundtrip_filters_known_findings(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        report = _run_fixture()
        write_baseline(path, report.findings)
        kept, matched = split_baselined(report.findings, load_baseline(path))
        assert kept == [] and matched == len(EXPECTED)

    def test_fingerprint_survives_line_drift_in_witnesses(self):
        report = _run_fixture()
        tainted = next(f for f in report.findings if f.rule == "DET002")
        assert ":_" in fingerprint(tainted)[2]

    def test_new_findings_pass_through(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        report = _run_fixture()
        write_baseline(path, report.findings[:3])
        kept, matched = split_baselined(report.findings, load_baseline(path))
        assert matched == 3 and len(kept) == len(EXPECTED) - 3

    def test_checked_in_baseline_matches_tree(self):
        # The committed baseline must stay empty: the real tree is clean.
        doc = json.load(open("lint-flow.baseline.json"))
        assert doc["findings"] == []


class TestRealTree:
    def test_src_is_clean_beyond_baseline(self):
        report = analyze_paths(
            ["src/repro"], use_cache=False, baseline_path="lint-flow.baseline.json"
        )
        assert report.findings == []

    def test_scales_to_the_whole_package(self):
        report = analyze_paths(["src/repro"], use_cache=False)
        assert report.modules > 100 and report.functions > 500
        assert report.rounds < 20


class TestSarif:
    def test_sarif_log_structure(self):
        report = lint_paths([FIXTURES], flow=True, flow_cache=False)
        log = json.loads(format_sarif(report))
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert FLOW_RULE_IDS <= rule_ids and "LINT001" in rule_ids
        levels = {r["ruleId"]: r["level"] for r in run["results"]}
        assert levels["DIM002"] == "warning" and levels["DIM001"] == "error"
        lines = [
            r["locations"][0]["physicalLocation"]["region"]["startLine"]
            for r in run["results"]
        ]
        assert all(line >= 1 for line in lines)


class TestCli:
    def test_flow_flags_and_exit_code(self, capsys):
        from repro.lint.cli import main

        status = main([FIXTURES, "--flow", "--no-flow-cache", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert status == 1  # seeded errors fail the run
        assert payload["counts_by_rule"]["DIM001"] == 4

    def test_baseline_workflow(self, tmp_path, capsys):
        from repro.lint.cli import main

        baseline = str(tmp_path / "b.json")
        # --select keeps the (intentionally buggy) fixtures from also
        # tripping base rules; only the flow findings are exercised here.
        common = [FIXTURES, "--select", "EXC001", "--baseline", baseline,
                  "--no-flow-cache", "--format", "json"]
        assert main(common + ["--update-baseline"]) == 0
        capsys.readouterr()
        # Re-run against the recorded baseline: nothing new, exit 0.
        assert main(common) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []

    def test_update_baseline_requires_baseline(self, capsys):
        from repro.lint.cli import main

        assert main([FIXTURES, "--update-baseline"]) == 2
