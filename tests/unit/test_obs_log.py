"""Structured logging: correlation envelope, sinks, schema.

Records must carry the trace correlation of the bound tracer (trace_id
plus the innermost open span id), the in-memory tail must stay bounded,
and the ``repro.obs/log`` export must pass ``validate_log_document``
for good documents and name every defect in bad ones.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import Obs
from repro.obs.log import StructuredLogger, log_document
from repro.obs.schema import (
    LOG_SCHEMA_ID,
    sniff_schema,
    validate_document,
    validate_log_document,
)
from repro.obs.tracer import SpanTracer


class FakeClock:
    def __init__(self) -> None:
        self.t = 1_000_000

    def __call__(self) -> int:
        self.t += 1_000
        return self.t


def make_logger(**kw) -> StructuredLogger:
    return StructuredLogger(clock=FakeClock(), **kw)


def test_record_envelope_and_free_fields():
    log = make_logger()
    rec = log.info("job.admitted", job_id="job-000001", tenant="t0")
    assert rec["level"] == "info"
    assert rec["event"] == "job.admitted"
    assert rec["job_id"] == "job-000001"
    assert rec["tenant"] == "t0"
    assert rec["t_wall_ns"] >= 0
    # Unbound logger: correlation fields present but null.
    assert rec["trace_id"] is None and rec["span_id"] is None
    assert log.records() == [rec]


def test_trace_correlation_from_bound_tracer():
    clock = FakeClock()
    tracer = SpanTracer(clock=clock, trace_id="abc123")
    log = StructuredLogger(tracer=tracer, clock=clock)
    with tracer.span("outer"):
        rec = log.info("inside")
    outside = log.info("after")
    assert rec["trace_id"] == "abc123"
    assert rec["span_id"] == 1  # the open span's sequence id
    assert outside["span_id"] is None


def test_level_and_field_validation():
    log = make_logger()
    with pytest.raises(ConfigurationError):
        log.log("loud", "event")
    with pytest.raises(ConfigurationError):
        log.log("info", "")
    with pytest.raises(ConfigurationError):
        log.info("event", trace_id="spoofed")  # reserved envelope key


def test_tail_bounds_memory_and_counts_drops():
    log = make_logger(max_records=2)
    for i in range(4):
        log.debug(f"e{i}")
    assert len(log) == 2
    assert log.dropped == 2
    assert [r["event"] for r in log.records()] == ["e2", "e3"]


def test_stream_sink_emits_sorted_json_lines():
    stream = io.StringIO()
    log = make_logger(stream=stream)
    log.warning("pool.task.failed", task="t1", kind="crash")
    line = stream.getvalue().strip()
    parsed = json.loads(line)
    assert parsed["event"] == "pool.task.failed"
    assert line == json.dumps(parsed, sort_keys=True)


def test_path_sink_appends_and_close_is_idempotent(tmp_path):
    path = tmp_path / "service.jsonl"
    log = make_logger(path=str(path))
    log.info("one")
    log.info("two")
    log.close()
    log.close()
    lines = path.read_text().splitlines()
    assert [json.loads(ln)["event"] for ln in lines] == ["one", "two"]


def test_stream_and_path_are_exclusive(tmp_path):
    with pytest.raises(ConfigurationError):
        StructuredLogger(stream=io.StringIO(), path=str(tmp_path / "x"))


def test_obs_bundle_wires_logger_to_tracer():
    obs = Obs(trace_id="deadbeef")
    with obs.tracer.span("suite"):
        obs.log.info("tick")
    doc = obs.log_document()
    assert doc["records"][0]["trace_id"] == "deadbeef"


# ---------------------------------------------------------------------------
# schema
# ---------------------------------------------------------------------------


def test_log_document_validates_and_round_trips():
    log = make_logger()
    log.info("a", n=1)
    log.error("b")
    doc = log_document(log.records())
    assert validate_log_document(doc) == []
    assert sniff_schema(doc) == LOG_SCHEMA_ID
    rt = json.loads(json.dumps(doc))
    assert validate_document(rt) == []
    assert rt == doc


@pytest.mark.parametrize(
    "mutate",
    [
        {"schema": "repro.obs/nope"},
        {"schema_version": 99},
        {"pid": "not-an-int"},
        {"records": "not-a-list"},
        {"records": [{"level": "loud", "event": "e", "t_wall_ns": 0, "pid": 1}]},
        {"records": [{"level": "info", "event": "", "t_wall_ns": 0, "pid": 1}]},
        {"records": [{"level": "info", "event": "e", "pid": 1}]},
        {"records": [17]},
    ],
)
def test_log_validator_rejects_defects(mutate):
    log = make_logger()
    log.info("ok")
    doc = log_document(log.records())
    doc.update(mutate)
    assert validate_log_document(doc) != []
