"""Seeded RNG fan-out: reproducibility and stream independence."""

import numpy as np

from repro.sim.rng import RngFactory


class TestRngFactory:
    def test_same_seed_same_stream(self):
        a = RngFactory(7).child("x").random(5)
        b = RngFactory(7).child("x").random(5)
        assert np.array_equal(a, b)

    def test_different_names_different_streams(self):
        f = RngFactory(7)
        a = f.child("x").random(5)
        b = f.child("y").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_different_streams(self):
        a = RngFactory(1).child("x").random(5)
        b = RngFactory(2).child("x").random(5)
        assert not np.array_equal(a, b)

    def test_child_is_fresh_generator(self):
        f = RngFactory(7)
        first = f.child("x").random(3)
        again = f.child("x").random(3)
        assert np.array_equal(first, again)

    def test_spawn_derives_new_factory(self):
        f = RngFactory(7)
        sub = f.spawn("rep0")
        assert isinstance(sub, RngFactory)
        assert sub.seed != f.seed

    def test_spawn_deterministic(self):
        assert RngFactory(7).spawn("a").seed == RngFactory(7).spawn("a").seed

    def test_adding_component_does_not_shift_existing(self):
        # The property that motivates name-keyed streams: a new consumer
        # must not perturb existing ones.
        f = RngFactory(7)
        before = f.child("existing").random(4)
        f.child("new-component").random(100)
        after = f.child("existing").random(4)
        assert np.array_equal(before, after)
