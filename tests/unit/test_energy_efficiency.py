"""Energy-to-solution frequency sweep."""

import pytest

from repro.core.energy_efficiency import EnergyEfficiencyExperiment
from repro.core.experiment import ExperimentConfig
from repro.workloads import FIRESTARTER, SPIN, STREAM_TRIAD


@pytest.fixture(scope="module")
def result():
    exp = EnergyEfficiencyExperiment(ExperimentConfig(seed=9))
    return exp.measure()


class TestEnergyEfficiency:
    def test_compute_bound_prefers_high_frequency(self, result):
        exp = EnergyEfficiencyExperiment()
        assert exp.FREQS_GHZ[-1] == result.optimal_freq_ghz("spin")

    def test_memory_bound_prefers_low_frequency(self, result):
        assert result.optimal_freq_ghz("stream_triad") == 1.5

    def test_compute_runtime_scales_inversely(self, result):
        pts = result.of_workload("spin")
        assert pts[0].runtime_s == pytest.approx(
            pts[-1].runtime_s * 2.5 / 1.5, rel=0.01
        )

    def test_memory_runtime_nearly_flat(self, result):
        pts = result.of_workload("stream_triad")
        assert pts[0].runtime_s < pts[-1].runtime_s * 1.15

    def test_edp_distinct_from_energy(self, result):
        # EDP weights delay: it never prefers a *lower* frequency than
        # plain energy does
        e_opt = result.optimal_freq_ghz("spin", "energy_j")
        edp_opt = result.optimal_freq_ghz("spin", "edp")
        assert edp_opt >= e_opt

    def test_unknown_workload(self, result):
        with pytest.raises(KeyError):
            result.optimal_freq_ghz("nonexistent")

    def test_firestarter_throttle_limits_the_sweep(self):
        exp = EnergyEfficiencyExperiment(ExperimentConfig(seed=9))
        res = exp.measure(workloads=(FIRESTARTER,), n_cores=64)
        pts = res.of_workload("firestarter")
        # requesting 2.5 lands at 2.1 (one thread/core): runtime at the
        # top two requested frequencies is nearly identical
        assert pts[-1].runtime_s <= pts[1].runtime_s * 1.01
