"""Serialization round-trips."""

import numpy as np
import pytest

from repro.core.report import Comparison, ComparisonTable
from repro.core.serialize import (
    comparison_from_dict,
    comparison_to_dict,
    dump_json,
    load_json,
    series_to_dict,
    table_from_dict,
    table_to_dict,
)


class TestComparisonSerialization:
    def test_roundtrip(self):
        comp = Comparison("freq", 2.0, 2.01, "GHz", 0.02)
        restored = comparison_from_dict(comparison_to_dict(comp))
        assert restored == comp

    def test_derived_fields_present(self):
        d = comparison_to_dict(Comparison("x", 100.0, 105.0, "W", 0.02))
        assert d["deviation_rel"] == pytest.approx(0.05)
        assert d["ok"] is False


class TestTableSerialization:
    def _table(self):
        table = ComparisonTable("Fig X")
        table.add("a", 1.0, 1.0)
        table.add("b", 2.0, 2.1, "W", 0.1)
        return table

    def test_roundtrip(self):
        table = self._table()
        restored = table_from_dict(table_to_dict(table))
        assert restored.experiment == table.experiment
        assert restored.comparisons == table.comparisons
        assert restored.all_ok == table.all_ok

    def test_verdict_in_dict(self):
        assert table_to_dict(self._table())["all_ok"] is True

    def test_unknown_schema_rejected(self):
        data = table_to_dict(self._table())
        data["schema_version"] = 99
        with pytest.raises(ValueError):
            table_from_dict(data)


class TestFileIo:
    def test_dump_and_load(self, tmp_path):
        table = ComparisonTable("demo")
        table.add("q", 1.0, 1.0)
        path = tmp_path / "table.json"
        dump_json(table_to_dict(table), str(path))
        restored = table_from_dict(load_json(str(path)))
        assert restored.experiment == "demo"

    def test_series_serialization(self):
        d = series_to_dict("latencies", np.array([1.5, 2.5]), unit="us")
        assert d["values"] == [1.5, 2.5]
        assert d["n"] == 2
        assert d["metadata"] == {"unit": "us"}

    def test_series_handles_plain_lists(self):
        assert series_to_dict("x", [1, 2, 3])["n"] == 3
