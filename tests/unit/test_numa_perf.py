"""NPS-mode performance trade-offs."""

import pytest

from repro.iodie.fclk import FclkController
from repro.memory.numa_perf import NpsPerformanceModel
from repro.topology import NumaConfig, build_topology
from repro.units import ghz


@pytest.fixture
def model_and_fclk():
    topo = build_topology("EPYC 7502", n_packages=1)
    io = topo.packages[0].io_die
    io.memclk_hz = ghz(1.6)
    return NpsPerformanceModel(), FclkController(io)


class TestNpsBandwidth:
    def test_nps1_ceiling_exceeds_nps4(self, model_and_fclk):
        model, fc = model_and_fclk
        nps4 = model.node_bandwidth(NumaConfig.NPS4, 16, ghz(2.5), fc)
        nps1 = model.node_bandwidth(NumaConfig.NPS1, 16, ghz(2.5), fc)
        assert nps1.bandwidth_gbs > 2 * nps4.bandwidth_gbs

    def test_nps4_matches_fig5_model(self, model_and_fclk):
        model, fc = model_and_fclk
        from repro.memory.bandwidth import BandwidthModel

        direct = BandwidthModel().node_bandwidth_gbs(4, ghz(2.5), fc)
        via_nps = model.node_bandwidth(NumaConfig.NPS4, 4, ghz(2.5), fc)
        assert via_nps.bandwidth_gbs == pytest.approx(direct.bandwidth_gbs)

    def test_saturation_point_scales_with_mode(self, model_and_fclk):
        model, fc = model_and_fclk
        sat4 = model.node_bandwidth(NumaConfig.NPS4, 1, ghz(2.5), fc).saturating_cores
        sat1 = model.node_bandwidth(NumaConfig.NPS1, 1, ghz(2.5), fc).saturating_cores
        assert sat1 > sat4

    def test_single_core_mode_independent(self, model_and_fclk):
        model, fc = model_and_fclk
        one4 = model.node_bandwidth(NumaConfig.NPS4, 1, ghz(2.5), fc).bandwidth_gbs
        one1 = model.node_bandwidth(NumaConfig.NPS1, 1, ghz(2.5), fc).bandwidth_gbs
        assert one1 == pytest.approx(one4)


class TestNpsLatency:
    def test_nps4_lowest_latency(self, model_and_fclk):
        model, fc = model_and_fclk
        lats = {
            nps: model.local_latency_ns(nps, ghz(2.5), fc)
            for nps in (NumaConfig.NPS4, NumaConfig.NPS2, NumaConfig.NPS1)
        }
        assert lats[NumaConfig.NPS4] < lats[NumaConfig.NPS2] < lats[NumaConfig.NPS1]

    def test_nps4_matches_fig5_anchor(self, model_and_fclk):
        model, fc = model_and_fclk
        assert model.local_latency_ns(NumaConfig.NPS4, ghz(2.5), fc) == pytest.approx(
            92.0, abs=0.5
        )


class TestOperatingPoint:
    def test_summary_consistency(self, model_and_fclk):
        model, fc = model_and_fclk
        op = model.operating_point(NumaConfig.NPS1, 8, fc)
        assert op.nps is NumaConfig.NPS1
        assert op.bandwidth_gbs > 0
        assert op.latency_ns > 90.0

    def test_tradeoff_exists(self, model_and_fclk):
        # the whole point: NPS1 buys bandwidth with latency
        model, fc = model_and_fclk
        op1 = model.operating_point(NumaConfig.NPS1, 16, fc)
        op4 = model.operating_point(NumaConfig.NPS4, 16, fc)
        assert op1.bandwidth_gbs > op4.bandwidth_gbs
        assert op1.latency_ns > op4.latency_ns
