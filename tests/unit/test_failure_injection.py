"""Failure injection: invalid configurations and misuse must fail loudly."""

import numpy as np
import pytest

from repro.core.experiment import ExperimentConfig
from repro.errors import (
    ConfigurationError,
    MeasurementError,
    MsrError,
    PStateError,
    SysfsError,
)
from repro.machine import Machine
from repro.units import ghz


class TestMachineConstruction:
    def test_unknown_sku(self):
        with pytest.raises(ConfigurationError, match="known:"):
            Machine("EPYC 9754")

    def test_unknown_dram_grade(self):
        with pytest.raises(ConfigurationError):
            Machine("EPYC 7502", dram="DDR5-4800")

    def test_invalid_package_count(self):
        from repro.errors import TopologyError

        with pytest.raises(TopologyError):
            Machine("EPYC 7502", n_packages=4)


class TestInstrumentMisuse:
    def test_msr_read_of_random_address(self, machine):
        with pytest.raises(MsrError):
            machine.msr.read(0, 0x12345)

    def test_msr_write_to_energy_counter(self, machine):
        from repro.msr.definitions import MSR_PKG_ENERGY_STAT

        with pytest.raises(MsrError):
            machine.msr.write(0, MSR_PKG_ENERGY_STAT, 0)

    def test_overtrimmed_measurement_window(self, machine):
        from repro.instruments.timeline import inner_window_mean

        rec = machine.measure(1.0)  # 20 samples over 1 s
        with pytest.raises(MeasurementError):
            inner_window_mean(rec.ac, skip_head_s=0.6, skip_tail_s=0.6)

    def test_empty_ac_series_rejected(self):
        from repro.instruments.timeline import PowerSeries

        empty = PowerSeries(np.array([]), np.array([]))
        with pytest.raises(MeasurementError):
            empty.mean_w()


class TestOsMisuse:
    def test_setspeed_off_grid(self, machine):
        with pytest.raises(PStateError):
            machine.os.set_frequency(0, ghz(2.35))

    def test_sysfs_write_garbage_to_online(self, machine):
        with pytest.raises(SysfsError):
            machine.os.sysfs.write("/sys/devices/system/cpu/cpu1/online", "yes")

    def test_run_on_unknown_cpu(self, machine):
        from repro.errors import TopologyError
        from repro.workloads import SPIN

        with pytest.raises(TopologyError):
            machine.os.run(SPIN, [999])

    def test_interrupt_double_registration(self, machine):
        machine.os.register_interrupt("dup", 0, 10.0)
        with pytest.raises(ConfigurationError):
            machine.os.register_interrupt("dup", 1, 10.0)

    def test_tracepoint_from_old_kernel(self, machine):
        from repro.oslayer.tracing import TraceBuffer

        with pytest.raises(ConfigurationError):
            TraceBuffer({"sched_wake_idle_without_ipi"})


class TestExperimentConfig:
    def test_scaled_has_floor(self):
        cfg = ExperimentConfig(scale=1e-9)
        assert cfg.scaled(100_000, minimum=25) == 25

    def test_scaled_full_scale_identity(self):
        cfg = ExperimentConfig(scale=1.0)
        assert cfg.scaled(100_000) == 100_000

    def test_with_scale_copies(self):
        cfg = ExperimentConfig(scale=1.0)
        assert cfg.with_scale(0.5).scale == 0.5
        assert cfg.scale == 1.0


class TestExtremeNoise:
    def test_meter_with_extreme_band_still_finite(self):
        from dataclasses import replace

        from repro.instruments.lmg670 import Lmg670
        from repro.power.calibration import CALIBRATION
        from repro.sim.rng import RngFactory

        cal = replace(CALIBRATION, ac_meter_gain_error=0.5, ac_meter_offset_error_w=50.0)
        meter = Lmg670(RngFactory(0).child("x"), cal)
        series = meter.sample_constant(100.0, 10.0)
        assert np.isfinite(series.power_w).all()

    def test_wakeup_outlier_storm(self):
        from dataclasses import replace

        from repro.cstate.wakeup import WakeupModel
        from repro.power.calibration import CALIBRATION

        cal = replace(CALIBRATION, wake_outlier_prob=1.0)
        model = WakeupModel(cal, np.random.default_rng(0))
        samples = model.sample_ns("C2", ghz(2.5), n=100)
        centre = model.nominal_latency_ns("C2", ghz(2.5))
        assert (samples > centre).all()  # every sample inflated, none lost
