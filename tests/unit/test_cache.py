"""The content-addressed result cache: keys, store, LRU, stats."""

from __future__ import annotations

import glob
import json
import multiprocessing
import os
import time

import pytest

from repro.cache import (
    CacheStats,
    ResultCache,
    cache_key,
    config_fingerprint,
    default_cache_dir,
    source_digest,
)
from repro.cache.store import TMP_SWEEP_AGE_S
from repro.core.experiment import ExperimentConfig
from repro.errors import CacheError


def _stress_put(root: str, worker_id: int, count: int) -> None:
    """One stress-test writer process: ``count`` distinct puts."""
    cache = ResultCache(root, max_bytes=1 << 30)
    for i in range(count):
        key = f"{worker_id:02d}{i:04d}".ljust(64, "0")
        cache.put(key, {"worker": worker_id, "i": i, "pad": "x" * 64})


class TestCacheKey:
    def test_stable_for_identical_inputs(self):
        cfg = ExperimentConfig(seed=1, scale=0.02)
        assert cache_key("fig3", cfg) == cache_key("fig3", cfg)

    def test_sensitive_to_every_ingredient(self):
        cfg = ExperimentConfig(seed=1, scale=0.02)
        base = cache_key("fig3", cfg, version="1.0", source="s")
        assert base != cache_key("fig5", cfg, version="1.0", source="s")
        assert base != cache_key(
            "fig3", ExperimentConfig(seed=2, scale=0.02), version="1.0", source="s"
        )
        assert base != cache_key(
            "fig3", ExperimentConfig(seed=1, scale=0.04), version="1.0", source="s"
        )
        assert base != cache_key(
            "fig3", ExperimentConfig(seed=1, scale=0.02, sku="EPYC 7302"),
            version="1.0", source="s",
        )
        assert base != cache_key(
            "fig3", ExperimentConfig(seed=1, scale=0.02, backend="batched"),
            version="1.0", source="s",
        )
        assert base != cache_key("fig3", cfg, version="2.0", source="s")
        assert base != cache_key("fig3", cfg, version="1.0", source="t")

    def test_fingerprint_covers_all_config_fields(self):
        fp = config_fingerprint(ExperimentConfig(seed=7))
        assert set(fp) == {
            "seed", "scale", "interval_s", "sku", "n_packages", "backend"
        }

    def test_fingerprint_rejects_opaque_objects(self):
        with pytest.raises(TypeError):
            config_fingerprint(object())

    def test_source_digest_is_memoized_and_hexlike(self):
        digest = source_digest()
        assert digest == source_digest()
        assert len(digest) == 64
        int(digest, 16)  # raises if not hex


class TestDefaultDir:
    def test_env_override_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "x"))
        assert default_cache_dir() == str(tmp_path / "x")
        cache = ResultCache()
        assert cache.root == str(tmp_path / "x")

    def test_falls_back_to_user_cache(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.delenv("XDG_CACHE_HOME", raising=False)
        assert default_cache_dir().endswith(os.path.join(".cache", "repro-zen2"))


class TestStore:
    def test_round_trip_and_stats(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        key = "ab" + "0" * 62
        assert cache.get(key) is None
        doc = {"experiment": "fig3", "values": [1.5, 2.5]}
        cache.put(key, doc)
        assert cache.get(key) == doc
        assert cache.contains(key)
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.stores) == (1, 1, 1)
        assert stats.lookups == 2
        assert stats.hit_rate == 0.5
        assert stats.get_s >= 0.0 and stats.put_s >= 0.0
        assert "1 hit / 1 miss" in stats.render()

    def test_writes_are_atomic_no_temp_residue(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        for i in range(5):
            cache.put(f"{i:02d}" + "0" * 62, {"i": i})
        assert glob.glob(str(tmp_path / "c" / "**" / "*.tmp.*"), recursive=True) == []

    def test_corrupt_object_degrades_to_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        key = "cd" + "0" * 62
        cache.put(key, {"ok": True})
        with open(cache._object_path(key), "w") as fh:
            fh.write("{not json")
        assert cache.get(key) is None
        assert cache.stats.misses == 1
        # the stale index entry is dropped, so accounting stays truthful
        assert key not in cache.keys()

    def test_lru_eviction_prefers_least_recently_used(self, tmp_path):
        def doc(tag: str) -> dict:
            return {"tag": tag, "pad": "x" * 100}

        size = len(json.dumps(doc("a"), sort_keys=True, indent=2)) + 1
        cache = ResultCache(str(tmp_path / "c"), max_bytes=2 * size)
        key_a, key_b, key_c = ("aa" + "0" * 62, "bb" + "0" * 62, "cc" + "0" * 62)
        cache.put(key_a, doc("a"))
        cache.put(key_b, doc("b"))
        assert cache.get(key_a) is not None  # refresh a: b is now LRU
        cache.put(key_c, doc("c"))
        assert cache.stats.evictions == 1
        assert not cache.contains(key_b)
        assert cache.contains(key_a) and cache.contains(key_c)
        assert cache.size_bytes() <= 2 * size

    def test_clear_empties_the_store(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        key = "ef" + "0" * 62
        cache.put(key, {"x": 1})
        cache.clear()
        assert not cache.contains(key)
        assert cache.keys() == []
        assert cache.size_bytes() == 0

    def test_bad_max_bytes_rejected(self, tmp_path):
        with pytest.raises(CacheError):
            ResultCache(str(tmp_path / "c"), max_bytes=0)

    def test_index_survives_reopen(self, tmp_path):
        root = str(tmp_path / "c")
        key = "ab" + "1" * 62
        ResultCache(root).put(key, {"x": 2})
        reopened = ResultCache(root)
        assert reopened.get(key) == {"x": 2}
        assert reopened.keys() == [key]

    def test_crash_mid_store_orphan_swept_by_eviction(self, tmp_path):
        """A crashed writer's stale ``*.tmp.<pid>`` file is removed by the
        next eviction sweep — the exact promise of the module docstring."""
        cache = ResultCache(str(tmp_path / "c"), max_bytes=400)
        key = "ab" + "0" * 62
        # Simulate a writer that died between open() and os.replace().
        orphan = cache._object_path(key) + ".tmp.99999"
        os.makedirs(os.path.dirname(orphan), exist_ok=True)
        with open(orphan, "w") as fh:
            fh.write('{"torn":')
        stale = time.time() - TMP_SWEEP_AGE_S - 60.0  # lint: disable=DET001 (ages a fixture file)
        os.utime(orphan, (stale, stale))
        # A fresh temp file must survive: it may belong to a live writer.
        fresh = cache._object_path("cd" + "0" * 62) + ".tmp.88888"
        os.makedirs(os.path.dirname(fresh), exist_ok=True)
        with open(fresh, "w") as fh:
            fh.write('{"live":')
        for i in range(8):  # exceed max_bytes so eviction actually runs
            cache.put(f"{i:02d}" + "1" * 62, {"i": i, "pad": "x" * 100})
        assert cache.stats.evictions > 0
        assert not os.path.exists(orphan)
        assert os.path.exists(fresh)

    def test_clear_sweeps_stale_tmp(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        cache.put("ab" + "0" * 62, {"x": 1})
        orphan = os.path.join(cache.root, "index.json.tmp.77777")
        with open(orphan, "w") as fh:
            fh.write("{")
        stale = time.time() - TMP_SWEEP_AGE_S - 60.0  # lint: disable=DET001 (ages a fixture file)
        os.utime(orphan, (stale, stale))
        cache.clear()
        assert not os.path.exists(orphan)

    def test_concurrent_writers_lose_no_index_entries(self, tmp_path):
        """Lost-update regression: processes sharing one cache root must
        never drop each other's index entries (the unlocked read-modify-
        write race made eviction accounting drift silently)."""
        root = str(tmp_path / "shared")
        n_workers, per_worker = 4, 25
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_stress_put, args=(root, w, per_worker))
            for w in range(n_workers)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(60.0)
            assert p.exitcode == 0
        reopened = ResultCache(root, max_bytes=1 << 30)
        assert len(reopened.keys()) == n_workers * per_worker
        # Every indexed size must match the object actually on disk.
        index = reopened._load_index()
        for key, entry in index.entries.items():
            assert os.path.getsize(reopened._object_path(key)) == entry.size

    def test_stats_as_dict_shape(self):
        doc = CacheStats(hits=3, misses=1).as_dict()
        assert doc["hits"] == 3 and doc["misses"] == 1
        assert doc["hit_rate"] == 0.75
        assert set(doc) == {
            "hits", "misses", "stores", "evictions", "hit_rate", "get_s", "put_s",
        }
