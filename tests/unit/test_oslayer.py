"""OS layer: sysfs tree, cpufreq, hotplug, kernel placement helpers."""

import pytest

from repro.errors import ConfigurationError, PStateError, SysfsError
from repro.oslayer.cpufreq import Governor
from repro.units import ghz
from repro.workloads import SPIN


class TestSysfs:
    def test_online_read(self, machine):
        assert machine.os.sysfs.read("/sys/devices/system/cpu/cpu0/online") == "1"

    def test_online_write_offline(self, machine):
        machine.os.sysfs.write("/sys/devices/system/cpu/cpu5/online", "0")
        assert not machine.topology.thread(5).online
        assert machine.os.sysfs.read("/sys/devices/system/cpu/cpu5/online") == "0"

    def test_invalid_online_value(self, machine):
        with pytest.raises(SysfsError):
            machine.os.sysfs.write("/sys/devices/system/cpu/cpu5/online", "2")

    def test_unknown_path(self, machine):
        with pytest.raises(SysfsError):
            machine.os.sysfs.read("/sys/devices/system/cpu/cpu0/bogus")

    def test_unknown_cpu(self, machine):
        with pytest.raises(SysfsError):
            machine.os.sysfs.read("/sys/devices/system/cpu/cpu999/online")

    def test_non_cpu_path(self, machine):
        with pytest.raises(SysfsError):
            machine.os.sysfs.read("/proc/cpuinfo")

    def test_governor_read_write(self, machine):
        path = "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor"
        assert machine.os.sysfs.read(path) == "userspace"
        machine.os.sysfs.write(path, "performance")
        assert machine.os.sysfs.read(path) == "performance"

    def test_setspeed_in_khz(self, machine):
        base = "/sys/devices/system/cpu/cpu0/cpufreq"
        machine.os.sysfs.write(f"{base}/scaling_setspeed", "2200000")
        assert machine.topology.thread(0).requested_freq_hz == ghz(2.2)

    def test_setspeed_invalid_string(self, machine):
        with pytest.raises(SysfsError):
            machine.os.sysfs.write(
                "/sys/devices/system/cpu/cpu0/cpufreq/scaling_setspeed", "fast"
            )

    def test_available_frequencies(self, machine):
        out = machine.os.sysfs.read(
            "/sys/devices/system/cpu/cpu0/cpufreq/scaling_available_frequencies"
        )
        assert out == "1500000 2200000 2500000"

    def test_cur_freq_reflects_applied(self, machine):
        machine.os.run(SPIN, [0])
        machine.os.set_frequency(0, ghz(2.5))
        out = machine.os.sysfs.read(
            "/sys/devices/system/cpu/cpu0/cpufreq/scaling_cur_freq"
        )
        assert out == "2500000"

    def test_cpuidle_attributes(self, machine):
        base = "/sys/devices/system/cpu/cpu0/cpuidle"
        assert machine.os.sysfs.read(f"{base}/state1/name") == "C1"
        assert machine.os.sysfs.read(f"{base}/state2/latency") == "400"
        assert machine.os.sysfs.read(f"{base}/state1/latency") == "1"
        assert machine.os.sysfs.read(f"{base}/state2/disable") == "0"

    def test_cpuidle_disable_roundtrip(self, machine):
        path = "/sys/devices/system/cpu/cpu3/cpuidle/state2/disable"
        machine.os.sysfs.write(path, "1")
        assert machine.os.sysfs.read(path) == "1"
        assert machine.topology.thread(3).effective_cstate == "C1"
        machine.os.sysfs.write(path, "0")
        assert machine.topology.thread(3).effective_cstate == "C2"

    def test_cpuidle_readonly_attributes(self, machine):
        with pytest.raises(SysfsError):
            machine.os.sysfs.write(
                "/sys/devices/system/cpu/cpu0/cpuidle/state1/latency", "5"
            )

    def test_state0_disable_rejected(self, machine):
        with pytest.raises(SysfsError):
            machine.os.sysfs.write(
                "/sys/devices/system/cpu/cpu0/cpuidle/state0/disable", "1"
            )

    def test_out_of_range_state(self, machine):
        with pytest.raises(SysfsError):
            machine.os.sysfs.read("/sys/devices/system/cpu/cpu0/cpuidle/state3/name")


class TestCpufreq:
    def test_userspace_setspeed(self, machine):
        machine.os.set_frequency(0, ghz(2.2))
        assert machine.topology.thread(0).requested_freq_hz == ghz(2.2)

    def test_setspeed_requires_userspace(self, machine):
        policy = machine.os.cpufreq_policy(0)
        policy.set_governor("performance")
        with pytest.raises(ConfigurationError):
            policy.set_speed(ghz(1.5))

    def test_performance_governor_pins_max(self, machine):
        machine.os.cpufreq_policy(0).set_governor("performance")
        assert machine.topology.thread(0).requested_freq_hz == ghz(2.5)

    def test_powersave_governor_pins_min(self, machine):
        machine.os.cpufreq_policy(0).set_governor("powersave")
        assert machine.topology.thread(0).requested_freq_hz == ghz(1.5)

    def test_unknown_governor(self, machine):
        with pytest.raises(ConfigurationError, match="userspace"):
            machine.os.cpufreq_policy(0).set_governor("ondemand-ng")

    def test_off_grid_frequency_rejected(self, machine):
        with pytest.raises(PStateError):
            machine.os.set_frequency(0, ghz(2.3))

    def test_governor_enum_values(self, machine):
        assert Governor("userspace") is Governor.USERSPACE

    def test_set_all_frequencies(self, machine):
        machine.os.set_all_frequencies(ghz(2.2))
        assert all(
            t.requested_freq_hz == ghz(2.2) for t in machine.topology.threads()
        )


class TestHotplug:
    def test_offline_removes_workload(self, machine):
        machine.os.run(SPIN, [5])
        machine.os.sysfs.write("/sys/devices/system/cpu/cpu5/online", "0")
        assert machine.topology.thread(5).workload is None

    def test_cpu0_cannot_offline(self, machine):
        with pytest.raises(ConfigurationError):
            machine.os.hotplug.set_offline(0)

    def test_offline_idempotent(self, machine):
        machine.os.hotplug.set_offline(5)
        machine.os.hotplug.set_offline(5)
        assert not machine.topology.thread(5).online

    def test_online_idempotent(self, machine):
        machine.os.hotplug.set_online(5)
        assert machine.topology.thread(5).online

    def test_run_on_offline_cpu_rejected(self, machine):
        machine.os.hotplug.set_offline(5)
        with pytest.raises(ConfigurationError):
            machine.os.run(SPIN, [5])


class TestKernelPlacement:
    def test_cpus_of_ccx(self, machine):
        cpus = machine.os.cpus_of_ccx(0)
        assert len(cpus) == 4
        cores = {machine.topology.thread(c).core.ccx.global_index for c in cpus}
        assert cores == {0}

    def test_cpus_of_ccx_with_smt(self, machine):
        cpus = machine.os.cpus_of_ccx(0, smt=True)
        assert len(cpus) == 8

    def test_unknown_ccx(self, machine):
        with pytest.raises(ConfigurationError):
            machine.os.cpus_of_ccx(99)

    def test_first_thread_cpus(self, machine):
        cpus = machine.os.first_thread_cpus()
        assert len(cpus) == 64
        assert all(machine.topology.thread(c).smt_index == 0 for c in cpus)

    def test_compact_cpus_fill_ccx_first(self, machine):
        cpus = machine.os.compact_cpus(6)
        ccxs = [machine.topology.thread(c).core.ccx.global_index for c in cpus]
        assert ccxs == [0, 0, 0, 0, 1, 1]

    def test_compact_cpus_too_many(self, machine):
        with pytest.raises(ConfigurationError):
            machine.os.compact_cpus(1000)

    def test_stop_all(self, machine):
        machine.os.run(SPIN, [0, 1, 2])
        machine.os.stop()
        assert all(t.workload is None for t in machine.topology.threads())


class TestPerf:
    def test_active_thread_reports_applied_frequency(self, machine):
        machine.os.run(SPIN, [0])
        machine.os.set_frequency(0, ghz(2.2))
        f = machine.os.perf.mean_freq_hz(0, count=5)
        assert f == pytest.approx(ghz(2.2), rel=1e-3)

    def test_idle_thread_below_60k_cycles(self, machine):
        samples = machine.os.perf.sample([7], 1.0, 5)
        assert all(row[0].cycles < 60_000 for row in samples)

    def test_offline_thread_reports_zero(self, machine):
        machine.os.hotplug.set_offline(5)
        samples = machine.os.perf.sample([5], 1.0, 2)
        assert all(row[0].cycles == 0 for row in samples)

    def test_ipc_reported_per_thread(self, machine):
        machine.os.run(SPIN, [0])
        machine.os.set_frequency(0, ghz(2.5))
        sample = machine.os.perf.sample([0], 1.0, 1)[0][0]
        assert sample.ipc == pytest.approx(SPIN.ipc_1t, rel=0.01)

    def test_sample_shape(self, machine):
        out = machine.os.perf.sample([0, 1, 2], 0.5, 4)
        assert len(out) == 4
        assert len(out[0]) == 3
        assert out[0][0].interval_s == 0.5
