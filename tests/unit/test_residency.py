"""C-state residency accounting through sysfs (cpuidle time/usage)."""

import pytest

from repro.errors import SysfsError
from repro.units import ghz
from repro.workloads import SPIN


def _time_us(machine, cpu, state_idx):
    return int(
        machine.os.sysfs.read(
            f"/sys/devices/system/cpu/cpu{cpu}/cpuidle/state{state_idx}/time"
        )
    )


class TestResidency:
    def test_idle_thread_accrues_c2_time(self, machine):
        machine.measure(10.0)
        assert _time_us(machine, 3, 2) == pytest.approx(10_000_000, rel=0.01)
        assert _time_us(machine, 3, 1) == 0

    def test_active_thread_accrues_c0_time(self, machine):
        machine.os.run(SPIN, [0])
        machine.measure(10.0)
        assert _time_us(machine, 0, 0) == pytest.approx(10_000_000, rel=0.01)
        assert _time_us(machine, 0, 2) == 0

    def test_c1_limited_thread_accrues_c1(self, machine):
        machine.os.sysfs.write(
            "/sys/devices/system/cpu/cpu4/cpuidle/state2/disable", "1"
        )
        machine.measure(5.0)
        assert _time_us(machine, 4, 1) == pytest.approx(5_000_000, rel=0.01)

    def test_offline_parked_thread_accrues_c1(self, machine):
        # §VI-B smoking gun: the offline sibling's residency shows C1
        machine.os.hotplug.set_offline(70)
        machine.measure(5.0)
        assert _time_us(machine, 70, 1) == pytest.approx(5_000_000, rel=0.01)

    def test_usage_counts_increment(self, machine):
        machine.measure(10.0)
        usage = int(
            machine.os.sysfs.read(
                "/sys/devices/system/cpu/cpu3/cpuidle/state2/usage"
            )
        )
        assert usage > 0

    def test_residency_readonly(self, machine):
        with pytest.raises(SysfsError):
            machine.os.sysfs.write(
                "/sys/devices/system/cpu/cpu0/cpuidle/state2/time", "0"
            )

    def test_residencies_sum_to_wall_time(self, machine):
        machine.os.run(SPIN, [0])
        machine.measure(4.0)
        machine.os.stop()
        machine.measure(6.0)
        total = sum(_time_us(machine, 0, i) for i in range(3))
        assert total == pytest.approx(10_000_000, rel=0.01)
