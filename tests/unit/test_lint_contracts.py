"""Whole-program contracts analysis: fixture corpus, cache, baseline,
manifest health, and the two acceptance mutation demos (method deletion
and schema field drift must each surface exactly one finding)."""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path

from repro.lint.contracts import (
    CONTRACTS_RULE_IDS,
    analyze_paths,
    contracts_cache_key,
)
from repro.lint.sarif import rule_titles

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = os.path.join("tests", "fixtures", "contracts")
PAIRS = os.path.join(FIXTURES, "contracts.pairs.json")
REGISTRY = os.path.join(FIXTURES, "contracts.schemas.json")

#: The fixture walk is an explicit file list: the lint walker prunes
#: ``fixtures`` directories from subtree scans, and ``testsrc/`` is
#: CON021 corpus data, not analyzed source.
FIXTURE_FILES = [
    os.path.join(FIXTURES, name)
    for name in (
        "pair_ref.py",
        "pair_cand.py",
        "layer_high.py",
        "layer_low.py",
        "schema_mod.py",
    )
]

#: Every seeded true positive in the fixture corpus, by (rule, file, line).
EXPECTED = {
    ("CON001", "pair_cand.py", 17),  # missing pop_due (at absent class)
    ("CON001", "pair_cand.py", 17),  # constructor field 'limit' dropped
    ("CON001", "pair_cand.py", 23),  # push gained a positional param
    ("CON001", "pair_cand.py", 37),  # cancel_all kwonly name drift
    ("CON001", "pair_ref.py", 8),  # extra candidate-only method drain
    ("CON002", "pair_cand.py", 32),  # peek_time raises, reference never
    ("CON010", "layer_low.py", 10),  # module-scope import layer_high
    ("CON010", "layer_low.py", 11),  # module-scope from-import
    ("CON020", "contracts.schemas.json", 1),  # stale 'ghost' entry
    ("CON020", "schema_mod.py", 17),  # alpha field drift, no version bump
    ("CON020", "schema_mod.py", 37),  # second writer site for 'dual'
    ("CON020", "schema_mod.py", 45),  # unregistered schema
    ("CON020", "schema_mod.py", 49),  # writer with no validator
    ("CON020", "schema_mod.py", 53),  # validator with no writer
    ("CON021", "schema_mod.py", 41),  # validate_dual named by no test
}

#: Lines that look like positives but must stay silent (negatives).
NEGATIVE_LINES = {
    ("pair_ref.py", 36),  # underscore-default param is not surface
    ("pair_ref.py", 43),  # legacy_shim excused via ignore_methods
    ("pair_cand.py", 42),  # conforming step (underscore default too)
    ("pair_cand.py", 45),  # conforming reset
    ("layer_low.py", 14),  # TYPE_CHECKING import is exempt
    ("layer_low.py", 23),  # function-level lazy import is exempt
    ("schema_mod.py", 33),  # the FIRST dual writer is not the extra one
    ("schema_mod.py", 27),  # validate_alpha is test-covered
}


def _run_fixture(**kwargs):
    kwargs.setdefault("use_cache", False)
    return analyze_paths(
        FIXTURE_FILES, manifest_path=PAIRS, registry_path=REGISTRY, **kwargs
    )


class TestFixtureCorpus:
    def test_every_seeded_bug_is_found(self):
        report = _run_fixture()
        got = {
            (f.rule, os.path.basename(f.path), f.line) for f in report.findings
        }
        assert got == EXPECTED
        assert len(report.findings) == 15  # two findings share pair_cand.py:17

    def test_all_rules_are_exercised(self):
        report = _run_fixture()
        assert {f.rule for f in report.findings} == CONTRACTS_RULE_IDS

    def test_negatives_stay_silent(self):
        report = _run_fixture()
        hits = {(os.path.basename(f.path), f.line) for f in report.findings}
        assert not hits & NEGATIVE_LINES

    def test_severities(self):
        report = _run_fixture()
        by_rule = {f.rule: f.severity for f in report.findings}
        assert by_rule["CON002"] == "warning"
        assert by_rule["CON021"] == "warning"
        for rule in ("CON001", "CON010", "CON020"):
            assert by_rule[rule] == "error"

    def test_missing_method_names_the_reference_witness(self):
        report = _run_fixture()
        finding = next(
            f
            for f in report.findings
            if f.rule == "CON001" and "pop_due" in f.message
        )
        assert "pair_ref.py:20" in f"{finding.message}"

    def test_stats_shape(self):
        report = _run_fixture()
        stats = report.stats()
        assert stats["modules"] == 5
        assert stats["pairs"] == 1
        assert stats["layers"] == 2
        # alpha/dual/unregistered/noval/orphan; the stale ghost entry
        # exists only in the snapshot, not in code.
        assert stats["schemas"] == 5
        assert stats["findings"] == 15


class TestManifestHealth:
    def test_unknown_pair_class_is_reported(self, tmp_path):
        manifest = tmp_path / "pairs.json"
        manifest.write_text(
            json.dumps(
                {
                    "version": 1,
                    "pairs": [
                        {
                            "reference": "pair_ref.FakeQueue",
                            "candidate": "no.such.Class",
                        }
                    ],
                }
            )
        )
        report = analyze_paths(
            FIXTURE_FILES[:1],
            use_cache=False,
            manifest_path=str(manifest),
            registry_path=REGISTRY,
        )
        hits = [f for f in report.findings if "no.such.Class" in f.message]
        assert len(hits) == 1 and hits[0].rule == "CON001"

    def test_unmatched_layer_prefix_is_reported(self, tmp_path):
        manifest = tmp_path / "pairs.json"
        manifest.write_text(
            json.dumps(
                {
                    "version": 1,
                    "layers": {
                        "assign": {"ghost": ["no_such_module"]},
                        "allow": {"ghost": []},
                    },
                }
            )
        )
        report = analyze_paths(
            FIXTURE_FILES[:1],
            use_cache=False,
            manifest_path=str(manifest),
            registry_path=REGISTRY,
        )
        assert any(
            f.rule == "CON010" and "no_such_module" in f.message
            for f in report.findings
        )

    def test_allow_cycle_is_reported(self, tmp_path):
        manifest = tmp_path / "pairs.json"
        manifest.write_text(
            json.dumps(
                {
                    "version": 1,
                    "layers": {
                        "assign": {
                            "low": ["layer_low"],
                            "high": ["layer_high"],
                        },
                        "allow": {"low": ["high"], "high": ["low"]},
                    },
                }
            )
        )
        report = analyze_paths(
            FIXTURE_FILES,
            use_cache=False,
            manifest_path=str(manifest),
            registry_path=REGISTRY,
        )
        assert any(
            f.rule == "CON010" and "cycle" in f.message for f in report.findings
        )


class TestCacheAndBaseline:
    def test_second_run_hits_the_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        cold = _run_fixture(use_cache=True)
        warm = _run_fixture(use_cache=True)
        assert not cold.cache_hit
        assert warm.cache_hit
        assert [f.to_dict() for f in warm.findings] == [
            f.to_dict() for f in cold.findings
        ]

    def test_editing_the_manifest_invalidates_the_key(self, tmp_path):
        from repro.lint.engine import parse_module, read_source

        modules = [
            parse_module(read_source(path), path) for path in FIXTURE_FILES
        ]
        before = contracts_cache_key(modules, PAIRS, REGISTRY)
        other = tmp_path / "pairs.json"
        other.write_text(json.dumps({"version": 1, "pairs": []}))
        after = contracts_cache_key(modules, str(other), REGISTRY)
        assert before != after

    def test_baseline_swallows_and_reports_known_findings(self, tmp_path):
        baseline = tmp_path / "contracts.baseline.json"
        first = _run_fixture(
            baseline_path=str(baseline), update_baseline=True
        )
        assert first.findings == [] and first.baselined == 15
        second = _run_fixture(baseline_path=str(baseline))
        assert second.findings == [] and second.baselined == 15


class TestSarifCatalogue:
    def test_merged_catalogue_covers_every_family(self):
        titles = rule_titles()
        for rule_id in (
            "CON001",
            "CON002",
            "CON010",
            "CON020",
            "CON021",
            "HOT001",
            "OBS001",
            "PAR001",
            "DIM001",
            "DET001",
            "LINT001",
            "LINT002",
        ):
            assert rule_id in titles, rule_id


def _copy_real_tree(tmp_path):
    dest = tmp_path / "repro"
    shutil.copytree(REPO_ROOT / "src" / "repro", dest)
    return dest


def _analyze_real_copy(dest):
    return analyze_paths(
        [str(dest)],
        use_cache=False,
        manifest_path=str(REPO_ROOT / "lint-contracts.pairs.json"),
        registry_path=str(REPO_ROOT / "lint-contracts.schemas.json"),
    )


class TestAcceptanceMutations:
    """The two demos from the issue: each mutation yields exactly one
    finding with a file/line witness."""

    def test_deleting_a_batched_queue_method_trips_con001(self, tmp_path):
        dest = _copy_real_tree(tmp_path)
        batched = dest / "sim" / "batched.py"
        text = batched.read_text()
        anchor = "    def pop_due(self, limit_ns: int) -> Event | None:"
        assert text.count(anchor) == 1
        batched.write_text(
            text.replace(
                anchor,
                "    def _hidden_pop_due(self, limit_ns: int) -> Event | None:",
            )
        )
        report = _analyze_real_copy(dest)
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.rule == "CON001"
        assert "pop_due" in finding.message
        assert finding.path.endswith("batched.py") and finding.line > 0

    def test_schema_field_drift_without_bump_trips_con020(self, tmp_path):
        dest = _copy_real_tree(tmp_path)
        schema = dest / "bench" / "schema.py"
        text = schema.read_text()
        anchor = '        "params": {"warmup": warmup, "reps": reps},'
        assert text.count(anchor) == 1
        schema.write_text(
            text.replace(anchor, anchor + '\n        "hostname": "x",')
        )
        report = _analyze_real_copy(dest)
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.rule == "CON020"
        assert "schema_version bump" in finding.message
        assert "hostname" in finding.message
        assert finding.path.endswith("schema.py") and finding.line > 0
