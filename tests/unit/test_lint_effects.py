"""Whole-program effects analysis: fixtures, regions, cache, baseline,
guards, parallel safety, LINT002 and the --changed-only plumbing."""

from __future__ import annotations

import json
import os

from repro.lint.engine import (
    lint_paths,
    parse_module,
    read_source,
    suppression_reason_findings,
)
from repro.lint.effects import (
    EFFECTS_RULE_IDS,
    analyze_modules,
    analyze_paths,
    summarize_paths,
)
from repro.lint.flow.baseline import load_baseline, split_baselined, write_baseline
from repro.lint.formatters import format_sarif

FIXTURES = os.path.join("tests", "fixtures", "effects")
MANIFEST = os.path.join(FIXTURES, "regions.json")

#: Every seeded true positive in the fixture corpus, by (rule, file, line).
#: HOT001 transitive findings sit at the *call site* inside the hot
#: region, with the allocating callee named in the witness chain.
EXPECTED = {
    ("HOT001", "hot_engine.py", 22),  # tuple display
    ("HOT001", "hot_engine.py", 23),  # list comprehension
    ("HOT001", "hot_engine.py", 24),  # f-string formatting
    ("HOT001", "hot_engine.py", 25),  # dict display
    ("HOT001", "hot_engine.py", 26),  # allocating callee make_key()
    ("HOT001", "hot_engine.py", 28),  # per-event closure definition
    ("HOT003", "hot_engine.py", 31),  # try/except control flow
    ("HOT002", "hot_engine.py", 37),  # self.count read twice per loop
    ("OBS001", "obs_wiring.py", 11),  # unguarded obs use
    ("OBS001", "obs_wiring.py", 16),  # use on the proven-None branch
    ("PAR001", "par_submit.py", 15),  # lambda callable
    ("PAR001", "par_submit.py", 22),  # nested-function callable
    ("PAR001", "par_submit.py", 27),  # open file handle argument
    ("PAR001", "par_submit.py", 31),  # threading lock argument
}

#: Lines that look like positives but must stay silent (negatives).
NEGATIVE_LINES = {
    ("hot_engine.py", 19),  # cold-marked compute_slow body
    ("hot_engine.py", 41),  # allocation inside a raise is exempt
    ("hot_engine.py", 42),  # call into a declared cold boundary
    ("hot_engine.py", 43),  # small a, b = x, y unpack
    ("hot_engine.py", 44),  # suppressed with a reason
    ("hot_engine.py", 45),  # suppressed (LINT002's job, not HOT001's)
    ("obs_wiring.py", 21),  # guarded use
    ("obs_wiring.py", 27),  # early-exit guard promotes non-null
    ("obs_wiring.py", 31),  # excused: every call site is guarded
    ("par_submit.py", 35),  # module-level callable
    ("par_submit.py", 39),  # functools.partial over module-level fn
}


def _run_fixture():
    return analyze_paths([FIXTURES], use_cache=False, manifest_path=MANIFEST)


def _empty_manifest(tmp_path):
    path = tmp_path / "regions.json"
    path.write_text('{"version": 1, "regions": [], "cold": []}')
    return str(path)


class TestFixtureCorpus:
    def test_every_seeded_bug_is_found(self):
        report = _run_fixture()
        got = {
            (f.rule, os.path.basename(f.path), f.line) for f in report.findings
        }
        assert got == EXPECTED

    def test_all_rules_are_exercised(self):
        report = _run_fixture()
        assert {f.rule for f in report.findings} == EFFECTS_RULE_IDS

    def test_negatives_stay_silent(self):
        report = _run_fixture()
        hits = {(os.path.basename(f.path), f.line) for f in report.findings}
        assert not hits & NEGATIVE_LINES

    def test_severities(self):
        report = _run_fixture()
        by_rule = {f.rule: f.severity for f in report.findings}
        assert by_rule["HOT002"] == "warning"
        for rule in ("HOT001", "HOT003", "OBS001", "PAR001"):
            assert by_rule[rule] == "error"

    def test_transitive_finding_carries_witness_chain(self):
        report = _run_fixture()
        chain = next(
            f for f in report.findings if f.rule == "HOT001" and f.line == 26
        )
        assert "call chain" in chain.message
        assert "make_key" in chain.message

    def test_suppressions_are_counted(self):
        report = _run_fixture()
        assert report.suppressed == 2

    def test_unmatched_manifest_entry_is_reported(self, tmp_path):
        manifest = tmp_path / "regions.json"
        manifest.write_text(
            json.dumps(
                {
                    "version": 1,
                    "regions": [{"function": "no.such.fn", "reason": "x"}],
                    "cold": [],
                }
            )
        )
        report = analyze_paths(
            [FIXTURES], use_cache=False, manifest_path=str(manifest)
        )
        stale = [f for f in report.findings if f.path == str(manifest)]
        assert len(stale) == 1
        assert stale[0].rule == "HOT001" and "no.such.fn" in stale[0].message


class TestSummaries:
    def test_effect_bits_reach_summaries(self):
        summaries = summarize_paths([FIXTURES])
        dispatch = summaries["hot_engine.Queue.dispatch"]
        assert dispatch.allocates and dispatch.raises
        make_key = summaries["hot_engine.Queue.make_key"]
        assert make_key.allocates and not make_key.raises

    def test_transitive_bits_propagate(self):
        summaries = summarize_paths([FIXTURES])
        caller = summaries["par_submit.build_bad_handle"]
        assert caller.crosses_process


class TestSuppressionReason:
    def test_reasonless_effects_suppression_is_flagged(self):
        path = os.path.join(FIXTURES, "hot_engine.py")
        parsed = parse_module(read_source(path), path)
        findings, _ = suppression_reason_findings(parsed)
        assert [(f.rule, f.line) for f in findings] == [("LINT002", 45)]
        assert findings[0].severity == "error"
        assert "reason=" in findings[0].message

    def test_reasoned_and_base_rule_suppressions_pass(self):
        src = (
            "x = (1, 2)  # lint: disable=HOT001 reason=hoisted upstream\n"
            "import os  # lint: disable=IMP001\n"
        )
        findings, _ = suppression_reason_findings(parse_module(src, "m.py"))
        assert findings == []


class TestObsGuardInjection:
    """OBS001 must fire on an unguarded obs call injected into the real
    Simulator.run_until, and stay silent on the committed source."""

    PATH = os.path.join("src", "repro", "sim", "engine.py")
    NEEDLE = (
        "                    self._now_ns = head[0]\n"
        "                    event.callback()"
    )

    def test_committed_run_until_is_silent(self, tmp_path):
        src = read_source(self.PATH)
        assert self.NEEDLE in src  # keep the probe honest as code drifts
        report = analyze_modules(
            [parse_module(src, self.PATH)],
            use_cache=False,
            manifest_path=_empty_manifest(tmp_path),
        )
        assert report.findings == []

    def test_injected_unguarded_obs_call_fires(self, tmp_path):
        src = read_source(self.PATH)
        injected = src.replace(
            self.NEEDLE,
            self.NEEDLE + "\n                    self._obs_dispatched.inc(1)",
        )
        report = analyze_modules(
            [parse_module(injected, self.PATH)],
            use_cache=False,
            manifest_path=_empty_manifest(tmp_path),
        )
        assert [f.rule for f in report.findings] == ["OBS001"]
        assert "proven None" in report.findings[0].message


class TestCache:
    def test_warm_run_replays_without_reanalysis(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        cold = analyze_paths([FIXTURES], manifest_path=MANIFEST)
        assert not cold.cache_hit and cold.findings
        warm = analyze_paths([FIXTURES], manifest_path=MANIFEST)
        assert warm.cache_hit
        key = lambda r: sorted((f.rule, f.path, f.line) for f in r.findings)
        assert key(warm) == key(cold)
        assert warm.suppressed == cold.suppressed  # replayed, not lost

    def test_manifest_edit_invalidates(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        manifest = tmp_path / "regions.json"
        manifest.write_text(read_source(MANIFEST))
        first = analyze_paths([FIXTURES], manifest_path=str(manifest))
        assert not first.cache_hit
        doc = json.loads(manifest.read_text())
        doc["regions"][0]["reason"] = "edited"
        manifest.write_text(json.dumps(doc))
        edited = analyze_paths([FIXTURES], manifest_path=str(manifest))
        assert not edited.cache_hit


class TestBaseline:
    def test_roundtrip_filters_known_findings(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        report = _run_fixture()
        write_baseline(path, report.findings)
        kept, matched = split_baselined(report.findings, load_baseline(path))
        assert kept == [] and matched == len(EXPECTED)

    def test_new_findings_pass_through(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        report = _run_fixture()
        write_baseline(path, report.findings[:3])
        kept, matched = split_baselined(report.findings, load_baseline(path))
        assert matched == 3 and len(kept) == len(EXPECTED) - 3

    def test_checked_in_baseline_matches_tree(self):
        # The committed baseline must stay empty: the real tree is clean.
        doc = json.load(open("lint-effects.baseline.json"))
        assert doc["findings"] == []


class TestRealTree:
    def test_src_is_clean_beyond_baseline(self):
        report = analyze_paths(
            ["src/repro"],
            use_cache=False,
            baseline_path="lint-effects.baseline.json",
        )
        assert report.findings == []

    def test_scales_to_the_whole_package(self):
        report = analyze_paths(["src/repro"], use_cache=False)
        assert report.modules > 100 and report.functions > 500
        assert report.regions >= 8  # manifest entries plus inline markers


class TestChangedOnly:
    def test_findings_restricted_to_changed_seeds(self, monkeypatch):
        import repro.lint.engine as engine

        seed = os.path.abspath(os.path.join(FIXTURES, "obs_wiring.py"))
        monkeypatch.setattr(engine, "changed_files", lambda: {seed})
        report = lint_paths(
            [FIXTURES],
            effects=True,
            effects_cache=False,
            regions=MANIFEST,
            changed_only=True,
        )
        assert report.files_checked == 1
        paths = {os.path.basename(f.path) for f in report.findings}
        assert paths == {"obs_wiring.py"}

    def test_without_git_falls_back_to_full_run(self, monkeypatch):
        import repro.lint.engine as engine

        monkeypatch.setattr(engine, "changed_files", lambda: None)
        report = lint_paths(
            [FIXTURES],
            effects=True,
            effects_cache=False,
            regions=MANIFEST,
            changed_only=True,
        )
        assert report.files_checked == 3
        got = {
            (f.rule, os.path.basename(f.path), f.line)
            for f in report.findings
            if f.rule in EFFECTS_RULE_IDS
        }
        assert got == EXPECTED


class TestSarif:
    def test_sarif_catalogue_includes_effects_rules(self):
        report = lint_paths(
            [FIXTURES], effects=True, effects_cache=False, regions=MANIFEST
        )
        log = json.loads(format_sarif(report))
        run = log["runs"][0]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert EFFECTS_RULE_IDS <= rule_ids and "LINT002" in rule_ids
        levels = {r["ruleId"]: r["level"] for r in run["results"]}
        assert levels["HOT001"] == "error" and levels["HOT002"] == "warning"


class TestCli:
    def test_effects_flags_and_exit_code(self, capsys):
        from repro.lint.cli import main

        status = main(
            [
                FIXTURES,
                "--effects",
                "--no-effects-cache",
                "--regions",
                MANIFEST,
                "--format",
                "json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert status == 1  # seeded errors fail the run
        assert payload["counts_by_rule"]["HOT001"] == 6
        assert payload["counts_by_rule"]["PAR001"] == 4

    def test_effects_baseline_workflow(self, tmp_path, capsys):
        from repro.lint.cli import main

        # A one-file corpus (unguarded obs uses only) keeps base rules
        # and LINT002 quiet, so the exit code tracks effects findings.
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        (corpus / "obs_wiring.py").write_text(
            read_source(os.path.join(FIXTURES, "obs_wiring.py"))
        )
        baseline = str(tmp_path / "b.json")
        common = [
            str(corpus),
            "--effects-baseline",
            baseline,
            "--regions",
            _empty_manifest(tmp_path),
            "--no-effects-cache",
            "--format",
            "json",
        ]
        assert main(common + ["--update-effects-baseline"]) == 0
        capsys.readouterr()
        assert main(common) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []

    def test_update_effects_baseline_requires_baseline(self, capsys):
        from repro.lint.cli import main

        assert main([FIXTURES, "--update-effects-baseline"]) == 2

    def test_list_rules_covers_effects_catalogue(self, capsys):
        from repro.lint.cli import main

        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in sorted(EFFECTS_RULE_IDS) + ["LINT002"]:
            assert rule in out
