"""Suite-runner semantics: name validation, failure containment, modes."""

from __future__ import annotations

import pytest

from repro.core.experiment import ExperimentConfig
from repro.core.suite import SUITE, run_suite, suite_to_dict
from repro.errors import MeasurementError, SuiteError

FAST_ENTRY = "sec5a_idle_sibling"


def _boom_entry(cfg):
    """A registry entry that always fails (module-level: picklable)."""
    raise MeasurementError("injected failure")


@pytest.fixture
def cfg() -> ExperimentConfig:
    return ExperimentConfig(seed=11, scale=0.02)


class TestNameValidation:
    def test_duplicate_only_entries_rejected(self, cfg):
        with pytest.raises(SuiteError, match="duplicate suite entries"):
            run_suite(cfg, only=[FAST_ENTRY, FAST_ENTRY])

    def test_duplicate_message_names_the_entry(self, cfg):
        with pytest.raises(SuiteError, match=FAST_ENTRY):
            run_suite(cfg, only=[FAST_ENTRY, "sec7_rapl_update_rate", FAST_ENTRY])

    def test_unknown_entries_still_keyerror(self, cfg):
        with pytest.raises(KeyError, match="fig99"):
            run_suite(cfg, only=["fig99"])

    def test_bad_parallel_rejected(self, cfg):
        with pytest.raises(SuiteError, match="parallel"):
            run_suite(cfg, only=[FAST_ENTRY], parallel=0)


class TestFailureContainment:
    def test_serial_exceptions_propagate_unchanged(self, cfg, monkeypatch):
        monkeypatch.setitem(SUITE, "boom", _boom_entry)
        with pytest.raises(MeasurementError, match="injected"):
            run_suite(cfg, only=["boom"])

    def test_parallel_failure_is_structured_not_fatal(self, cfg, monkeypatch):
        monkeypatch.setitem(SUITE, "boom", _boom_entry)
        result = run_suite(
            cfg, only=["boom", FAST_ENTRY], parallel=2, retries=0
        )
        assert FAST_ENTRY in result.tables
        assert "boom" not in result.tables
        failure = result.errors["boom"]
        assert failure.kind == "error"
        assert "injected" in failure.message
        assert not result.all_ok
        assert "FAILED" in result.render()

    def test_failures_key_in_document_only_when_failing(self, cfg, monkeypatch):
        monkeypatch.setitem(SUITE, "boom", _boom_entry)
        bad = suite_to_dict(
            run_suite(cfg, only=["boom", FAST_ENTRY], parallel=2, retries=0)
        )
        good = suite_to_dict(run_suite(cfg, only=[FAST_ENTRY]))
        assert bad["failures"]["boom"]["kind"] == "error"
        assert bad["all_ok"] is False
        assert "failures" not in good


class TestInvariantMonitoring:
    def test_monitored_run_records_sweep(self, cfg):
        result = run_suite(cfg, only=[FAST_ENTRY], monitor=True)
        summary = result.invariants[FAST_ENTRY]
        assert summary.machines >= 1
        assert summary.checks >= 1
        assert summary.violations == []
        assert result.all_ok
        assert "invariant sweep" in result.render()

    def test_monitoring_is_opt_in(self, cfg):
        result = run_suite(cfg, only=[FAST_ENTRY])
        assert result.invariants == {}
        assert "invariant sweep" not in result.render()

    def test_document_key_only_when_monitored(self, cfg):
        monitored = suite_to_dict(run_suite(cfg, only=[FAST_ENTRY], monitor=True))
        plain = suite_to_dict(run_suite(cfg, only=[FAST_ENTRY]))
        assert monitored["invariants"][FAST_ENTRY]["violations"] == []
        assert "invariants" not in plain
        # Monitoring must not perturb the measurement itself.
        assert monitored["experiments"] == plain["experiments"]

    def test_violation_fails_the_suite(self, cfg):
        from repro.core.suite import InvariantSummary

        result = run_suite(cfg, only=[FAST_ENTRY], monitor=True)
        result.invariants[FAST_ENTRY] = InvariantSummary(
            machines=1, checks=2, violations=["injected: power went negative"]
        )
        assert not result.all_ok
        assert "power went negative" in result.render()

    def test_monitored_run_bypasses_cache(self, cfg, tmp_path):
        from repro.cache import ResultCache

        cache = ResultCache(str(tmp_path / "cache"))
        result = run_suite(cfg, only=[FAST_ENTRY], cache=cache, monitor=True)
        assert result.cache_stats is None
        stats = cache.stats.as_dict()
        assert stats["stores"] == 0 and stats["hits"] == 0

    def test_machine_hook_nesting_and_removal(self, cfg):
        from repro.core.experiment import machine_hook

        seen: list[str] = []
        with machine_hook(lambda m: seen.append("outer")):
            with machine_hook(lambda m: seen.append("inner")):
                cfg.build_machine().shutdown()
            cfg.build_machine().shutdown()
        cfg.build_machine().shutdown()
        assert seen == ["outer", "inner", "outer"]
