"""I/O-die fclk control: modes, coupling, mismatch, power."""

import pytest

from repro.errors import ConfigurationError
from repro.iodie.fclk import FCLK_PSTATES_HZ, FclkController, FclkMode
from repro.topology import build_topology
from repro.units import ghz


@pytest.fixture
def io_die():
    topo = build_topology("EPYC 7502", n_packages=1)
    return topo.packages[0].io_die


class TestModes:
    def test_fixed_pstates(self, io_die):
        ctrl = FclkController(io_die)
        for mode, expect in zip((FclkMode.P0, FclkMode.P1, FclkMode.P2), FCLK_PSTATES_HZ):
            ctrl.apply(mode)
            assert io_die.fclk_hz == expect

    def test_auto_couples_to_memclk_below_ceiling(self, io_die):
        io_die.memclk_hz = ghz(1.333)
        ctrl = FclkController(io_die)
        ctrl.apply(FclkMode.AUTO)
        assert io_die.fclk_hz == ghz(1.333)

    def test_auto_capped_at_fabric_ceiling(self, io_die):
        io_die.memclk_hz = ghz(1.6)
        ctrl = FclkController(io_die)
        ctrl.apply(FclkMode.AUTO)
        assert io_die.fclk_hz == ghz(1.467)

    def test_memclk_change_reapplies_auto(self, io_die):
        io_die.memclk_hz = ghz(1.6)
        ctrl = FclkController(io_die)
        io_die.memclk_hz = ghz(1.333)
        ctrl.on_memclk_change()
        assert io_die.fclk_hz == ghz(1.333)


class TestMismatch:
    def test_auto_below_ceiling_fully_matched(self, io_die):
        io_die.memclk_hz = ghz(1.333)
        ctrl = FclkController(io_die)
        assert ctrl.mismatch_factor() == 0.0

    def test_auto_above_ceiling_residual(self, io_die):
        io_die.memclk_hz = ghz(1.6)
        ctrl = FclkController(io_die)
        assert 0.0 < ctrl.mismatch_factor() < 1.0

    def test_integer_ratio_matched(self, io_die):
        io_die.memclk_hz = ghz(1.6)
        ctrl = FclkController(io_die)
        ctrl.apply(FclkMode.P2)  # 0.8 GHz -> ratio 2.0
        assert ctrl.mismatch_factor() == 0.0

    def test_fractional_ratio_mismatched(self, io_die):
        io_die.memclk_hz = ghz(1.6)
        ctrl = FclkController(io_die)
        ctrl.apply(FclkMode.P0)  # 1.467 -> ratio 1.09
        assert ctrl.mismatch_factor() == 1.0

    def test_p1_matched_at_2666(self, io_die):
        io_die.memclk_hz = ghz(1.333)
        ctrl = FclkController(io_die)
        ctrl.apply(FclkMode.P1)  # 1.333 -> ratio 1.0
        assert ctrl.mismatch_factor() == 0.0


class TestPower:
    def test_reference_point_is_zero(self, io_die):
        io_die.memclk_hz = ghz(1.6)
        ctrl = FclkController(io_die)
        ctrl.apply(FclkMode.P0)
        assert ctrl.extra_power_w() == pytest.approx(0.0, abs=0.01)

    def test_lower_fclk_saves_power(self, io_die):
        ctrl = FclkController(io_die)
        ctrl.apply(FclkMode.P2)
        assert ctrl.extra_power_w() < 0.0

    def test_power_monotone_in_fclk(self, io_die):
        ctrl = FclkController(io_die)
        powers = []
        for mode in (FclkMode.P2, FclkMode.P1, FclkMode.P0):
            ctrl.apply(mode)
            powers.append(ctrl.extra_power_w())
        assert powers == sorted(powers)
