"""Backend registry, dispatch plumbing, and cross-backend parity.

Covers the selection chain (explicit arg > REPRO_SIM_BACKEND > default),
the ``Simulator(backend=...)`` class dispatch, queue-API parity between
the reference heap and the batched sorted-run store, and bit-identity of
the vectorized power model against the scalar reference.
"""

from __future__ import annotations

from dataclasses import fields as dc_fields

import pytest

from repro.errors import ConfigurationError
from repro.machine import Machine
from repro.power.model import PowerModel
from repro.power.vector import VectorizedPowerModel
from repro.sim import (
    BatchedEventQueue,
    BatchedSimulator,
    SimBackend,
    Simulator,
    available_backends,
    resolve_backend,
)
from repro.sim.backends import ENV_VAR
from repro.sim.events import EventQueue
from repro.sim.rng import RngFactory
from repro.units import ghz, us
from repro.workloads import FIRESTARTER, SPIN, STREAM_TRIAD


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = available_backends()
        assert "reference" in names and "batched" in names

    def test_resolve_default_is_reference(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_backend(None).name == "reference"

    def test_resolve_explicit(self):
        assert resolve_backend("batched").name == "batched"

    def test_resolve_env_var(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "batched")
        assert resolve_backend(None).name == "batched"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "batched")
        assert resolve_backend("reference").name == "reference"

    def test_unknown_backend_raises_with_choices(self):
        with pytest.raises(ConfigurationError, match="batched"):
            resolve_backend("warp-drive")

    def test_backend_instance_passes_through(self):
        backend = resolve_backend("batched")
        assert resolve_backend(backend) is backend

    def test_register_duplicate_raises(self):
        from repro.sim.backends import register_backend

        with pytest.raises(ConfigurationError, match="already registered"):
            register_backend(resolve_backend("reference"))


class TestSimulatorDispatch:
    def test_default_is_reference(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        sim = Simulator()
        assert type(sim) is Simulator
        assert sim.backend_name == "reference"

    def test_explicit_batched(self):
        sim = Simulator(backend="batched")
        assert type(sim) is BatchedSimulator
        assert sim.backend_name == "batched"
        assert isinstance(sim._queue, BatchedEventQueue)

    def test_env_var_selects_batched(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "batched")
        assert type(Simulator()) is BatchedSimulator

    def test_explicit_arg_beats_env(self, monkeypatch):
        # The full precedence chain at the constructor: an explicit
        # backend= argument must win over REPRO_SIM_BACKEND.
        monkeypatch.setenv(ENV_VAR, "batched")
        sim = Simulator(backend="reference")
        assert type(sim) is Simulator
        assert sim.backend_name == "reference"

    def test_experiment_config_backend_beats_env(self, monkeypatch):
        # ExperimentConfig.backend (what the CLI --backend flag sets)
        # must override the env var all the way down to the machine.
        from repro.core.experiment import ExperimentConfig

        monkeypatch.setenv(ENV_VAR, "batched")
        machine = ExperimentConfig(
            scale=0.01, backend="reference"
        ).build_machine()
        try:
            assert type(machine.sim) is Simulator
        finally:
            machine.shutdown()

    def test_subclass_construction_ignores_env(self, monkeypatch):
        # Direct subclass construction must not re-dispatch.
        monkeypatch.setenv(ENV_VAR, "reference")
        assert type(BatchedSimulator()) is BatchedSimulator

    def test_create_simulator_pins_backend_against_env(self, monkeypatch):
        # A resolved backend's factory must not leak through the env
        # var: the "reference" backend returns a reference simulator
        # even when REPRO_SIM_BACKEND says otherwise.
        monkeypatch.setenv(ENV_VAR, "batched")
        sim = resolve_backend("reference").create_simulator()
        assert type(sim) is Simulator

    def test_backend_dataclass_shape(self):
        backend = resolve_backend("batched")
        assert isinstance(backend, SimBackend)
        assert backend.simulator_cls is BatchedSimulator
        assert backend.power_model_cls is VectorizedPowerModel


class TestQueueParity:
    """The batched store honours the EventQueue contract verbatim."""

    def drain(self, queue, limit_ns):
        order = []
        while True:
            event = queue.pop_due(limit_ns)
            if event is None:
                return order
            order.append(event.time_ns)

    def test_pop_due_order_and_exhaustion(self):
        ref, bat = EventQueue(), BatchedEventQueue()
        times = [30, 10, 20, 10, 40, 20]
        for q in (ref, bat):
            for t in times:
                q.push(t, lambda: None)
        assert self.drain(ref, 25) == self.drain(bat, 25) == [10, 10, 20, 20]
        assert len(ref) == len(bat) == 2

    def test_peek_pop_and_len(self):
        queue = BatchedEventQueue()
        assert queue.peek_time() is None
        assert not queue
        queue.push(50, lambda: None)
        queue.push(20, lambda: None)
        assert queue.peek_time() == 20
        assert len(queue) == 2
        assert queue.pop().time_ns == 20
        assert queue.pop().time_ns == 50
        assert queue.peek_time() is None

    def test_cancelled_events_skipped_everywhere(self):
        queue = BatchedEventQueue()
        keep = queue.push(10, lambda: None)
        queue.push(5, lambda: None).cancel()
        queue.push(10, lambda: None).cancel()
        assert queue.peek_time() == 10
        assert len(queue) == 1
        assert queue.pop() is keep

    def test_clear_empties_queue(self):
        queue = BatchedEventQueue()
        events = [queue.push(i, lambda: None) for i in range(5)]
        queue.clear()
        assert len(queue) == 0
        assert queue.peek_time() is None
        # Cancelling a cleared event is a harmless no-op.
        events[0].cancel()

    def test_negative_time_rejected(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            BatchedEventQueue().push(-1, lambda: None)

    def test_compaction_drops_stale_entries(self):
        queue = BatchedEventQueue()
        far = [queue.push(1_000_000, lambda: None) for _ in range(256)]
        queue.push(1, lambda: None)
        assert queue.pop().time_ns == 1  # materializes the sorted run
        for event in far[: len(far) * 3 // 4]:
            event.cancel()
        queue.push(2, lambda: None)
        assert queue.pop().time_ns == 2  # merge runs the deferred filter
        assert queue.compactions >= 1
        assert queue.resident < 256
        assert len(queue) == 64

    def test_interleaved_push_pop_parity_with_reference(self):
        # The event_queue.mixed shape: uniform-random times with pops
        # (and cancels) interleaved.  Exercises the step-path backlog
        # heap — pops drain the append buffer into it instead of
        # rebuilding the run — and must reproduce the reference heap's
        # (time, seq) order exactly.
        def trace(queue_cls):
            rng = RngFactory(11).child("backends/interleaved")
            times = [int(t) for t in rng.integers(0, 100_000, size=600)]
            ops = [int(o) for o in rng.integers(0, 10, size=600)]
            queue = queue_cls()
            live, out = [], []
            for t, op in zip(times, ops):
                if op < 6 or not live:
                    live.append(queue.push(t, lambda: None))
                elif op < 8:
                    live.pop().cancel()
                elif queue:
                    out.append(queue.pop().time_ns)
            while queue:
                out.append(queue.pop().time_ns)
            return out

        assert trace(BatchedEventQueue) == trace(EventQueue)

    def test_backlog_folds_into_dispatch(self):
        # Step-path pops push events into the backlog heap; a subsequent
        # run_until must fold it back and fire everything in order.
        def fire_order(backend):
            sim = Simulator(backend=backend)
            seen = []
            for i, t in enumerate([50, 10, 40, 20, 30, 20]):
                sim.schedule_at(us(t), lambda i=i: seen.append(i))
            popped = sim._queue.pop()  # drains the buffer into the backlog
            assert popped.time_ns == us(10)
            sim.run_until(us(60))
            return popped.time_ns, seen

        assert fire_order("batched") == fire_order("reference")

    def test_shuffle_mode_ties_follow_seeded_seq(self):
        # Identical tiebreak streams must give identical tie order on
        # both queue implementations.
        def order(queue_cls):
            rng = RngFactory(7).child("event-order-shuffle/1")
            queue = queue_cls(tiebreak_rng=rng)
            fired = []
            for i in range(16):
                queue.push(100, lambda i=i: fired.append(i))
            while queue:
                queue.pop().callback()
            return fired

        reference = order(EventQueue)
        assert order(BatchedEventQueue) == reference
        assert reference != list(range(16))  # the shuffle actually shuffles


class TestDispatchParity:
    def test_pending_tie_with_sorted_run_in_shuffle_mode(self):
        # Regression: an event pushed during dispatch, tying with an
        # event already in the sorted run, must fire in (random) seq
        # order — the batched loop has to merge before dispatching the
        # tie, not drain the run first.
        def fire_order(backend):
            sim = Simulator(
                backend=backend,
                tiebreak_rng=RngFactory(3).child("event-order-shuffle/0"),
            )
            seen = []
            for i in range(6):
                sim.schedule_at(us(2), lambda i=i: seen.append(i))

            def spawner():
                for i in range(6, 12):
                    sim.schedule_at(us(2), lambda i=i: seen.append(i))

            sim.schedule_at(us(1), spawner)
            sim.run_until(us(3))
            return seen

        assert fire_order("batched") == fire_order("reference")

    def test_exception_in_callback_leaves_queue_consistent(self):
        def crash_then_recover(backend):
            sim = Simulator(backend=backend)
            seen = []
            sim.schedule_after(us(1), lambda: seen.append("a"))

            def boom():
                raise RuntimeError("callback failure")  # EXC001: arbitrary user-callback crash

            sim.schedule_after(us(2), boom)
            sim.schedule_after(us(3), lambda: seen.append("b"))
            with pytest.raises(RuntimeError):
                sim.run_until(us(5))
            # The raising event is consumed; the rest still dispatch.
            sim.run_until(us(5))
            return seen, sim.pending_events

        assert crash_then_recover("batched") == crash_then_recover("reference")


class TestVectorizedPowerModel:
    @pytest.fixture
    def loaded_machine(self):
        machine = Machine("EPYC 7302", n_packages=1, seed=99)
        cpus = machine.os.first_thread_cpus()
        machine.os.run(FIRESTARTER, cpus[:4])
        machine.os.run(STREAM_TRIAD, cpus[4:8])
        machine.os.run(SPIN, cpus[8:10])
        for cpu in cpus[:4]:
            machine.os.set_frequency(cpu, ghz(1.5))
        machine.sim.run_for(us(500))
        yield machine
        machine.shutdown()

    def _assert_identical(self, machine):
        scalar = PowerModel(machine.cal).breakdown(
            machine, machine.thermal_state.temps_c
        )
        vector = VectorizedPowerModel(machine.cal).breakdown(
            machine, machine.thermal_state.temps_c
        )
        for f in dc_fields(scalar):
            assert getattr(scalar, f.name) == getattr(vector, f.name), f.name

    def test_idle_breakdown_bit_identical(self, small_machine):
        self._assert_identical(small_machine)

    def test_loaded_breakdown_bit_identical(self, loaded_machine):
        self._assert_identical(loaded_machine)

    def test_two_package_breakdown_bit_identical(self, machine):
        machine.os.run(SPIN, machine.os.first_thread_cpus()[:12])
        machine.sim.run_for(us(200))
        self._assert_identical(machine)


class TestMachineWiring:
    def test_machine_backend_selection(self):
        machine = Machine("EPYC 7302", n_packages=1, seed=1, backend="batched")
        try:
            assert machine.backend.name == "batched"
            assert type(machine.sim) is BatchedSimulator
            assert type(machine.power_model) is VectorizedPowerModel
        finally:
            machine.shutdown()

    def test_experiment_config_flows_backend(self):
        from repro.core import ExperimentConfig

        cfg = ExperimentConfig(
            seed=1, scale=0.02, sku="EPYC 7302", n_packages=1, backend="batched"
        )
        machine = cfg.build_machine()
        try:
            assert machine.backend.name == "batched"
        finally:
            machine.shutdown()

    def test_cli_rejects_unknown_backend(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["selfcheck", "--backend", "warp-drive"])
        assert "warp-drive" in capsys.readouterr().err
