"""Working-set latency-curve experiment."""

import pytest

from repro.core.experiment import ExperimentConfig
from repro.core.latency_curve import KIB, LatencyCurveExperiment


@pytest.fixture(scope="module")
def curve():
    return LatencyCurveExperiment(ExperimentConfig(seed=11)).measure()


class TestLatencyCurve:
    def test_covers_all_levels(self, curve):
        assert {"L1D", "L2", "L3", "DRAM"} <= set(curve.levels)

    def test_plateaus_strictly_ordered(self, curve):
        l1 = curve.plateau_ns("L1D")
        l2 = curve.plateau_ns("L2")
        l3 = curve.plateau_ns("L3")
        dram = curve.plateau_ns("DRAM")
        assert l1 < l2 < l3 < dram

    def test_l1_plateau_cycles(self, curve):
        # 4 cycles at 2.5 GHz = 1.6 ns
        assert curve.plateau_ns("L1D") == pytest.approx(1.6, rel=0.15)

    def test_dram_plateau_matches_fig5_anchor(self, curve):
        assert curve.plateau_ns("DRAM") == pytest.approx(92.0, rel=0.05)

    def test_latency_nondecreasing_with_size(self, curve):
        lats = curve.latencies_ns
        for a, b in zip(lats, lats[1:]):
            assert b >= a * 0.98  # noise slack

    def test_slower_core_raises_on_die_plateaus(self):
        slow = LatencyCurveExperiment(ExperimentConfig(seed=11)).measure(
            core_freq_ghz=1.5
        )
        fast = LatencyCurveExperiment(ExperimentConfig(seed=11)).measure(
            core_freq_ghz=2.5
        )
        assert slow.plateau_ns("L2") > fast.plateau_ns("L2")

    def test_custom_size_list(self):
        curve = LatencyCurveExperiment(ExperimentConfig(seed=1)).measure(
            sizes_bytes=[16 * KIB, 64 * 1024 * KIB]
        )
        assert curve.levels == ["L1D", "DRAM"]
