"""Workload descriptor validation and the library's calibration facts."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    FIRESTARTER,
    IDLE,
    PAUSE_LOOP,
    POLL,
    SPIN,
    STREAM_TRIAD,
    WORKLOAD_SET,
    Workload,
    instruction_block,
    pointer_chase,
)


class TestDescriptor:
    def test_ipc_by_smt(self):
        assert FIRESTARTER.ipc(1) == 3.23
        assert FIRESTARTER.ipc(2) == 3.56

    def test_invalid_smt_count(self):
        with pytest.raises(WorkloadError):
            FIRESTARTER.ipc(3)
        with pytest.raises(WorkloadError):
            FIRESTARTER.power_coeff(0)

    def test_negative_ipc_rejected(self):
        with pytest.raises(WorkloadError):
            Workload(name="bad", ipc_1t=-1.0)

    def test_toggle_rate_bounds(self):
        with pytest.raises(WorkloadError):
            Workload(name="bad", toggle_rate=1.5)

    def test_util_bounds(self):
        with pytest.raises(WorkloadError):
            Workload(name="bad", fp_util=2.0)
        with pytest.raises(WorkloadError):
            Workload(name="bad", ls_util=-0.1)

    def test_freq_scaling_bounds(self):
        with pytest.raises(WorkloadError):
            Workload(name="bad", freq_scaling=1.2)

    def test_negative_power_coeff_rejected(self):
        with pytest.raises(WorkloadError):
            Workload(name="bad", power_coeff_1t=-0.5)

    def test_with_operand_weight_copies(self):
        w = FIRESTARTER.with_operand_weight(1.0)
        assert w.toggle_rate == 1.0
        assert FIRESTARTER.toggle_rate == 0.5  # original untouched
        assert "w=1" in w.name

    def test_with_name(self):
        assert SPIN.with_name("spin2").name == "spin2"

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SPIN.ipc_1t = 2.0


class TestLibrary:
    def test_pause_has_no_dynamic_power(self):
        # Fig 7's per-core adders carry the pause cost entirely
        assert PAUSE_LOOP.power_coeff_1t == 0.0
        assert PAUSE_LOOP.uses_pause

    def test_poll_noisier_than_pause(self):
        assert POLL.power_coeff_1t > PAUSE_LOOP.power_coeff_1t

    def test_idle_has_no_activity(self):
        assert IDLE.ipc_1t == 0.0
        assert IDLE.alu_util == 0.0

    def test_firestarter_is_edc_reference(self):
        assert FIRESTARTER.edc_weight == 1.0
        assert FIRESTARTER.simd_width_bits == 256

    def test_stream_memory_bound(self):
        assert STREAM_TRIAD.freq_scaling < 0.5
        assert STREAM_TRIAD.dram_gbs_1t == 22.0

    def test_instruction_block_known(self):
        vx = instruction_block("vxorps", 1.0)
        assert vx.toggle_rate == 1.0
        assert vx.toggle_width_bits == 256

    def test_instruction_block_unknown(self):
        with pytest.raises(KeyError, match="vxorps"):
            instruction_block("fma231")

    def test_shr_narrow_toggle_path(self):
        shr = instruction_block("shr")
        assert shr.toggle_width_bits < 64  # operand held, not toggled

    def test_pointer_chase_levels(self):
        l3 = pointer_chase("L3")
        dram = pointer_chase("DRAM")
        assert l3.l3_util > dram.l3_util
        assert dram.dram_gbs_1t > 0

    def test_workload_set_covers_classes(self):
        names = {w.name for w in WORKLOAD_SET}
        assert {"idle", "firestarter", "memory_read", "vxorps", "pause_loop"} <= names

    def test_workload_set_unique_names(self):
        names = [w.name for w in WORKLOAD_SET]
        assert len(names) == len(set(names))
