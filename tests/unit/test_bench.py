"""repro.bench: harness statistics, registry, schema, CLI round-trip."""

import json

import pytest

from repro.bench import (
    REGISTRY,
    SCHEMA_ID,
    SCHEMA_VERSION,
    BenchContext,
    Kernel,
    document_from_results,
    kernel_names,
    percentile,
    validate_document,
)
from repro.bench.cli import main as bench_main
from repro.bench.harness import time_kernel
from repro.bench.kernels import select_kernels
from repro.errors import ConfigurationError

TINY = BenchContext(scale=0.001, seed=2021)


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3.0, 1.0, 2.0], 50.0) == 2.0

    def test_median_even_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == 2.5

    def test_extremes(self):
        xs = [5.0, 1.0, 3.0]
        assert percentile(xs, 0.0) == 1.0
        assert percentile(xs, 100.0) == 5.0

    def test_single_sample(self):
        assert percentile([7.0], 90.0) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            percentile([], 50.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            percentile([1.0], 101.0)


class TestHarness:
    def test_time_kernel_counts_and_stats(self):
        calls = []

        def setup(ctx):
            def run():
                calls.append(None)
                return 42

            return run

        k = Kernel(
            name="t", description="d", unit="ops/s", better="higher", setup=setup
        )
        res = time_kernel(k, TINY, warmup=2, reps=3)
        assert len(calls) == 5  # warmup runs excluded from samples
        assert len(res.samples) == 3
        assert res.ops_per_rep == 42
        assert res.p10 <= res.median <= res.p90

    def test_latency_kernel_samples_are_seconds(self):
        k = Kernel(
            name="t",
            description="d",
            unit="s",
            better="lower",
            setup=lambda ctx: (lambda: 1),
        )
        res = time_kernel(k, TINY, warmup=0, reps=2)
        assert all(s >= 0.0 for s in res.samples)

    def test_max_reps_cap(self):
        k = Kernel(
            name="t",
            description="d",
            unit="s",
            better="lower",
            setup=lambda ctx: (lambda: 1),
            max_reps=2,
        )
        assert time_kernel(k, TINY, warmup=0, reps=9).reps == 2

    def test_bad_params_rejected(self):
        k = REGISTRY["event_queue.mixed"]
        with pytest.raises(ConfigurationError):
            time_kernel(k, TINY, warmup=0, reps=0)
        with pytest.raises(ConfigurationError):
            time_kernel(k, TINY, warmup=-1, reps=1)


class TestRegistry:
    def test_expected_kernels_registered(self):
        names = kernel_names()
        for expected in (
            "event_queue.mixed",
            "event_queue.mixed_shuffle",
            "event_queue.cancel_churn",
            "sim.dispatch",
            "machine.measure.10s",
            "suite.e2e",
        ):
            assert expected in names

    def test_quick_kernels_exclude_suite(self):
        quick = [k.name for k in select_kernels(smoke=True)]
        assert "suite.e2e" not in quick
        assert "event_queue.mixed" in quick

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            select_kernels(["no.such.kernel"])

    def test_queue_kernels_run_and_count_ops(self):
        for name in (
            "event_queue.mixed",
            "event_queue.mixed_shuffle",
            "event_queue.cancel_churn",
            "sim.dispatch",
        ):
            run = REGISTRY[name].setup(TINY)
            assert run() > 0
            # Deterministic fixtures: same op count every repetition.
            assert run() == run()


class TestSchema:
    def _doc(self):
        results = [
            time_kernel(REGISTRY["event_queue.mixed"], TINY, warmup=0, reps=2)
        ]
        return document_from_results(results, ctx=TINY, warmup=0, reps=2)

    def test_round_trip_validates(self):
        doc = json.loads(json.dumps(self._doc()))
        assert validate_document(doc) == []
        assert doc["schema"] == SCHEMA_ID
        assert doc["schema_version"] == SCHEMA_VERSION

    def test_rejects_non_object(self):
        assert validate_document([1, 2]) != []

    def test_rejects_wrong_version(self):
        doc = self._doc()
        doc["schema_version"] = 999
        assert any("schema_version" in e for e in validate_document(doc))

    def test_rejects_tampered_stats(self):
        doc = self._doc()
        doc["kernels"][0]["median"] = doc["kernels"][0]["median"] * 2 + 1
        assert any("median" in e for e in validate_document(doc))

    def test_rejects_missing_samples(self):
        doc = self._doc()
        del doc["kernels"][0]["samples"]
        assert any("samples" in e for e in validate_document(doc))

    def test_rejects_reps_mismatch(self):
        doc = self._doc()
        doc["kernels"][0]["reps"] = 17
        assert any("reps" in e for e in validate_document(doc))


class TestCompareSchema:
    def _doc(self):
        from repro.bench import document_from_compare
        from repro.bench.harness import run_backend_compare

        verdict = run_backend_compare(
            TINY, kernels=["event_queue.mixed"], rounds=2
        )
        return document_from_compare(verdict, ctx=TINY)

    def test_round_trip_validates(self):
        from repro.bench import validate_compare_document

        doc = json.loads(json.dumps(self._doc()))
        assert validate_compare_document(doc) == []
        assert doc["schema"] == "repro.bench/backend-compare"

    def test_rejects_foreign_schema_and_tampered_speedup(self):
        from repro.bench import validate_compare_document

        assert validate_compare_document({"schema": SCHEMA_ID}) != []
        doc = self._doc()
        kernel = doc["kernels"]["event_queue.mixed"]
        kernel["speedup"] = kernel["speedup"] * 3 + 1
        assert any("speedup" in e for e in validate_compare_document(doc))


class TestCli:
    def test_list(self, capsys):
        assert bench_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "event_queue.mixed" in out
        assert "suite.e2e" in out

    def test_writes_schema_valid_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_test.json"
        rc = bench_main(
            [
                "--only",
                "event_queue.mixed,sim.dispatch",
                "--scale",
                "0.001",
                "--warmup",
                "0",
                "--reps",
                "2",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        assert validate_document(doc) == []
        assert [k["name"] for k in doc["kernels"]] == [
            "event_queue.mixed",
            "sim.dispatch",
        ]
        assert "median" in capsys.readouterr().out

    def test_smoke_skips_slow_kernels(self, tmp_path):
        out = tmp_path / "BENCH_smoke.json"
        rc = bench_main(
            ["--smoke", "--scale", "0.001", "--out", str(out)]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        assert validate_document(doc) == []
        names = [k["name"] for k in doc["kernels"]]
        assert "suite.e2e" not in names
        assert doc["params"] == {"warmup": 0, "reps": 1}

    def test_unknown_kernel_errors(self, capsys):
        assert bench_main(["--only", "bogus", "--out", "-"]) == 2
        assert "unknown bench kernel" in capsys.readouterr().err


class TestOverheadGuard:
    def test_disabled_kernel_registered(self):
        assert "obs.overhead_disabled" in kernel_names()

    def test_guard_reports_interleaved_ratios(self):
        from repro.bench.harness import run_overhead_guard

        # A generous budget keeps the verdict deterministic at tiny
        # scale; the real 2% budget is enforced by make bench-guard.
        verdict = run_overhead_guard(TINY, rounds=2, budget=0.9)
        assert verdict["ok"] is True
        assert len(verdict["ratios"]) == 2
        assert verdict["baseline"] == "sim.dispatch"
        assert verdict["candidate"] == "obs.overhead_disabled"
        assert all(r > 0 for r in verdict["ratios"])

    def test_guard_rejects_bad_rounds(self):
        from repro.bench.harness import run_overhead_guard

        with pytest.raises(ConfigurationError):
            run_overhead_guard(TINY, rounds=0)

    def test_cli_guard_pass_and_fail_exit_codes(self, capsys):
        args = ["--guard", "--scale", "0.001", "--guard-rounds", "1"]
        assert bench_main(args + ["--guard-budget", "0.9"]) == 0
        assert "PASS" in capsys.readouterr().out
        # An impossible budget (candidate would need >11x the baseline
        # throughput) pins the failing exit path without flakiness.
        assert bench_main(args + ["--guard-budget", "-10"]) == 1
        assert "FAIL" in capsys.readouterr().out
