"""Metrics registry: Prometheus semantics in miniature.

Counters refuse to go backwards, histograms keep cumulative buckets with
an implicit +Inf, families reject type conflicts, and both export forms
(text exposition, JSON snapshot) are deterministic functions of the
observations — two identical instrumented runs serialize byte-identically.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS_S,
    MetricsRegistry,
    prometheus_name,
)
from repro.obs.schema import validate_metrics_document


def test_counter_accumulates_and_rejects_negative():
    reg = MetricsRegistry()
    c = reg.counter("sim.events_dispatched", "events", "events")
    c.inc()
    c.inc(41)
    assert c.value == 42
    with pytest.raises(ConfigurationError):
        c.inc(-1)


def test_labeled_series_are_independent():
    reg = MetricsRegistry()
    hits = reg.counter("cache.lookups", result="hit")
    misses = reg.counter("cache.lookups", result="miss")
    hits.inc(3)
    misses.inc()
    # A second handle for the same label set shares the series.
    assert reg.counter("cache.lookups", result="hit").value == 3
    assert reg.counter("cache.lookups", result="miss").value == 1


def test_gauge_set_inc_dec():
    reg = MetricsRegistry()
    g = reg.gauge("sim.queue_depth")
    g.set(10)
    g.inc(5)
    g.dec(2)
    assert g.value == 13


def test_type_conflict_rejected():
    reg = MetricsRegistry()
    reg.counter("machine.measures")
    with pytest.raises(ConfigurationError):
        reg.gauge("machine.measures")


def test_bad_names_rejected():
    reg = MetricsRegistry()
    for bad in ("", "9lives", ".dot", "has space", "semi;colon"):
        with pytest.raises(ConfigurationError):
            reg.counter(bad)


def test_histogram_cumulative_buckets_and_inf():
    reg = MetricsRegistry()
    h = reg.histogram("latency", buckets=(1.0, 10.0, 100.0))
    for v in (0.5, 5.0, 50.0, 500.0):
        h.observe(v)
    snap = reg.snapshot()
    (fam,) = snap["metrics"]
    (series,) = fam["series"]
    # Cumulative: le=1 admits 1 value, le=10 two, le=100 three, +Inf all.
    assert series["bucket_counts"] == [1, 2, 3, 4]
    assert series["count"] == 4
    assert series["sum"] == pytest.approx(555.5)


def test_histogram_bucket_layout_validation():
    reg = MetricsRegistry()
    with pytest.raises(ConfigurationError):
        reg.histogram("h1", buckets=())
    with pytest.raises(ConfigurationError):
        reg.histogram("h2", buckets=(3.0, 1.0))
    with pytest.raises(ConfigurationError):
        reg.histogram("h3", buckets=(1.0, 1.0))
    with pytest.raises(ConfigurationError):
        reg.histogram("h4", buckets=(1.0, float("inf")))


def test_canonical_bucket_layouts_are_valid():
    reg = MetricsRegistry()
    reg.histogram("lat", buckets=LATENCY_BUCKETS_S).observe(0.01)
    reg.histogram("cnt", buckets=COUNT_BUCKETS).observe(17)
    assert validate_metrics_document(reg.snapshot()) == []


def test_snapshot_validates_and_is_deterministic():
    def build() -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("a.ticks", "ticks", "ticks", kind="x").inc(7)
        reg.gauge("b.depth").set(3)
        reg.histogram("c.lat", buckets=(0.1, 1.0)).observe(0.5)
        return reg

    s1, s2 = build().snapshot(), build().snapshot()
    assert validate_metrics_document(s1) == []
    assert s1 == s2


def test_prometheus_text_shape():
    reg = MetricsRegistry()
    reg.counter("cache.lookups", "Lookups", "lookups", result="hit").inc(2)
    reg.histogram("get.lat", buckets=(1.0,)).observe(0.5)
    text = reg.to_prometheus()
    assert "# HELP repro_cache_lookups Lookups [lookups]\n" in text
    assert "# TYPE repro_cache_lookups counter\n" in text
    assert 'repro_cache_lookups{result="hit"} 2\n' in text
    assert 'repro_get_lat_bucket{le="1"} 1\n' in text
    assert 'repro_get_lat_bucket{le="+Inf"} 1\n' in text
    assert "repro_get_lat_sum 0.5\n" in text
    assert "repro_get_lat_count 1\n" in text
    assert text.endswith("\n")


def test_prometheus_name_mangling_and_label_escaping():
    assert prometheus_name("sim.events_dispatched") == (
        "repro_sim_events_dispatched"
    )
    reg = MetricsRegistry()
    reg.counter("weird.labels", tag='say "hi"\nnow').inc()
    text = reg.to_prometheus()
    assert 'tag="say \\"hi\\"\\nnow"' in text


def test_validator_catches_broken_documents():
    reg = MetricsRegistry()
    reg.histogram("h.lat", buckets=(1.0, 2.0)).observe(0.5)
    doc = reg.snapshot()
    doc["metrics"][0]["series"][0]["bucket_counts"] = [2, 1, 1]
    assert validate_metrics_document(doc)  # non-monotone buckets

    doc2 = reg.snapshot()
    doc2["schema_version"] = 99
    assert validate_metrics_document(doc2)
