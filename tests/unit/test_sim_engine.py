"""Simulator clock semantics and periodic tasks."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.units import ms, us


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now_ns == 0

    def test_schedule_after_fires_at_right_time(self, sim):
        seen = []
        sim.schedule_after(us(5), lambda: seen.append(sim.now_ns))
        sim.run_until(us(10))
        assert seen == [us(5)]

    def test_clock_ends_at_run_until_target(self, sim):
        sim.run_until(us(10))
        assert sim.now_ns == us(10)

    def test_event_exactly_at_boundary_fires(self, sim):
        seen = []
        sim.schedule_at(us(10), lambda: seen.append(True))
        sim.run_until(us(10))
        assert seen == [True]

    def test_event_after_boundary_does_not_fire(self, sim):
        seen = []
        sim.schedule_at(us(11), lambda: seen.append(True))
        sim.run_until(us(10))
        assert seen == []

    def test_schedule_in_past_raises(self, sim):
        sim.run_until(us(10))
        with pytest.raises(SimulationError):
            sim.schedule_at(us(5), lambda: None)

    def test_negative_delay_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule_after(-1, lambda: None)

    def test_run_backwards_raises(self, sim):
        sim.run_until(us(10))
        with pytest.raises(SimulationError):
            sim.run_until(us(5))

    def test_callbacks_can_schedule_more(self, sim):
        seen = []

        def first():
            sim.schedule_after(us(1), lambda: seen.append(sim.now_ns))

        sim.schedule_after(us(1), first)
        sim.run_until(us(10))
        assert seen == [us(2)]

    def test_run_for_advances_relative(self, sim):
        sim.run_for(us(3))
        sim.run_for(us(4))
        assert sim.now_ns == us(7)

    def test_step_executes_single_event(self, sim):
        seen = []
        sim.schedule_after(us(1), lambda: seen.append(1))
        sim.schedule_after(us(2), lambda: seen.append(2))
        assert sim.step()
        assert seen == [1]
        assert sim.now_ns == us(1)

    def test_step_empty_returns_false(self, sim):
        assert not sim.step()

    def test_cancelled_event_does_not_fire(self, sim):
        seen = []
        e = sim.schedule_after(us(1), lambda: seen.append(1))
        e.cancel()
        sim.run_until(us(5))
        assert seen == []


class TestPeriodicTask:
    def test_fires_every_period(self, sim):
        seen = []
        sim.periodic(ms(1), lambda: seen.append(sim.now_ns))
        sim.run_until(ms(3))
        assert seen == [ms(1), ms(2), ms(3)]

    def test_phase_offsets_grid(self, sim):
        seen = []
        sim.periodic(ms(1), lambda: seen.append(sim.now_ns), phase_ns=us(100))
        sim.run_until(ms(2))
        assert seen[0] == ms(1) + us(100)

    def test_cancel_stops_future_firings(self, sim):
        seen = []
        task = sim.periodic(ms(1), lambda: seen.append(sim.now_ns))
        sim.run_until(ms(1))
        task.cancel()
        sim.run_until(ms(5))
        assert seen == [ms(1)]

    def test_cancel_before_first_fire(self, sim):
        seen = []
        task = sim.periodic(ms(1), lambda: seen.append(1))
        task.cancel()
        sim.run_until(ms(5))
        assert seen == []

    def test_next_fire_ns(self, sim):
        task = sim.periodic(ms(1), lambda: None)
        assert task.next_fire_ns() == ms(1)
        sim.run_until(ms(1))
        assert task.next_fire_ns() == ms(2)

    def test_next_fire_none_after_cancel(self, sim):
        task = sim.periodic(ms(1), lambda: None)
        task.cancel()
        assert task.next_fire_ns() is None

    def test_zero_period_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.periodic(0, lambda: None)


class TestTieBreaking:
    """Dispatch-order contract for same-timestamp events.

    The contract (shared by every backend): ties dispatch in schedule
    order, and an event scheduled *during* dispatch at the current time
    runs after everything already queued at that time.  These are the
    order-dependence hazards of ``run_until``/``pop_due`` made explicit.
    """

    def test_same_timestamp_fifo(self, sim):
        seen = []
        for i in range(8):
            sim.schedule_at(us(5), lambda i=i: seen.append(i))
        sim.run_until(us(5))
        assert seen == list(range(8))

    def test_mixed_schedule_paths_keep_fifo(self, sim):
        # schedule_at and schedule_after interleaved at one timestamp
        # still dispatch in overall schedule order.
        seen = []
        sim.schedule_at(us(5), lambda: seen.append("at0"))
        sim.schedule_after(us(5), lambda: seen.append("after1"))
        sim.schedule_at(us(5), lambda: seen.append("at2"))
        sim.schedule_after(us(5), lambda: seen.append("after3"))
        sim.run_until(us(5))
        assert seen == ["at0", "after1", "at2", "after3"]

    def test_zero_delay_from_callback_runs_after_existing_ties(self, sim):
        seen = []
        sim.schedule_after(
            us(5), lambda: (seen.append("first"), sim.schedule_after(0, lambda: seen.append("spawned")))
        )
        sim.schedule_after(us(5), lambda: seen.append("second"))
        sim.run_until(us(5))
        # The zero-delay spawn lands at the same timestamp but was
        # scheduled later than "second", so it must not overtake it.
        assert seen == ["first", "second", "spawned"]

    def test_cancel_within_tie_group_preserves_order(self, sim):
        seen = []
        events = [
            sim.schedule_at(us(5), lambda i=i: seen.append(i)) for i in range(6)
        ]
        events[1].cancel()
        events[4].cancel()
        sim.run_until(us(5))
        assert seen == [0, 2, 3, 5]

    def test_pop_due_matches_run_until_order(self, backend):
        # Draining the queue directly must observe the same order as
        # dispatch; the batched store defers merging, which is exactly
        # where an order bug would hide.
        run_seen = []
        drain = Simulator(backend=backend)
        runner = Simulator(backend=backend)

        def build(s, log):
            s.schedule_after(us(2), lambda: log.append("a"))
            s.schedule_after(us(1), lambda: log.append("b"))
            s.schedule_after(us(2), lambda: log.append("c"))
            s.schedule_after(us(1), lambda: log.append("d"))

        build(runner, run_seen)
        runner.run_until(us(2))

        drain_seen = []
        build(drain, drain_seen)
        while True:
            event = drain._queue.pop_due(us(2))
            if event is None:
                break
            event.callback()
        assert drain_seen == run_seen == ["b", "d", "a", "c"]
