"""Thermal RC model."""

import pytest

from repro.power.calibration import CALIBRATION
from repro.power.thermal import ThermalModel, ThermalState


class TestThermal:
    def test_equilibrium_linear_in_power(self):
        model = ThermalModel()
        t0 = model.equilibrium_c(0.0)
        assert t0 == CALIBRATION.ambient_temp_c
        assert model.equilibrium_c(100.0) == pytest.approx(
            t0 + 100.0 * CALIBRATION.thermal_resistance_k_per_w
        )

    def test_evolution_approaches_equilibrium(self):
        model = ThermalModel()
        eq = model.equilibrium_c(150.0)
        t = CALIBRATION.ambient_temp_c
        t_after = model.evolve_c(t, 150.0, model.time_constant_s * 5)
        assert t_after == pytest.approx(eq, abs=0.3)

    def test_evolution_monotone(self):
        model = ThermalModel()
        t1 = model.evolve_c(30.0, 150.0, 10.0)
        t2 = model.evolve_c(30.0, 150.0, 20.0)
        assert 30.0 < t1 < t2

    def test_cooling(self):
        model = ThermalModel()
        t = model.evolve_c(80.0, 0.0, model.time_constant_s * 8)
        assert t == pytest.approx(CALIBRATION.ambient_temp_c, abs=0.3)

    def test_negative_dt_rejected(self):
        with pytest.raises(ValueError):
            ThermalModel().evolve_c(30.0, 10.0, -1.0)

    def test_trajectory_matches_pointwise_evolution(self):
        model = ThermalModel()
        traj = model.trajectory_c(30.0, 100.0, [0.0, 5.0, 10.0])
        assert traj[0] == pytest.approx(30.0)
        assert traj[1] == pytest.approx(model.evolve_c(30.0, 100.0, 5.0))
        assert traj[2] == pytest.approx(model.evolve_c(30.0, 100.0, 10.0))

    def test_settle_is_equilibrium(self):
        model = ThermalModel()
        assert model.settle(123.0) == model.equilibrium_c(123.0)

    def test_ambient_state_factory(self):
        state = ThermalState.ambient(2)
        assert state.temps_c == [CALIBRATION.ambient_temp_c] * 2

    def test_time_constant_order_of_minutes(self):
        # pre-heating matters (§V-E) but 10 s intervals are near-settled
        tau = ThermalModel().time_constant_s
        assert 20.0 < tau < 300.0
