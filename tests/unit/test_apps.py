"""Canned phased applications and policy playback across them."""

import pytest

from repro.machine import Machine
from repro.units import ghz
from repro.workloads.apps import APPLICATIONS, bt_like, cg_like, ep_like
from repro.workloads.phases import play


@pytest.fixture
def m():
    machine = Machine("EPYC 7502", seed=6)
    yield machine
    machine.shutdown()


def memory_aware_policy(phase):
    return ghz(1.5) if phase.freq_sensitivity < 0.5 else ghz(2.5)


class TestStructure:
    def test_registry_complete(self):
        assert set(APPLICATIONS) == {"ep_like", "cg_like", "bt_like"}
        for factory in APPLICATIONS.values():
            app = factory()
            assert app.phases
            assert app.total_duration_s > 0

    def test_ep_has_no_memory_phases(self):
        assert all(p.freq_sensitivity == 1.0 for p in ep_like().phases)

    def test_cg_memory_dominated(self):
        app = cg_like()
        mem = sum(p.duration_s for p in app.phases if p.freq_sensitivity < 0.5)
        assert mem > app.total_duration_s / 2


class TestPolicyOutcomes:
    def test_tuning_helps_cg_not_ep(self, m):
        cpus = m.os.first_thread_cpus()
        results = {}
        for name, factory in APPLICATIONS.items():
            base = play(m, factory(), cpus)
            tuned = play(m, factory(), cpus, policy=memory_aware_policy)
            results[name] = tuned.energy_j / base.energy_j
        # cg (memory-heavy) gains the most; ep gains nothing
        assert results["cg_like"] < 0.95
        assert results["ep_like"] == pytest.approx(1.0, abs=1e-6)
        assert results["cg_like"] < results["bt_like"] <= 1.0

    def test_ep_runtime_untouched_by_memory_policy(self, m):
        cpus = m.os.first_thread_cpus()
        base = play(m, ep_like(), cpus)
        tuned = play(m, ep_like(), cpus, policy=memory_aware_policy)
        assert tuned.runtime_s == pytest.approx(base.runtime_s)

    def test_bt_mixed_tradeoff(self, m):
        cpus = m.os.first_thread_cpus()
        base = play(m, bt_like(), cpus)
        tuned = play(m, bt_like(), cpus, policy=memory_aware_policy)
        # saves energy but pays a small runtime stretch
        assert tuned.energy_j < base.energy_j
        assert tuned.runtime_s >= base.runtime_s
