"""Statistics, histogram and table helpers."""

import numpy as np
import pytest

from repro.core.analysis.histogram import Histogram
from repro.core.analysis.stats import (
    confidence_interval,
    ecdf,
    ecdf_quantile,
    mean_std,
    overlap_fraction,
    within_interval,
)
from repro.core.analysis.tables import format_table
from repro.errors import MeasurementError


class TestStats:
    def test_mean_std(self):
        mean, std = mean_std(np.array([1.0, 2.0, 3.0]))
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(1.0)

    def test_single_sample(self):
        assert mean_std(np.array([5.0])) == (5.0, 0.0)

    def test_empty_raises(self):
        with pytest.raises(MeasurementError):
            mean_std(np.array([]))

    def test_ci_contains_mean(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(10.0, 1.0, 100)
        lo, hi = confidence_interval(samples)
        assert lo < samples.mean() < hi

    def test_ci_width_shrinks_with_n(self):
        rng = np.random.default_rng(0)
        small = rng.normal(0, 1, 30)
        large = rng.normal(0, 1, 3000)
        lo_s, hi_s = confidence_interval(small)
        lo_l, hi_l = confidence_interval(large)
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_ci_level_validation(self):
        with pytest.raises(MeasurementError):
            confidence_interval(np.array([1.0, 2.0]), level=1.5)

    def test_ci_coverage_near_95pct(self):
        # frequentist check of the methodology's validation predicate
        rng = np.random.default_rng(42)
        hits = sum(
            within_interval(0.0, rng.normal(0.0, 1.0, 100)) for _ in range(400)
        )
        assert 0.90 <= hits / 400 <= 0.99

    def test_ecdf_shape(self):
        vals, probs = ecdf(np.array([3.0, 1.0, 2.0]))
        assert list(vals) == [1.0, 2.0, 3.0]
        assert probs[-1] == 1.0
        assert np.all(np.diff(probs) > 0)

    def test_ecdf_empty(self):
        with pytest.raises(MeasurementError):
            ecdf(np.array([]))

    def test_ecdf_quantile(self):
        assert ecdf_quantile(np.arange(101.0), 0.5) == pytest.approx(50.0)

    def test_overlap_disjoint(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([10.0, 11.0])
        assert overlap_fraction(a, b) == 0.0

    def test_overlap_identical(self):
        a = np.array([1.0, 2.0, 3.0])
        assert overlap_fraction(a, a) == 1.0

    def test_overlap_partial(self):
        a = np.arange(0.0, 10.0)
        b = np.arange(5.0, 15.0)
        assert 0.0 < overlap_fraction(a, b) < 1.0


class TestHistogram:
    def test_uniform_has_low_cv(self):
        rng = np.random.default_rng(0)
        h = Histogram.from_samples(rng.uniform(390, 1390, 50_000), bin_width=25.0)
        assert h.uniformity_cv() < 0.1

    def test_gaussian_has_high_cv(self):
        rng = np.random.default_rng(0)
        h = Histogram.from_samples(rng.normal(900, 100, 50_000), bin_width=25.0)
        assert h.uniformity_cv() > 0.5

    def test_support(self):
        h = Histogram.from_samples(np.array([100.0, 200.0, 300.0]), bin_width=50.0)
        lo, hi = h.support
        assert lo <= 100.0 and hi >= 300.0

    def test_n_samples(self):
        h = Histogram.from_samples(np.arange(77.0), bin_width=10.0)
        assert h.n_samples == 77

    def test_empty_raises(self):
        with pytest.raises(MeasurementError):
            Histogram.from_samples(np.array([]), bin_width=1.0)

    def test_single_value(self):
        h = Histogram.from_samples(np.array([5.0, 5.0]), bin_width=1.0)
        assert h.n_samples == 2

    def test_render_ascii(self):
        h = Histogram.from_samples(np.arange(100.0), bin_width=25.0)
        out = h.render_ascii()
        assert "#" in out
        assert len(out.splitlines()) == len(h.counts)


class TestTables:
    def test_alignment(self):
        out = format_table(["a", "bb"], [["x", 1.5], ["yyyy", 2.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "1.500" in out

    def test_custom_float_format(self):
        out = format_table(["v"], [[1.23456]], float_fmt="{:.1f}")
        assert "1.2" in out and "1.23" not in out

    def test_non_float_cells(self):
        out = format_table(["k", "v"], [["key", 42]])
        assert "42" in out


class TestKsDistance:
    def test_identical_distributions_zero(self):
        from repro.core.analysis.stats import ks_distance

        a = np.arange(100.0)
        assert ks_distance(a, a) == 0.0

    def test_disjoint_distributions_one(self):
        from repro.core.analysis.stats import ks_distance

        assert ks_distance(np.arange(0.0, 10.0), np.arange(20.0, 30.0)) == 1.0

    def test_partial_overlap_in_between(self):
        from repro.core.analysis.stats import ks_distance

        rng = np.random.default_rng(0)
        d = ks_distance(rng.normal(0, 1, 500), rng.normal(0.5, 1, 500))
        assert 0.05 < d < 0.6

    def test_symmetric(self):
        from repro.core.analysis.stats import ks_distance

        rng = np.random.default_rng(1)
        a, b = rng.normal(0, 1, 100), rng.normal(1, 2, 150)
        assert ks_distance(a, b) == ks_distance(b, a)

    def test_empty_rejected(self):
        from repro.core.analysis.stats import ks_distance
        from repro.errors import MeasurementError

        with pytest.raises(MeasurementError):
            ks_distance(np.array([]), np.array([1.0]))

    def test_matches_scipy(self):
        from scipy import stats as sps

        from repro.core.analysis.stats import ks_distance

        rng = np.random.default_rng(2)
        a, b = rng.normal(0, 1, 200), rng.exponential(1.0, 300)
        assert ks_distance(a, b) == pytest.approx(sps.ks_2samp(a, b).statistic)
