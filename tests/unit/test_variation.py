"""Per-package manufacturing variation."""

import pytest

from repro.machine import Machine
from repro.units import ghz
from repro.workloads import SPIN


class TestVariation:
    def test_default_machine_is_symmetric(self, machine):
        assert machine.pkg_power_factors == [1.0, 1.0]

    def test_variation_draws_per_package(self):
        m = Machine("EPYC 7502", seed=3, variation_sigma=0.05)
        assert len(m.pkg_power_factors) == 2
        assert m.pkg_power_factors[0] != m.pkg_power_factors[1]
        m.shutdown()

    def test_variation_reproducible(self):
        a = Machine("EPYC 7502", seed=3, variation_sigma=0.05)
        b = Machine("EPYC 7502", seed=3, variation_sigma=0.05)
        assert a.pkg_power_factors == b.pkg_power_factors
        a.shutdown()
        b.shutdown()

    def test_packages_draw_different_power_under_identical_load(self):
        m = Machine("EPYC 7502", seed=3, variation_sigma=0.08)
        m.os.set_all_frequencies(ghz(2.5))
        m.os.run(SPIN, m.os.all_cpus())
        temps = m.thermal_state.temps_c
        p0 = m.power_model.package_power_w(m, m.topology.packages[0], temps)
        p1 = m.power_model.package_power_w(m, m.topology.packages[1], temps)
        m.shutdown()
        # package_power_w splits shared terms evenly; asymmetry shows up
        # in the system breakdown instead
        assert p0 == pytest.approx(p1, rel=0.2)

    def test_system_power_shifts_with_variation(self):
        def total(sigma, seed):
            m = Machine("EPYC 7502", seed=seed, variation_sigma=sigma)
            m.os.set_all_frequencies(ghz(2.5))
            m.os.run(SPIN, m.os.all_cpus())
            out = m.power_model.breakdown(m).total_w
            m.shutdown()
            return out

        nominal = total(0.0, 3)
        varied = total(0.10, 3)
        assert varied != pytest.approx(nominal, abs=1e-6)

    def test_factor_floor(self):
        m = Machine("EPYC 7502", seed=0, variation_sigma=5.0)  # absurd sigma
        assert all(f >= 0.7 for f in m.pkg_power_factors)
        m.shutdown()

    def test_idle_floor_unaffected_by_variation(self):
        # variation scales active-silicon terms; the calibrated idle
        # anchors stay put
        m = Machine("EPYC 7502", seed=3, variation_sigma=0.1)
        assert m.power_model.breakdown(m).total_w == pytest.approx(99.1, abs=0.01)
        m.shutdown()
