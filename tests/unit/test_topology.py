"""Topology construction, enumeration and NUMA partitioning."""

import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.topology import (
    NumaConfig,
    SKUS,
    SystemTopology,
    build_numa_nodes,
    build_topology,
    sku_by_name,
)
from repro.topology.enumeration import cpu_ids_in_sweep_order
from repro.topology.numa import node_of_core
from repro.units import ghz


class TestStructure:
    def test_epyc7502_counts(self):
        topo = build_topology("EPYC 7502", n_packages=2)
        assert len(topo.packages) == 2
        assert topo.n_cores == 64
        assert topo.n_threads == 128

    def test_ccd_ccx_structure(self):
        topo = build_topology("EPYC 7502", n_packages=1)
        pkg = topo.packages[0]
        assert len(pkg.ccds) == 4
        for ccd in pkg.ccds:
            assert len(ccd.ccxs) == 2
            for ccx in ccd.ccxs:
                assert len(ccx.cores) == 4

    def test_each_core_has_two_threads(self):
        topo = build_topology("EPYC 7502", n_packages=1)
        for core in topo.cores():
            assert len(core.threads) == 2
            assert core.threads[0].sibling is core.threads[1]
            assert core.threads[1].sibling is core.threads[0]

    def test_global_indices_unique_and_dense(self):
        topo = build_topology("EPYC 7502", n_packages=2)
        indices = [c.global_index for c in topo.cores()]
        assert sorted(indices) == list(range(64))
        ccx_indices = [x.global_index for x in topo.ccxs()]
        assert sorted(ccx_indices) == list(range(16))

    def test_l3_size(self):
        topo = build_topology("EPYC 7502", n_packages=1)
        ccx = next(iter(topo.ccxs()))
        assert ccx.L3_SIZE_BYTES == 16 * 1024 * 1024
        assert ccx.L3_SLICES == 4

    def test_invalid_package_count(self):
        with pytest.raises(TopologyError):
            SystemTopology(n_packages=3, n_ccds=4, cores_per_ccx=4)

    def test_invalid_ccd_count(self):
        with pytest.raises(TopologyError):
            SystemTopology(n_packages=1, n_ccds=9, cores_per_ccx=4)

    def test_core_lookup_by_global_index(self):
        topo = build_topology("EPYC 7502", n_packages=1)
        core = topo.core_by_global_index(17)
        assert core.global_index == 17
        with pytest.raises(TopologyError):
            topo.core_by_global_index(999)


class TestEnumeration:
    def test_first_threads_numbered_before_siblings(self):
        topo = build_topology("EPYC 7502", n_packages=2)
        # cpu0..63 are thread 0 of all cores; cpu64..127 the siblings
        for cpu_id in range(64):
            assert topo.thread(cpu_id).smt_index == 0
        for cpu_id in range(64, 128):
            assert topo.thread(cpu_id).smt_index == 1

    def test_package_grouping(self):
        topo = build_topology("EPYC 7502", n_packages=2)
        assert topo.thread(0).core.package.index == 0
        assert topo.thread(31).core.package.index == 0
        assert topo.thread(32).core.package.index == 1
        assert topo.thread(63).core.package.index == 1

    def test_sibling_offset(self):
        topo = build_topology("EPYC 7502", n_packages=2)
        t0 = topo.thread(0)
        assert t0.sibling.cpu_id == 64

    def test_lookup_invalid_cpu(self):
        topo = build_topology("EPYC 7502", n_packages=2)
        with pytest.raises(TopologyError):
            topo.thread(128)

    def test_sweep_order_is_ascending(self):
        topo = build_topology("EPYC 7502", n_packages=2)
        assert cpu_ids_in_sweep_order(topo) == list(range(128))


class TestSkus:
    def test_catalogue_has_7502(self):
        sku = sku_by_name("EPYC 7502")
        assert sku.n_cores == 32
        assert sku.tdp_w == 180.0

    def test_unknown_sku_raises_with_hint(self):
        with pytest.raises(ConfigurationError, match="EPYC 7502"):
            sku_by_name("EPYC 9999")

    def test_available_freqs_match_paper(self):
        sku = sku_by_name("EPYC 7502")
        assert sku.available_freqs_hz == (ghz(1.5), ghz(2.2), ghz(2.5))

    def test_all_skus_build(self):
        for name in SKUS:
            topo = build_topology(name, n_packages=1)
            assert topo.n_cores == SKUS[name].n_cores

    def test_initial_frequencies_at_minimum(self):
        topo = build_topology("EPYC 7502", n_packages=1)
        for thread in topo.threads():
            assert thread.requested_freq_hz == ghz(1.5)
        for core in topo.cores():
            assert core.applied_freq_hz == ghz(1.5)


class TestNuma:
    def test_nps4_gives_four_nodes_per_package(self):
        topo = build_topology("EPYC 7502", n_packages=2)
        nodes = build_numa_nodes(topo, NumaConfig.NPS4)
        assert len(nodes) == 8
        for node in nodes:
            assert len(node.memory_channels) == 2
            assert node.n_cores == 8

    def test_nps1_single_node_per_package(self):
        topo = build_topology("EPYC 7502", n_packages=2)
        nodes = build_numa_nodes(topo, NumaConfig.NPS1)
        assert len(nodes) == 2
        assert nodes[0].n_cores == 32
        assert len(nodes[0].memory_channels) == 8

    def test_channels_partition_disjointly(self):
        topo = build_topology("EPYC 7502", n_packages=1)
        nodes = build_numa_nodes(topo, NumaConfig.NPS4)
        seen = [ch for n in nodes for ch in n.memory_channels]
        assert sorted(seen) == list(range(8))

    def test_node_of_core(self):
        topo = build_topology("EPYC 7502", n_packages=1)
        nodes = build_numa_nodes(topo, NumaConfig.NPS4)
        node = node_of_core(nodes, 0)
        assert node.node_id == 0

    def test_node_of_unknown_core_raises(self):
        topo = build_topology("EPYC 7502", n_packages=1)
        nodes = build_numa_nodes(topo, NumaConfig.NPS4)
        with pytest.raises(ConfigurationError):
            node_of_core(nodes, 1000)

    def test_nps4_rejected_for_too_few_ccds(self):
        topo = build_topology("EPYC 7252", n_packages=1)  # 2 CCDs
        with pytest.raises(ConfigurationError):
            build_numa_nodes(topo, NumaConfig.NPS4)
