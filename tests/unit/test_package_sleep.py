"""Package/system sleep states and xGMI link width."""

import pytest

from repro.cstate.package import PackageSleepState, XgmiLinkState
from repro.machine import Machine
from repro.workloads import SPIN


@pytest.fixture
def m():
    machine = Machine("EPYC 7502", seed=0)
    yield machine
    machine.shutdown()


class TestPackageState:
    def test_idle_system_reaches_pc6(self, m):
        report = m.sleep.report()
        assert report.in_deep_sleep
        assert all(s is PackageSleepState.PC6 for s in report.package_states)
        assert report.blockers == ()

    def test_active_core_makes_package_active(self, m):
        m.os.run(SPIN, [0])
        report = m.sleep.report()
        assert report.package_states[0] is PackageSleepState.ACTIVE

    def test_c1_thread_blocks_pc6_on_both_packages(self, m):
        # the §VI-A criterion: a single shallow thread anywhere blocks all
        m.os.sysfs.write("/sys/devices/system/cpu/cpu0/cpuidle/state2/disable", "1")
        report = m.sleep.report()
        assert not report.in_deep_sleep
        assert report.package_states[0] is PackageSleepState.CORES_GATED
        # the *other* package cannot sleep either
        assert report.package_states[1] is PackageSleepState.CORES_GATED
        assert report.blockers == (0,)

    def test_blockers_list_offline_parked_threads(self, m):
        m.os.hotplug.set_offline(70)
        report = m.sleep.report()
        assert 70 in report.blockers

    def test_io_die_low_power_follows_sleep(self, m):
        assert all(pkg.io_die.low_power for pkg in m.topology.packages)
        m.os.run(SPIN, [0])
        assert not any(pkg.io_die.low_power for pkg in m.topology.packages)


class TestXgmi:
    def test_full_width_when_active(self, m):
        m.os.run(SPIN, [0])
        assert m.sleep.xgmi_state() is XgmiLinkState.FULL_WIDTH

    def test_low_power_in_deep_sleep(self, m):
        assert m.sleep.xgmi_state() is XgmiLinkState.LOW_POWER

    def test_reduced_width_when_gated(self, m):
        m.os.sysfs.write("/sys/devices/system/cpu/cpu3/cpuidle/state2/disable", "1")
        assert m.sleep.xgmi_state() is XgmiLinkState.REDUCED_WIDTH

    def test_single_socket_has_no_link(self):
        m = Machine("EPYC 7502", n_packages=1, seed=0)
        assert m.sleep.xgmi_state() is XgmiLinkState.LOW_POWER
        m.shutdown()
