"""The ``repro-zen2 obs`` inspector: summarize / validate / merge."""

from __future__ import annotations

import json

import pytest

from repro.obs import Obs
from repro.obs.cli import main as obs_main
from repro.obs.schema import validate_trace_document


def _write_artifacts(tmp_path):
    obs = Obs()
    with obs.tracer.span("suite"):
        track = obs.tracer.new_track("machine")
        obs.tracer.complete(
            "sim.dispatch", track=track, t0_wall_ns=0, sim_t0_ns=0, sim_t1_ns=500
        )
    obs.counter("suite.entries", source="executed").inc(2)
    trace = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.json"
    trace.write_text(json.dumps(obs.trace_document()))
    metrics.write_text(json.dumps(obs.metrics_snapshot()))
    return trace, metrics


def test_validate_accepts_good_documents(tmp_path, capsys):
    trace, metrics = _write_artifacts(tmp_path)
    assert obs_main(["validate", str(trace), str(metrics)]) == 0
    out = capsys.readouterr().out
    assert "ok (repro.obs/trace)" in out
    assert "ok (repro.obs/metrics)" in out


def test_validate_rejects_corrupt_document(tmp_path, capsys):
    trace, _ = _write_artifacts(tmp_path)
    doc = json.loads(trace.read_text())
    doc["traceEvents"].append({"ph": "X", "name": 3})
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(doc))
    assert obs_main(["validate", str(bad)]) == 1
    assert "INVALID" in capsys.readouterr().out


def test_summarize_both_document_kinds(tmp_path, capsys):
    trace, metrics = _write_artifacts(tmp_path)
    assert obs_main(["summarize", str(trace)]) == 0
    assert "sim.dispatch" in capsys.readouterr().out
    assert obs_main(["summarize", str(metrics)]) == 0
    assert "suite.entries" in capsys.readouterr().out


def test_summarize_unknown_schema_fails(tmp_path, capsys):
    other = tmp_path / "other.json"
    other.write_text('{"schema": "something/else"}')
    assert obs_main(["summarize", str(other)]) == 1


def test_merge_produces_valid_trace(tmp_path, capsys):
    trace, metrics = _write_artifacts(tmp_path)
    out = tmp_path / "merged.json"
    assert obs_main(["merge", str(out), str(trace), str(trace)]) == 0
    merged = json.loads(out.read_text())
    assert validate_trace_document(merged) == []
    assert merged["otherData"]["merged"] == 2
    # Metrics snapshots are not mergeable trace documents.
    assert obs_main(["merge", str(out), str(metrics)]) == 1


def test_unreadable_file_is_a_clean_error(tmp_path):
    with pytest.raises(SystemExit):
        obs_main(["validate", str(tmp_path / "missing.json")])


def test_top_level_cli_forwards_obs(tmp_path, capsys):
    from repro.cli import main as top_main

    trace, _ = _write_artifacts(tmp_path)
    assert top_main(["obs", "validate", str(trace)]) == 0
    assert "ok" in capsys.readouterr().out
