"""Tracepoint buffer (lo2s analogue)."""

import pytest

from repro.errors import ConfigurationError
from repro.oslayer.tracing import AVAILABLE_TRACEPOINTS, TraceBuffer


class TestTraceBuffer:
    def test_emit_and_read(self):
        buf = TraceBuffer()
        buf.emit(100, "sched_waking", 3, target=5)
        buf.emit(200, "sched_switch", 5)
        assert len(buf) == 2
        events = list(buf.events())
        assert events[0].payload == {"target": 5}

    def test_filter_by_name_and_cpu(self):
        buf = TraceBuffer()
        buf.emit(1, "sched_waking", 0)
        buf.emit(2, "sched_switch", 1)
        buf.emit(3, "sched_switch", 2)
        assert len(list(buf.events(name="sched_switch"))) == 2
        assert len(list(buf.events(cpu_id=1))) == 1

    def test_disabled_tracepoint_dropped(self):
        buf = TraceBuffer({"sched_waking"})
        buf.emit(1, "sched_switch", 0)
        assert len(buf) == 0

    def test_unavailable_tracepoint_rejected(self):
        # the event the paper had to migrate away from (§VI-C)
        with pytest.raises(ConfigurationError, match="sched_wake_idle_without_ipi"):
            TraceBuffer({"sched_wake_idle_without_ipi"})

    def test_available_set_contains_sched_waking(self):
        assert "sched_waking" in AVAILABLE_TRACEPOINTS
        assert "sched_wake_idle_without_ipi" not in AVAILABLE_TRACEPOINTS

    def test_last(self):
        buf = TraceBuffer()
        buf.emit(1, "sched_waking", 0)
        buf.emit(9, "sched_waking", 1)
        assert buf.last("sched_waking").time_ns == 9

    def test_last_missing_raises(self):
        with pytest.raises(LookupError):
            TraceBuffer().last("sched_waking")

    def test_pairwise_latencies(self):
        buf = TraceBuffer()
        buf.emit(100, "sched_waking", 0)
        buf.emit(150, "sched_switch", 1)
        buf.emit(300, "sched_waking", 0)
        buf.emit(390, "sched_switch", 1)
        assert buf.pairwise_latencies_ns("sched_waking", "sched_switch") == [50, 90]

    def test_pairwise_ignores_unmatched(self):
        buf = TraceBuffer()
        buf.emit(100, "sched_switch", 1)  # switch with no waking: ignored
        buf.emit(200, "sched_waking", 0)  # waking with no switch: ignored
        assert buf.pairwise_latencies_ns("sched_waking", "sched_switch") == []

    def test_clear(self):
        buf = TraceBuffer()
        buf.emit(1, "sched_waking", 0)
        buf.clear()
        assert len(buf) == 0
