"""ASCII plots, the turbostat reporter and the selfcheck."""

import numpy as np
import pytest

from repro.core.analysis.plots import ascii_ecdf, ascii_scatter, ascii_series
from repro.core.selfcheck import selfcheck
from repro.errors import MeasurementError
from repro.machine import Machine
from repro.oslayer import turbostat
from repro.units import ghz
from repro.workloads import FIRESTARTER, SPIN


class TestAsciiPlots:
    def test_scatter_renders_all_points_region(self):
        out = ascii_scatter([1, 2, 3], [1, 4, 9], width=30, height=10)
        assert out.count("o") == 3
        assert "9.0" in out and "1.0" in out

    def test_scatter_rejects_mismatched(self):
        with pytest.raises(MeasurementError):
            ascii_scatter([1, 2], [1])

    def test_scatter_constant_values(self):
        out = ascii_scatter([5, 5], [7, 7])
        assert "o" in out  # degenerate ranges handled

    def test_series_legend(self):
        out = ascii_series(
            {"p0": ([1, 2], [10, 20]), "p1": ([1, 2], [5, 15])},
            width=20,
            height=8,
        )
        assert "a = p0" in out and "b = p1" in out

    def test_series_empty_rejected(self):
        with pytest.raises(MeasurementError):
            ascii_series({})

    def test_ecdf_monotone_rendering(self):
        rng = np.random.default_rng(0)
        out = ascii_ecdf({"w0": rng.normal(0, 1, 100), "w1": rng.normal(3, 1, 100)})
        assert "a = w0" in out and "b = w1" in out


class TestTurbostat:
    @pytest.fixture
    def m(self):
        machine = Machine("EPYC 7502", seed=2)
        yield machine
        machine.shutdown()

    def test_core_rows_reflect_state(self, m):
        m.os.set_all_frequencies(ghz(2.5))
        m.os.run(SPIN, [0])
        rows = turbostat.core_rows(m)
        assert rows[0][2] == pytest.approx(2.5)
        assert rows[0][3] == "50%"
        assert rows[0][5] == "spin"
        assert rows[1][3] == "0%"

    def test_package_rows_report_power(self, m):
        m.os.run(FIRESTARTER, m.os.all_cpus())
        rows = turbostat.package_rows(m, interval_s=1.0)
        assert len(rows) == 2
        assert rows[0][1] > 100.0  # RAPL W under load

    def test_report_truncation(self, m):
        out = turbostat.report(m, max_cores=4)
        assert "(60 more cores)" in out
        assert "package0" in out


class TestSelfcheck:
    def test_default_machine_passes(self):
        m = Machine("EPYC 7502", seed=0)
        table = selfcheck(m)
        m.shutdown()
        assert table.all_ok, table.render()

    def test_detects_broken_calibration(self):
        from dataclasses import replace

        from repro.power.calibration import CALIBRATION

        broken = replace(CALIBRATION, system_wake_w=40.0)  # half the truth
        m = Machine("EPYC 7502", seed=0, calibration=broken)
        table = selfcheck(m)
        m.shutdown()
        assert not table.all_ok
        assert any("C1" in c.quantity for c in table.failures())

    def test_leaves_machine_stopped(self):
        m = Machine("EPYC 7502", seed=0)
        selfcheck(m)
        assert all(t.workload is None for t in m.topology.threads())
        m.shutdown()
