"""The PPT power-capping loop."""

import pytest

from repro.machine import Machine
from repro.smu.ppt import PptManager
from repro.units import ghz
from repro.workloads import FIRESTARTER, MEMORY_READ, SPIN


@pytest.fixture
def m():
    machine = Machine("EPYC 7502", seed=0)
    yield machine
    machine.shutdown()


def _load_firestarter(m):
    m.os.set_all_frequencies(ghz(2.5))
    m.os.run(FIRESTARTER, m.os.all_cpus())
    m.preheat()


class TestPptLoop:
    def test_default_limit_never_binds_fig6(self, m):
        # the Fig 6 operating point stays EDC-limited, not power-limited
        _load_firestarter(m)
        assert m.topology.thread(0).core.applied_freq_hz == ghz(2.0)
        assert m.smus[0].edc_cap_hz == ghz(2.0)
        ppt = m.smus[0].ppt_cap_hz
        assert ppt is None or ppt > ghz(2.0)

    def test_lower_limit_throttles_below_edc(self, m):
        _load_firestarter(m)
        m.set_power_limit_w(120.0)
        assert m.topology.thread(0).core.applied_freq_hz < ghz(2.0)

    def test_cap_released_when_limit_raised(self, m):
        _load_firestarter(m)
        m.set_power_limit_w(120.0)
        m.set_power_limit_w(1000.0)
        assert m.topology.thread(0).core.applied_freq_hz == ghz(2.0)

    def test_modelled_power_respects_limit(self, m):
        _load_firestarter(m)
        m.set_power_limit_w(120.0)
        rec = m.measure(10.0)
        assert rec.rapl_pkg_w[0] <= 121.0

    def test_wall_power_can_violate_the_cap(self, m):
        # the §VII accuracy gap as an operational risk: the SMU holds the
        # cap in model-space while the true package power exceeds it
        _load_firestarter(m)
        m.set_power_limit_w(120.0)
        excess = m.smus[0].ppt.true_power_excess_w(m, m.topology.packages[0])
        assert excess > 5.0

    def test_assessment_quantized_to_grid(self, m):
        _load_firestarter(m)
        m.set_power_limit_w(120.0)
        cap = m.smus[0].ppt_cap_hz
        assert cap is not None
        assert cap / 25e6 == pytest.approx(round(cap / 25e6))

    def test_light_load_unaffected_by_moderate_cap(self, m):
        m.os.set_all_frequencies(ghz(2.5))
        m.os.run(SPIN, m.os.cpus_of_ccx(0))
        m.set_power_limit_w(120.0)
        assert m.topology.thread(0).core.applied_freq_hz == ghz(2.5)

    def test_hypothetical_evaluation_restores_state(self, m):
        _load_firestarter(m)
        pkg = m.topology.packages[0]
        before = [c.applied_freq_hz for c in pkg.cores()]
        ppt = PptManager(limit_w=100.0)
        ppt.modelled_package_power_w(pkg, ghz(1.5))
        assert [c.applied_freq_hz for c in pkg.cores()] == before

    def test_memory_workload_cap_mostly_honest(self, m):
        # DIMM power lives outside the package, so a *package* cap on a
        # memory workload is not violated at the socket
        m.os.set_all_frequencies(ghz(2.5))
        m.os.run(MEMORY_READ, m.os.all_cpus())
        m.preheat()
        m.set_power_limit_w(90.0)
        excess = m.smus[0].ppt.true_power_excess_w(m, m.topology.packages[0])
        assert excess < 5.0
