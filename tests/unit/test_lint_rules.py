"""Good/bad fixture pairs for every static lint rule.

Each rule gets at least one snippet that must trigger it and one
"correct idiom" snippet that must stay silent — the rules are only
useful if both directions hold.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import LintError
from repro.lint import lint_paths, lint_source
from repro.lint.formatters import format_human, format_json
from repro.lint.rules import all_rules, rules_by_id


def findings_for(source: str, rule_id: str | None = None):
    findings, _ = lint_source(source)
    if rule_id is None:
        return findings
    return [f for f in findings if f.rule == rule_id]


def rules_hit(source: str) -> set[str]:
    return {f.rule for f in findings_for(source)}


# ---------------------------------------------------------------------------
# DET001: nondeterminism
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "source",
    [
        "import time\nt = time.time()\n",
        "import time as clock\nt = clock.monotonic()\n",
        "from time import perf_counter\nt = perf_counter()\n",
        "from datetime import datetime\nd = datetime.now()\n",
        "import datetime\nd = datetime.datetime.utcnow()\n",
        "import random\nx = random.random()\n",
        "from random import randint\nx = randint(0, 3)\n",
        "import numpy as np\nx = np.random.rand(4)\n",
        "import numpy as np\ng = np.random.default_rng()\n",  # unseeded
        "d = {}\nk, v = d.popitem()\n",
        "for x in {1, 2, 3}:\n    pass\n",
        "vals = [v for v in set(items)]\n",
    ],
)
def test_det001_flags_nondeterminism(source):
    assert rules_hit(source) == {"DET001"}


@pytest.mark.parametrize(
    "source",
    [
        "from repro.sim.rng import RngFactory\nrng = RngFactory(0)\n",
        "x = rng.child('noise').normal()\n",
        "import numpy as np\ng = np.random.default_rng(7)\n",  # seeded
        "import random\nr = random.Random(3)\n",  # seeded instance
        "from numpy.random import Generator, PCG64\ng = Generator(PCG64(1))\n",
        "for x in sorted({1, 2, 3}):\n    pass\n",
        "d = {}\nfor k in d:\n    pass\n",  # dicts are insertion-ordered
    ],
)
def test_det001_allows_seeded_idioms(source):
    assert "DET001" not in rules_hit(source)


# ---------------------------------------------------------------------------
# UNIT001: unit suffixes
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "source",
    [
        "def f(delay_ns: float):\n    pass\n",
        "def g() -> float:\n    pass\n".replace("g", "wait_ns"),
        "t_ns: float = 0.0\n",
        "power_w: int = 3\n",
        "t_ns = 1.5\n",
        "t_ns = total_ns / 2\n",
        "t_ns = base_ns + 0.5\n",
        "t_ns += extra / count\n",
        "time_ns = delay_us\n",
        "self.period_ns = interval_ms\n",
        "freq_hz = power_w\n",  # cross-dimension
        "f(time_ns=delay_us)\n",
        "g(power_w=volts_v)\n",  # kwarg, cross-dimension
        "t_ns += delta_us\n",  # augmented, cross-scale
        "t_ns += base_ns / 4\n",  # augmented, float result
        "t_ns, f_hz = delay_us, clock_hz\n",  # tuple unpack, first pair
        "a_hz, b_ns = base_hz, 2.5\n",  # tuple unpack, float literal
        "(x_ns, y_ns) = [start_ns, stop_us]\n",  # list/tuple mix
    ],
)
def test_unit001_flags_suffix_misuse(source):
    assert rules_hit(source) == {"UNIT001"}


@pytest.mark.parametrize(
    "source",
    [
        "def f(delay_ns: int) -> int:\n    return delay_ns\n",
        "t_ns = round(raw * scale)\n",
        "t_ns = int(total / 2)\n",
        "from repro.units import us\nt_ns = us(5)\n",
        "power_w: float = 3.0\n",
        "time_ns = other_ns\n",  # same suffix
        "f(time_ns=start_ns)\n",
        "plain = 1.5\n",  # no recognized suffix
        "t_ns, f_hz = base_ns, clock_hz\n",  # tuple unpack, consistent
        "t_ns, *rest_us = values\n",  # starred: out of scope
        "t_ns, extra = unpack_me()\n",  # arity unknown: out of scope
        "t_ns += step_ns\n",  # augmented, same suffix
    ],
)
def test_unit001_allows_consistent_units(source):
    assert "UNIT001" not in rules_hit(source)


# ---------------------------------------------------------------------------
# EXC001: exception hierarchy
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "source",
    [
        'raise ValueError("bad")\n',
        'raise RuntimeError("boom")\n',
        'def f():\n    raise KeyError("missing")\n',
    ],
)
def test_exc001_flags_unjustified_builtins(source):
    assert rules_hit(source) == {"EXC001"}


@pytest.mark.parametrize(
    "source",
    [
        'raise ValueError("bad")  # EXC001: argument validation\n',
        '# EXC001: mapping facade\nraise KeyError("missing")\n',
        "from repro.errors import SimulationError\n"
        'raise SimulationError("clock")\n',
        "from repro.errors import ReproError\n"
        "class MyError(ReproError):\n    pass\n"
        'def f():\n    raise MyError("x")\n',
        "try:\n    pass\nexcept ValueError as err:\n    raise err\n",
        "def f():\n    raise\n",  # bare re-raise
    ],
)
def test_exc001_allows_hierarchy_and_justified(source):
    assert "EXC001" not in rules_hit(source)


# ---------------------------------------------------------------------------
# SIM001: simulator re-entry
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "source",
    [
        "def cb():\n    sim.run_until(10)\nsim.schedule_after(5, cb)\n",
        "def cb():\n    machine.sim.run_for(100)\nsim.schedule_at(5, cb)\n",
        "sim.schedule_after(5, lambda: sim.step())\n",
        "sim.periodic(10, cb, phase_ns=3)\n"
        "def cb():\n    sim.run_until(99)\n",
        "sim._now_ns = 5\n",  # clock mutation anywhere
        "self.sim.now_ns = 0\n",
    ],
)
def test_sim001_flags_reentry(source):
    assert rules_hit(source) == {"SIM001"}


@pytest.mark.parametrize(
    "source",
    [
        # callbacks may schedule more events, just not drive the clock
        "def cb():\n    sim.schedule_after(10, cb)\nsim.schedule_after(5, cb)\n",
        "def elsewhere():\n    sim.run_until(10)\n",  # not a callback
        "now = sim.now_ns\n",  # reading the clock is fine
        "sim.periodic(10, tick, phase_ns=3)\ndef tick():\n    count.append(1)\n",
    ],
)
def test_sim001_allows_scheduling_from_callbacks(source):
    assert "SIM001" not in rules_hit(source)


# ---------------------------------------------------------------------------
# suppressions, selection, formatters
# ---------------------------------------------------------------------------


def test_inline_suppression_counts_but_hides():
    findings, suppressed = lint_source(
        "import time\nt = time.time()  # lint: disable=DET001\n"
    )
    assert findings == [] and suppressed == 1


def test_inline_suppression_is_rule_specific():
    findings, suppressed = lint_source(
        "import time\nt = time.time()  # lint: disable=UNIT001\n"
    )
    assert suppressed == 0
    # The mismatched suppression hides nothing (DET001 still fires) and
    # is itself reported as stale (LINT001).
    assert sorted(f.rule for f in findings) == ["DET001", "LINT001"]


def test_file_level_suppression():
    findings, suppressed = lint_source(
        "# lint: disable-file=DET001 — fixture\n"
        "import time\na = time.time()\nb = time.time()\n"
    )
    assert findings == [] and suppressed == 2


def test_stale_inline_suppression_is_lint001():
    findings, suppressed = lint_source("x = 1  # lint: disable=DET001\n")
    assert suppressed == 0
    assert [(f.rule, f.severity, f.line) for f in findings] == [
        ("LINT001", "warning", 1)
    ]
    assert "DET001" in findings[0].message


def test_stale_file_level_suppression_is_lint001():
    findings, _ = lint_source("# lint: disable-file=UNIT001\nx = 1\n")
    assert [(f.rule, f.line) for f in findings] == [("LINT001", 1)]


def test_used_suppression_is_not_stale():
    findings, suppressed = lint_source(
        "import time\nt = time.time()  # lint: disable=DET001\n"
    )
    assert findings == [] and suppressed == 1


def test_lint001_is_itself_suppressible():
    findings, suppressed = lint_source(
        "x = 1  # lint: disable=DET001,LINT001\n"
    )
    assert findings == [] and suppressed == 1


def test_suppression_inside_string_literal_is_inert():
    findings, suppressed = lint_source(
        's = "quoted  # lint: disable=DET001"\n'
    )
    assert findings == [] and suppressed == 0


def test_syntax_error_becomes_parse_finding():
    findings, _ = lint_source("def f(:\n")
    assert [f.rule for f in findings] == ["PARSE"]


def test_rule_selection_and_unknown_rule():
    assert {r.rule_id for r in all_rules()} == {
        "DET001",
        "UNIT001",
        "EXC001",
        "SIM001",
    }
    only = all_rules(select=["DET001"])
    assert [r.rule_id for r in only] == ["DET001"]
    with pytest.raises(LintError):
        all_rules(select=["NOPE999"])
    assert "UNIT001" in rules_by_id()


def test_lint_paths_and_formatters(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\nx_ns = 1.5\n")
    report = lint_paths([str(bad)])
    assert report.files_checked == 1
    assert not report.clean
    assert report.counts_by_rule() == {"DET001": 1, "UNIT001": 1}

    human = format_human(report)
    assert "bad.py:2" in human and "DET001" in human

    data = json.loads(format_json(report))
    assert data["files_checked"] == 1
    assert data["counts_by_rule"] == {"DET001": 1, "UNIT001": 1}
    assert {f["rule"] for f in data["findings"]} == {"DET001", "UNIT001"}


def test_lint_paths_missing_path():
    with pytest.raises(LintError):
        lint_paths(["/no/such/dir-xyz"])


# ---------------------------------------------------------------------------
# source reading: encodings
# ---------------------------------------------------------------------------


class TestReadSource:
    def test_pep263_cookie_is_honoured(self, tmp_path):
        from repro.lint.engine import read_source

        path = tmp_path / "legacy.py"
        path.write_bytes(
            b"# -*- coding: latin-1 -*-\n# caf\xe9\nx = 1\n"
        )
        source = read_source(str(path))
        assert "café" in source and "x = 1" in source

    def test_utf8_bom_is_stripped(self, tmp_path):
        from repro.lint.engine import read_source

        path = tmp_path / "bom.py"
        path.write_bytes(b"\xef\xbb\xbfx = 1\n")
        source = read_source(str(path))
        assert source.startswith("x = 1")

    def test_utf8_is_the_default(self, tmp_path):
        from repro.lint.engine import read_source

        path = tmp_path / "plain.py"
        path.write_bytes("t_ns = 0  # délai\n".encode("utf-8"))
        assert "délai" in read_source(str(path))

    def test_undecodable_bytes_raise_lint_error(self, tmp_path):
        from repro.lint.engine import read_source

        path = tmp_path / "broken.py"
        path.write_bytes(b"x = 1\n\xff\xfe\xff invalid utf-8\n")
        with pytest.raises(LintError, match="cannot decode"):
            read_source(str(path))

    def test_bogus_cookie_raises_lint_error(self, tmp_path):
        from repro.lint.engine import read_source

        path = tmp_path / "cookie.py"
        path.write_bytes(b"# -*- coding: no-such-codec -*-\nx = 1\n")
        with pytest.raises(LintError, match="cannot decode"):
            read_source(str(path))

    def test_lint_paths_reads_cookie_files(self, tmp_path):
        path = tmp_path / "legacy.py"
        path.write_bytes(b"# -*- coding: latin-1 -*-\nv_mv = 1.0  # \xb5V\n")
        report = lint_paths([str(path)])
        assert report.files_checked == 1
