"""The SMU transition state machine (slots, delays, fast returns)."""

import pytest

from repro.power.calibration import CALIBRATION
from repro.pstate.transitions import TransitionEngine
from repro.sim.engine import Simulator
from repro.topology import build_topology
from repro.units import ghz, ms, us


@pytest.fixture
def setup():
    sim = Simulator()
    topo = build_topology("EPYC 7502", n_packages=1)
    core = next(topo.cores())
    core.applied_freq_hz = ghz(2.2)
    engine = TransitionEngine(sim, CALIBRATION)
    return sim, core, engine


class TestSlotGrid:
    def test_transition_waits_for_slot_boundary(self, setup):
        sim, core, engine = setup
        sim.run_until(us(300))  # mid-slot
        engine.request(core, ghz(1.5))
        # at the 1 ms boundary, the transition starts; 390 us later done
        sim.run_until(ms(1) + us(389))
        assert core.applied_freq_hz == ghz(2.2)
        sim.run_until(ms(1) + us(391))
        assert core.applied_freq_hz == ghz(1.5)

    def test_latency_includes_slot_wait(self, setup):
        sim, core, engine = setup
        sim.run_until(us(100))
        engine.request(core, ghz(1.5))
        sim.run_until(ms(5))
        rec = engine.record_of(core)
        assert rec.latency_ns == ms(1) - us(100) + us(390)

    def test_request_exactly_on_boundary_waits_full_slot(self, setup):
        sim, core, engine = setup
        sim.run_until(ms(1))
        engine.request(core, ghz(1.5))
        sim.run_until(ms(3))
        assert engine.record_of(core).latency_ns == ms(1) + us(390)

    def test_up_transition_faster_than_down(self, setup):
        sim, core, engine = setup
        engine.request(core, ghz(2.5))
        sim.run_until(ms(3))
        assert engine.record_of(core).completed_at_ns - engine.record_of(core).started_at_ns == us(360)

    def test_no_op_request_ignored(self, setup):
        sim, core, engine = setup
        engine.request(core, ghz(2.2))
        assert sim.pending_events == 0

    def test_settled_machine_has_no_events(self, setup):
        sim, core, engine = setup
        engine.request(core, ghz(1.5))
        sim.run_until(ms(10))
        assert sim.pending_events == 0


class TestFastReturn:
    def test_up_return_within_window_is_instant(self, setup):
        sim, core, engine = setup
        core.applied_freq_hz = ghz(2.5)
        engine.request(core, ghz(2.2))
        sim.run_until(ms(2))  # down complete, voltage settling
        assert core.applied_freq_hz == ghz(2.2)
        t0 = sim.now_ns
        engine.request(core, ghz(2.5))
        sim.run_until(t0 + us(2))
        assert core.applied_freq_hz == ghz(2.5)
        assert engine.record_of(core).fast_return

    def test_no_fast_return_after_settle_window(self, setup):
        sim, core, engine = setup
        core.applied_freq_hz = ghz(2.5)
        engine.request(core, ghz(2.2))
        sim.run_until(ms(2))
        sim.run_for(ms(6))  # beyond the 5 ms window
        engine.request(core, ghz(2.5))
        sim.run_for(us(5))
        assert core.applied_freq_hz == ghz(2.2)  # still waiting for slot
        sim.run_for(ms(2))
        assert core.applied_freq_hz == ghz(2.5)
        assert not engine.record_of(core).fast_return

    def test_no_fast_return_for_large_voltage_gap(self, setup):
        sim, core, engine = setup
        core.applied_freq_hz = ghz(2.5)
        engine.request(core, ghz(1.5))  # big gap
        sim.run_until(ms(2))
        engine.request(core, ghz(2.5))
        sim.run_for(us(5))
        assert core.applied_freq_hz == ghz(1.5)  # no instant return

    def test_down_after_fast_return_is_partial(self, setup):
        sim, core, engine = setup
        core.applied_freq_hz = ghz(2.5)
        engine.request(core, ghz(2.2))
        sim.run_until(ms(2))
        engine.request(core, ghz(2.5))  # fast return
        sim.run_for(us(10))
        engine.request(core, ghz(2.2))  # down while voltage recovering
        sim.run_until(ms(8))
        rec = engine.record_of(core)
        duration = rec.completed_at_ns - rec.started_at_ns
        assert duration < us(390)
        assert duration >= CALIBRATION.partial_transition_min_ns

    def test_fast_return_only_to_previous_frequency(self, setup):
        sim, core, engine = setup
        core.applied_freq_hz = ghz(2.5)
        engine.request(core, ghz(2.2))
        sim.run_until(ms(2))
        engine.request(core, ghz(2.5) - 25e6 * 2)  # 2.45, not the previous 2.5
        sim.run_for(us(5))
        assert core.applied_freq_hz == ghz(2.2)


class TestBookkeeping:
    def test_record_tracks_from_to(self, setup):
        sim, core, engine = setup
        engine.request(core, ghz(1.5))
        sim.run_until(ms(3))
        rec = engine.record_of(core)
        assert rec.from_hz == ghz(2.2)
        assert rec.to_hz == ghz(1.5)

    def test_latency_negative_before_any_transition(self, setup):
        _, core, engine = setup
        assert engine.record_of(core).latency_ns == -1

    def test_in_flight_flag(self, setup):
        sim, core, engine = setup
        engine.request(core, ghz(1.5))
        sim.run_until(ms(1) + us(10))
        assert engine.in_flight(core)
        sim.run_until(ms(2))
        assert not engine.in_flight(core)

    def test_on_applied_callback(self, setup):
        sim, core, engine = setup
        seen = []
        engine.on_applied = lambda c, f: seen.append((c.global_index, f))
        engine.request(core, ghz(1.5))
        sim.run_until(ms(3))
        assert seen == [(core.global_index, ghz(1.5))]

    def test_independent_cores_transition_in_parallel(self, setup):
        sim, core, engine = setup
        topo = core.ccx.ccd.package.system
        other = topo.core_by_global_index(1)
        other.applied_freq_hz = ghz(2.2)
        engine.request(core, ghz(1.5))
        engine.request(other, ghz(2.5))
        sim.run_until(ms(3))
        assert core.applied_freq_hz == ghz(1.5)
        assert other.applied_freq_hz == ghz(2.5)
