"""EDC manager and SMU hierarchy."""

import pytest

from repro.machine import Machine
from repro.smu.edc import EdcManager
from repro.units import ghz
from repro.workloads import FIRESTARTER, SPIN, STREAM_TRIAD


@pytest.fixture
def m():
    machine = Machine("EPYC 7502", seed=0)
    yield machine
    machine.shutdown()


class TestEdcDemand:
    def test_gated_core_residual_current(self):
        edc = EdcManager(limit_a=150.0)
        assert 0 < edc.core_current_a(None, 0, ghz(2.5)) < 1.0

    def test_demand_scales_with_frequency(self):
        edc = EdcManager(limit_a=150.0)
        lo = edc.core_current_a(FIRESTARTER, 2, ghz(2.0))
        hi = edc.core_current_a(FIRESTARTER, 2, ghz(2.5))
        assert hi > lo

    def test_demand_scales_with_edc_weight(self):
        edc = EdcManager(limit_a=150.0)
        heavy = edc.core_current_a(FIRESTARTER, 2, ghz(2.5))
        light = edc.core_current_a(SPIN, 2, ghz(2.5))
        assert heavy > 4 * light

    def test_smt_mode_amortizes_current(self):
        edc = EdcManager(limit_a=150.0)
        # per unit of (ipc x f), two threads draw slightly less
        one = edc.core_current_a(FIRESTARTER, 1, ghz(2.0))
        two = edc.core_current_a(FIRESTARTER, 2, ghz(2.0))
        ratio = (two - 0.55 * 0.95) / (one - 0.55 * 0.95)
        ipc_ratio = FIRESTARTER.ipc_2t / FIRESTARTER.ipc_1t
        assert ratio < ipc_ratio  # coefficient discount applied


class TestEdcControl:
    def test_firestarter_throttles_to_paper_points(self, m):
        m.os.set_all_frequencies(ghz(2.5))
        m.os.run(FIRESTARTER, m.os.all_cpus())
        assert m.topology.thread(0).core.applied_freq_hz == ghz(2.0)
        m.os.run(FIRESTARTER, m.os.first_thread_cpus())
        m.os.stop([t.cpu_id for t in m.topology.threads() if t.smt_index == 1])
        assert m.topology.thread(0).core.applied_freq_hz == ghz(2.1)

    def test_light_workloads_never_throttle(self, m):
        m.os.set_all_frequencies(ghz(2.5))
        for wl in (SPIN, STREAM_TRIAD):
            m.os.run(wl, m.os.all_cpus())
            assert m.topology.thread(0).core.applied_freq_hz == ghz(2.5)
            assert m.edc_cap_hz(0) is None

    def test_partial_load_no_throttle(self, m):
        m.os.set_all_frequencies(ghz(2.5))
        m.os.run(FIRESTARTER, m.os.cpus_of_ccx(0, smt=True))  # 4 cores only
        assert m.topology.thread(0).core.applied_freq_hz == ghz(2.5)

    def test_assessment_reports_demand_and_cap(self, m):
        m.os.set_all_frequencies(ghz(2.5))
        m.os.run(FIRESTARTER, m.os.all_cpus())
        smu = m.smus[0]
        assessment = smu.run_edc_loop(ghz(2.5))
        assert assessment.throttled
        assert assessment.cap_hz == ghz(2.0)
        assert assessment.demand_a <= assessment.limit_a

    def test_cap_quantized_to_25mhz(self, m):
        m.os.set_all_frequencies(ghz(2.5))
        m.os.run(FIRESTARTER, m.os.all_cpus())
        cap = m.edc_cap_hz(0)
        assert cap is not None
        assert (cap / 25e6) == pytest.approx(round(cap / 25e6))

    def test_bigger_sku_throttles_deeper(self):
        results = {}
        for sku in ("EPYC 7502", "EPYC 7742"):
            machine = Machine(sku, seed=0)
            machine.os.set_all_frequencies(max(machine.sku.available_freqs_hz))
            machine.os.run(FIRESTARTER, machine.os.all_cpus())
            results[sku] = machine.topology.thread(0).core.applied_freq_hz
            machine.shutdown()
        assert results["EPYC 7742"] < results["EPYC 7502"]


class TestSmuHierarchy:
    def test_one_smu_per_ccd_plus_iod(self, m):
        smu = m.smus[0]
        assert len(smu.die_smus) == 4
        assert smu.io_smu.die_name == "iod"

    def test_telemetry_collection(self, m):
        smu = m.smus[0]
        smu.collect_telemetry(66.0)
        assert all(s.temperature_c == 66.0 for s in smu.die_smus)
        assert smu.io_smu.temperature_c == 66.0

    def test_edc_loop_updates_die_currents(self, m):
        m.os.set_all_frequencies(ghz(2.5))
        m.os.run(FIRESTARTER, m.os.all_cpus())
        smu = m.smus[0]
        smu.run_edc_loop(ghz(2.5))
        assert all(s.current_a > 0 for s in smu.die_smus)
