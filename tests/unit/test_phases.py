"""Phased applications and playback accounting."""

import pytest

from repro.errors import WorkloadError
from repro.machine import Machine
from repro.units import ghz
from repro.workloads import SPIN, STREAM_TRIAD
from repro.workloads.phases import (
    Phase,
    PhasedApplication,
    PlaybackResult,
    WORST_CASE_TRANSITION_S,
    play,
)


@pytest.fixture
def m():
    machine = Machine("EPYC 7502", seed=4)
    yield machine
    machine.shutdown()


def _app(phase_s=0.1):
    app = PhasedApplication("mini-hpc")
    app.add(SPIN, phase_s, freq_sensitivity=1.0)
    app.add(STREAM_TRIAD, phase_s, freq_sensitivity=0.1)
    app.add(SPIN, phase_s, freq_sensitivity=1.0)
    return app


class TestStructure:
    def test_durations_accumulate(self):
        assert _app(0.2).total_duration_s == pytest.approx(0.6)

    def test_invalid_phase_rejected(self):
        with pytest.raises(WorkloadError):
            Phase(SPIN, duration_s=0.0)
        with pytest.raises(WorkloadError):
            Phase(SPIN, duration_s=1.0, freq_sensitivity=2.0)


class TestPlayback:
    def test_untuned_runtime_is_nominal(self, m):
        cpus = m.os.first_thread_cpus(8)
        res = play(m, _app(), cpus)
        assert isinstance(res, PlaybackResult)
        assert res.runtime_s == pytest.approx(0.3)
        assert res.energy_j > 0
        assert len(res.phase_energies_j) == 3

    def test_tuning_memory_phases_saves_energy(self, m):
        # enough workers that dynamic power outweighs the idle base —
        # on 8 cores race-to-idle wins, which test_race_to_idle covers
        cpus = m.os.first_thread_cpus()
        base = play(m, _app(), cpus)

        def policy(phase):
            return ghz(1.5) if phase.freq_sensitivity < 0.5 else ghz(2.5)

        tuned = play(m, _app(), cpus, policy=policy)
        assert tuned.energy_j < base.energy_j
        # the memory phase stretches only slightly
        assert tuned.runtime_s < base.runtime_s * 1.1

    def test_race_to_idle_wins_on_few_cores(self, m):
        # with 8 workers the 180 W awake base dominates: stretching the
        # memory phase costs more than the downclock saves
        cpus = m.os.first_thread_cpus(8)
        base = play(m, _app(), cpus)

        def policy(phase):
            return ghz(1.5) if phase.freq_sensitivity < 0.5 else ghz(2.5)

        tuned = play(m, _app(), cpus, policy=policy)
        assert tuned.energy_j > base.energy_j

    def test_short_phases_defeat_tuning(self, m):
        cpus = m.os.first_thread_cpus(8)
        short = _app(phase_s=WORST_CASE_TRANSITION_S / 2)

        def policy(phase):
            return ghz(1.5) if phase.freq_sensitivity < 0.5 else ghz(2.5)

        tuned = play(m, short, cpus, policy=policy)
        untuned = play(m, short, cpus)
        # requests never land: same energy as the untuned run
        assert tuned.energy_j == pytest.approx(untuned.energy_j, rel=1e-6)

    def test_downclocking_compute_costs_runtime(self, m):
        cpus = m.os.first_thread_cpus(8)
        slow = play(m, _app(), cpus, policy=lambda p: ghz(1.5))
        fast = play(m, _app(), cpus, policy=lambda p: ghz(2.5))
        assert slow.runtime_s > fast.runtime_s * 1.4

    def test_average_power(self, m):
        cpus = m.os.first_thread_cpus(8)
        res = play(m, _app(), cpus)
        assert res.average_power_w == pytest.approx(res.energy_j / res.runtime_s)
