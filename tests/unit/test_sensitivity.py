"""Calibration sensitivity analysis."""

import pytest

from repro.core.sensitivity import DEFAULT_TARGETS, run_sensitivity


@pytest.fixture(scope="module")
def result():
    return run_sensitivity()


class TestSensitivity:
    def test_all_targets_evaluated(self, result):
        assert {r.constant for r in result.rows} == set(DEFAULT_TARGETS)

    def test_wake_term_breaks_c1_anchor(self, result):
        row = next(r for r in result.rows if r.constant == "system_wake_w")
        assert row.sensitive
        assert any("C1" in q for q in row.broke)

    def test_platform_base_breaks_idle_floor(self, result):
        row = next(r for r in result.rows if r.constant == "platform_base_w")
        assert any("idle floor" in q for q in row.broke)

    def test_edc_coefficient_moves_throttle_point(self, result):
        row = next(
            r for r in result.rows if r.constant == "edc_dyn_a_per_ipcghz_2t"
        )
        assert any("FIRESTARTER" in q for q in row.broke)

    def test_latency_constants_break_latency_anchor(self, result):
        row = next(
            r for r in result.rows if r.constant == "mem_latency_core_path_ns"
        )
        assert any("DRAM latency" in q for q in row.broke)

    def test_slope_only_constant_is_insensitive(self, result):
        assert "c1_per_core_w" in result.insensitive_constants()

    def test_transition_constant_breaks_timing_row(self, result):
        row = next(r for r in result.rows if r.constant == "transition_down_ns")
        assert any("transition" in q for q in row.broke)

    def test_partition(self, result):
        sens = set(result.sensitive_constants())
        insens = set(result.insensitive_constants())
        assert not (sens & insens)
        assert sens | insens == set(DEFAULT_TARGETS)
