"""The repro-zen2 command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCli:
    def test_experiment_registry_covers_all_artifacts(self):
        expected = {
            "fig1", "sec5a", "fig3", "tab1", "fig4", "fig5", "fig6",
            "fig7", "fig8", "fig9", "fig10", "rapl-rate",
        }
        assert set(EXPERIMENTS) == expected

    def test_fig1_runs(self, capsys):
        assert main(["fig1", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Green500" in out
        assert "Zen 2 (Rome)" in out

    def test_sec5a_runs_and_passes(self, capsys):
        assert main(["sec5a", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "idle sibling" in out
        assert "DEVIATES" not in out

    def test_rapl_rate_runs(self, capsys):
        assert main(["rapl-rate", "--scale", "0.02"]) == 0
        assert "update period" in capsys.readouterr().out

    def test_tab1_runs(self, capsys):
        assert main(["tab1", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "set 2.2 / others 2.5" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_backend_flag_beats_env_var(self, monkeypatch):
        # Precedence: an explicit --backend must win over
        # REPRO_SIM_BACKEND for every machine the experiment builds.
        from repro.core.experiment import machine_hook
        from repro.sim.engine import Simulator

        monkeypatch.setenv("REPRO_SIM_BACKEND", "batched")
        seen = []
        with machine_hook(lambda m: seen.append(type(m.sim))):
            assert main(
                ["rapl-rate", "--scale", "0.02", "--backend", "reference"]
            ) == 0
        assert seen and all(t is Simulator for t in seen)

    def test_env_var_reaches_machines_without_flag(self, monkeypatch):
        from repro.core.experiment import machine_hook
        from repro.sim.batched import BatchedSimulator

        monkeypatch.setenv("REPRO_SIM_BACKEND", "batched")
        seen = []
        with machine_hook(lambda m: seen.append(type(m.sim))):
            assert main(["rapl-rate", "--scale", "0.02"]) == 0
        assert seen and all(t is BatchedSimulator for t in seen)

    def test_unknown_backend_flag_rejected(self):
        with pytest.raises(SystemExit):
            main(["rapl-rate", "--backend", "warp-drive"])

    def test_selfcheck_passes_on_default_machine(self, capsys):
        assert main(["selfcheck"]) == 0
        out = capsys.readouterr().out
        assert "selfcheck: EPYC 7502" in out
        assert "DEVIATES" not in out

    def test_suite_subset_json(self, tmp_path, capsys, monkeypatch):
        import repro.core.suite as suite_mod

        monkeypatch.setattr(
            suite_mod,
            "SUITE",
            {"sec5a_idle_sibling": suite_mod.SUITE["sec5a_idle_sibling"]},
        )
        path = tmp_path / "r.json"
        assert main(["suite", "--scale", "0.02", "--json", str(path)]) == 0
        assert "suite verdict: OK" in capsys.readouterr().out
        assert path.exists()

    def test_suite_parallel_jobs_and_cache_flags(self, capsys, monkeypatch):
        import repro.core.suite as suite_mod

        monkeypatch.setattr(
            suite_mod,
            "SUITE",
            {
                name: suite_mod.SUITE[name]
                for name in ("sec5a_idle_sibling", "sec7_rapl_update_rate")
            },
        )
        assert main(["suite", "--scale", "0.02", "--jobs", "2", "--cache-stats"]) == 0
        cold = capsys.readouterr().out
        assert "suite verdict: OK" in cold
        assert "cache stats:" in cold
        assert '"misses": 2' in cold
        # second invocation hits the (test-isolated) cache
        assert main(["suite", "--scale", "0.02", "--jobs", "2", "--cache-stats"]) == 0
        warm = capsys.readouterr().out
        assert '"hits": 2' in warm

    def test_suite_no_cache_bypasses_store(self, capsys, monkeypatch):
        import repro.core.suite as suite_mod

        monkeypatch.setattr(
            suite_mod,
            "SUITE",
            {"sec5a_idle_sibling": suite_mod.SUITE["sec5a_idle_sibling"]},
        )
        assert main(["suite", "--scale", "0.02", "--no-cache", "--cache-stats"]) == 0
        out = capsys.readouterr().out
        assert "suite verdict: OK" in out
        assert "cache stats:" not in out

    def test_seed_changes_nothing_structural(self, capsys):
        main(["fig1", "--seed", "1"])
        first = capsys.readouterr().out
        main(["fig1", "--seed", "2"])
        second = capsys.readouterr().out
        assert first != second  # different draws
        assert first.splitlines()[0] == second.splitlines()[0]  # same header
