"""Span tracer and trace export.

Ids must be sequence-derived (identical runs → identical ids), the ring
must bound memory while counting drops, and the exported Chrome-trace
document must pass the bundled validator — including the nesting rule
that complete events on one (pid, tid) never partially overlap.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.obs.export import merge_trace_documents, trace_document
from repro.obs.schema import (
    METRICS_SCHEMA_ID,
    TRACE_SCHEMA_ID,
    sniff_schema,
    validate_document,
    validate_trace_document,
)
from repro.obs.tracer import HOST_TRACK, SpanTracer


class FakeClock:
    """Deterministic nanosecond clock for id/timestamp assertions."""

    def __init__(self) -> None:
        self.t = 1_000_000

    def __call__(self) -> int:
        self.t += 1_000
        return self.t


def make_tracer(**kw) -> SpanTracer:
    return SpanTracer(clock=FakeClock(), **kw)


def test_span_nesting_and_parent_ids():
    tr = make_tracer()
    with tr.span("outer") as outer:
        with tr.span("inner") as inner:
            assert inner["parent"] == outer["id"]
        assert tr.open_depth == 1
    assert tr.open_depth == 0
    names = [r["name"] for r in tr.records()]
    # Inner commits first (it ends first).
    assert names == ["inner", "outer"]


def test_ids_are_sequence_derived_and_run_stable():
    ids_a = [r["id"] for r in _run_fixed_workload().records()]
    ids_b = [r["id"] for r in _run_fixed_workload().records()]
    assert ids_a == ids_b
    # Ids are assigned 1..N from the sequence counter (commit order may
    # differ from begin order — inner spans commit first).
    assert set(ids_a) == set(range(1, len(ids_a) + 1))


def _run_fixed_workload() -> SpanTracer:
    tr = make_tracer()
    track = tr.new_track("machine")
    with tr.span("suite"):
        for i, name in enumerate(("e1", "e2")):
            with tr.span(name):
                tr.instant("tick", track=track, sim_ns=5 + 20 * i)
                tr.complete(
                    "batch",
                    track=track,
                    t0_wall_ns=0,
                    sim_t0_ns=20 * i,
                    sim_t1_ns=20 * i + 9,
                )
    return tr


def test_end_without_begin_raises():
    tr = make_tracer()
    with pytest.raises(ConfigurationError):
        tr.end()


def test_span_unwinds_mismatched_begins():
    tr = make_tracer()
    with tr.span("outer"):
        tr.begin("leaked")  # body forgets to end()
    assert tr.open_depth == 0
    assert [r["name"] for r in tr.records()] == ["leaked", "outer"]


def test_ring_bounds_memory_and_counts_drops():
    tr = make_tracer(max_events=3)
    for i in range(5):
        tr.instant(f"i{i}")
    assert len(tr) == 3
    assert tr.dropped == 2
    assert [r["name"] for r in tr.records()] == ["i2", "i3", "i4"]


def test_max_events_validated():
    with pytest.raises(ConfigurationError):
        SpanTracer(max_events=0)


def test_new_track_is_deterministic():
    tr = make_tracer()
    assert tr.new_track("machine") == "machine0"
    assert tr.new_track("machine") == "machine1"
    assert tr.new_track("pool") == "pool0"


def test_spans_and_instants_filters():
    tr = _run_fixed_workload()
    assert len(tr.spans()) == 5
    assert len(tr.spans("batch")) == 2
    assert len(tr.instants("tick")) == 2
    assert tr.instants("absent") == []


# ---------------------------------------------------------------------------
# export
# ---------------------------------------------------------------------------


def test_trace_document_validates_and_round_trips():
    import json

    doc = trace_document(_run_fixed_workload(), run="test")
    assert validate_trace_document(doc) == []
    assert sniff_schema(doc) == TRACE_SCHEMA_ID
    assert doc["otherData"]["run"] == "test"
    rt = json.loads(json.dumps(doc))
    assert validate_document(rt) == []
    assert rt == doc


def test_sim_axis_routing():
    tr = make_tracer()
    track = tr.new_track("machine")
    tr.complete(
        "sim.dispatch", track=track, t0_wall_ns=0, sim_t0_ns=100, sim_t1_ns=900
    )
    tr.instant("sched_waking", track=track, sim_ns=500, cpu=3)
    doc = trace_document(tr)
    span = next(e for e in doc["traceEvents"] if e["name"] == "sim.dispatch")
    inst = next(e for e in doc["traceEvents"] if e["name"] == "sched_waking")
    # Sim-time microseconds, machine pid distinct from host, cpu thread.
    assert span["ts"] == pytest.approx(0.1)
    assert span["dur"] == pytest.approx(0.8)
    assert span["pid"] != 1 and span["tid"] == 0
    assert inst["tid"] == 4
    thread_names = {
        (e["pid"], e["tid"]): e["args"]["name"]
        for e in doc["traceEvents"]
        if e.get("ph") == "M" and e["name"] == "thread_name"
    }
    assert thread_names[(span["pid"], 0)] == "sim"
    assert thread_names[(inst["pid"], 4)] == "cpu3"


def test_host_spans_use_wall_axis():
    tr = make_tracer()
    with tr.span("suite"):
        pass
    doc = trace_document(tr)
    span = next(e for e in doc["traceEvents"] if e["name"] == "suite")
    assert span["pid"] == 1 and span["tid"] == 1
    assert span["dur"] > 0


def test_lanes_keep_concurrent_spans_valid():
    tr = make_tracer()
    track = tr.new_track("pool")
    # Two overlapping wall-time windows — invalid on one tid, fine on two.
    tr.complete("t1", track=track, t0_wall_ns=0, t1_wall_ns=10_000, lane=1)
    tr.complete("t2", track=track, t0_wall_ns=5_000, t1_wall_ns=15_000, lane=2)
    assert validate_trace_document(trace_document(tr)) == []


def test_nesting_validator_rejects_partial_overlap():
    tr = make_tracer()
    tr.complete("a", t0_wall_ns=0, t1_wall_ns=10_000)
    tr.complete("b", t0_wall_ns=5_000, t1_wall_ns=15_000)  # same pid/tid
    problems = validate_trace_document(trace_document(tr))
    assert any("overlap" in p for p in problems)


def test_merge_remaps_pids_and_validates():
    docs = [trace_document(_run_fixed_workload()) for _ in range(2)]
    merged = merge_trace_documents(docs)
    assert validate_trace_document(merged) == []
    names = {
        e["args"]["name"]
        for e in merged["traceEvents"]
        if e.get("ph") == "M" and e["name"] == "process_name"
    }
    assert {"run0:host", "run1:host"} <= names
    assert merged["otherData"]["merged"] == 2


def test_merge_labels_name_processes_and_keep_shared_trace_id():
    docs = [
        trace_document(_run_fixed_workload(), entry=name)
        for name in ("fig3", "sec5a")
    ]
    for doc in docs:
        doc["otherData"]["trace_id"] = "abc123"
    merged = merge_trace_documents(docs, labels=["fig3", "sec5a"])
    assert validate_trace_document(merged) == []
    names = {
        e["args"]["name"]
        for e in merged["traceEvents"]
        if e.get("ph") == "M" and e["name"] == "process_name"
    }
    assert {"fig3:host", "sec5a:host"} <= names
    # Every input carried the same trace id, so the merge keeps it.
    assert merged["otherData"]["trace_id"] == "abc123"


def test_merge_drops_trace_id_on_disagreement():
    docs = [trace_document(_run_fixed_workload()) for _ in range(2)]
    docs[0]["otherData"]["trace_id"] = "aaa"
    docs[1]["otherData"]["trace_id"] = "bbb"
    merged = merge_trace_documents(docs)
    assert "trace_id" not in merged["otherData"]


def test_merge_label_count_must_match():
    docs = [trace_document(_run_fixed_workload())]
    with pytest.raises(ConfigurationError):
        merge_trace_documents(docs, labels=["a", "b"])


def test_merge_keeps_span_ids_unique_per_remapped_pid():
    """Worker-trace round-trip: every worker restarts its span-id counter
    at 1, so uniqueness is only meaningful per process — pid remapping
    must preserve it, and strict nesting must survive on every track."""
    docs = [trace_document(_run_fixed_workload()) for _ in range(3)]
    merged = merge_trace_documents(docs, labels=["w0", "w1", "w2"])
    assert validate_trace_document(merged) == []
    seen: set[tuple[int, int]] = set()
    spans = [e for e in merged["traceEvents"] if e.get("ph") == "X"]
    for event in spans:
        span_id = event["args"].get("span_id")
        if span_id is None:
            continue
        key = (event["pid"], span_id)
        assert key not in seen, f"duplicate span id {key} after remap"
        seen.add(key)
    # Identical inputs: the same per-document ids repeat across pids.
    assert len({sid for _, sid in seen}) < len(seen)
    assert merged["otherData"]["records"] == sum(
        d["otherData"]["records"] for d in docs
    )


def test_trace_id_exported_and_minted_deterministically():
    from repro.obs.tracer import mint_trace_id

    a = mint_trace_id("suite", 0, 0.02, "EPYC 7502", None, "fig3")
    b = mint_trace_id("suite", 0, 0.02, "EPYC 7502", None, "fig3")
    assert a == b and len(a) == 16
    assert mint_trace_id("suite", 1, 0.02, "EPYC 7502", None, "fig3") != a
    tr = make_tracer(trace_id=a)
    with tr.span("suite"):
        pass
    assert trace_document(tr)["otherData"]["trace_id"] == a
    assert "trace_id" not in trace_document(make_tracer())["otherData"]


def test_sniff_schema_distinguishes_documents():
    from repro.obs.metrics import MetricsRegistry

    assert sniff_schema(MetricsRegistry().snapshot()) == METRICS_SCHEMA_ID
    assert sniff_schema({"schema": "nope"}) == "nope"
    assert sniff_schema([1, 2]) is None
    assert validate_document({"schema": "nope"})  # unknown schema: problems
