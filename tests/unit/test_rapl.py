"""RAPL estimator structure and MSR counter behaviour."""

import pytest

from repro.machine import Machine
from repro.rapl.estimator import RaplEstimator
from repro.rapl.msrs import RaplMsrs, encode_rapl_power_unit
from repro.units import RAPL_COUNTER_WRAP, RAPL_ENERGY_UNIT_J, ghz, ms, s
from repro.workloads import FIRESTARTER, MEMORY_READ, instruction_block


@pytest.fixture
def m():
    machine = Machine("EPYC 7502", seed=0)
    yield machine
    machine.shutdown()


class TestEstimatorStructure:
    def test_gated_core_near_zero(self, m):
        est = RaplEstimator()
        core = m.topology.thread(0).core
        assert est.core_power_w(core) == pytest.approx(est.GATED_CORE_W)

    def test_firestarter_package_near_170w(self, m):
        m.os.set_all_frequencies(ghz(2.5))
        m.os.run(FIRESTARTER, m.os.all_cpus())
        est = RaplEstimator()
        pkg = m.topology.packages[0]
        traffic = m.power_model.package_dram_traffic_gbs(pkg)
        p = est.package_power_w(pkg, 70.0, dram_traffic_gbs=traffic)
        assert p == pytest.approx(170.0, rel=0.03)

    def test_operand_weight_invisible_to_core_domain(self, m):
        m.os.set_all_frequencies(ghz(2.5))
        est = RaplEstimator()
        core = m.topology.thread(0).core
        readings = []
        for w in (0.0, 1.0):
            m.os.run(instruction_block("vxorps", w), m.os.all_cpus())
            readings.append(est.core_power_w(core, 50.0))
        assert readings[0] == pytest.approx(readings[1], rel=1e-9)

    def test_dram_traffic_token_charge_only(self, m):
        # the paper: memory power "not fully captured"
        est = RaplEstimator()
        pkg = m.topology.packages[0]
        with_traffic = est.package_power_w(pkg, None, dram_traffic_gbs=40.0)
        without = est.package_power_w(pkg, None, dram_traffic_gbs=0.0)
        charged = with_traffic - without
        true_dram_w = 40.0 * m.cal.dram_w_per_gbs
        assert charged < true_dram_w / 3

    def test_temperature_leak_term_small(self, m):
        est = RaplEstimator()
        pkg = m.topology.packages[0]
        cold = est.package_power_w(pkg, 45.0)
        hot = est.package_power_w(pkg, 75.0)
        assert 0 < hot - cold < 1.0

    def test_memory_workload_underreported_vs_truth(self, m):
        m.os.set_all_frequencies(ghz(2.5))
        m.os.run(MEMORY_READ, m.os.all_cpus())
        est = RaplEstimator()
        rapl_total = sum(
            est.package_power_w(
                pkg, None, dram_traffic_gbs=m.power_model.package_dram_traffic_gbs(pkg)
            )
            for pkg in m.topology.packages
        )
        truth = m.power_model.breakdown(m).total_w
        assert rapl_total < truth - 100  # the Fig 9a gap


class TestRaplMsrs:
    def test_power_unit_encoding(self):
        reg = encode_rapl_power_unit()
        assert (reg >> 8) & 0x1F == 16  # 2^-16 J

    def test_tick_deposits_energy(self):
        msrs = RaplMsrs(1, 1)
        msrs.tick([100.0], [5.0], ms(1))
        assert msrs.pkg_joules(0) == pytest.approx(0.1, rel=1e-3)
        assert msrs.core_joules(0) == pytest.approx(0.005, rel=1e-2)

    def test_counter_frozen_between_ticks(self):
        msrs = RaplMsrs(1, 1)
        msrs.tick([100.0], [5.0], ms(1))
        raw = msrs.read_pkg_raw(0)
        assert msrs.read_pkg_raw(0) == raw  # no time passes on read

    def test_fraction_carries_across_deposits(self):
        msrs = RaplMsrs(1, 1)
        # deposit 1000 x half an energy unit -> ~500 units, not 0
        half = RAPL_ENERGY_UNIT_J / 2
        for i in range(1000):
            msrs.tick([0.0], [0.0], i)  # keep time moving
            msrs.pkg[0].deposit(half)
        assert abs(msrs.read_pkg_raw(0) - 500) <= 1

    def test_wraparound(self):
        msrs = RaplMsrs(1, 1)
        msrs.pkg[0].raw = RAPL_COUNTER_WRAP - 10
        msrs.pkg[0].deposit(RAPL_ENERGY_UNIT_J * 25)
        assert msrs.read_pkg_raw(0) == 15

    def test_bulk_advance_equivalent_to_ticks(self):
        a = RaplMsrs(1, 1)
        b = RaplMsrs(1, 1)
        for k in range(1, 101):
            a.tick([123.0], [7.0], ms(k))
        b.advance_bulk([123.0 * 0.1], [7.0 * 0.1], s(0.1))
        assert a.read_pkg_raw(0) == b.read_pkg_raw(0)
        assert a.read_core_raw(0) == b.read_core_raw(0)

    def test_negative_energy_rejected(self):
        from repro.errors import MsrError

        msrs = RaplMsrs(1, 1)
        with pytest.raises(MsrError):
            msrs.pkg[0].deposit(-1.0)

    def test_backwards_tick_rejected(self):
        from repro.errors import MsrError

        msrs = RaplMsrs(1, 1)
        msrs.tick([1.0], [1.0], ms(5))
        with pytest.raises(MsrError):
            msrs.tick([1.0], [1.0], ms(3))
