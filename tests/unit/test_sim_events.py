"""Event queue ordering and cancellation."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        fired = []
        q.push(30, lambda: fired.append("c"))
        q.push(10, lambda: fired.append("a"))
        q.push(20, lambda: fired.append("b"))
        while q:
            q.pop().callback()
        assert fired == ["a", "b", "c"]

    def test_stable_for_equal_times(self):
        q = EventQueue()
        fired = []
        for name in "abcde":
            q.push(5, lambda n=name: fired.append(n))
        while q:
            q.pop().callback()
        assert fired == list("abcde")

    def test_peek_time(self):
        q = EventQueue()
        q.push(42, lambda: None)
        q.push(7, lambda: None)
        assert q.peek_time() == 7

    def test_peek_empty_returns_none(self):
        assert EventQueue().peek_time() is None

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1, lambda: None)

    def test_cancelled_event_skipped(self):
        q = EventQueue()
        e1 = q.push(1, lambda: None)
        q.push(2, lambda: None)
        e1.cancel()
        assert q.peek_time() == 2
        assert len(q) == 1

    def test_len_counts_only_live_events(self):
        q = EventQueue()
        events = [q.push(i, lambda: None) for i in range(5)]
        events[2].cancel()
        events[4].cancel()
        assert len(q) == 3

    def test_bool_with_all_cancelled(self):
        q = EventQueue()
        e = q.push(1, lambda: None)
        e.cancel()
        assert not q

    def test_clear(self):
        q = EventQueue()
        q.push(1, lambda: None)
        q.clear()
        assert not q
