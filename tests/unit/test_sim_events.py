"""Event queue ordering, cancellation, live-count accounting, compaction."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue
from repro.sim.rng import RngFactory


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        fired = []
        q.push(30, lambda: fired.append("c"))
        q.push(10, lambda: fired.append("a"))
        q.push(20, lambda: fired.append("b"))
        while q:
            q.pop().callback()
        assert fired == ["a", "b", "c"]

    def test_stable_for_equal_times(self):
        q = EventQueue()
        fired = []
        for name in "abcde":
            q.push(5, lambda n=name: fired.append(n))
        while q:
            q.pop().callback()
        assert fired == list("abcde")

    def test_peek_time(self):
        q = EventQueue()
        q.push(42, lambda: None)
        q.push(7, lambda: None)
        assert q.peek_time() == 7

    def test_peek_empty_returns_none(self):
        assert EventQueue().peek_time() is None

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1, lambda: None)

    def test_cancelled_event_skipped(self):
        q = EventQueue()
        e1 = q.push(1, lambda: None)
        q.push(2, lambda: None)
        e1.cancel()
        assert q.peek_time() == 2
        assert len(q) == 1

    def test_len_counts_only_live_events(self):
        q = EventQueue()
        events = [q.push(i, lambda: None) for i in range(5)]
        events[2].cancel()
        events[4].cancel()
        assert len(q) == 3

    def test_bool_with_all_cancelled(self):
        q = EventQueue()
        e = q.push(1, lambda: None)
        e.cancel()
        assert not q

    def test_clear(self):
        q = EventQueue()
        q.push(1, lambda: None)
        q.clear()
        assert not q

    def test_cancel_after_clear_keeps_count_exact(self):
        q = EventQueue()
        e = q.push(1, lambda: None)
        q.clear()
        e.cancel()  # detached from the queue: must not go negative
        assert len(q) == 0
        q.push(2, lambda: None)
        assert len(q) == 1

    def test_cancel_is_idempotent(self):
        q = EventQueue()
        e = q.push(1, lambda: None)
        q.push(2, lambda: None)
        e.cancel()
        e.cancel()
        assert len(q) == 1

    def test_cancel_after_pop_does_not_affect_count(self):
        q = EventQueue()
        e = q.push(1, lambda: None)
        q.push(2, lambda: None)
        popped = q.pop()
        assert popped is e
        e.cancel()  # already fired: flag only
        assert len(q) == 1

    def test_pop_due(self):
        q = EventQueue()
        q.push(10, lambda: None)
        q.push(20, lambda: None)
        assert q.pop_due(5) is None
        assert q.pop_due(10).time_ns == 10
        assert q.pop_due(15) is None
        assert q.pop_due(20).time_ns == 20
        assert q.pop_due(10**9) is None


def _interleaved_ops(q, rng):
    """Drive push/pop/cancel interleaving; return the reference live count."""
    live = []
    n_live = 0
    for t, op in zip(rng.integers(0, 1_000, size=400), rng.integers(0, 10, size=400)):
        if op < 5 or not live:
            live.append(q.push(int(t), lambda: None))
            n_live += 1
        elif op < 8:
            event = live.pop()
            if not event.cancelled:
                event.cancel()
                n_live -= 1
        elif q:
            popped = q.pop()
            if popped in live:
                live.remove(popped)
            n_live -= 1
        assert len(q) == n_live, "live count diverged from reference"
        assert bool(q) == (n_live > 0)
    return n_live


class TestLiveCountAccounting:
    """``len``/``bool`` are O(1) counters; they must never drift (#4 satellite)."""

    def test_interleaved_ops_normal_mode(self):
        q = EventQueue()
        rng = RngFactory(11).child("interleave")
        _interleaved_ops(q, rng)

    def test_interleaved_ops_shuffle_mode(self):
        q = EventQueue(tiebreak_rng=RngFactory(11).child("tiebreak"))
        rng = RngFactory(11).child("interleave")
        _interleaved_ops(q, rng)


class TestCompaction:
    def test_mass_cancel_does_not_leave_stale_entries(self):
        # The repeatedly-cancelled wakeup-timer pattern: without
        # compaction, N cancels leave N stale heap entries until their
        # fire times pass.
        q = EventQueue()
        events = [q.push(i, lambda: None) for i in range(10_000)]
        for e in events[:-10]:
            e.cancel()
        assert len(q) == 10
        assert q.compactions >= 1
        # Stale entries are bounded by the live count (above the small-heap
        # floor), not by the number of cancels.
        assert q.resident <= max(len(q) * 2, EventQueue.COMPACT_MIN_RESIDENT)

    def test_no_compaction_below_min_resident(self):
        q = EventQueue()
        events = [q.push(i, lambda: None) for i in range(EventQueue.COMPACT_MIN_RESIDENT - 1)]
        for e in events:
            e.cancel()
        assert q.compactions == 0

    def test_compaction_rebuilds_in_place(self):
        # Simulator.run_until holds a direct reference to the heap list
        # across callbacks; compaction must never rebind it.
        q = EventQueue()
        heap_id = id(q._heap)
        events = [q.push(i, lambda: None) for i in range(1_000)]
        for e in events:
            e.cancel()
        assert q.compactions >= 1
        assert id(q._heap) == heap_id

    def test_order_preserved_across_compaction(self):
        q = EventQueue()
        keep = []
        for i in range(500):
            e = q.push(1_000 - i, lambda i=i: None)
            if i % 7 == 0:
                keep.append(e)
            else:
                e.cancel()
        popped = [q.pop().time_ns for _ in range(len(q))]
        assert popped == sorted(e.time_ns for e in keep)
        assert not q
