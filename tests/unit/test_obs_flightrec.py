"""Crash flight recorder: ring, feeds, bundle schema, dump gating.

The ring must stay bounded while counting drops, the tracer and logger
must feed it automatically, bundles must only reach disk when a
directory is configured (atomically, with sequence-derived names), and
``validate_flightrec_document`` must accept the writer's output and
name every defect in corrupted bundles.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import ConfigurationError
from repro.obs import Obs
from repro.obs.flightrec import (
    ENV_DIR,
    FlightRecorder,
    dump_bundle,
    dump_dir,
    flightrec_document,
    record_crash,
    recorder,
    summarize_flightrec,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import (
    FLIGHTREC_SCHEMA_ID,
    sniff_schema,
    validate_document,
    validate_flightrec_document,
)


@pytest.fixture(autouse=True)
def clean_recorder(monkeypatch):
    """Isolate each test from the process singleton and the env gate."""
    monkeypatch.delenv(ENV_DIR, raising=False)
    recorder().clear()
    yield
    recorder().clear()


class FakeClock:
    def __init__(self) -> None:
        self.t = 1_000_000

    def __call__(self) -> int:
        self.t += 1_000
        return self.t


def test_ring_bounds_memory_and_counts_drops():
    rec = FlightRecorder(capacity=3, clock=FakeClock())
    for i in range(5):
        rec.note(f"n{i}")
    assert len(rec) == 3
    assert rec.dropped == 2
    assert [e["name"] for e in rec.events()] == ["n2", "n3", "n4"]


def test_capacity_validated():
    with pytest.raises(ConfigurationError):
        FlightRecorder(capacity=0)


def test_note_carries_args_and_clear_resets():
    rec = FlightRecorder(clock=FakeClock())
    rec.context["entry"] = "fig3"
    rec.note("suite.entry.start", entry="fig3", seed=0)
    event = rec.events()[0]
    assert event["kind"] == "note"
    assert event["args"] == {"entry": "fig3", "seed": 0}
    rec.clear()
    assert len(rec) == 0 and rec.dropped == 0 and rec.context == {}


def test_tracer_and_logger_feed_the_process_ring():
    obs = Obs(trace_id="feedbeef")
    with obs.tracer.span("suite"):
        obs.log.info("tick")
    kinds = [e["kind"] for e in recorder().events()]
    assert "log" in kinds and "span" in kinds
    log_event = next(e for e in recorder().events() if e["kind"] == "log")
    assert log_event["trace_id"] == "feedbeef"


# ---------------------------------------------------------------------------
# bundles
# ---------------------------------------------------------------------------


def _bundle(**kw) -> dict:
    rec = FlightRecorder(clock=FakeClock())
    rec.context["task"] = "t1"
    rec.note("pool.task.start", task="t1")
    defaults = dict(
        metrics=MetricsRegistry().snapshot(),
        config={"seed": 0, "scale": 0.02},
        cache_keys=["ab12", "cd34"],
        trace_id="abc123",
    )
    defaults.update(kw)
    return flightrec_document(rec, "task-failure:t1", **defaults)


def test_bundle_validates_and_round_trips():
    doc = _bundle()
    assert validate_flightrec_document(doc) == []
    assert sniff_schema(doc) == FLIGHTREC_SCHEMA_ID
    assert doc["cache_keys"] == ["ab12", "cd34"]  # sorted
    rt = json.loads(json.dumps(doc))
    assert validate_document(rt) == []
    assert rt == doc


def test_optional_sections_may_be_absent():
    doc = _bundle(metrics=None, config=None, cache_keys=None, trace_id=None)
    assert validate_flightrec_document(doc) == []


@pytest.mark.parametrize(
    "mutate",
    [
        {"schema": "repro.obs/nope"},
        {"schema_version": 99},
        {"reason": ""},
        {"pid": "not-an-int"},
        {"events": "not-a-list"},
        {"events": [{"kind": "mystery"}]},
        {"dropped": -1},
        {"context": []},
        {"trace_id": 7},
        {"metrics": {"schema": "repro.obs/metrics", "schema_version": 99}},
        {"cache_keys": [17]},
    ],
)
def test_flightrec_validator_rejects_defects(mutate):
    doc = _bundle()
    doc.update(mutate)
    assert validate_flightrec_document(doc) != []


def test_dump_is_gated_on_configured_directory(tmp_path, monkeypatch):
    doc = _bundle()
    assert dump_dir() is None
    assert dump_bundle(doc) is None  # no directory: ring only, no file
    monkeypatch.setenv(ENV_DIR, str(tmp_path))
    path = dump_bundle(doc)
    assert path is not None and os.path.dirname(path) == str(tmp_path)
    on_disk = json.loads(open(path).read())
    assert validate_flightrec_document(on_disk) == []
    assert not [p for p in os.listdir(tmp_path) if p.endswith(".tmp")]


def test_dump_sequence_never_clobbers(tmp_path):
    doc = _bundle()
    p1 = dump_bundle(doc, directory=str(tmp_path))
    p2 = dump_bundle(doc, directory=str(tmp_path))
    assert p1 != p2
    assert sorted(os.listdir(tmp_path)) == sorted(
        os.path.basename(p) for p in (p1, p2)
    )


def test_record_crash_notes_then_dumps(tmp_path):
    path = record_crash(
        "invariant-violation:PWR001",
        trace_id="abc123",
        directory=str(tmp_path),
    )
    doc = json.loads(open(path).read())
    assert validate_flightrec_document(doc) == []
    assert doc["reason"] == "invariant-violation:PWR001"
    assert doc["trace_id"] == "abc123"
    notes = [e for e in doc["events"] if e.get("kind") == "note"]
    assert notes[-1]["name"] == "flightrec.dump"


def test_summarize_names_reason_context_and_tail():
    doc = _bundle()
    digest = summarize_flightrec(doc)
    assert "task-failure:t1" in digest
    assert "trace_id: abc123" in digest
    assert "task=t1" in digest
    assert "pool.task.start" in digest
