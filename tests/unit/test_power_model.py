"""Ground-truth power model against the Fig 7 / Fig 6 / Fig 10 anchors."""

import pytest

from repro.machine import Machine
from repro.power.calibration import CALIBRATION
from repro.units import ghz
from repro.workloads import FIRESTARTER, PAUSE_LOOP, instruction_block


@pytest.fixture
def m():
    machine = Machine("EPYC 7502", seed=0)
    yield machine
    machine.shutdown()


class TestIdleAnchors:
    def test_all_c2_floor(self, m):
        bd = m.power_model.breakdown(m)
        assert bd.total_w == pytest.approx(99.1, abs=0.01)
        assert bd.system_wake_w == 0.0

    def test_single_c1_thread_costs_wake_penalty(self, m):
        m.cstates.disable_state(0, "C2")
        m.reconfigured()
        bd = m.power_model.breakdown(m)
        assert bd.total_w == pytest.approx(99.1 + 81.2, abs=0.05)

    def test_additional_c1_cores_009_each(self, m):
        m.cstates.disable_state(0, "C2")
        base = m.power_model.breakdown(m).total_w
        for cpu in (1, 2, 3):
            m.cstates.disable_state(cpu, "C2")
        three_more = m.power_model.breakdown(m).total_w
        assert three_more - base == pytest.approx(3 * 0.09, abs=0.005)

    def test_sibling_thread_in_c1_free(self, m):
        m.cstates.disable_state(0, "C2")
        base = m.power_model.breakdown(m).total_w
        m.cstates.disable_state(64, "C2")  # sibling of cpu0
        assert m.power_model.breakdown(m).total_w == pytest.approx(base, abs=1e-6)


class TestActiveAnchors:
    def test_first_pause_thread(self, m):
        m.os.set_all_frequencies(ghz(2.5))
        m.os.run(PAUSE_LOOP, [0])
        assert m.power_model.breakdown(m).total_w == pytest.approx(180.4, abs=0.05)

    def test_additional_active_core_033(self, m):
        m.os.set_all_frequencies(ghz(2.5))
        m.os.run(PAUSE_LOOP, [0])
        one = m.power_model.breakdown(m).total_w
        m.os.run(PAUSE_LOOP, [1])
        assert m.power_model.breakdown(m).total_w - one == pytest.approx(0.33, abs=0.01)

    def test_additional_thread_005(self, m):
        m.os.set_all_frequencies(ghz(2.5))
        m.os.run(PAUSE_LOOP, [0])
        one = m.power_model.breakdown(m).total_w
        m.os.run(PAUSE_LOOP, [64])  # sibling
        assert m.power_model.breakdown(m).total_w - one == pytest.approx(0.05, abs=0.01)

    def test_active_power_scales_with_frequency(self, m):
        m.os.run(PAUSE_LOOP, [0])
        m.os.set_all_frequencies(ghz(2.5))
        hi = m.power_model.breakdown(m).total_w
        m.os.set_all_frequencies(ghz(1.5))
        lo = m.power_model.breakdown(m).total_w
        assert lo < hi

    def test_c1_power_frequency_independent(self, m):
        m.cstates.disable_state(0, "C2")
        m.os.set_all_frequencies(ghz(2.5))
        m.reconfigured()
        hi = m.power_model.breakdown(m).total_w
        m.os.set_all_frequencies(ghz(1.5))
        m.reconfigured()
        lo = m.power_model.breakdown(m).total_w
        assert hi == pytest.approx(lo, abs=1e-6)


class TestWorkloadPower:
    def test_firestarter_dominates(self, m):
        m.os.set_all_frequencies(ghz(2.5))
        m.os.run(FIRESTARTER, m.os.all_cpus())
        bd = m.power_model.breakdown(m)
        assert bd.workload_dynamic_w > 200

    def test_toggle_power_spread(self, m):
        m.os.set_all_frequencies(ghz(2.5))
        totals = {}
        for w in (0.0, 1.0):
            m.os.run(instruction_block("vxorps", w), m.os.all_cpus())
            totals[w] = m.power_model.breakdown(m).total_w
        assert totals[1.0] - totals[0.0] == pytest.approx(21.1, abs=0.5)

    def test_dram_power_present_for_memory_workloads(self, m):
        from repro.workloads import MEMORY_READ

        m.os.set_all_frequencies(ghz(2.5))
        m.os.run(MEMORY_READ, m.os.all_cpus())
        bd = m.power_model.breakdown(m)
        assert bd.dram_active_w > 10

    def test_dram_traffic_capped_at_channel_ceiling(self, m):
        from repro.workloads import MEMORY_READ

        m.os.run(MEMORY_READ, m.os.all_cpus())
        pkg = m.topology.packages[0]
        traffic = m.power_model.package_dram_traffic_gbs(pkg)
        ceiling = 8 * 8 * 2 * 1.6 * CALIBRATION.dram_channel_efficiency
        assert traffic <= ceiling + 1e-9

    def test_leakage_increases_with_temperature(self, m):
        m.os.run(FIRESTARTER, m.os.all_cpus())
        cold = m.power_model.breakdown(m, [30.0, 30.0]).total_w
        hot = m.power_model.breakdown(m, [70.0, 70.0]).total_w
        assert hot > cold

    def test_package_power_split_sums_close_to_core_terms(self, m):
        m.os.set_all_frequencies(ghz(2.5))
        m.os.run(FIRESTARTER, m.os.all_cpus())
        temps = [50.0, 50.0]
        p0 = m.power_model.package_power_w(m, m.topology.packages[0], temps)
        p1 = m.power_model.package_power_w(m, m.topology.packages[1], temps)
        assert p0 == pytest.approx(p1, rel=1e-6)  # symmetric load
        assert p0 > 100  # each package carries a real share


class TestBreakdownMemoization:
    """The state_version-keyed caches must be invisible except for speed:
    every mutation path that feeds the power model bumps the version."""

    def test_repeated_calls_identical(self, m):
        temps = m.thermal_state.temps_c
        a = m.power_model.breakdown(m, temps)
        b = m.power_model.breakdown(m, temps)
        assert a == b

    def test_invalidated_by_workload_change(self, m):
        base = m.power_model.breakdown(m).total_w
        m.os.set_all_frequencies(ghz(2.5))
        m.os.run(PAUSE_LOOP, [0])
        assert m.power_model.breakdown(m).total_w != base

    def test_invalidated_by_cstate_change_without_reconfigure(self, m):
        # disable_state() -> refresh() -> on_change hook: no explicit
        # reconfigured() call, the cache must still drop.
        base = m.power_model.breakdown(m).total_w
        m.cstates.disable_state(0, "C2")
        assert m.power_model.breakdown(m).total_w == pytest.approx(
            base + 81.2, abs=0.05
        )

    def test_invalidated_by_event_mode_transition(self, m):
        from repro.units import ms

        m.os.set_all_frequencies(ghz(2.2))
        m.os.run(PAUSE_LOOP, [0])
        base = m.power_model.breakdown(m).total_w
        m.enable_event_mode()
        m.os.set_frequency(0, ghz(1.5))
        m.os.set_frequency(64, ghz(1.5))  # SMT sibling votes too
        m.sim.run_for(ms(10))  # let the SMU slot apply the change
        assert m.topology.thread(0).core.applied_freq_hz == ghz(1.5)
        assert m.power_model.breakdown(m).total_w < base

    def test_leakage_recomputed_per_temperature(self, m):
        cold = [CALIBRATION.reference_temp_c] * 2
        hot = [CALIBRATION.reference_temp_c + 20.0] * 2
        bd_cold = m.power_model.breakdown(m, cold)
        bd_hot = m.power_model.breakdown(m, hot)
        assert bd_cold.leakage_w == 0.0
        assert bd_hot.leakage_w == pytest.approx(
            2 * 20.0 * CALIBRATION.leakage_w_per_k_pkg, rel=1e-9
        )
        # The temperature-independent terms come from the same cache.
        assert bd_hot.total_w - bd_hot.leakage_w == pytest.approx(
            bd_cold.total_w, rel=1e-12
        )

    def test_unbound_machine_bypasses_cache(self, m):
        # A model asked about a machine it is not bound to must still
        # answer correctly (no cross-machine cache pollution).
        other = Machine("EPYC 7502", seed=0)
        try:
            other.cstates.disable_state(0, "C2")
            mine = m.power_model.breakdown(m).total_w
            theirs = m.power_model.breakdown(other).total_w
            assert theirs == pytest.approx(mine + 81.2, abs=0.05)
            assert m.power_model.breakdown(m).total_w == mine
        finally:
            other.shutdown()
