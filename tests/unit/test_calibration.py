"""The calibration object itself: curves, scales, penalty lookups."""

import pytest

from repro.power.calibration import CALIBRATION, Calibration, VoltageCurve
from repro.units import ghz


class TestVoltageCurve:
    def test_anchor_points(self):
        curve = VoltageCurve()
        assert curve.voltage(ghz(1.5)) == pytest.approx(0.85)
        assert curve.voltage(ghz(2.2)) == pytest.approx(1.00)
        assert curve.voltage(ghz(2.5)) == pytest.approx(1.10)

    def test_interpolation_between_points(self):
        curve = VoltageCurve()
        v = curve.voltage(ghz(2.35))
        assert 1.00 < v < 1.10

    def test_clamped_at_ends(self):
        curve = VoltageCurve()
        assert curve.voltage(ghz(0.8)) == pytest.approx(0.85)
        assert curve.voltage(ghz(3.5)) == pytest.approx(1.10)

    def test_monotone(self):
        curve = VoltageCurve()
        freqs = [ghz(f) for f in (1.5, 1.8, 2.0, 2.2, 2.4, 2.5)]
        volts = [curve.voltage(f) for f in freqs]
        assert volts == sorted(volts)


class TestScales:
    def test_v2f_scale_unity_at_nominal(self):
        assert CALIBRATION.v2f_scale(ghz(2.5)) == pytest.approx(1.0)

    def test_v2f_scale_drops_superlinearly(self):
        # frequency ratio 0.6, but V^2 drops too
        scale = CALIBRATION.v2f_scale(ghz(1.5))
        assert scale < 1.5 / 2.5

    def test_v2f_scale_monotone(self):
        scales = [CALIBRATION.v2f_scale(ghz(f)) for f in (1.5, 2.0, 2.2, 2.5)]
        assert scales == sorted(scales)


class TestCcxPenalty:
    def test_paper_cells(self):
        assert CALIBRATION.ccx_penalty_hz(ghz(1.5), ghz(2.2)) == pytest.approx(34e6)
        assert CALIBRATION.ccx_penalty_hz(ghz(1.5), ghz(2.5)) == pytest.approx(72e6)
        assert CALIBRATION.ccx_penalty_hz(ghz(2.2), ghz(2.5)) == pytest.approx(200e6)

    def test_no_penalty_without_faster_neighbour(self):
        assert CALIBRATION.ccx_penalty_hz(ghz(2.5), ghz(2.2)) == 0.0
        assert CALIBRATION.ccx_penalty_hz(ghz(2.2), ghz(2.2)) == 0.0

    def test_interpolation_for_unlisted_pairs(self):
        pen = CALIBRATION.ccx_penalty_hz(ghz(1.8), ghz(2.5))
        assert pen == pytest.approx(50e6 * 0.7)


class TestImmutability:
    def test_frozen_dataclass(self):
        with pytest.raises(AttributeError):
            CALIBRATION.ac_all_c2_w = 100.0

    def test_replace_produces_variant(self):
        from dataclasses import replace

        variant = replace(CALIBRATION, ac_all_c2_w=120.0)
        assert variant.ac_all_c2_w == 120.0
        assert CALIBRATION.ac_all_c2_w == 99.1

    def test_defaults_consistent(self):
        fresh = Calibration()
        assert fresh.ac_all_c2_w == CALIBRATION.ac_all_c2_w
        assert fresh.voltage_at(ghz(2.5)) == CALIBRATION.voltage_at(ghz(2.5))


class TestAnchorArithmetic:
    def test_idle_decomposition_sums_to_floor(self):
        cal = CALIBRATION
        assert (
            cal.platform_base_w + cal.dram_idle_w + 2 * cal.package_sleep_w
        ) == pytest.approx(cal.ac_all_c2_w)

    def test_first_active_identity(self):
        cal = CALIBRATION
        total = (
            cal.ac_all_c2_w
            + cal.system_wake_w
            + cal.pause_core_nominal_w
            + cal.active_first_core_adjust_w
        )
        assert total == pytest.approx(cal.ac_first_active_w)

    def test_first_c1_identity(self):
        cal = CALIBRATION
        assert cal.system_wake_w + cal.c1_per_core_w == pytest.approx(
            cal.ac_first_c1_delta_w, abs=0.001
        )
