"""Unit-conversion helpers."""

import pytest

from repro import units


class TestTime:
    def test_us_to_ns(self):
        assert units.us(1) == 1_000

    def test_ms_to_ns(self):
        assert units.ms(1) == 1_000_000

    def test_s_to_ns(self):
        assert units.s(1) == 1_000_000_000

    def test_fractional_us_rounds(self):
        assert units.us(1.5) == 1_500
        assert units.us(0.0004) == 0  # below resolution rounds to zero

    def test_roundtrip_ms(self):
        assert units.ns_to_ms(units.ms(2.5)) == pytest.approx(2.5)

    def test_roundtrip_s(self):
        assert units.ns_to_s(units.s(10)) == pytest.approx(10.0)

    def test_ns_to_us(self):
        assert units.ns_to_us(2_500) == pytest.approx(2.5)


class TestFrequency:
    def test_ghz(self):
        assert units.ghz(2.5) == 2.5e9

    def test_mhz(self):
        assert units.mhz(25) == 25e6

    def test_hz_to_ghz(self):
        assert units.hz_to_ghz(2.2e9) == pytest.approx(2.2)

    def test_hz_to_mhz(self):
        assert units.hz_to_mhz(1.5e9) == pytest.approx(1500.0)

    def test_snap_exact_grid_point(self):
        assert units.snap_to_pstate_grid(2.5e9) == 2.5e9

    def test_snap_rounds_to_nearest_25mhz(self):
        assert units.snap_to_pstate_grid(2.512e9) == 2.5e9
        assert units.snap_to_pstate_grid(2.513e9) == 2.525e9

    def test_cycles_to_ns(self):
        # 2500 cycles at 2.5 GHz = 1 us
        assert units.cycles_to_ns(2500, 2.5e9) == pytest.approx(1000.0)

    def test_cycles_to_ns_rejects_zero_freq(self):
        with pytest.raises(ValueError):
            units.cycles_to_ns(100, 0.0)

    def test_ns_to_cycles_inverse(self):
        assert units.ns_to_cycles(units.cycles_to_ns(777, 1.5e9), 1.5e9) == pytest.approx(777)


class TestEnergy:
    def test_rapl_unit_is_2e_minus_16(self):
        assert units.RAPL_ENERGY_UNIT_J == pytest.approx(2.0**-16)

    def test_joules_roundtrip(self):
        raw = units.joules_to_rapl_units(1.0)
        assert units.rapl_units_to_joules(raw) == pytest.approx(1.0, rel=1e-4)

    def test_truncation(self):
        # just under one unit truncates to zero
        assert units.joules_to_rapl_units(units.RAPL_ENERGY_UNIT_J * 0.999) == 0
