"""InvariantMonitor: each invariant must trip on a deliberately broken machine.

A healthy machine passes every check; then each test corrupts exactly
one aspect of machine state and asserts the matching violation message
appears (and only then).
"""

from __future__ import annotations

import pytest

from repro.errors import InvariantViolation
from repro.lint.monitor import InvariantMonitor
from repro.machine import Machine
from repro.power.model import PowerBreakdown
from repro.units import ms
from repro.workloads import SPIN


@pytest.fixture
def machine():
    m = Machine("EPYC 7502", n_packages=1, seed=0)
    yield m
    m.shutdown()


@pytest.fixture
def monitor(machine):
    return InvariantMonitor(machine, raise_on_violation=False)


def _breakdown(**overrides) -> PowerBreakdown:
    base = dict(
        platform_base_w=60.0,
        system_wake_w=0.0,
        c1_cores_w=10.0,
        active_cores_w=0.0,
        workload_dynamic_w=0.0,
        toggle_w=0.0,
        dram_active_w=5.0,
        iodie_w=20.0,
        leakage_w=15.0,
    )
    base.update(overrides)
    return PowerBreakdown(**base)


def test_clean_machine_has_no_violations(machine, monitor):
    assert monitor.check() == []
    machine.os.run(SPIN, [0])
    machine.sim.run_for(ms(5))
    machine.os.stop()
    assert monitor.check() == []
    assert monitor.violations == []
    assert monitor.checks_run == 2


def test_negative_power_term_trips(machine, monitor):
    machine.power_model.breakdown = lambda m, temps=None: _breakdown(
        c1_cores_w=-3.0
    )
    (violation,) = monitor.check()
    assert "c1_cores_w is negative" in violation


def test_ppt_envelope_trips(machine, monitor):
    machine.power_model.breakdown = lambda m, temps=None: _breakdown(
        active_cores_w=10_000.0
    )
    (violation,) = monitor.check()
    assert "exceeds the PPT envelope" in violation


def test_off_grid_frequency_trips(machine, monitor):
    core = next(iter(machine.topology.cores()))
    core.applied_freq_hz = 2.2134e9  # between 25 MHz grid points
    violations = monitor.check()
    assert any("off the 25 MHz P-state grid" in v for v in violations)


def test_out_of_band_frequency_trips(machine, monitor):
    core = next(iter(machine.topology.cores()))
    core.applied_freq_hz = 9.0e9  # way above any boost ceiling
    violations = monitor.check()
    assert any("outside" in v for v in violations)


def test_rapl_clock_backwards_trips(machine, monitor):
    machine.sim.run_for(ms(10))  # let RAPL tick forward
    monitor.check()
    machine.rapl_msrs.last_update_ns -= 1
    violations = monitor.check()
    assert any("moved backwards" in v for v in violations)


def test_rapl_counter_advance_without_time_trips(machine, monitor):
    monitor.check()
    machine.rapl_msrs.pkg[0].raw += 1 << 16  # 1 J with a frozen clock
    violations = monitor.check()
    assert any("stood still" in v for v in violations)


def test_energy_power_band_trips(machine, monitor):
    monitor.check()
    # Deposit ~15 kJ over 1 us: no estimator power explains that.
    machine.rapl_msrs.last_update_ns += 1_000
    machine.rapl_msrs.pkg[0].raw += 1_000_000_000
    violations = monitor.check()
    assert any("energy != integral of power" in v for v in violations)


def test_unknown_cstate_trips(machine, monitor):
    thread = machine.topology.thread(0)
    thread.effective_cstate = "C6"
    violations = monitor.check()
    assert any("unknown C-state" in v for v in violations)


def test_active_thread_not_in_c0_trips(machine, monitor):
    machine.os.run(SPIN, [0])
    thread = machine.topology.thread(0)
    thread.effective_cstate = "C2"
    violations = monitor.check()
    assert any("runs a workload but sits in C2" in v for v in violations)


def test_offline_park_state_trips(machine, monitor):
    thread = machine.topology.thread(0)
    thread.online = False
    thread.effective_cstate = "C2"  # quirk says offline parks in C1
    violations = monitor.check()
    assert any("offline cpu0" in v for v in violations)


def test_deeper_than_requested_trips(machine, monitor):
    thread = machine.topology.thread(0)
    thread.requested_cstate = "C1"
    thread.effective_cstate = "C2"
    violations = monitor.check()
    assert any("sleeps deeper" in v for v in violations)


def test_raise_mode_raises_with_messages(machine):
    monitor = InvariantMonitor(machine)  # raise_on_violation defaults on
    thread = machine.topology.thread(0)
    thread.effective_cstate = "C6"
    with pytest.raises(InvariantViolation) as excinfo:
        monitor.check()
    assert excinfo.value.violations
    assert "unknown C-state" in str(excinfo.value)


def test_attach_hooks_run_until_and_reconfigured(machine, monitor):
    orig_run_until = machine.sim.run_until
    monitor.attach()
    assert machine.sim.run_until is not orig_run_until
    machine.sim.run_for(ms(1))
    assert monitor.checks_run == 1
    machine.reconfigured()
    assert monitor.checks_run == 2
    monitor.detach()
    machine.sim.run_for(ms(1))
    machine.reconfigured()
    assert monitor.checks_run == 2  # hooks are gone
    assert machine.sim.run_until == orig_run_until


def test_attach_is_idempotent(machine, monitor):
    assert monitor.attach() is monitor
    hooked = machine.sim.run_until
    monitor.attach()
    assert machine.sim.run_until is hooked
    monitor.detach()
    monitor.detach()  # no-op
