"""Frequency resolution: sibling votes, CCX coupling, L3 clock."""

import pytest

from repro.pstate.resolver import FrequencyResolver
from repro.topology import build_topology
from repro.units import ghz
from repro.workloads import SPIN


def _activate(core, smt=1):
    for t in core.threads[:smt]:
        t.workload = SPIN
        t.effective_cstate = "C0"


class TestSiblingVote:
    def _core(self):
        topo = build_topology("EPYC 7502", n_packages=1)
        return next(topo.cores())

    def test_max_of_thread_requests(self):
        core = self._core()
        core.threads[0].requested_freq_hz = ghz(1.5)
        core.threads[1].requested_freq_hz = ghz(2.5)
        assert FrequencyResolver().core_request_hz(core) == ghz(2.5)

    def test_idle_sibling_votes_on_rome(self):
        core = self._core()
        _activate(core, smt=1)
        core.threads[0].requested_freq_hz = ghz(1.5)
        core.threads[1].requested_freq_hz = ghz(2.5)  # idle thread
        assert FrequencyResolver().core_request_hz(core) == ghz(2.5)

    def test_offline_sibling_votes_on_rome(self):
        core = self._core()
        _activate(core, smt=1)
        core.threads[1].online = False
        core.threads[1].requested_freq_hz = ghz(2.5)
        assert FrequencyResolver().core_request_hz(core) == ghz(2.5)

    def test_intel_like_mode_ignores_idle_sibling(self):
        core = self._core()
        _activate(core, smt=1)
        core.threads[0].requested_freq_hz = ghz(1.5)
        core.threads[1].requested_freq_hz = ghz(2.5)
        resolver = FrequencyResolver(offline_threads_vote=False)
        assert resolver.core_request_hz(core) == ghz(1.5)

    def test_intel_like_mode_all_idle_uses_min(self):
        core = self._core()
        core.threads[0].requested_freq_hz = ghz(2.2)
        core.threads[1].requested_freq_hz = ghz(2.5)
        resolver = FrequencyResolver(offline_threads_vote=False)
        assert resolver.core_request_hz(core) == ghz(2.2)


class TestCcxCoupling:
    def _ccx(self):
        topo = build_topology("EPYC 7502", n_packages=1)
        ccx = next(topo.ccxs())
        for core in ccx.cores:
            _activate(core)
            for t in core.threads:
                t.requested_freq_hz = ghz(1.5)
        return ccx

    def _set(self, ccx, measured_ghz, others_ghz):
        for i, core in enumerate(ccx.cores):
            f = ghz(measured_ghz if i == 0 else others_ghz)
            for t in core.threads:
                t.requested_freq_hz = f

    @pytest.mark.parametrize(
        "set_g,others_g,expected",
        [
            (1.5, 1.5, 1.499),
            (1.5, 2.2, 1.466),
            (1.5, 2.5, 1.428),
            (2.2, 1.5, 2.200),
            (2.2, 2.2, 2.199),
            (2.2, 2.5, 2.000),
            (2.5, 1.5, 2.497),
            (2.5, 2.2, 2.499),
            (2.5, 2.5, 2.499),
        ],
    )
    def test_table_i_cells(self, set_g, others_g, expected):
        ccx = self._ccx()
        self._set(ccx, set_g, others_g)
        res = FrequencyResolver().resolve_ccx(ccx)
        assert res[0].observable_mean_hz / 1e9 == pytest.approx(expected, abs=1e-3)

    def test_target_stays_on_grid(self):
        ccx = self._ccx()
        self._set(ccx, 1.5, 2.5)
        res = FrequencyResolver().resolve_ccx(ccx)
        assert res[0].target_hz == ghz(1.5)  # penalty affects mean, not target

    def test_no_penalty_when_alone(self):
        topo = build_topology("EPYC 7502", n_packages=1)
        ccx = next(topo.ccxs())
        _activate(ccx.cores[0])
        for t in ccx.cores[0].threads:
            t.requested_freq_hz = ghz(2.2)
        res = FrequencyResolver().resolve_ccx(ccx)
        assert res[0].observable_mean_hz == pytest.approx(ghz(2.2))

    def test_edc_cap_limits_active_cores(self):
        ccx = self._ccx()
        self._set(ccx, 2.5, 2.5)
        res = FrequencyResolver().resolve_ccx(ccx, edc_cap_hz=ghz(2.0))
        for r in res:
            assert r.target_hz == ghz(2.0)
            assert r.limited_by_edc

    def test_unlisted_pair_interpolates(self):
        from repro.power.calibration import CALIBRATION

        pen = CALIBRATION.ccx_penalty_hz(ghz(1.8), ghz(2.4))
        assert 0 < pen < 100e6


class TestL3Clock:
    def test_follows_fastest_running_core(self):
        topo = build_topology("EPYC 7502", n_packages=1)
        ccx = next(topo.ccxs())
        for core in ccx.cores:
            _activate(core)
        for t in ccx.cores[0].threads:
            t.requested_freq_hz = ghz(1.5)
        for core in ccx.cores[1:]:
            for t in core.threads:
                t.requested_freq_hz = ghz(2.5)
        assert FrequencyResolver().l3_target_hz(ccx) == ghz(2.5)

    def test_parks_at_floor_when_all_gated(self):
        topo = build_topology("EPYC 7502", n_packages=1)
        ccx = next(topo.ccxs())
        for core in ccx.cores:
            for t in core.threads:
                t.effective_cstate = "C2"
        assert FrequencyResolver().l3_target_hz(ccx) == 400e6
