"""The differential cross-check harness itself.

The harness is test infrastructure, so its own failure modes get tests:
an equivalent pair must come back clean, a planted divergence must be
located at the right sync point with the right field path, reports must
round-trip through JSON, and the CLI must exit nonzero (writing the
report artifact) on divergence.
"""

from __future__ import annotations

import json

import pytest

from repro.sim import crosscheck
from repro.sim.crosscheck import (
    REPORT_SCHEMA_ID,
    REPORT_SCHEMA_VERSION,
    CrossCheckRunner,
    Divergence,
    DivergenceReport,
    diff_state,
    fixture_name,
    generate_engine_scenario,
    generate_machine_scenario,
    load_fixtures,
    run_scenario,
    save_fixture,
    validate_report_document,
)


class TestDiffState:
    def test_equal_states_no_divergence(self):
        state = {"a": 1, "b": [1.5, {"c": "x"}]}
        assert diff_state(state, dict(state)) == []

    def test_leaf_difference_has_full_path(self):
        ref = {"power": {"core_w": 1.25}, "queue": [[10, 3]]}
        cand = {"power": {"core_w": 1.2500000001}, "queue": [[10, 3]]}
        divs = diff_state(ref, cand)
        assert [d.path for d in divs] == ["power.core_w"]
        assert divs[0].reference == 1.25

    def test_exactness_no_float_tolerance(self):
        assert diff_state({"x": 1.0}, {"x": 1.0 + 2**-50}) != []

    def test_length_mismatch_reported(self):
        divs = diff_state({"q": [1, 2, 3]}, {"q": [1, 2]})
        assert any(d.path == "q.<len>" for d in divs)

    def test_missing_key_reported(self):
        divs = diff_state({"a": 1}, {"b": 1})
        assert {d.path for d in divs} == {"a", "b"}

    def test_type_mismatch_is_divergence(self):
        assert diff_state({"x": 1}, {"x": "1"}) != []


class TestRunner:
    def test_engine_scenarios_agree(self):
        runner = CrossCheckRunner()
        for seed in range(6):
            spec = generate_engine_scenario(seed, shuffle=bool(seed % 2))
            report = runner.run(spec)
            assert report is None, report.render()

    def test_machine_scenario_agrees(self):
        report = CrossCheckRunner().run(generate_machine_scenario(0, n_ops=6))
        assert report is None, report and report.render()

    def test_scenarios_are_deterministic(self):
        spec = generate_engine_scenario(11)
        assert run_scenario(spec, "batched") == run_scenario(spec, "batched")
        assert generate_engine_scenario(11) == spec

    def test_planted_divergence_located(self, monkeypatch):
        spec = generate_engine_scenario(1)
        real = run_scenario

        def skewed(s, backend):
            snaps = real(s, backend)
            if crosscheck.resolve_backend(backend).name == "batched":
                snaps[2] = json.loads(json.dumps(snaps[2]))
                snaps[2]["now_ns"] += 1
            return snaps

        monkeypatch.setattr(crosscheck, "run_scenario", skewed)
        report = CrossCheckRunner().run(spec)
        assert report is not None
        assert report.sync_index == 2
        assert report.first.path == "now_ns"
        assert report.first.candidate == report.first.reference + 1

    def test_unknown_kind_raises(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_scenario({"kind": "quantum"}, "reference")

    def test_snapshot_count_mismatch_is_divergence(self, monkeypatch):
        # Regression: zip() would silently truncate the comparison when
        # one backend produced fewer sync points, hiding the divergence.
        spec = generate_engine_scenario(2)
        real = run_scenario

        def truncated(s, backend):
            snaps = real(s, backend)
            if crosscheck.resolve_backend(backend).name == "batched":
                snaps = snaps[:-1]
            return snaps

        monkeypatch.setattr(crosscheck, "run_scenario", truncated)
        report = CrossCheckRunner().run(spec)
        assert report is not None
        assert report.first.path == "<sync_count>"
        assert report.first.reference == report.first.candidate + 1


class TestReport:
    def _report(self):
        return DivergenceReport(
            scenario={"kind": "engine", "seed": 5, "ops": []},
            backends=["reference", "batched"],
            sync_index=3,
            sync_time_ns=6222,
            divergences=[
                Divergence("fired[13][1]", 93, 90),
                Divergence("queue[0][0]", 100, 200),
            ],
        )

    def test_render_names_sync_point_and_event(self):
        text = self._report().render()
        assert "sync point: #3 at t=6222 ns" in text
        assert "fired[13][1]" in text
        assert "93" in text and "90" in text

    def test_to_dict_roundtrips_through_json(self):
        doc = json.loads(json.dumps(self._report().to_dict()))
        assert doc["sync_time_ns"] == 6222
        assert doc["divergences"][0] == {
            "path": "fired[13][1]",
            "reference": 93,
            "candidate": 90,
        }

    def test_to_dict_is_schema_tagged_and_validates(self):
        doc = json.loads(json.dumps(self._report().to_dict()))
        assert doc["schema"] == REPORT_SCHEMA_ID
        assert doc["schema_version"] == REPORT_SCHEMA_VERSION
        assert validate_report_document(doc) == []

    def test_validator_rejects_foreign_and_tampered_documents(self):
        assert validate_report_document({"schema": "repro.obs/trace"})
        doc = self._report().to_dict()
        doc["schema_version"] = 99
        assert any("schema_version" in e for e in validate_report_document(doc))
        doc = self._report().to_dict()
        doc["divergences"] = []
        assert any("divergences" in e for e in validate_report_document(doc))
        doc = self._report().to_dict()
        doc["backends"] = ["reference"]
        assert any("backends" in e for e in validate_report_document(doc))


class TestFixtures:
    def test_save_load_roundtrip(self, tmp_path):
        spec = generate_engine_scenario(4, shuffle=True)
        path = save_fixture(spec, tmp_path)
        assert path.name == fixture_name(spec)
        assert load_fixtures(tmp_path) == [(path.name, spec)]

    def test_save_is_idempotent(self, tmp_path):
        spec = generate_engine_scenario(4)
        assert save_fixture(spec, tmp_path) == save_fixture(spec, tmp_path)
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_missing_dir_loads_empty(self, tmp_path):
        assert load_fixtures(tmp_path / "nope") == []


class TestCli:
    def test_clean_sweep_exits_zero(self, capsys):
        rc = crosscheck.main(
            ["--scenarios", "3", "--seed", "0", "--kind", "engine"]
        )
        assert rc == 0
        assert "crosscheck OK: 3 scenario" in capsys.readouterr().out

    def test_divergence_exits_one_and_writes_report(
        self, tmp_path, monkeypatch, capsys
    ):
        report = DivergenceReport(
            scenario={"kind": "engine", "seed": 0, "ops": []},
            backends=["reference", "batched"],
            sync_index=0,
            sync_time_ns=42,
            divergences=[Divergence("now_ns", 42, 43)],
        )
        monkeypatch.setattr(
            crosscheck.CrossCheckRunner, "run", lambda self, spec: report
        )
        out = tmp_path / "divergence.json"
        rc = crosscheck.main(
            ["--scenarios", "1", "--kind", "engine", "--report", str(out)]
        )
        assert rc == 1
        assert "DIVERGENCE" in capsys.readouterr().err
        assert json.loads(out.read_text())["sync_time_ns"] == 42

    def test_real_divergence_exits_nonzero(self, monkeypatch, capsys):
        # Exit-code audit: a divergence found by the real runner (not a
        # mocked run()) must propagate to a non-zero process exit.
        real = run_scenario

        def skewed(s, backend):
            snaps = real(s, backend)
            if crosscheck.resolve_backend(backend).name == "batched":
                snaps[-1] = json.loads(json.dumps(snaps[-1]))
                snaps[-1]["now_ns"] += 1
            return snaps

        monkeypatch.setattr(crosscheck, "run_scenario", skewed)
        rc = crosscheck.main(["--scenarios", "1", "--kind", "engine"])
        assert rc == 1
        assert "DIVERGENCE" in capsys.readouterr().err

    def test_report_artifact_is_schema_valid(self, tmp_path, monkeypatch):
        real = run_scenario

        def skewed(s, backend):
            snaps = real(s, backend)
            if crosscheck.resolve_backend(backend).name == "batched":
                snaps[-1] = json.loads(json.dumps(snaps[-1]))
                snaps[-1]["now_ns"] += 1
            return snaps

        monkeypatch.setattr(crosscheck, "run_scenario", skewed)
        out = tmp_path / "report.json"
        rc = crosscheck.main(
            ["--scenarios", "1", "--kind", "engine", "--report", str(out)]
        )
        assert rc == 1
        assert validate_report_document(json.loads(out.read_text())) == []

    def test_fixture_replay_included(self, tmp_path, capsys):
        save_fixture(generate_engine_scenario(9), tmp_path)
        rc = crosscheck.main(
            ["--scenarios", "0", "--fixtures", str(tmp_path)]
        )
        assert rc == 0
        assert "1 scenario" in capsys.readouterr().out
