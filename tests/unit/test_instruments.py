"""Instruments: AC analyzer, RAPL readout library, timelines."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.instruments.energy import X86EnergyReader
from repro.instruments.lmg670 import Lmg670
from repro.instruments.timeline import PowerSeries, inner_window_mean
from repro.machine import Machine
from repro.sim.rng import RngFactory
from repro.units import RAPL_COUNTER_WRAP


class TestLmg670:
    def _meter(self, seed=0):
        return Lmg670(RngFactory(seed).child("meter"))

    def test_sample_rate_20hz(self):
        assert self._meter().sample_rate_hz == 20.0

    def test_constant_power_sample_count(self):
        series = self._meter().sample_constant(200.0, 10.0)
        assert series.power_w.size == 200

    def test_accuracy_within_band(self):
        meter = self._meter()
        series = meter.sample_constant(500.0, 10.0)
        band = 0.015e-2 * 500.0 + 0.0625
        assert abs(series.mean_w() - 500.0) < 2 * band

    def test_systematic_error_persists(self):
        meter = self._meter(3)
        a = meter.sample_constant(300.0, 50.0).mean_w() - 300.0
        b = meter.sample_constant(300.0, 50.0).mean_w() - 300.0
        # same instrument: bias has the same sign and similar magnitude
        assert np.sign(a) == np.sign(b)

    def test_different_instruments_different_bias(self):
        a = self._meter(1).sample_constant(300.0, 50.0).mean_w()
        b = self._meter(2).sample_constant(300.0, 50.0).mean_w()
        assert a != b

    def test_series_timestamps(self):
        series = self._meter().sample_constant(100.0, 1.0, start_s=5.0)
        assert series.times_s[0] == pytest.approx(5.0)
        assert series.times_s[-1] == pytest.approx(5.0 + 19 / 20)

    def test_measure_series_tracks_trajectory(self):
        meter = self._meter()
        true = np.linspace(100.0, 200.0, 40)
        series = meter.measure_series(true)
        assert series.power_w[-1] > series.power_w[0] + 80


class TestTimeline:
    def test_window(self):
        s = PowerSeries(np.arange(10.0), np.arange(10.0))
        w = s.window(2.0, 5.0)
        assert list(w.times_s) == [2.0, 3.0, 4.0]

    def test_mean_and_std(self):
        s = PowerSeries(np.arange(4.0), np.array([1.0, 2.0, 3.0, 4.0]))
        assert s.mean_w() == pytest.approx(2.5)
        assert s.std_w() > 0

    def test_empty_mean_raises(self):
        s = PowerSeries(np.array([]), np.array([]))
        with pytest.raises(MeasurementError):
            s.mean_w()

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(MeasurementError):
            PowerSeries(np.arange(3.0), np.arange(4.0))

    def test_concat(self):
        a = PowerSeries(np.arange(3.0), np.ones(3))
        b = PowerSeries(3.0 + np.arange(3.0), 2 * np.ones(3))
        c = a.concat(b)
        assert c.power_w.size == 6
        assert c.duration_s == pytest.approx(5.0)

    def test_inner_window_trims_head_and_tail(self):
        # 10 s at 20 Sa/s with spikes in the first and last second
        times = np.arange(200) / 20.0
        power = np.full(200, 100.0)
        power[:20] = 500.0
        power[-20:] = 500.0
        series = PowerSeries(times, power)
        assert inner_window_mean(series) == pytest.approx(100.0)

    def test_inner_window_overtrim_raises(self):
        series = PowerSeries(np.arange(5) / 20.0, np.ones(5))
        with pytest.raises(MeasurementError):
            inner_window_mean(series, skip_head_s=1.0, skip_tail_s=1.0)


class TestX86EnergyReader:
    @pytest.fixture
    def m(self):
        machine = Machine("EPYC 7502", seed=0)
        yield machine
        machine.shutdown()

    def test_unit_decoded_from_msr(self, m):
        reader = X86EnergyReader(m.msr)
        assert reader.energy_unit_j == pytest.approx(2.0**-16)

    def test_package_energy_accumulates(self, m):
        reader = X86EnergyReader(m.msr)
        before = reader.read_package(0)
        m.measure(10.0)
        after = reader.read_package(0)
        assert reader.delta_joules(before, after) > 0

    def test_core_domain_is_per_core(self, m):
        from repro.workloads import SPIN
        from repro.units import ghz

        m.os.set_all_frequencies(ghz(2.5))
        m.os.run(SPIN, [0])  # only core 0 active
        reader = X86EnergyReader(m.msr)
        b0, b1 = reader.read_core(0), reader.read_core(1)
        m.measure(10.0)
        d0 = reader.delta_joules(b0, reader.read_core(0))
        d1 = reader.delta_joules(b1, reader.read_core(1))
        assert d0 > 5 * max(d1, 1e-9)

    def test_wrap_handling(self, m):
        reader = X86EnergyReader(m.msr)
        from repro.instruments.energy import EnergyReading

        before = EnergyReading(RAPL_COUNTER_WRAP - 100, 0.0)
        after = EnergyReading(50, 0.0)
        assert reader.delta_joules(before, after) == pytest.approx(
            150 * reader.energy_unit_j
        )

    def test_average_power(self, m):
        reader = X86EnergyReader(m.msr)
        from repro.instruments.energy import EnergyReading

        before = EnergyReading(0, 0.0)
        after = EnergyReading(int(100.0 / reader.energy_unit_j), 0.0)
        assert reader.average_power_w(before, after, 10.0) == pytest.approx(10.0, rel=1e-4)

    def test_zero_duration_rejected(self, m):
        reader = X86EnergyReader(m.msr)
        r = reader.read_package(0)
        with pytest.raises(ValueError):
            reader.average_power_w(r, r, 0.0)
