"""P-state definitions and MSR encode/decode."""

import pytest

from repro.errors import PStateError
from repro.pstate.table import (
    PState,
    PStateTable,
    decode_pstate_msr,
    encode_pstate_msr,
    vid_to_volts,
    volts_to_vid,
)
from repro.units import ghz


class TestVid:
    def test_roundtrip(self):
        for v in (0.85, 1.0, 1.1, 1.25):
            assert vid_to_volts(volts_to_vid(v)) == pytest.approx(v, abs=0.004)

    def test_zero_vid_is_max_voltage(self):
        assert vid_to_volts(0) == pytest.approx(1.55)

    def test_out_of_range_voltage(self):
        with pytest.raises(PStateError):
            volts_to_vid(2.0)
        with pytest.raises(PStateError):
            volts_to_vid(0.0)

    def test_out_of_range_vid(self):
        with pytest.raises(PStateError):
            vid_to_volts(256)


class TestEncoding:
    def test_roundtrip(self):
        ps = PState(index=1, freq_hz=ghz(2.2), voltage_v=1.0, idd_max_a=12.0)
        decoded = decode_pstate_msr(encode_pstate_msr(ps), index=1)
        assert decoded.freq_hz == pytest.approx(ps.freq_hz)
        assert decoded.voltage_v == pytest.approx(ps.voltage_v, abs=0.004)
        assert decoded.idd_max_a == 12.0
        assert decoded.enabled

    def test_disabled_state_encoded(self):
        ps = PState(index=2, freq_hz=ghz(1.5), voltage_v=0.85, enabled=False)
        assert not decode_pstate_msr(encode_pstate_msr(ps)).enabled

    def test_frequency_must_be_on_grid(self):
        with pytest.raises(PStateError):
            PState(index=0, freq_hz=2.51e9, voltage_v=1.1)  # not 25 MHz multiple

    def test_frequency_must_be_positive(self):
        with pytest.raises(PStateError):
            PState(index=0, freq_hz=0.0, voltage_v=1.1)

    def test_decode_rejects_zero_divider(self):
        with pytest.raises(PStateError):
            decode_pstate_msr(0x64)  # CpuDfsId == 0

    def test_enable_bit_is_bit_63(self):
        ps = PState(index=0, freq_hz=ghz(2.5), voltage_v=1.1)
        assert encode_pstate_msr(ps) >> 63 == 1


class TestTable:
    def _table(self):
        return PStateTable(
            [
                PState(0, ghz(1.5), 0.85),
                PState(1, ghz(2.5), 1.1),
                PState(2, ghz(2.2), 1.0),
            ]
        )

    def test_sorted_descending_with_p0_fastest(self):
        table = self._table()
        assert [p.freq_hz for p in table] == [ghz(2.5), ghz(2.2), ghz(1.5)]
        assert table.pstates[0].index == 0

    def test_current_limit_is_slowest_enabled(self):
        assert self._table().current_limit == 2

    def test_by_frequency(self):
        assert self._table().by_frequency(ghz(2.2)).index == 1

    def test_by_frequency_missing(self):
        with pytest.raises(PStateError):
            self._table().by_frequency(ghz(3.0))

    def test_closest_not_above(self):
        table = self._table()
        assert table.closest_not_above(ghz(2.4)).freq_hz == ghz(2.2)
        assert table.closest_not_above(ghz(2.5)).freq_hz == ghz(2.5)

    def test_closest_not_above_below_floor_returns_slowest(self):
        assert self._table().closest_not_above(ghz(1.0)).freq_hz == ghz(1.5)

    def test_empty_table_rejected(self):
        with pytest.raises(PStateError):
            PStateTable([])

    def test_max_eight_pstates(self):
        states = [PState(i, ghz(1.5) + i * 25e6 * 4, 1.0) for i in range(9)]
        with pytest.raises(PStateError):
            PStateTable(states)

    def test_from_frequencies(self):
        table = PStateTable.from_frequencies([ghz(1.5), ghz(2.5)], lambda f: 0.9)
        assert len(table) == 2
        assert table.frequencies_hz() == [ghz(2.5), ghz(1.5)]
