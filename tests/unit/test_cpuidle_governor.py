"""Menu governor and the interrupt model."""

import pytest

from repro.errors import ConfigurationError
from repro.machine import Machine
from repro.oslayer.cpuidle import MenuGovernor, RESIDENCY_TABLE
from repro.oslayer.interrupts import (
    CYCLES_PER_WAKEUP,
    IDLE_RESIDUAL_WAKEUPS_HZ,
    InterruptModel,
)


class TestInterruptModel:
    def test_residual_rate_on_quiet_cpu(self):
        model = InterruptModel()
        assert model.wakeup_rate_hz(0) == IDLE_RESIDUAL_WAKEUPS_HZ

    def test_register_adds_rate(self):
        model = InterruptModel()
        model.register("timer", 3, 1000.0)
        assert model.wakeup_rate_hz(3) == IDLE_RESIDUAL_WAKEUPS_HZ + 1000.0
        assert model.wakeup_rate_hz(4) == IDLE_RESIDUAL_WAKEUPS_HZ

    def test_duplicate_name_rejected(self):
        model = InterruptModel()
        model.register("timer", 0, 10.0)
        with pytest.raises(ConfigurationError):
            model.register("timer", 1, 10.0)

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            InterruptModel().register("x", 0, 0.0)

    def test_unregister_unknown(self):
        with pytest.raises(ConfigurationError):
            InterruptModel().unregister("ghost")

    def test_idle_cycles_under_paper_bound(self):
        # §V-A: "less than 60000 cycle/s"
        model = InterruptModel()
        assert model.idle_cycles_per_s(0) < 60_000
        assert model.idle_cycles_per_s(0) == IDLE_RESIDUAL_WAKEUPS_HZ * CYCLES_PER_WAKEUP


class TestMenuGovernor:
    def _gov(self, rate_hz=None, cpu=0):
        interrupts = InterruptModel()
        if rate_hz:
            interrupts.register("src", cpu, rate_hz)
        return MenuGovernor(interrupts)

    def test_quiet_cpu_selects_c2(self):
        assert self._gov().select(0, "C2") == "C2"

    def test_prediction_is_inverse_rate(self):
        gov = self._gov(rate_hz=996.0)  # total 1000/s
        assert gov.predicted_sleep_ns(0) == pytest.approx(1e6)

    def test_high_rate_falls_back_to_c1(self):
        gov = self._gov(rate_hz=20_000.0)
        assert gov.select(0, "C2") == "C1"

    def test_extreme_rate_still_c1_not_c0(self):
        gov = self._gov(rate_hz=5_000_000.0)
        assert gov.select(0, "C2") == "C1"

    def test_disable_mask_still_wins(self):
        gov = self._gov()
        assert gov.select(0, "C1") == "C1"
        assert gov.select(0, "C0") == "C0"

    def test_breakeven_rate(self):
        gov = self._gov()
        assert gov.breakeven_rate_hz("C2") == pytest.approx(10_000.0)
        with pytest.raises(KeyError):
            gov.breakeven_rate_hz("C6")

    def test_residency_table_ordered_deepest_first(self):
        depths = [e.state for e in RESIDENCY_TABLE]
        assert depths == ["C2", "C1"]


class TestMachineIntegration:
    def test_timer_storm_costs_deep_sleep(self):
        m = Machine("EPYC 7502", seed=0)
        baseline = m.measure(10.0).ac_mean_w
        m.os.register_interrupt("nvme_poll", 5, 20_000.0)
        stormy = m.measure(10.0).ac_mean_w
        m.os.unregister_interrupt("nvme_poll")
        recovered = m.measure(10.0).ac_mean_w
        m.shutdown()
        assert stormy - baseline > 80.0  # the §VI-A wake penalty
        assert recovered == pytest.approx(baseline, abs=0.3)

    def test_moderate_rate_keeps_c2(self):
        m = Machine("EPYC 7502", seed=0)
        m.os.register_interrupt("slow_timer", 5, 100.0)
        assert m.topology.thread(5).effective_cstate == "C2"
        m.shutdown()

    def test_perf_sees_interrupt_cycles(self):
        m = Machine("EPYC 7502", seed=0)
        m.os.register_interrupt("busy", 7, 1_000.0)
        sample = m.os.perf.sample([7], 1.0, 1)[0][0]
        quiet = m.os.perf.sample([8], 1.0, 1)[0][0]
        m.shutdown()
        assert sample.cycles > 10 * quiet.cycles
