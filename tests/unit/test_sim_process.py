"""Coroutine process layer on the simulator."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.process import Process, ProcessTimeout, Timeout, WaitFor
from repro.units import ms, us


class TestTimeout:
    def test_sequential_timeouts(self, sim):
        trace = []

        def script():
            trace.append(sim.now_ns)
            yield Timeout(us(5))
            trace.append(sim.now_ns)
            yield Timeout(us(10))
            trace.append(sim.now_ns)

        Process(sim, script())
        sim.run_until(us(100))
        assert trace == [0, us(5), us(15)]

    def test_return_value(self, sim):
        def script():
            yield Timeout(us(1))
            return 42

        p = Process(sim, script())
        sim.run_until(us(2))
        assert p.finished
        assert p.result == 42


class TestWaitFor:
    def test_condition_polled(self, sim):
        flag = {"set": False}
        sim.schedule_after(us(50), lambda: flag.__setitem__("set", True))
        seen = []

        def script():
            yield WaitFor(lambda: flag["set"], poll_ns=us(1))
            seen.append(sim.now_ns)

        Process(sim, script())
        sim.run_until(us(100))
        assert len(seen) == 1
        assert us(50) <= seen[0] <= us(52)

    def test_immediate_condition(self, sim):
        seen = []

        def script():
            yield WaitFor(lambda: True)
            seen.append(sim.now_ns)

        Process(sim, script())
        sim.run_until(us(1))
        assert seen == [0]

    def test_timeout_raises_into_generator(self, sim):
        outcome = []

        def script():
            try:
                yield WaitFor(lambda: False, poll_ns=us(1), timeout_ns=us(10))
            except ProcessTimeout:
                outcome.append("timed out")

        Process(sim, script())
        sim.run_until(us(50))
        assert outcome == ["timed out"]


class TestComposition:
    def test_wait_on_child_process(self, sim):
        def child():
            yield Timeout(us(30))
            return "done"

        results = []

        def parent():
            value = yield Process(sim, child())
            results.append((value, sim.now_ns))

        Process(sim, parent())
        sim.run_until(us(100))
        assert results == [("done", us(30))]

    def test_wait_on_finished_process(self, sim):
        def child():
            return "early"
            yield  # pragma: no cover

        done = Process(sim, child())
        assert done.finished
        results = []

        def parent():
            value = yield done
            results.append(value)

        Process(sim, parent())
        sim.run_until(us(1))
        assert results == ["early"]

    def test_invalid_yield_rejected(self, sim):
        def script():
            yield "nonsense"

        with pytest.raises(SimulationError):
            Process(sim, script())


class TestWithMachine:
    def test_script_drives_event_mode_machine(self):
        from repro.machine import Machine
        from repro.units import ghz
        from repro.workloads import SPIN

        m = Machine("EPYC 7502", seed=0)
        m.os.run(SPIN, [0])
        m.enable_event_mode()
        core = m.topology.thread(0).core
        observations = []

        def script():
            m.os.set_frequency(0, ghz(2.5))
            yield WaitFor(
                lambda: core.applied_freq_hz == ghz(2.5), poll_ns=us(2)
            )
            observations.append(m.sim.now_ns)

        Process(m.sim, script())
        m.sim.run_for(ms(5))
        m.shutdown()
        assert len(observations) == 1
        # slot wait (<=1ms) + 360us up execution
        assert us(350) <= observations[0] <= ms(1) + us(370)
