"""Memory hierarchy, latency and bandwidth models."""

import pytest

from repro.iodie.fclk import FclkController, FclkMode
from repro.memory.bandwidth import BandwidthModel
from repro.memory.dram import DRAM_CONFIGS, dram_by_name
from repro.memory.hierarchy import ZEN2_HIERARCHY, by_name, level_for_footprint
from repro.memory.latency import LatencyModel
from repro.errors import ConfigurationError
from repro.topology import build_topology
from repro.units import ghz


class TestHierarchy:
    def test_zen2_geometry(self):
        assert by_name("L1D").size_bytes == 32 * 1024
        assert by_name("L2").size_bytes == 512 * 1024
        assert by_name("L3").size_bytes == 16 * 1024 * 1024

    def test_l3_is_ccx_shared(self):
        assert by_name("L3").shared_by == "ccx"
        assert by_name("L2").shared_by == "core"

    def test_only_l3_has_l3_domain_cycles(self):
        for level in ZEN2_HIERARCHY:
            if level.name == "L3":
                assert level.l3_cycles > 0
            else:
                assert level.l3_cycles == 0

    def test_level_for_footprint(self):
        assert level_for_footprint(16 * 1024).name == "L1D"
        assert level_for_footprint(256 * 1024).name == "L2"
        assert level_for_footprint(8 * 1024 * 1024).name == "L3"
        assert level_for_footprint(64 * 1024 * 1024) is None  # DRAM

    def test_unknown_level_raises(self):
        with pytest.raises(KeyError):
            by_name("L4")


class TestDram:
    def test_default_grade(self):
        cfg = dram_by_name("DDR4-3200")
        assert cfg.memclk_hz == ghz(1.6)
        assert cfg.transfer_rate_mts == pytest.approx(3200.0)
        assert cfg.channel_peak_gbs == pytest.approx(25.6)

    def test_all_grades_consistent(self):
        for cfg in DRAM_CONFIGS.values():
            assert cfg.channel_peak_gbs == pytest.approx(
                8 * 2 * cfg.memclk_hz / 1e9, rel=1e-6
            )

    def test_unknown_grade(self):
        with pytest.raises(ConfigurationError):
            dram_by_name("DDR5-6000")


@pytest.fixture
def fclk_ctrl():
    topo = build_topology("EPYC 7502", n_packages=1)
    io = topo.packages[0].io_die
    io.memclk_hz = ghz(1.6)
    return FclkController(io)


class TestLatencyModel:
    def test_l1_latency_scales_with_core_clock(self):
        model = LatencyModel()
        lat_fast = model.cache_latency_ns("L1D", ghz(2.5))
        lat_slow = model.cache_latency_ns("L1D", ghz(1.5))
        assert lat_slow == pytest.approx(lat_fast * 2.5 / 1.5)

    def test_l3_latency_splits_domains(self):
        model = LatencyModel()
        uniform = model.l3_latency_ns(ghz(1.5), ghz(1.5))
        fast_l3 = model.l3_latency_ns(ghz(1.5), ghz(2.5))
        assert fast_l3 < uniform  # Fig 4's effect

    def test_l3_latency_default_uses_core_clock(self):
        model = LatencyModel()
        assert model.cache_latency_ns("L3", ghz(2.0)) == pytest.approx(
            model.l3_latency_ns(ghz(2.0), ghz(2.0))
        )

    def test_dram_latency_paper_anchors(self, fclk_ctrl):
        model = LatencyModel()
        fclk_ctrl.apply(FclkMode.AUTO)
        auto = model.dram_latency_ns(ghz(2.5), fclk_ctrl)
        fclk_ctrl.apply(FclkMode.P0)
        p0 = model.dram_latency_ns(ghz(2.5), fclk_ctrl)
        assert auto == pytest.approx(92.0, abs=0.5)
        assert p0 == pytest.approx(96.0, abs=0.5)

    def test_p2_between_auto_and_p0_at_3200(self, fclk_ctrl):
        model = LatencyModel()
        fclk_ctrl.apply(FclkMode.AUTO)
        auto = model.dram_latency_ns(ghz(2.5), fclk_ctrl)
        fclk_ctrl.apply(FclkMode.P2)
        p2 = model.dram_latency_ns(ghz(2.5), fclk_ctrl)
        fclk_ctrl.apply(FclkMode.P0)
        p0 = model.dram_latency_ns(ghz(2.5), fclk_ctrl)
        assert auto < p2 < p0

    def test_p2_worst_at_2666(self, fclk_ctrl):
        model = LatencyModel()
        fclk_ctrl.io_die.memclk_hz = ghz(1.333)
        fclk_ctrl.on_memclk_change()
        lats = {}
        for mode in (FclkMode.AUTO, FclkMode.P0, FclkMode.P1, FclkMode.P2):
            fclk_ctrl.apply(mode)
            lats[mode] = model.dram_latency_ns(ghz(2.5), fclk_ctrl)
        assert lats[FclkMode.P2] > lats[FclkMode.P0]
        assert lats[FclkMode.AUTO] <= min(lats[m] for m in (FclkMode.P0, FclkMode.P1, FclkMode.P2)) + 0.01

    def test_lower_core_clock_raises_dram_latency(self, fclk_ctrl):
        model = LatencyModel()
        assert model.dram_latency_ns(ghz(1.5), fclk_ctrl) > model.dram_latency_ns(
            ghz(2.5), fclk_ctrl
        )


class TestBandwidthModel:
    def test_single_core_below_ceiling(self, fclk_ctrl):
        model = BandwidthModel()
        res = model.node_bandwidth_gbs(1, ghz(2.5), fclk_ctrl)
        assert res.limiter == "cores"
        assert res.bandwidth_gbs == pytest.approx(22.0, rel=0.01)

    def test_two_cores_saturate_if_link(self, fclk_ctrl):
        model = BandwidthModel()
        res = model.node_bandwidth_gbs(2, ghz(2.5), fclk_ctrl)
        assert res.limiter == "if_link"
        assert res.saturating_cores == 2

    def test_extra_cores_degrade(self, fclk_ctrl):
        model = BandwidthModel()
        two = model.node_bandwidth_gbs(2, ghz(2.5), fclk_ctrl).bandwidth_gbs
        eight = model.node_bandwidth_gbs(8, ghz(2.5), fclk_ctrl).bandwidth_gbs
        assert eight < two

    def test_lower_fclk_lowers_ceiling(self, fclk_ctrl):
        model = BandwidthModel()
        fclk_ctrl.apply(FclkMode.P0)
        p0 = model.node_bandwidth_gbs(4, ghz(2.5), fclk_ctrl).bandwidth_gbs
        fclk_ctrl.apply(FclkMode.P2)
        p2 = model.node_bandwidth_gbs(4, ghz(2.5), fclk_ctrl).bandwidth_gbs
        assert p2 < p0

    def test_memclk_secondary_at_p0(self, fclk_ctrl):
        model = BandwidthModel()
        fclk_ctrl.apply(FclkMode.P0)
        hi = model.node_bandwidth_gbs(4, ghz(2.5), fclk_ctrl, memclk_hz=ghz(1.6)).bandwidth_gbs
        lo = model.node_bandwidth_gbs(4, ghz(2.5), fclk_ctrl, memclk_hz=ghz(1.333)).bandwidth_gbs
        assert abs(hi - lo) / hi < 0.08  # "not significantly"

    def test_core_frequency_matters_below_saturation(self, fclk_ctrl):
        model = BandwidthModel()
        fast = model.node_bandwidth_gbs(1, ghz(2.5), fclk_ctrl).bandwidth_gbs
        slow = model.node_bandwidth_gbs(1, ghz(1.5), fclk_ctrl).bandwidth_gbs
        assert slow < fast

    def test_zero_cores_rejected(self, fclk_ctrl):
        with pytest.raises(ValueError):
            BandwidthModel().node_bandwidth_gbs(0, ghz(2.5), fclk_ctrl)

    def test_degradation_floor(self, fclk_ctrl):
        model = BandwidthModel()
        res = model.node_bandwidth_gbs(32, ghz(2.5), fclk_ctrl)
        sat = model.node_bandwidth_gbs(res.saturating_cores, ghz(2.5), fclk_ctrl)
        assert res.bandwidth_gbs >= 0.5 * sat.bandwidth_gbs
