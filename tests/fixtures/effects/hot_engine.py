"""Seeded hot-path bugs: HOT001 (allocation), HOT002 (repeated attribute
lookup), HOT003 (exception control flow) — plus the negatives each rule
must stay silent on.  ``Queue.dispatch`` is declared hot by the fixture
manifest (regions.json); ``compute_slow`` is a cold boundary via the
inline marker.  BUG/OK comments mark the expectations pinned by
tests/unit/test_lint_effects.py.
"""


class Queue:
    def __init__(self):
        self.items = []
        self.count = 0

    def make_key(self, a, b):
        return (a, b)  # allocating helper: reported at its hot call site

    def compute_slow(self, n):  # lint: cold (memo-miss slow path)
        return [i * 2 for i in range(n)]

    def dispatch(self, events, limit):
        pairs = (limit, limit)  # BUG HOT001: tuple display
        labels = [e for e in events]  # BUG HOT001: list comprehension
        note = f"at {limit}"  # BUG HOT001: f-string formatting
        table = {"a": 1}  # BUG HOT001: dict display
        key = self.make_key(limit, limit)  # BUG HOT001: allocating callee

        def flush():  # BUG HOT001: closure defined per event
            return limit

        try:  # BUG HOT003: exception-based control flow
            value = table["a"]
        except KeyError:
            value = 0
        total = 0
        for e in events:
            total += self.count  # BUG HOT002: 'self.count' looked up twice
            total -= self.count
            total += e
        if limit < 0:
            raise ValueError(f"bad limit {limit}")  # OK: raise path is exempt
        cold = self.compute_slow(4)  # OK: callee is a declared cold boundary
        a, b = limit, total  # OK: small unpack builds no tuple
        junk = (1, 2)  # lint: disable=HOT001 reason=demonstrates a justified suppression
        junk2 = (3, 4)  # lint: disable=HOT001
        return (
            total + value + a + b + flush() + len(cold) + len(labels)
            + len(pairs) + len(note) + len(key) + len(junk) + len(junk2)
        )
