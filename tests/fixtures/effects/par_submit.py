"""Seeded PAR001 bugs: un-picklable / fork-unsafe values submitted to
repro.parallel, plus the module-level shapes that must stay silent."""

import threading
from functools import partial

from repro.parallel.pool import Task


def _entry(x):
    return x + 1


def build_bad_lambda():
    return Task(name="t", fn=lambda x: x, args=(1,))  # BUG PAR001: lambda fn


def build_bad_nested():
    def inner(x):
        return x

    return Task(name="t", fn=inner, args=(2,))  # BUG PAR001: nested function


def build_bad_handle():
    f = open("data.txt")
    return Task(name="t", fn=_entry, args=(f,))  # BUG PAR001: open handle


def build_bad_lock():
    return Task(name="t", fn=_entry, args=(threading.Lock(),))  # BUG PAR001


def build_good():
    return Task(name="t", fn=_entry, args=(3,))  # OK: module-level callable


def build_good_partial():
    return Task(name="t", fn=partial(_entry, 4), args=())  # OK: partial
