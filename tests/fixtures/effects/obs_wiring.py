"""Seeded OBS001 bugs: obs uses outside the ``is None`` guard, plus the
guarded / caller-guarded shapes that must stay silent."""


class Engine:
    def __init__(self, obs=None):
        self._obs = obs
        self._obs_count = None

    def run_bad(self, n):
        self._obs_count.inc(n)  # BUG OBS001: no guard dominates this use
        return n

    def run_anti(self, n):
        if self._obs is None:
            self._obs_count.inc(n)  # BUG OBS001: proven-None branch
        return n

    def run_good(self, n):
        if self._obs is not None:
            self._obs_count.inc(n)  # OK: guarded
        return n

    def run_early_exit(self, n):
        if self._obs is None:
            return n
        self._obs_count.inc(n)  # OK: the early return promotes non-null
        return n

    def _helper(self, n):
        self._obs_count.inc(n)  # OK: every resolved call site is guarded
        return n

    def run_caller_guarded(self, n):
        if self._obs is None:
            return n
        return self._helper(n)
