"""Negative fixture: correct idioms only — zero findings expected."""

import random

from repro.units import GHZ, NS_PER_S, ghz, ns_to_s, s


class Simulator:
    def __init__(self) -> None:
        self.now_ns = 0
        self.rng = random.Random(42)  # OK: seeded private stream

    def step(self, dt_ns: int) -> None:
        self.now_ns += dt_ns

    def sample(self) -> float:
        return self.rng.random()  # OK: draws from the seeded stream


def breakeven_ns(rate_hz: float) -> float:
    # Scale-constant numerator: the quotient is a *nanosecond* count.
    return NS_PER_S / rate_hz


def cycles(t_ns: int, f_ghz: float) -> float:
    f_hz = ghz(f_ghz)
    return ns_to_s(t_ns) * f_hz


def warmup(sim: Simulator) -> None:
    sim.step(s(1))
    sim.step(int(2.5 * GHZ) and 0)  # dimensionless arithmetic only


def mean(values: list) -> float:
    total = 0.0
    for v in values:
        total += v
    return total / len(values) if values else 0.0
