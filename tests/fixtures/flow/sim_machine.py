"""Seeded true positives: state class and interprocedural sinks.

Every ``BUG:`` comment marks a finding the flow analyzer must emit;
``OK:`` lines are deliberately-correct idioms that must stay silent.
The expected (rule, line) pairs are asserted in
``tests/unit/test_lint_flow.py`` — keep them in sync when editing.
"""

import random
import time

from repro.units import NS_PER_S, cycles_to_ns, ms, us


class Machine:
    def __init__(self, f_hz: float) -> None:
        self.f_hz = f_hz
        self.now_ns = 0
        self.energy_j = 0.0

    def advance(self, delta_ns):
        self.now_ns += delta_ns

    def accumulate(self, p_w, dt_ns):
        self.energy_j += p_w * dt_ns  # BUG DIM001: missing / NS_PER_S

    def accumulate_ok(self, p_w, dt_ns):
        self.energy_j += p_w * dt_ns / NS_PER_S  # OK: rescaled to joules

    def schedule_at(self, t_ns):
        self.now_ns = max(self.now_ns, t_ns)


def latency_ns(cycles, f_hz):
    # Fractional nanoseconds escape through this helper's return value.
    return cycles_to_ns(cycles, f_hz)


def jitter_ns():
    return random.random() * 10.0  # unseeded draw, tainted hereafter


def run(m: Machine):
    t_ns = latency_ns(100, m.f_hz)  # BUG DIM003: float into the ns local
    m.now_ns = t_ns
    wait_us = 5.0
    total_ns = us(wait_us) + wait_us  # BUG DIM001: ns + us arithmetic
    m.advance(ms(2))  # OK: ms() constructs integer nanoseconds
    budget = time.monotonic()
    m.now_ns = int(budget)  # BUG DET002: wall-clock into Machine state
    m.schedule_at(jitter_ns())  # BUG DET002: unseeded RNG into the queue
    return total_ns


def drain(m: Machine, pending: set):
    for cpu in pending:
        m.advance(cpu)  # BUG DET002: set-iteration order into state
    for cpu in sorted(pending):
        m.advance(cpu)  # OK: sorted() fixes the iteration order
