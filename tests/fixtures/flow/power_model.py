"""Seeded true positives: cross-module dimension flow.

See ``sim_machine.py`` for the BUG/OK convention; expectations live in
``tests/unit/test_lint_flow.py``.
"""

from repro.units import NS_PER_US, joules_to_rapl_units, us

from sim_machine import Machine, latency_ns


def window_energy_j(p_w, t_ns, f_hz):
    return p_w + t_ns  # BUG DIM001: power + time has no meaning


def charge(m: Machine, p_w, dwell_us):
    m.accumulate_ok(p_w, dwell_us)  # BUG DIM001: microseconds into dt_ns
    m.accumulate_ok(p_w, us(dwell_us))  # OK: converted before the call


def deadline(limit_ns):
    return limit_ns


def poll(m: Machine):
    deadline(250)  # BUG DIM002: bare literal into a ns parameter
    deadline(us(250))  # OK: constructed via repro.units
    m.now_ns = latency_ns(64, m.f_hz)  # BUG DIM003: cross-module float
    raw = joules_to_rapl_units(0.5)  # OK: counter units are integers
    return raw


def rescale_ok(t_ns):
    return t_ns / NS_PER_US  # OK: named constant marks a rescale
