"""Candidate side of the skewed backend pair (CON001/CON002 positives).

Drifts, one per rule facet:

* no ``pop_due``                      -> CON001 (missing method)
* extra public ``drain``              -> CON001 (method only on one side)
* ``push`` gained a positional param  -> CON001 (signature arity)
* ``cancel_all`` kwonly name changed  -> CON001 (kwarg names)
* ``__init__`` drops ``self.limit``   -> CON001 (constructor state)
* ``peek_time`` raises                -> CON002 (effect drift)

``step``/``reset`` stay conforming (negatives), and the underscore
default on ``step`` must not count as signature surface.
"""


class FakeBatchedQueue:
    def __init__(self, capacity):
        self.count = 0
        self._buf = []
        self._capacity = capacity  # private: 'limit' field drift -> CON001

    def push(self, time_ns, callback, coalesce):  # extra arg -> CON001
        self.count += 1
        self._buf.append((time_ns, callback, coalesce))

    def drain(self):  # only on the candidate -> CON001
        out, self._buf = self._buf, []
        self.count = 0
        return out

    def peek_time(self):
        if not self._buf:  # raising where the pair returns None -> CON002
            raise ValueError("empty queue")
        return min(entry[0] for entry in self._buf)

    def cancel_all(self, *, label=None):  # kwonly name drift -> CON001
        self.count = 0
        self._buf = []
        return label

    def step(self, n, _shift=2):  # conforming: underscore default ignored
        return n ** _shift

    def reset(self):
        self.count = 0
        self._buf = []
