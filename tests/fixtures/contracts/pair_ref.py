"""Reference side of a deliberately-skewed backend pair (CON001/CON002).

Test DATA for the contracts pass — every drift here is intentional and
asserted by ``tests/unit/test_lint_contracts.py``.
"""


class FakeQueue:
    """The reference queue: the contract the candidate must honour."""

    def __init__(self, capacity):
        self.count = 0
        self.limit = capacity
        self._heap = []

    def push(self, time_ns, callback):
        self.count += 1
        self._heap.append((time_ns, callback))

    def pop_due(self, limit_ns):  # line: candidate has no pop_due -> CON001
        if self._heap and self._heap[0][0] <= limit_ns:
            self.count -= 1
            return self._heap.pop(0)
        return None

    def peek_time(self):
        if self._heap:
            return self._heap[0][0]
        return None

    def cancel_all(self, *, tag=None):
        self.count = 0
        self._heap = []
        return tag

    def step(self, n, _pow=pow):  # underscore default: not contract surface
        return _pow(n, 2)

    def reset(self):
        self.count = 0
        self._heap = []

    def legacy_shim(self):  # excused via ignore_methods in the manifest
        return None
