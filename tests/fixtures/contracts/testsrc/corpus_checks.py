"""Fixture test corpus for the CON021 reachability check.

This file is DATA for tests/unit/test_lint_contracts.py — it lives in
the ``tests_root`` named by the fixture manifest (CON021 scans every
``.py`` there) but is deliberately NOT named ``test_*.py`` so pytest
never collects it.  It mentions ``validate_alpha`` and
``validate_orphan``; the dual-schema checker is deliberately absent so
exactly one validator trips CON021.  CON021 is a substring scan, so
even naming that function here would count as coverage.
"""


def test_alpha_round_trip():
    from schema_mod import alpha_document, validate_alpha

    assert validate_alpha(alpha_document([1, 2])) == []


def test_orphan_rejects_foreign():
    from schema_mod import validate_orphan

    assert validate_orphan({"schema": "repro.fixture/alpha"})
