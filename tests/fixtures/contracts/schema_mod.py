"""Schema-registry fixture module (CON020/CON021 positives).

* ``alpha``: writer's field set grew (``total``) while the registry
  snapshot still records v1 without it -> CON020 (drift without bump)
* ``dual``: two writer sites for one schema -> CON020
* ``unregistered``: writer for a schema the registry never saw -> CON020
* ``noval``: writer with no validator anywhere -> CON020
* ``orphan``: validator with no writer -> CON020
* ``validate_dual`` is referenced by no fixture test -> CON021
"""

ALPHA_ID = "repro.fixture/alpha"
ALPHA_VERSION = 1


def alpha_document(items):
    return {
        "schema": ALPHA_ID,
        "schema_version": ALPHA_VERSION,
        "items": list(items),
        "total": len(items),  # new field, version not bumped -> CON020
    }


def validate_alpha(doc):
    errors = []
    if doc.get("schema") != ALPHA_ID:
        errors.append("wrong schema")
    return errors


def dual_document_a():
    return {"schema": "repro.fixture/dual", "schema_version": 1, "a": 1}


def dual_document_b():  # second writer site -> CON020
    return {"schema": "repro.fixture/dual", "schema_version": 1, "a": 2}


def validate_dual(doc):  # never referenced by a test -> CON021
    return [] if doc.get("schema") == "repro.fixture/dual" else ["wrong schema"]


def unregistered_document():  # schema absent from the snapshot -> CON020
    return {"schema": "repro.fixture/unregistered", "schema_version": 1}


def noval_document():  # no validator anywhere -> CON020
    return {"schema": "repro.fixture/noval", "schema_version": 1, "x": 0}


def validate_orphan(doc):  # validator whose writer was deleted -> CON020
    if doc["schema"] != "repro.fixture/orphan":
        return ["wrong schema"]
    return []
