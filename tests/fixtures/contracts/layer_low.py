"""Low-layer fixture module with deliberate boundary violations (CON010).

Two module-scope imports of the high layer are positives; the lazy
function-level import and the ``TYPE_CHECKING`` block are the
sanctioned escape hatches and must stay clean.
"""

from typing import TYPE_CHECKING

import layer_high  # module scope -> CON010
from layer_high import helper  # second statement, second CON010

if TYPE_CHECKING:
    from layer_high import exporter  # annotation-only: exempt


def compute(x):
    return layer_high.exporter(helper() + str(x))


def lazy_path(x):
    # Function-level import: the documented lazy idiom, exempt.
    from layer_high import exporter

    return exporter(x)
