"""High-layer fixture module (the one ``layer_low`` must not import)."""


def helper():
    return "expensive high-layer machinery"


def exporter(payload):
    return {"payload": payload}
