"""Energy counter laws: monotonicity mod wrap, additivity, quantization."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.rapl.msrs import RaplMsrs, _EnergyCounter
from repro.units import RAPL_COUNTER_WRAP, RAPL_ENERGY_UNIT_J


@given(deposits=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50))
def test_total_energy_conserved_across_deposits(deposits):
    counter = _EnergyCounter()
    for e in deposits:
        counter.deposit(e)
    total_units = counter.raw  # no wrap for these magnitudes
    expected_units = int(sum(deposits) / RAPL_ENERGY_UNIT_J)
    # quantization may defer at most one unit into the fraction
    assert abs(total_units - expected_units) <= len(deposits)


@given(
    split=st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=2, max_size=20)
)
def test_split_deposits_equal_single_deposit(split):
    a = _EnergyCounter()
    b = _EnergyCounter()
    for e in split:
        a.deposit(e)
    b.deposit(sum(split))
    assert abs(a.raw - b.raw) <= 1  # float summation slack


@given(start=st.integers(min_value=0, max_value=RAPL_COUNTER_WRAP - 1),
       energy=st.floats(min_value=0.0, max_value=1000.0))
def test_counter_stays_in_32bit_range(start, energy):
    counter = _EnergyCounter()
    counter.raw = start
    counter.deposit(energy)
    assert 0 <= counter.raw < RAPL_COUNTER_WRAP


@given(
    powers=st.lists(st.floats(min_value=0.0, max_value=500.0), min_size=1, max_size=30)
)
@settings(max_examples=50)
def test_tick_sequence_monotone_without_wrap(powers):
    msrs = RaplMsrs(1, 1)
    last = 0
    t = 0
    for p in powers:
        t += 1_000_000
        msrs.tick([p], [p / 10], t)
        assert msrs.read_pkg_raw(0) >= last
        last = msrs.read_pkg_raw(0)
