"""Property-based differential suite: reference vs batched backend.

Hypothesis generates scenario op-programs (the same serializable DSL the
CLI sweep uses — see :mod:`repro.sim.crosscheck`), runs each on both
backends, and requires exact state agreement at every sync point.  A
failing example shrinks to a minimal program and is written to
``tests/fixtures/crosscheck/`` under a fixed ``shrunk_*`` name — the
final (smallest) shrink wins — so the failure becomes a permanent
regression via :func:`test_saved_fixtures_stay_equivalent`.
"""

from __future__ import annotations

import json
from pathlib import Path

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.sim.crosscheck import (
    CrossCheckRunner,
    generate_machine_scenario,
    load_fixtures,
)

FIXTURE_DIR = Path(__file__).resolve().parents[1] / "fixtures" / "crosscheck"

_RUNNER = CrossCheckRunner()

_DELAY = st.integers(min_value=0, max_value=2_000)

_OP = st.one_of(
    st.tuples(st.just("after"), _DELAY).map(list),
    st.tuples(st.just("at"), _DELAY).map(list),
    st.tuples(st.just("burst"), _DELAY, st.integers(2, 5)).map(list),
    st.tuples(
        st.just("chain"), _DELAY, st.integers(2, 6), st.integers(0, 300)
    ).map(list),
    st.tuples(st.just("spawn"), _DELAY, st.integers(0, 200)).map(list),
    st.tuples(st.just("cancel"), st.integers(0, 63)).map(list),
    st.tuples(st.just("cancel_in_cb"), _DELAY, st.integers(0, 63)).map(list),
    st.tuples(st.just("sync"), st.integers(1, 3_000)).map(list),
)


def _check(spec: dict, shrunk_name: str) -> None:
    report = _RUNNER.run(spec)
    if report is not None:
        # Fixed name: every shrink attempt overwrites it, so the file
        # left behind is Hypothesis's minimal failing program.
        FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
        (FIXTURE_DIR / shrunk_name).write_text(
            json.dumps({"spec": spec}, indent=2, sort_keys=True) + "\n"
        )
        pytest.fail(
            f"backends diverged (spec saved to "
            f"{FIXTURE_DIR / shrunk_name}):\n{report.render()}"
        )


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(_OP, min_size=1, max_size=40), shuffle=st.booleans())
def test_engine_programs_agree(ops, shuffle):
    spec = {"kind": "engine", "seed": 0, "ops": ops + [["sync", 5_000]]}
    if shuffle:
        spec["shuffle"] = True
    _check(spec, "shrunk_engine_failure.json")


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_machine_programs_agree(seed):
    _check(generate_machine_scenario(seed, n_ops=8), "shrunk_machine_failure.json")


def _fixture_params():
    fixtures = load_fixtures(FIXTURE_DIR)
    assert fixtures, f"no committed crosscheck fixtures under {FIXTURE_DIR}"
    return [pytest.param(spec, id=name) for name, spec in fixtures]


@pytest.mark.parametrize("spec", _fixture_params())
def test_saved_fixtures_stay_equivalent(spec):
    """Every shrunk failure ever committed stays fixed."""
    report = _RUNNER.run(spec)
    assert report is None, report.render()
