"""Properties of the analysis statistics."""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings
from hypothesis.extra.numpy import arrays

from repro.core.analysis.histogram import Histogram
from repro.core.analysis.stats import confidence_interval, ecdf, overlap_fraction

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


@given(samples=arrays(np.float64, st.integers(2, 200), elements=finite_floats))
def test_ci_brackets_the_sample_mean(samples):
    lo, hi = confidence_interval(samples)
    assert lo <= samples.mean() <= hi


@given(samples=arrays(np.float64, st.integers(1, 200), elements=finite_floats))
def test_ecdf_is_monotone_cdf(samples):
    vals, probs = ecdf(samples)
    assert np.all(np.diff(vals) >= 0)
    assert np.all(np.diff(probs) > 0)
    assert probs[0] > 0
    assert probs[-1] == 1.0
    assert vals.size == samples.size


@given(
    a=arrays(np.float64, st.integers(2, 100), elements=finite_floats),
    b=arrays(np.float64, st.integers(2, 100), elements=finite_floats),
)
def test_overlap_symmetric_and_bounded(a, b):
    o1 = overlap_fraction(a, b)
    o2 = overlap_fraction(b, a)
    assert 0.0 <= o1 <= 1.0
    assert o1 == o2


@given(
    samples=arrays(
        np.float64,
        st.integers(10, 500),
        elements=st.floats(min_value=0.0, max_value=1000.0),
    ),
    bin_width=st.floats(min_value=0.5, max_value=100.0),
)
@settings(max_examples=50)
def test_histogram_conserves_samples(samples, bin_width):
    h = Histogram.from_samples(samples, bin_width)
    assert h.n_samples == samples.size


@given(
    samples=arrays(
        np.float64,
        st.integers(10, 500),
        elements=st.floats(min_value=0.0, max_value=1000.0),
    ),
)
@settings(max_examples=50)
def test_histogram_support_brackets_data(samples):
    h = Histogram.from_samples(samples, 10.0)
    lo, hi = h.support
    assert lo <= samples.min()
    assert hi >= samples.max()
