"""Property-based tests for the event queue and simulator."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.sim.engine import Simulator
from repro.sim.events import EventQueue


@given(times=st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=200))
def test_events_fire_in_nondecreasing_time_order(times):
    q = EventQueue()
    fired = []
    for t in times:
        q.push(t, lambda t=t: fired.append(t))
    while q:
        q.pop().callback()
    assert fired == sorted(times)


@given(
    times=st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=100),
    cancel_mask=st.lists(st.booleans(), min_size=1, max_size=100),
)
def test_cancelled_events_never_fire(times, cancel_mask):
    q = EventQueue()
    fired = []
    events = [q.push(t, lambda i=i: fired.append(i)) for i, t in enumerate(times)]
    for event, cancel in zip(events, cancel_mask):
        if cancel:
            event.cancel()
    while q:
        q.pop().callback()
    cancelled = {i for i, c in enumerate(zip(cancel_mask, times)) if cancel_mask[i]}
    assert not (set(fired) & cancelled)
    assert len(fired) == len(times) - len(cancelled & set(range(len(times))))


@given(
    delays=st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=50),
    horizon=st.integers(min_value=0, max_value=2 * 10**6),
)
def test_run_until_executes_exactly_due_events(delays, horizon):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule_after(d, lambda d=d: fired.append(d))
    sim.run_until(horizon)
    assert sorted(fired) == sorted(d for d in delays if d <= horizon)
    assert sim.now_ns == horizon


@given(
    period=st.integers(min_value=1, max_value=1000),
    horizon=st.integers(min_value=0, max_value=20_000),
)
@settings(max_examples=50)
def test_periodic_fire_count(period, horizon):
    sim = Simulator()
    count = [0]
    sim.periodic(period, lambda: count.__setitem__(0, count[0] + 1))
    sim.run_until(horizon)
    assert count[0] == horizon // period
