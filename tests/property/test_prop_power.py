"""Monotonicity properties of the ground-truth power model."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.machine import Machine
from repro.units import ghz
from repro.workloads import SPIN, instruction_block

FREQS = [ghz(1.5), ghz(2.2), ghz(2.5)]


def _machine_with_active(n_active, freq_hz):
    m = Machine("EPYC 7502", seed=0)
    cpus = m.os.first_thread_cpus(n_active)
    if cpus:
        m.os.set_all_frequencies(freq_hz)
        m.os.run(SPIN, cpus)
    return m


@given(
    n=st.integers(min_value=0, max_value=16),
    freq_idx=st.integers(min_value=0, max_value=2),
)
@settings(max_examples=30, deadline=None)
def test_power_nondecreasing_in_active_cores(n, freq_idx):
    freq = FREQS[freq_idx]
    a = _machine_with_active(n, freq)
    b = _machine_with_active(n + 1, freq)
    pa = a.power_model.breakdown(a).total_w
    pb = b.power_model.breakdown(b).total_w
    a.shutdown()
    b.shutdown()
    assert pb >= pa


@given(
    n=st.integers(min_value=1, max_value=16),
    lo=st.integers(min_value=0, max_value=1),
)
@settings(max_examples=20, deadline=None)
def test_power_nondecreasing_in_frequency(n, lo):
    a = _machine_with_active(n, FREQS[lo])
    b = _machine_with_active(n, FREQS[lo + 1])
    pa = a.power_model.breakdown(a).total_w
    pb = b.power_model.breakdown(b).total_w
    a.shutdown()
    b.shutdown()
    assert pb >= pa


@given(
    w1=st.floats(min_value=0.0, max_value=1.0),
    w2=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=20, deadline=None)
def test_power_monotone_in_operand_weight(w1, w2):
    lo, hi = sorted((w1, w2))
    m = Machine("EPYC 7502", seed=0)
    m.os.set_all_frequencies(ghz(2.5))
    m.os.run(instruction_block("vxorps", lo), m.os.all_cpus())
    p_lo = m.power_model.breakdown(m).total_w
    m.os.run(instruction_block("vxorps", hi), m.os.all_cpus())
    p_hi = m.power_model.breakdown(m).total_w
    m.shutdown()
    assert p_hi >= p_lo


@given(temps=st.lists(st.floats(min_value=20.0, max_value=95.0), min_size=2, max_size=2))
@settings(max_examples=30, deadline=None)
def test_breakdown_total_equals_component_sum(temps):
    m = Machine("EPYC 7502", seed=0)
    m.os.run(SPIN, m.os.first_thread_cpus(8))
    bd = m.power_model.breakdown(m, temps)
    manual = (
        bd.platform_base_w
        + bd.system_wake_w
        + bd.c1_cores_w
        + bd.active_cores_w
        + bd.workload_dynamic_w
        + bd.toggle_w
        + bd.dram_active_w
        + bd.iodie_w
        + bd.leakage_w
    )
    m.shutdown()
    assert bd.total_w == manual
