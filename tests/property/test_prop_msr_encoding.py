"""Round-trip properties of the P-state MSR encoding."""

import hypothesis.strategies as st
from hypothesis import given

from repro.pstate.table import (
    PState,
    decode_pstate_msr,
    encode_pstate_msr,
    vid_to_volts,
    volts_to_vid,
)
from repro.units import PSTATE_FREQ_STEP_HZ


@given(
    fid=st.integers(min_value=16, max_value=180),  # 400 MHz .. 4.5 GHz
    voltage=st.floats(min_value=0.4, max_value=1.45),
    idd=st.floats(min_value=1.0, max_value=200.0),
    enabled=st.booleans(),
)
def test_pstate_msr_roundtrip(fid, voltage, idd, enabled):
    ps = PState(
        index=0,
        freq_hz=fid * PSTATE_FREQ_STEP_HZ,
        voltage_v=voltage,
        idd_max_a=idd,
        enabled=enabled,
    )
    decoded = decode_pstate_msr(encode_pstate_msr(ps))
    assert decoded.freq_hz == ps.freq_hz
    assert abs(decoded.voltage_v - ps.voltage_v) <= 0.00625 / 2 + 1e-9
    assert decoded.enabled == ps.enabled
    assert abs(decoded.idd_max_a - min(round(idd), 255)) < 1e-9


@given(vid=st.integers(min_value=0, max_value=200))
def test_vid_roundtrip_exact(vid):
    assert volts_to_vid(vid_to_volts(vid)) == vid


@given(voltage=st.floats(min_value=0.2, max_value=1.5))
def test_vid_quantization_error_bounded(voltage):
    recovered = vid_to_volts(volts_to_vid(voltage))
    assert abs(recovered - voltage) <= 0.00625 / 2 + 1e-9
