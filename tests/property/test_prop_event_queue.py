"""Model-based equivalence: optimized EventQueue vs a naive reference.

The production queue is heavily optimized (tuple heap entries, live-count
caching, threshold compaction, lazy deletion).  The reference model below
is the obviously-correct O(n) implementation: a flat list scanned for the
minimum ``(time, insertion index)``.  Random operation sequences — with
deliberately colliding timestamps — must be observationally identical on
both: same ``len``/``bool``, same ``peek_time``, same pop order, same
``pop_due`` results.

Shuffle (random tie-break) mode has no deterministic reference order, so
it is checked against order-independent invariants plus same-seed
reproducibility instead.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.sim.events import EventQueue
from repro.sim.rng import RngFactory


class NaiveQueue:
    """Reference model: list scan, eager deletion, stable tie-break."""

    def __init__(self):
        self._items = []  # (time_ns, insertion_idx)
        self._next_idx = 0

    def push(self, time_ns):
        idx = self._next_idx
        self._next_idx += 1
        self._items.append((time_ns, idx))
        return idx

    def cancel(self, idx):
        self._items = [item for item in self._items if item[1] != idx]

    def __len__(self):
        return len(self._items)

    def peek_time(self):
        return min(self._items)[0] if self._items else None

    def pop(self):
        item = min(self._items)
        self._items.remove(item)
        return item

    def pop_due(self, limit_ns):
        if not self._items:
            return None
        item = min(self._items)
        if item[0] > limit_ns:
            return None
        self._items.remove(item)
        return item


# An op is (code, time): code selects push/cancel/pop/pop_due/peek; the
# small time range forces plenty of same-timestamp ties.
ops_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=99), st.integers(min_value=0, max_value=50)),
    min_size=1,
    max_size=300,
)


@given(ops=ops_strategy)
@settings(max_examples=200)
def test_optimized_queue_matches_naive_reference(ops):
    q = EventQueue()
    ref = NaiveQueue()
    by_idx = {}  # insertion idx -> Event
    cancellable = []  # indices not yet cancelled/popped by us
    for code, t in ops:
        if code < 45 or not cancellable:
            idx = ref.push(t)
            by_idx[idx] = q.push(t, lambda idx=idx: idx)
            cancellable.append(idx)
        elif code < 65:
            # Cancel a pseudo-arbitrary (but shrink-friendly) element.
            idx = cancellable.pop(code % len(cancellable))
            by_idx[idx].cancel()
            ref.cancel(idx)
        elif code < 85:
            if ref._items:
                time_ns, idx = ref.pop()
                event = q.pop()
                assert (event.time_ns, event.callback()) == (time_ns, idx)
                cancellable.remove(idx)
            else:
                assert not q
        else:
            expected = ref.pop_due(t)
            event = q.pop_due(t)
            if expected is None:
                assert event is None
            else:
                assert (event.time_ns, event.callback()) == expected
                cancellable.remove(expected[1])
        assert len(q) == len(ref)
        assert bool(q) == bool(ref._items)
        assert q.peek_time() == ref.peek_time()
        # Compaction may or may not have run; stale entries must stay
        # bounded either way.
        assert q.resident - len(q) <= max(len(q), EventQueue.COMPACT_MIN_RESIDENT)
    drained = []
    while q:
        event = q.pop()
        drained.append((event.time_ns, event.callback()))
    assert drained == sorted(ref._items)


@given(ops=ops_strategy)
@settings(max_examples=100)
def test_shuffle_mode_invariants_and_reproducibility(ops):
    def drive(queue):
        """Apply ops; return the pop order as (time, key) pairs."""
        live = {}
        popped = []
        serial = 0

        def pop_one():
            event = queue.pop()
            key = event.callback()
            # Whatever the shuffled tie order, a pop must return an
            # event of minimal time among the live ones.
            assert event.time_ns == min(e.time_ns for e in live.values())
            del live[key]
            popped.append((event.time_ns, key))

        for code, t in ops:
            if code < 50 or not live:
                key = serial
                serial += 1
                live[key] = queue.push(t, lambda key=key: key)
            elif code < 70:
                key = sorted(live)[code % len(live)]
                live.pop(key).cancel()
            elif queue:
                pop_one()
            assert len(queue) == len(live)
        while queue:
            pop_one()
        assert not live
        return popped

    popped_a = drive(EventQueue(tiebreak_rng=RngFactory(7).child("tiebreak")))
    # Same seed => identical shuffled order (shuffle mode stays reproducible).
    popped_b = drive(EventQueue(tiebreak_rng=RngFactory(7).child("tiebreak")))
    assert popped_a == popped_b
