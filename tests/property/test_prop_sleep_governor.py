"""Properties of the sleep resolver and the menu governor."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.cstate.package import PackageSleepState
from repro.machine import Machine
from repro.oslayer.cpuidle import MenuGovernor
from repro.oslayer.interrupts import InterruptModel
from repro.workloads import SPIN


@given(
    c1_cpus=st.sets(st.integers(min_value=0, max_value=127), max_size=6),
    active_cpus=st.sets(st.integers(min_value=0, max_value=127), max_size=6),
)
@settings(max_examples=25, deadline=None)
def test_sleep_report_consistency(c1_cpus, active_cpus):
    m = Machine("EPYC 7502", seed=0)
    # go through the sysfs path: it refreshes C-states AND resettles the
    # machine (direct CStateController calls leave resettling to the
    # caller — that is the machine's contract)
    for cpu in c1_cpus:
        m.os.sysfs.write(
            f"/sys/devices/system/cpu/cpu{cpu}/cpuidle/state2/disable", "1"
        )
    if active_cpus:
        m.os.run(SPIN, sorted(active_cpus))
    report = m.sleep.report()

    # invariant 1: deep sleep iff no blockers
    assert report.in_deep_sleep == (len(report.blockers) == 0)
    # invariant 2: every configured shallow CPU appears as a blocker
    for cpu in c1_cpus | active_cpus:
        assert cpu in report.blockers
    # invariant 3: any shallow thread anywhere blocks PC6 everywhere
    if report.blockers:
        assert all(s is not PackageSleepState.PC6 for s in report.package_states)
    # invariant 4: packages hosting an active CPU are ACTIVE
    for cpu in active_cpus:
        pkg = m.topology.thread(cpu).core.package.index
        assert report.package_states[pkg] is PackageSleepState.ACTIVE
    # invariant 5: io-die low-power flag matches the report
    assert all(
        pkg.io_die.low_power == report.in_deep_sleep for pkg in m.topology.packages
    )
    m.shutdown()


@given(rate=st.floats(min_value=0.1, max_value=1e7))
@settings(max_examples=60, deadline=None)
def test_governor_selection_is_threshold_monotone(rate):
    interrupts = InterruptModel()
    interrupts.register("src", 0, rate)
    gov = MenuGovernor(interrupts)
    pick = gov.select(0, "C2")
    breakeven = gov.breakeven_rate_hz("C2")
    total = interrupts.wakeup_rate_hz(0)
    if total <= breakeven:
        assert pick == "C2"
    else:
        assert pick == "C1"


@given(
    rate_a=st.floats(min_value=1.0, max_value=1e6),
    rate_b=st.floats(min_value=1.0, max_value=1e6),
)
@settings(max_examples=40, deadline=None)
def test_higher_rate_never_deepens_the_pick(rate_a, rate_b):
    lo, hi = sorted((rate_a, rate_b))
    order = {"C0": 0, "C1": 1, "C2": 2}

    def pick(rate):
        interrupts = InterruptModel()
        interrupts.register("src", 0, rate)
        return MenuGovernor(interrupts).select(0, "C2")

    assert order[pick(hi)] <= order[pick(lo)]
