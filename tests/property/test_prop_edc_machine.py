"""Properties of the EDC loop and machine-level invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.machine import Machine
from repro.smu.edc import EdcManager
from repro.units import ghz
from repro.workloads import FIRESTARTER, SPIN, instruction_block


@given(
    limit=st.floats(min_value=40.0, max_value=400.0),
    n_cores=st.integers(min_value=1, max_value=32),
)
@settings(max_examples=25, deadline=None)
def test_edc_cap_monotone_in_limit_and_load(limit, n_cores):
    m = Machine("EPYC 7502", n_packages=1, seed=0)
    m.os.set_all_frequencies(ghz(2.5))
    m.os.run(FIRESTARTER, m.os.first_thread_cpus(n_cores))
    pkg = m.topology.packages[0]

    tight = EdcManager(limit_a=limit)
    loose = EdcManager(limit_a=limit * 1.5)
    cap_tight = tight.assess(pkg, ghz(2.5)).cap_hz
    cap_loose = loose.assess(pkg, ghz(2.5)).cap_hz
    m.shutdown()
    if cap_tight is None:
        assert cap_loose is None
    elif cap_loose is not None:
        assert cap_loose >= cap_tight


@given(
    f_idx=st.integers(min_value=0, max_value=2),
    weight=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=20, deadline=None)
def test_resolved_demand_never_exceeds_limit(f_idx, weight):
    m = Machine("EPYC 7502", seed=0)
    freq = [ghz(1.5), ghz(2.2), ghz(2.5)][f_idx]
    m.os.set_all_frequencies(freq)
    m.os.run(instruction_block("vxorps", weight), m.os.all_cpus())
    m.os.run(FIRESTARTER, m.os.cpus_of_ccx(0, smt=True))
    for pkg, smu in zip(m.topology.packages, m.smus):
        demand = smu.edc.package_demand_a(
            pkg, max(c.applied_freq_hz for c in pkg.cores())
        )
        assert demand <= smu.edc.limit_a + 1e-6
    m.shutdown()


@given(seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=10, deadline=None)
def test_measurement_deterministic_per_seed(seed):
    def run():
        m = Machine("EPYC 7502", seed=seed)
        m.os.run(SPIN, m.os.first_thread_cpus(4))
        rec = m.measure(10.0)
        out = (rec.ac_mean_w, tuple(rec.rapl_pkg_w))
        m.shutdown()
        return out

    assert run() == run()


@given(
    n_active=st.integers(min_value=0, max_value=12),
    temp=st.floats(min_value=20.0, max_value=90.0),
)
@settings(max_examples=25, deadline=None)
def test_breakdown_components_nonnegative(n_active, temp):
    m = Machine("EPYC 7502", seed=1)
    cpus = m.os.first_thread_cpus(n_active)
    if cpus:
        m.os.run(SPIN, cpus)
    bd = m.power_model.breakdown(m, [temp, temp])
    m.shutdown()
    for name in (
        "platform_base_w", "system_wake_w", "c1_cores_w", "workload_dynamic_w",
        "toggle_w", "dram_active_w", "leakage_w",
    ):
        assert getattr(bd, name) >= 0.0
    assert bd.total_w > 0
