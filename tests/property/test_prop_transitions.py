"""Properties of the SMU transition engine under random request streams."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.power.calibration import CALIBRATION
from repro.pstate.transitions import TransitionEngine
from repro.sim.engine import Simulator
from repro.topology import build_topology
from repro.units import ghz, ms, us

FREQS = [ghz(1.5), ghz(2.2), ghz(2.5)]


def _setup(start=ghz(2.2)):
    sim = Simulator()
    topo = build_topology("EPYC 7502", n_packages=1)
    core = next(topo.cores())
    core.applied_freq_hz = start
    return sim, core, TransitionEngine(sim, CALIBRATION)


@given(
    requests=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),  # frequency index
            st.integers(min_value=0, max_value=ms(12)),  # inter-arrival ns
        ),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=60, deadline=None)
def test_final_request_always_settles(requests):
    sim, core, engine = _setup()
    last_target = core.applied_freq_hz
    for idx, gap in requests:
        sim.run_for(gap)
        last_target = FREQS[idx]
        engine.request(core, last_target)
    sim.run_for(ms(20))
    assert core.applied_freq_hz == last_target
    assert sim.pending_events == 0  # nothing left ticking


@given(
    start=st.integers(min_value=0, max_value=2),
    target=st.integers(min_value=0, max_value=2),
    phase=st.integers(min_value=0, max_value=ms(1) - 1),
)
@settings(max_examples=80, deadline=None)
def test_cold_transition_latency_bounds(start, target, phase):
    """A transition from rest: latency in (0, slot + max execution]."""
    if start == target:
        return
    sim, core, engine = _setup(FREQS[start])
    sim.run_for(ms(10) + phase)  # cold: any settle window long expired
    engine.request(core, FREQS[target])
    sim.run_for(ms(3))
    latency = engine.record_of(core).latency_ns
    execution = (
        CALIBRATION.transition_up_ns
        if FREQS[target] > FREQS[start]
        else CALIBRATION.transition_down_ns
    )
    assert 0 < latency <= ms(1) + execution
    # the slot-wait component is exactly grid-determined
    assert latency >= execution


@given(phase=st.integers(min_value=1, max_value=ms(1) - 1))
@settings(max_examples=40, deadline=None)
def test_latency_equals_slot_remainder_plus_execution(phase):
    sim, core, engine = _setup(ghz(2.2))
    sim.run_for(ms(10) + phase)
    engine.request(core, ghz(1.5))
    sim.run_for(ms(3))
    expected = (ms(1) - phase) + CALIBRATION.transition_down_ns
    assert engine.record_of(core).latency_ns == expected


@given(wait=st.integers(min_value=us(10), max_value=ms(10)))
@settings(max_examples=40, deadline=None)
def test_fast_return_iff_within_settle_window(wait):
    sim, core, engine = _setup(ghz(2.5))
    engine.request(core, ghz(2.2))
    sim.run_until(ms(2))  # down complete at slot+390us
    sim.run_for(wait)
    engine.request(core, ghz(2.5))
    sim.run_for(ms(3))
    rec = engine.record_of(core)
    completed_down_at = ms(1) + us(390)
    in_window = (ms(2) + wait) < completed_down_at + CALIBRATION.voltage_settle_ns
    assert rec.fast_return == in_window
