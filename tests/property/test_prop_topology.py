"""Topology invariants across the SKU space."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.topology import SKUS, build_topology
from repro.topology.components import SystemTopology
from repro.topology.enumeration import linux_cpu_numbering

SKU_NAMES = st.sampled_from(sorted(SKUS))
PKGS = st.integers(min_value=1, max_value=2)


@given(sku=SKU_NAMES, n_packages=PKGS)
@settings(max_examples=20, deadline=None)
def test_cpu_numbering_is_bijection(sku, n_packages):
    topo = build_topology(sku, n_packages)
    ids = [t.cpu_id for t in topo.threads()]
    assert sorted(ids) == list(range(topo.n_threads))
    for cpu_id in ids:
        assert topo.thread(cpu_id).cpu_id == cpu_id


@given(sku=SKU_NAMES, n_packages=PKGS)
@settings(max_examples=20, deadline=None)
def test_thread_core_relationship(sku, n_packages):
    topo = build_topology(sku, n_packages)
    for core in topo.cores():
        assert core.threads[0].core is core
        assert core.threads[1].core is core
        assert core.threads[0].sibling is core.threads[1]


@given(
    n_packages=PKGS,
    n_ccds=st.integers(min_value=1, max_value=8),
    cores_per_ccx=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=40, deadline=None)
def test_counts_consistent_for_arbitrary_geometries(n_packages, n_ccds, cores_per_ccx):
    topo = SystemTopology(n_packages, n_ccds, cores_per_ccx)
    linux_cpu_numbering(topo)
    expected_cores = n_packages * n_ccds * 2 * cores_per_ccx
    assert topo.n_cores == expected_cores
    assert topo.n_threads == 2 * expected_cores
    assert len(list(topo.ccxs())) == n_packages * n_ccds * 2


@given(sku=SKU_NAMES)
@settings(max_examples=10, deadline=None)
def test_first_half_cpu_ids_are_primary_threads(sku):
    topo = build_topology(sku, 2)
    half = topo.n_threads // 2
    for cpu_id in range(half):
        assert topo.thread(cpu_id).smt_index == 0
    for cpu_id in range(half, topo.n_threads):
        assert topo.thread(cpu_id).smt_index == 1
