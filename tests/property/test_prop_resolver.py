"""Properties of the frequency resolver."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.pstate.resolver import FrequencyResolver
from repro.topology import build_topology
from repro.units import ghz
from repro.workloads import SPIN

FREQS = st.sampled_from([ghz(1.5), ghz(2.2), ghz(2.5)])


def _fresh_ccx(requests, active_mask):
    topo = build_topology("EPYC 7502", n_packages=1)
    ccx = next(topo.ccxs())
    for core, (f0, f1), active in zip(ccx.cores, requests, active_mask):
        core.threads[0].requested_freq_hz = f0
        core.threads[1].requested_freq_hz = f1
        if active:
            core.threads[0].workload = SPIN
            core.threads[0].effective_cstate = "C0"
    return ccx


@given(
    requests=st.lists(st.tuples(FREQS, FREQS), min_size=4, max_size=4),
    active=st.lists(st.booleans(), min_size=4, max_size=4),
)
@settings(max_examples=100)
def test_core_request_is_max_of_thread_votes(requests, active):
    ccx = _fresh_ccx(requests, active)
    resolver = FrequencyResolver()
    for core, (f0, f1) in zip(ccx.cores, requests):
        assert resolver.core_request_hz(core) == max(f0, f1)


@given(
    requests=st.lists(st.tuples(FREQS, FREQS), min_size=4, max_size=4),
    active=st.lists(st.booleans(), min_size=4, max_size=4),
)
@settings(max_examples=100)
def test_observable_mean_never_exceeds_target(requests, active):
    ccx = _fresh_ccx(requests, active)
    for res in FrequencyResolver().resolve_ccx(ccx):
        assert res.observable_mean_hz <= res.target_hz + 1e-6


@given(
    requests=st.lists(st.tuples(FREQS, FREQS), min_size=4, max_size=4),
)
@settings(max_examples=100)
def test_l3_clock_at_least_any_running_core_target(requests):
    ccx = _fresh_ccx(requests, [True] * 4)
    resolver = FrequencyResolver()
    l3 = resolver.l3_target_hz(ccx)
    for core in ccx.cores:
        assert l3 >= resolver.core_request_hz(core) - 1e-6


@given(
    requests=st.lists(st.tuples(FREQS, FREQS), min_size=4, max_size=4),
    active=st.lists(st.booleans(), min_size=4, max_size=4),
    bump_core=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=100)
def test_raising_a_sibling_vote_never_lowers_core_target(requests, active, bump_core):
    resolver = FrequencyResolver()
    ccx = _fresh_ccx(requests, active)
    before = resolver.resolve_ccx(ccx)[bump_core].target_hz
    bumped = list(requests)
    f0, _ = bumped[bump_core]
    bumped[bump_core] = (f0, ghz(2.5))
    ccx2 = _fresh_ccx(bumped, active)
    after = resolver.resolve_ccx(ccx2)[bump_core].target_hz
    assert after >= before


@given(
    requests=st.lists(st.tuples(FREQS, FREQS), min_size=4, max_size=4),
    cap=FREQS,
)
@settings(max_examples=100)
def test_edc_cap_respected_for_active_cores(requests, cap):
    ccx = _fresh_ccx(requests, [True] * 4)
    for res in FrequencyResolver().resolve_ccx(ccx, edc_cap_hz=cap):
        assert res.target_hz <= cap + 1e-6
