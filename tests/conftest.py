"""Shared fixtures.

``machine`` is function-scoped and cheap to build (~10 ms); experiments
that need paper-scale sampling live in ``tests/integration`` and build
their own configured machines.
"""

from __future__ import annotations

import pytest

from repro.machine import Machine
from repro.sim.engine import Simulator
from repro.sim.rng import RngFactory


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def rng_factory() -> RngFactory:
    return RngFactory(1234)


@pytest.fixture
def machine() -> Machine:
    m = Machine("EPYC 7502", seed=99)
    yield m
    m.shutdown()


@pytest.fixture
def small_machine() -> Machine:
    """Single-socket 16-core part: faster for sweep-style unit tests."""
    m = Machine("EPYC 7302", n_packages=1, seed=99)
    yield m
    m.shutdown()
