"""Shared fixtures.

``machine`` is function-scoped and cheap to build (~10 ms); experiments
that need paper-scale sampling live in ``tests/integration`` and build
their own configured machines.
"""

from __future__ import annotations

import pytest

from repro.machine import Machine
from repro.sim.engine import Simulator
from repro.sim.rng import RngFactory


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate checked-in golden snapshots instead of "
        "comparing against them (review the diff before committing)",
    )


@pytest.fixture
def update_golden(request) -> bool:
    """Whether this run should rewrite golden snapshots."""
    return request.config.getoption("--update-golden")


@pytest.fixture(autouse=True)
def _isolated_cache_dir(tmp_path, monkeypatch):
    """Point the result cache at a per-test directory.

    Keeps tests hermetic: nothing reads or pollutes the developer's
    ``~/.cache/repro-zen2``, and cross-test cache hits are impossible.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


@pytest.fixture(params=["reference", "batched"])
def backend(request) -> str:
    """Simulation backend name; parametrizes consumers over every backend.

    Tests taking this fixture (directly or via ``sim``) run once per
    backend — the cheap way to assert behaviour is backend-independent.
    Deeper equivalence is enforced by the differential cross-check
    harness (``repro.sim.crosscheck``).
    """
    return request.param


@pytest.fixture
def sim(backend) -> Simulator:
    return Simulator(backend=backend)


@pytest.fixture
def rng_factory() -> RngFactory:
    return RngFactory(1234)


@pytest.fixture
def machine() -> Machine:
    m = Machine("EPYC 7502", seed=99)
    yield m
    m.shutdown()


@pytest.fixture
def small_machine() -> Machine:
    """Single-socket 16-core part: faster for sweep-style unit tests."""
    m = Machine("EPYC 7302", n_packages=1, seed=99)
    yield m
    m.shutdown()
