"""Every example script must run end-to-end and tell its story.

The examples double as executable documentation; these smoke tests keep
them from rotting. Each runs in-process (runpy) with stdout captured and
asserted against the load-bearing claim of its narrative.
"""

import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def run_example(name: str, capsys) -> str:
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, name))
    argv = sys.argv
    sys.argv = [path]
    try:
        runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "throttled to 2.00 GHz" in out
        assert "99.1 W" in out

    def test_idle_power_tuning(self, capsys):
        out = run_example("idle_power_tuning.py", capsys)
        assert "stuck at the C1 level" in out
        assert "back to baseline" in out

    def test_frequency_pitfalls(self, capsys):
        out = run_example("frequency_pitfalls.py", capsys)
        assert "sibling wins" in out
        assert "200 MHz lost" in out

    def test_rapl_accuracy_audit(self, capsys):
        out = run_example("rapl_accuracy_audit.py", capsys)
        assert "best linear fit" in out
        assert "memory_read" in out

    def test_sidechannel_probe(self, capsys):
        out = run_example("sidechannel_probe.py", capsys)
        assert "samples needed to distinguish" in out
        assert "hides operand data" in out

    def test_payload_designer(self, capsys):
        out = run_example("payload_designer.py", capsys)
        assert "firestarter_generated" in out
        assert "EDC manager" in out

    def test_dvfs_tuner(self, capsys):
        out = run_example("dvfs_tuner.py", capsys)
        assert "energy saved" in out

    def test_operator_dashboard(self, capsys):
        out = run_example("operator_dashboard.py", capsys)
        assert "EDC throttle" in out
        assert "self-check" in out
        assert "DEVIATES" not in out

    def test_coherence_explorer(self, capsys):
        out = run_example("coherence_explorer.py", capsys)
        assert "other socket" in out
        assert "link retrain" in out
