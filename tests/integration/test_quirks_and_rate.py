"""§V-A idle-sibling, RAPL update rate, and Fig 1 dataset checks."""

import pytest

from repro.core import (
    IdleSiblingExperiment,
    RaplUpdateRateExperiment,
)
from repro.datasets.green500 import amd_leads_x86, synthesize_green500


@pytest.fixture(scope="module")
def cfg():
    from repro.core import ExperimentConfig

    return ExperimentConfig(seed=2021)


class TestSec5AIdleSibling:
    def test_paper_comparison_passes(self, cfg):
        exp = IdleSiblingExperiment(cfg)
        table = exp.compare_with_paper(exp.measure())
        assert table.all_ok, table.render()

    def test_all_four_scenarios(self, cfg):
        res = IdleSiblingExperiment(cfg).measure()
        assert res.active_freq_with_idle_sibling_ghz == pytest.approx(2.5, abs=0.01)
        assert res.active_freq_with_offline_sibling_ghz == pytest.approx(2.5, abs=0.01)
        assert res.active_freq_with_low_sibling_ghz == pytest.approx(1.5, abs=0.01)
        assert res.idle_sibling_cycles_per_s < 60_000


class TestRaplUpdateRate:
    def test_update_period_1ms(self, cfg):
        exp = RaplUpdateRateExperiment(cfg)
        res = exp.measure(n_updates=30)
        assert res.median_ms == pytest.approx(1.0, abs=0.05)
        table = exp.compare_with_paper(res)
        assert table.all_ok, table.render()

    def test_counter_frozen_between_updates(self, cfg):
        # a finer poll does not see finer increments
        exp = RaplUpdateRateExperiment(cfg)
        res = exp.measure(n_updates=20, poll_interval_us=5.0)
        assert res.median_ms == pytest.approx(1.0, abs=0.05)


class TestFig1:
    def test_amd_leads_the_x86_field(self):
        assert amd_leads_x86(synthesize_green500(2021))
