"""Fig 8: C-state wake-up latencies via the caller/callee method."""

import numpy as np
import pytest

from repro.core import CStateLatencyExperiment


@pytest.fixture(scope="module")
def exp():
    from repro.core import ExperimentConfig

    return CStateLatencyExperiment(ExperimentConfig(seed=2021))


@pytest.fixture(scope="module")
def result(exp):
    return exp.measure(n_samples=300)


class TestFig8:
    def test_paper_comparison_passes(self, exp, result):
        table = exp.compare_with_paper(result)
        assert table.all_ok, table.render()

    def test_c1_frequency_dependence(self, result):
        # slower core -> longer wake (1.5 us at 1.5 GHz vs 1 us at 2.5)
        lat_15 = result.get("C1", 1.5).median_us
        lat_25 = result.get("C1", 2.5).median_us
        assert lat_15 > lat_25 * 1.3

    def test_c2_well_below_acpi_value(self, result):
        # ACPI reports 400 us; measured 20-25 us
        for f in (1.5, 2.2, 2.5):
            assert result.get("C2", f).median_us < 30.0

    def test_c0_polling_fastest(self, result):
        assert result.get("C0", 2.5).median_us < result.get("C1", 2.5).median_us

    def test_remote_adds_about_1us(self, result):
        for state in ("C1", "C2"):
            local = result.get(state, 2.5).median_us
            remote = result.get(state, 2.5, remote=True).median_us
            assert remote - local == pytest.approx(1.0, abs=0.4)

    def test_distribution_has_outliers(self, result):
        lat = result.get("C2", 2.5).latencies_us
        assert (lat > 2 * np.median(lat)).any()

    def test_sample_count(self, result):
        assert result.get("C1", 2.5).latencies_us.size == 300
