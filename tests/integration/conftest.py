"""Integration-test configuration: modest sample counts, fixed seeds.

Each test runs a full experiment end-to-end (machine build -> OS-level
procedure -> instruments -> analysis) and asserts the paper-comparison
table passes.  Sample counts are scaled down from the paper's; the
distributions these experiments measure converge orders of magnitude
earlier, and the benches can run them bigger.
"""

import pytest

from repro.core import ExperimentConfig


@pytest.fixture
def cfg() -> ExperimentConfig:
    return ExperimentConfig(seed=2021, scale=0.02)
