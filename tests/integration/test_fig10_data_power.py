"""Fig 10: operand-dependent power and RAPL's blindness to it."""

import pytest

from repro.core import DataPowerExperiment


@pytest.fixture(scope="module")
def exp():
    from repro.core import ExperimentConfig

    return DataPowerExperiment(ExperimentConfig(seed=2021))


@pytest.fixture(scope="module")
def vxorps(exp):
    return exp.measure("vxorps", n_blocks=300)


@pytest.fixture(scope="module")
def shr(exp):
    return exp.measure("shr", n_blocks=300)


class TestFig10Vxorps:
    def test_paper_comparison_passes(self, exp, vxorps, shr):
        table = exp.compare_with_paper(vxorps, shr)
        assert table.all_ok, table.render()

    def test_ac_spread_21w(self, vxorps):
        assert vxorps.ac_spread_w() == pytest.approx(21.0, rel=0.1)

    def test_ac_distributions_fully_separated(self, vxorps):
        assert vxorps.ac_overlap() == 0.0

    def test_ac_ordering_by_weight(self, vxorps):
        means = vxorps.ac_means()
        assert means[0.0] < means[0.5] < means[1.0]

    def test_rapl_averages_within_008pct(self, vxorps):
        assert vxorps.rapl_pkg_spread_rel() < 0.0008

    def test_rapl_distributions_overlap(self, vxorps):
        assert vxorps.rapl_pkg_overlap() > 0.5

    def test_ks_separation_structure(self, vxorps):
        # AC: fully separated; RAPL: faintly distinguishable
        assert vxorps.ac_ks() == 1.0
        assert 0.0 < vxorps.rapl_pkg_ks() < 0.6

    def test_ecdf_subsets_stable(self, vxorps):
        subsets = vxorps.ecdf_subsets(1.0, channel="ac", n_subsets=10)
        assert len(subsets) == 10
        import numpy as np

        medians = [np.median(vals) for vals, _ in subsets]
        assert max(medians) - min(medians) < 2.0  # W


class TestFig10Shr:
    def test_shr_ac_spread_below_09pct(self, shr):
        assert shr.ac_spread_rel() < 0.009

    def test_shr_rapl_core_spread_below_0015pct(self, shr):
        assert shr.rapl_core_spread_rel() < 0.00015

    def test_shr_much_weaker_than_vxorps(self, vxorps, shr):
        assert shr.ac_spread_rel() < vxorps.ac_spread_rel() / 4
