"""Steady-state and event-driven modes must agree once settled.

The two execution modes share the resolver and models; these tests pin
the contract: any request sequence, run through the transition engine
and given time to settle, lands on exactly the frequencies the
steady-state path computes instantly.
"""

import pytest

from repro.machine import Machine
from repro.units import ghz, ms
from repro.workloads import FIRESTARTER, SPIN

FREQS = [ghz(1.5), ghz(2.2), ghz(2.5)]


def _request_sequence(machine, sequence):
    for cpu, f_idx in sequence:
        machine.os.set_frequency(cpu, FREQS[f_idx])


@pytest.mark.parametrize(
    "sequence",
    [
        [(0, 2)],
        [(0, 2), (1, 1), (2, 0), (3, 2)],
        [(0, 0), (0, 1), (0, 2), (0, 1)],  # repeated retargeting of one cpu
        [(0, 2), (64, 1)],  # core + its sibling
        [(5, 2), (37, 1), (70, 0)],  # across packages and threads
    ],
)
def test_event_mode_settles_to_steady_state_result(sequence):
    steady = Machine("EPYC 7502", seed=1)
    steady.os.run(SPIN, [cpu for cpu, _ in sequence])
    _request_sequence(steady, sequence)
    expected = {
        core.global_index: core.applied_freq_hz
        for core in steady.topology.cores()
    }
    steady.shutdown()

    evented = Machine("EPYC 7502", seed=1)
    evented.os.run(SPIN, [cpu for cpu, _ in sequence])
    evented.enable_event_mode()
    for step in sequence:
        _request_sequence(evented, [step])
        evented.sim.run_for(ms(2))  # let each request land
    evented.sim.run_for(ms(20))
    actual = {
        core.global_index: core.applied_freq_hz
        for core in evented.topology.cores()
    }
    evented.shutdown()
    assert actual == expected


def test_disable_event_mode_reconciles_pending_requests():
    m = Machine("EPYC 7502", seed=1)
    m.os.run(SPIN, [0])
    m.enable_event_mode()
    m.os.set_frequency(0, ghz(2.5))  # pending, not yet applied
    m.disable_event_mode()
    assert m.topology.thread(0).core.applied_freq_hz == ghz(2.5)
    m.shutdown()


def test_edc_cap_respected_in_both_modes():
    for event_mode in (False, True):
        m = Machine("EPYC 7502", seed=1)
        m.os.set_all_frequencies(ghz(2.5))
        if event_mode:
            m.enable_event_mode()
        m.os.run(FIRESTARTER, m.os.all_cpus())
        if event_mode:
            # workload placement reconfigures caps; route the requests
            m.os.set_all_frequencies(ghz(2.5))
            m.sim.run_for(ms(30))
        f = m.topology.thread(0).core.applied_freq_hz
        m.shutdown()
        assert f == ghz(2.0), f"mode event={event_mode}"


def test_measure_in_event_mode_keeps_instruments_consistent():
    m = Machine("EPYC 7502", seed=1)
    m.os.run(SPIN, m.os.first_thread_cpus(4))
    m.enable_event_mode(rapl_ticks=True)
    m.sim.run_for(ms(10))
    rec = m.measure(10.0)
    m.shutdown()
    assert rec.ac_mean_w > 150.0  # active machine, sensible reading
