"""End-to-end exercise of the experiment service over real sockets.

An in-process :class:`~repro.service.server.ExperimentService` is bound
to an ephemeral port and driven through hand-written HTTP/1.1 clients
on :func:`asyncio.open_connection` — the same wire surface external
clients use.  Covers the acceptance contract: concurrent clients
coalesce onto one run per unique configuration, result documents are
byte-identical to a direct ``run_suite`` + ``dump_json``, quota
exhaustion surfaces as 429 + ``Retry-After``, and drain finishes
admitted work while rejecting new submissions with 503.

The subprocess + SIGTERM variant of this flow lives in
``repro.service.smoke`` (run by ``make service-smoke`` and CI).
"""

from __future__ import annotations

import asyncio
import json
import threading

from repro.cache import ResultCache
from repro.core.experiment import ExperimentConfig
from repro.core.serialize import dump_json
from repro.core.suite import run_suite, suite_to_dict
from repro.obs import validate_metrics_document
from repro.service import ServiceLimits, validate_job_document
from repro.service.server import ExperimentService

ENTRIES = ["sec5a_idle_sibling"]
SCALE = 0.01


async def _http(
    port: int, method: str, path: str, body: dict | None = None
) -> tuple[int, dict[str, str], bytes]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = b"" if body is None else json.dumps(body).encode()
    request = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: localhost\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: close\r\n\r\n"
    ).encode()
    writer.write(request + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, content = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, content


async def _submit_and_fetch(port: int, seed: int) -> bytes:
    """One client: submit, long-poll to completion, return result bytes."""
    status, _, content = await _http(
        port,
        "POST",
        "/v1/jobs",
        {"entries": ENTRIES, "config": {"seed": seed, "scale": SCALE}},
    )
    assert status in (200, 202), (status, content)
    doc = json.loads(content)
    assert validate_job_document(doc) == []
    job_id = doc["id"]
    while True:
        status, _, content = await _http(
            port, "GET", f"/v1/jobs/{job_id}?wait_s=30"
        )
        assert status == 200
        doc = json.loads(content)
        assert validate_job_document(doc) == []
        if doc["state"] in ("done", "failed"):
            break
    assert doc["state"] == "done", doc
    status, headers, content = await _http(
        port, "GET", f"/v1/jobs/{job_id}/result"
    )
    assert status == 200
    assert headers["content-type"] == "application/json"
    return content


def test_concurrent_clients_one_run_per_config_byte_identical(tmp_path):
    seeds = [0, 1]
    clients_per_seed = 3

    async def scenario():
        service = ExperimentService(
            cache=ResultCache(str(tmp_path / "service-cache")), pool_jobs=1
        )
        port = await service.start(port=0)
        results = await asyncio.gather(
            *(
                _submit_and_fetch(port, seed)
                for seed in seeds
                for _ in range(clients_per_seed)
            )
        )
        status, _, metrics_raw = await _http(port, "GET", "/metrics.json")
        assert status == 200
        service.request_drain()
        await service.wait_drained()
        return results, json.loads(metrics_raw)

    results, metrics_doc = asyncio.run(scenario())

    # Six clients, two unique configs, exactly two pool executions.
    assert validate_metrics_document(metrics_doc) == []
    by_name = {m["name"]: m for m in metrics_doc["metrics"]}
    executions = sum(s["value"] for s in by_name["service.executions"]["series"])
    assert executions == len(seeds)
    deduped = sum(s["value"] for s in by_name["service.dedup"]["series"])
    assert deduped == len(seeds) * (clients_per_seed - 1)

    # All clients of one seed got the same bytes, and those bytes equal
    # a direct run_suite + dump_json of the same configuration.
    for i, seed in enumerate(seeds):
        chunk = results[
            i * clients_per_seed : (i + 1) * clients_per_seed
        ]
        assert len(set(chunk)) == 1
        direct = suite_to_dict(
            run_suite(ExperimentConfig(seed=seed, scale=SCALE), only=ENTRIES)
        )
        golden = tmp_path / f"direct-{seed}.json"
        dump_json(direct, str(golden))
        assert chunk[0] == golden.read_bytes()


def test_quota_rejection_and_draining_status_codes():
    gate = threading.Event()

    def gated_runner(job):
        assert gate.wait(timeout=30.0)
        spec = job.spec
        return suite_to_dict(run_suite(spec.config, only=list(spec.entries)))

    async def scenario():
        service = ExperimentService(
            limits=ServiceLimits(tenant_quota=1, retry_after_s=3.0),
            pool_jobs=1,
        )
        service.queue._runner = gated_runner  # hold jobs in-flight
        port = await service.start(port=0)

        body = {"entries": ENTRIES, "config": {"seed": 0, "scale": SCALE}}
        status, _, content = await _http(port, "POST", "/v1/jobs", body)
        assert status == 202
        leader = json.loads(content)["id"]

        # Same tenant, different config, quota of 1 -> 429 + Retry-After.
        over = {"entries": ENTRIES, "config": {"seed": 1, "scale": SCALE}}
        status, headers, content = await _http(port, "POST", "/v1/jobs", over)
        assert status == 429, content
        assert headers["retry-after"] == "3"
        assert "quota" in json.loads(content)["error"]

        # Identical config joins the in-flight job instead: no quota cost.
        status, _, content = await _http(port, "POST", "/v1/jobs", body)
        assert status == 200
        joined = json.loads(content)
        assert joined["id"] == leader
        assert joined["dedup"] == "inflight"
        assert joined["clients"] == 2

        # Drain: health flips, new submissions get 503, polls still work.
        service.request_drain()
        drained = asyncio.create_task(service.wait_drained())
        await asyncio.sleep(0.05)
        status, _, content = await _http(port, "GET", "/healthz")
        assert status == 200
        assert json.loads(content)["status"] == "draining"
        status, _, content = await _http(port, "POST", "/v1/jobs", over)
        assert status == 503, content
        status, _, content = await _http(port, "GET", f"/v1/jobs/{leader}")
        assert status == 200

        gate.set()
        await asyncio.wait_for(drained, 60)
        job = service.queue.get(leader)
        assert job is not None and job.state == "done"

    asyncio.run(scenario())


def test_error_routes_and_request_validation():
    async def scenario():
        service = ExperimentService(pool_jobs=1)
        port = await service.start(port=0)

        status, _, content = await _http(port, "GET", "/no/such/route")
        assert status == 404

        status, _, content = await _http(port, "DELETE", "/v1/jobs")
        assert status == 405

        status, _, content = await _http(port, "GET", "/v1/jobs/job-999999")
        assert status == 404
        assert "no such job" in json.loads(content)["error"]

        status, _, content = await _http(
            port, "POST", "/v1/jobs", {"entries": ["nope"]}
        )
        assert status == 400
        assert "unknown suite entries" in json.loads(content)["error"]

        status, _, content = await _http(
            port, "POST", "/v1/jobs", {"config": {"seed": "zero"}}
        )
        assert status == 400

        status, _, content = await _http(port, "GET", "/healthz")
        assert status == 200
        health = json.loads(content)
        assert health["status"] == "ok"
        assert health["queue_depth"] == 0

        status, headers, content = await _http(port, "GET", "/metrics")
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        assert "repro_service_http_requests" in content.decode()

        status, _, content = await _http(port, "GET", "/v1/jobs")
        assert status == 200
        assert json.loads(content) == {"jobs": []}

        service.request_drain()
        await service.wait_drained()

    asyncio.run(scenario())


def test_result_before_done_is_conflict():
    gate = threading.Event()

    def gated_runner(job):
        assert gate.wait(timeout=30.0)
        spec = job.spec
        return suite_to_dict(run_suite(spec.config, only=list(spec.entries)))

    async def scenario():
        service = ExperimentService(pool_jobs=1)
        service.queue._runner = gated_runner
        port = await service.start(port=0)
        body = {"entries": ENTRIES, "config": {"seed": 0, "scale": SCALE}}
        status, _, content = await _http(port, "POST", "/v1/jobs", body)
        assert status == 202
        job_id = json.loads(content)["id"]
        status, _, content = await _http(
            port, "GET", f"/v1/jobs/{job_id}/result"
        )
        assert status == 409
        assert "poll until done" in json.loads(content)["error"]
        gate.set()
        service.request_drain()
        await service.wait_drained()

    asyncio.run(scenario())
