"""Extension studies: power capping, idle governor, and the suite runner."""

import pytest

from repro.core import ExperimentConfig
from repro.core.idle_governor import IdleGovernorExperiment
from repro.core.power_capping import PowerCappingExperiment
from repro.core.suite import run_suite, suite_to_dict


@pytest.fixture(scope="module")
def cfg():
    return ExperimentConfig(seed=2021, scale=0.02)


class TestPowerCapping:
    @pytest.fixture(scope="class")
    def result(self, cfg):
        return PowerCappingExperiment(cfg).measure(
            caps_w=(75.0, 100.0, 130.0, 160.0)
        )

    def test_tighter_caps_lower_frequency(self, result):
        fs = result.of_workload("firestarter")
        freqs = [p.applied_ghz for p in fs]
        assert freqs == sorted(freqs)

    def test_modelled_power_honours_caps(self, result):
        for p in result.points:
            assert p.modelled_pkg_w <= p.cap_w + 1.0

    def test_true_power_can_violate(self, result):
        worst = result.worst_violation()
        assert worst.cap_violation_w > 3.0

    def test_performance_degrades_with_cap(self, result):
        fs = result.of_workload("firestarter")
        assert fs[0].relative_performance < fs[-1].relative_performance <= 1.0

    def test_biased_operands_hide_power_from_the_cap(self, result):
        # weight-1.0 vxorps: toggle power invisible to the model
        vx = result.of_workload("vxorps")
        assert vx, [p.workload for p in result.points]
        assert any(p.cap_violation_w > 0.0 for p in vx)


class TestIdleGovernorStudy:
    @pytest.fixture(scope="class")
    def result(self, cfg):
        return IdleGovernorExperiment(cfg).measure()

    def test_cliff_at_c2_breakeven(self, result):
        exp = IdleGovernorExperiment()
        assert exp.breakeven_matches_governor_table(result)
        assert result.cliff_rate_hz() == pytest.approx(11_000.0)

    def test_power_jump_at_cliff(self, result):
        below = [
            p for r, p in zip(result.rates_hz, result.power_w) if r < 10_000
        ]
        above = [
            p for r, p in zip(result.rates_hz, result.power_w) if r > 10_000
        ]
        assert max(below) < 101.0
        assert min(above) > 179.0

    def test_states_match_power(self, result):
        for power, state in zip(result.power_w, result.selected_state):
            if state == "C2":
                assert power < 101.0
            else:
                assert power > 179.0


class TestSuiteRunner:
    def test_filtered_suite(self, cfg):
        result = run_suite(cfg, only=["sec5a_idle_sibling", "sec7_rapl_update_rate"])
        assert set(result.tables) == {"sec5a_idle_sibling", "sec7_rapl_update_rate"}
        assert result.all_ok, result.render()

    def test_unknown_entry_rejected(self, cfg):
        with pytest.raises(KeyError):
            run_suite(cfg, only=["fig99"])

    def test_serialization(self, cfg):
        result = run_suite(cfg, only=["sec5a_idle_sibling"])
        doc = suite_to_dict(result)
        assert doc["all_ok"]
        assert doc["seed"] == 2021
        assert "sec5a_idle_sibling" in doc["experiments"]

    def test_failures_empty_when_ok(self, cfg):
        result = run_suite(cfg, only=["sec5a_idle_sibling"])
        assert result.failures() == {}
