"""The linter eats its own dogfood: src/repro must be clean.

Also drives the CLI end-to-end on a deliberately bad fixture (all four
rules must fire with a non-zero exit) and the event-order shuffle
self-check (results must not depend on same-timestamp tie-breaking).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint import lint_paths, selfcheck_ordering
from repro.lint.cli import main as lint_main

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"

BAD_FIXTURE = '''\
import time


def measure(delay_ns: float):
    t = time.time()
    if t < 0:
        raise RuntimeError("bad clock")
    return t


def cb():
    sim.run_until(10)


sim.schedule_after(5, cb)
'''


def test_src_repro_is_lint_clean():
    report = lint_paths([str(SRC_REPRO)])
    assert report.files_checked > 100
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.clean, f"unsuppressed lint findings:\n{rendered}"


def test_tests_tree_is_lint_clean():
    report = lint_paths([str(REPO_ROOT / "tests")])
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.clean, f"unsuppressed lint findings:\n{rendered}"


def test_cli_clean_tree_exits_zero(capsys):
    assert lint_main([str(SRC_REPRO)]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_cli_bad_fixture_fires_all_rules(tmp_path, capsys):
    bad = tmp_path / "bad_fixture.py"
    bad.write_text(BAD_FIXTURE)
    assert lint_main([str(bad), "--format", "json"]) == 1
    data = json.loads(capsys.readouterr().out)
    assert set(data["counts_by_rule"]) >= {"DET001", "UNIT001", "EXC001", "SIM001"}


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET001", "UNIT001", "EXC001", "SIM001"):
        assert rule_id in out


def test_cli_bad_path_exits_two(capsys):
    assert lint_main(["/no/such/path-xyz"]) == 2


def test_contracts_pass_is_clean_on_real_tree():
    from repro.lint.contracts import analyze_paths

    report = analyze_paths(
        [str(SRC_REPRO)],
        use_cache=False,
        manifest_path=str(REPO_ROOT / "lint-contracts.pairs.json"),
        registry_path=str(REPO_ROOT / "lint-contracts.schemas.json"),
    )
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.findings == [], f"contract violations:\n{rendered}"
    assert report.pairs == 3 and report.schemas == 8


def test_cli_contracts_clean_tree_exits_zero(capsys):
    rc = lint_main(
        [
            str(SRC_REPRO),
            "--contracts",
            "--no-contracts-cache",
            "--contracts-baseline",
            str(REPO_ROOT / "lint-contracts.baseline.json"),
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "0 finding(s)" in out


def test_selfcheck_is_event_order_independent():
    report = selfcheck_ordering(seeds=(1, 2, 3))
    assert len(report.digests) == 4  # stable + three shuffles
    assert report.deterministic, report.render()


def test_cli_ordering_check(capsys):
    assert lint_main(["--ordering-check", "--ordering-seeds", "1,2"]) == 0
    out = capsys.readouterr().out
    assert "order-independent" in out
