"""Observability end-to-end: traced suite runs, artifacts, determinism.

The determinism guarantee under test: ``suite_to_dict`` is a function of
the experiment outputs only, so a traced run serializes byte-identically
to an untraced one (tracing observes, never perturbs).  The exported
trace and metrics artifacts must pass the bundled validators and cover
the suite → experiment → measure → dispatch span hierarchy.
"""

from __future__ import annotations

import json

import pytest

from repro.core.experiment import ExperimentConfig
from repro.core.serialize import canonical_json
from repro.core.suite import run_suite, suite_to_dict
from repro.obs import Obs
from repro.obs.schema import (
    validate_metrics_document,
    validate_trace_document,
)

# Entries chosen to exercise every instrumented layer quickly:
# fig7 drives Machine.measure/preheat, sec7 drives simulator dispatch
# and the RAPL tick path.
QUICK = ["sec5a_idle_sibling", "fig7_idle_power", "sec7_rapl_update_rate"]
CFG = ExperimentConfig(seed=2021, scale=0.02)


def test_suite_output_byte_identical_with_tracing_on_and_off():
    plain = run_suite(CFG, only=QUICK)
    traced = run_suite(CFG, only=QUICK, obs=Obs())
    assert canonical_json(suite_to_dict(plain)) == canonical_json(
        suite_to_dict(traced)
    )


def test_traced_suite_covers_span_hierarchy():
    obs = Obs()
    result = run_suite(CFG, only=QUICK, obs=obs)
    assert result.obs is obs
    doc = obs.trace_document()
    assert validate_trace_document(doc) == []
    spans = {e["name"] for e in doc["traceEvents"] if e.get("ph") == "X"}
    assert "suite" in spans
    assert set(QUICK) <= spans  # one experiment span per entry
    assert "machine.measure" in spans
    assert "sim.dispatch" in spans
    snap = obs.metrics_snapshot()
    assert validate_metrics_document(snap) == []
    families = {f["name"] for f in snap["metrics"]}
    assert {"suite.entries", "machine.measures", "sim.events_dispatched"} <= (
        families
    )


def test_traced_parallel_suite_matches_serial():
    serial = run_suite(CFG, only=QUICK)
    obs = Obs()
    par = run_suite(CFG, only=QUICK, parallel=2, obs=obs)
    assert canonical_json(suite_to_dict(serial)) == canonical_json(
        suite_to_dict(par)
    )
    # Parent-side pool instrumentation exists and validates.
    spans = {r["name"] for r in obs.tracer.spans()}
    assert "pool.gang" in spans
    assert any(name.startswith("pool.task:") for name in spans)
    assert validate_trace_document(obs.trace_document()) == []


def test_monitored_traced_suite_records_invariant_metrics():
    obs = Obs()
    result = run_suite(CFG, only=["sec5a_idle_sibling"], monitor=True, obs=obs)
    assert result.invariants["sec5a_idle_sibling"].checks > 0
    checks = obs.metrics.counter("invariant.checks").value
    assert checks == sum(i.checks for i in result.invariants.values())


def test_cli_trace_and_metrics_artifacts(tmp_path, monkeypatch, capsys):
    from repro.cli import main as cli_main
    from repro.obs.cli import main as obs_main

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    trace_path = tmp_path / "trace.json"
    prom_path = tmp_path / "metrics.prom"
    rc = cli_main(
        [
            "suite",
            "--seed", "2021",
            "--scale", "0.02",
            "--only", "sec5a_idle_sibling",
            "--only", "sec7_rapl_update_rate",
            "--trace", str(trace_path),
            "--metrics", str(prom_path),
        ]
    )
    assert rc == 0
    capsys.readouterr()

    trace = json.loads(trace_path.read_text())
    assert validate_trace_document(trace) == []
    snapshot = json.loads((tmp_path / "metrics.prom.json").read_text())
    assert validate_metrics_document(snapshot) == []
    prom = prom_path.read_text()
    assert "# TYPE repro_cache_lookups counter" in prom
    assert "repro_suite_entries" in prom

    # The shipped inspector agrees with the in-process validators.
    assert obs_main(
        ["validate", str(trace_path), str(prom_path) + ".json"]
    ) == 0


def test_run_suite_only_filter_validation():
    with pytest.raises(KeyError):
        run_suite(CFG, only=["no_such_entry"], obs=Obs())
