"""Observability end-to-end: traced suite runs, artifacts, determinism.

The determinism guarantee under test: ``suite_to_dict`` is a function of
the experiment outputs only, so a traced run serializes byte-identically
to an untraced one (tracing observes, never perturbs).  The exported
trace and metrics artifacts must pass the bundled validators and cover
the suite → experiment → measure → dispatch span hierarchy.
"""

from __future__ import annotations

import json

import pytest

from repro.core.experiment import ExperimentConfig
from repro.core.serialize import canonical_json
from repro.core.suite import run_suite, suite_to_dict
from repro.obs import Obs
from repro.obs.schema import (
    validate_metrics_document,
    validate_trace_document,
)

# Entries chosen to exercise every instrumented layer quickly:
# fig7 drives Machine.measure/preheat, sec7 drives simulator dispatch
# and the RAPL tick path.
QUICK = ["sec5a_idle_sibling", "fig7_idle_power", "sec7_rapl_update_rate"]
CFG = ExperimentConfig(seed=2021, scale=0.02)


def test_suite_output_byte_identical_with_tracing_on_and_off():
    plain = run_suite(CFG, only=QUICK)
    traced = run_suite(CFG, only=QUICK, obs=Obs())
    assert canonical_json(suite_to_dict(plain)) == canonical_json(
        suite_to_dict(traced)
    )


def test_traced_suite_covers_span_hierarchy():
    obs = Obs()
    result = run_suite(CFG, only=QUICK, obs=obs)
    assert result.obs is obs
    doc = obs.trace_document()
    assert validate_trace_document(doc) == []
    spans = {e["name"] for e in doc["traceEvents"] if e.get("ph") == "X"}
    assert "suite" in spans
    assert set(QUICK) <= spans  # one experiment span per entry
    assert "machine.measure" in spans
    assert "sim.dispatch" in spans
    snap = obs.metrics_snapshot()
    assert validate_metrics_document(snap) == []
    families = {f["name"] for f in snap["metrics"]}
    assert {"suite.entries", "machine.measures", "sim.events_dispatched"} <= (
        families
    )


def test_traced_parallel_suite_matches_serial():
    serial = run_suite(CFG, only=QUICK)
    obs = Obs()
    par = run_suite(CFG, only=QUICK, parallel=2, obs=obs)
    assert canonical_json(suite_to_dict(serial)) == canonical_json(
        suite_to_dict(par)
    )
    # Parent-side pool instrumentation exists and validates.
    spans = {r["name"] for r in obs.tracer.spans()}
    assert "pool.gang" in spans
    assert any(name.startswith("pool.task:") for name in spans)
    assert validate_trace_document(obs.trace_document()) == []


def test_monitored_traced_suite_records_invariant_metrics():
    obs = Obs()
    result = run_suite(CFG, only=["sec5a_idle_sibling"], monitor=True, obs=obs)
    assert result.invariants["sec5a_idle_sibling"].checks > 0
    checks = obs.metrics.counter("invariant.checks").value
    assert checks == sum(i.checks for i in result.invariants.values())


def test_cli_trace_and_metrics_artifacts(tmp_path, monkeypatch, capsys):
    from repro.cli import main as cli_main
    from repro.obs.cli import main as obs_main

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    trace_path = tmp_path / "trace.json"
    prom_path = tmp_path / "metrics.prom"
    rc = cli_main(
        [
            "suite",
            "--seed", "2021",
            "--scale", "0.02",
            "--only", "sec5a_idle_sibling",
            "--only", "sec7_rapl_update_rate",
            "--trace", str(trace_path),
            "--metrics", str(prom_path),
        ]
    )
    assert rc == 0
    capsys.readouterr()

    trace = json.loads(trace_path.read_text())
    assert validate_trace_document(trace) == []
    snapshot = json.loads((tmp_path / "metrics.prom.json").read_text())
    assert validate_metrics_document(snapshot) == []
    prom = prom_path.read_text()
    assert "# TYPE repro_cache_lookups counter" in prom
    assert "repro_suite_entries" in prom

    # The shipped inspector agrees with the in-process validators.
    assert obs_main(
        ["validate", str(trace_path), str(prom_path) + ".json"]
    ) == 0


def test_run_suite_only_filter_validation():
    with pytest.raises(KeyError):
        run_suite(CFG, only=["no_such_entry"], obs=Obs())


# ---------------------------------------------------------------------------
# cross-process tracing and crash diagnostics
# ---------------------------------------------------------------------------


def test_worker_traces_merge_into_one_correlated_timeline():
    from repro.core.suite import suite_trace_document
    from repro.obs.tracer import mint_trace_id

    obs = Obs()
    result = run_suite(CFG, only=QUICK, parallel=2, obs=obs)
    # One shipped trace document per entry, each tagged with the suite's
    # content-derived trace id.
    assert len(result.worker_traces) == len(QUICK)
    # The id is minted from the *resolved* config (backend name filled
    # in) and the entries in submission order.
    expected = mint_trace_id(
        "suite",
        CFG.seed,
        CFG.scale,
        CFG.sku,
        result.config.backend,
        *QUICK,
    )
    assert obs.tracer.trace_id == expected
    for worker_doc in result.worker_traces:
        assert worker_doc["otherData"]["trace_id"] == expected

    merged = suite_trace_document(result, run="test")
    assert validate_trace_document(merged) == []
    assert merged["otherData"]["trace_id"] == expected
    assert merged["otherData"]["merged"] == len(QUICK) + 1
    process_names = {
        e["args"]["name"]
        for e in merged["traceEvents"]
        if e.get("ph") == "M" and e["name"] == "process_name"
    }
    # Parent tracks are labelled suite:*, worker tracks by entry name.
    assert "suite:host" in process_names
    assert any(name.startswith("sec5a_idle_sibling:") for name in process_names)
    spans = {e["name"] for e in merged["traceEvents"] if e.get("ph") == "X"}
    # Parent-side gang orchestration and worker-side experiment internals
    # land on one timeline.
    assert "pool.gang" in spans
    assert "machine.measure" in spans
    assert "sim.dispatch" in spans
    assert set(QUICK) <= spans


def test_crash_mid_task_dumps_validating_bundle(tmp_path, monkeypatch):
    from repro.obs.flightrec import recorder
    from repro.obs.schema import validate_flightrec_document
    from repro.parallel import Task, run_tasks
    from tests.unit.test_parallel_pool import _boom, _double

    monkeypatch.setenv("REPRO_FLIGHTREC_DIR", str(tmp_path))
    recorder().clear()
    outcomes = run_tasks(
        [Task("ok", _double, (2,)), Task("bad", _boom, ())],
        jobs=2,
        retries=0,
    )
    by_name = {o.name: o for o in outcomes}
    assert by_name["ok"].value == 4
    assert not by_name["bad"].ok
    bundles = sorted(tmp_path.glob("flightrec-*.json"))
    assert bundles, "worker crash must leave a flight-recorder bundle"
    doc = json.loads(bundles[0].read_text())
    assert validate_flightrec_document(doc) == []
    assert doc["reason"] == "task-failure:bad"
    assert doc["context"].get("task") == "bad"
    names = [e.get("name") for e in doc["events"] if e.get("kind") == "note"]
    assert "pool.task.start" in names
    recorder().clear()
