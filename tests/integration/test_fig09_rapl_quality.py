"""Fig 9: RAPL quality sweep."""

import numpy as np
import pytest

from repro.core import RaplQualityExperiment


@pytest.fixture(scope="module")
def exp():
    from repro.core import ExperimentConfig

    return RaplQualityExperiment(ExperimentConfig(seed=2021))


@pytest.fixture(scope="module")
def result(exp):
    return exp.measure(placements=("all", "half"))


class TestFig9:
    def test_paper_comparison_passes(self, exp, result):
        table = exp.compare_with_paper(result)
        assert table.all_ok, table.render()

    def test_rapl_always_below_ac(self, result):
        assert all(p.rapl_pkg_w < p.ac_w for p in result.points)

    def test_no_single_mapping_function(self, result):
        # points with near-identical RAPL readings span a wide AC range
        spread = exp_spread(result)
        assert spread > 25.0

    def test_memory_workloads_underreported_most(self, result):
        mem = np.mean([p.ac_w - p.rapl_pkg_w for p in result.memory_workloads()])
        comp = np.mean([p.ac_w - p.rapl_pkg_w for p in result.compute_workloads()])
        assert mem > comp + 30.0

    def test_core_below_package_always(self, result):
        assert all(p.rapl_core_w < p.rapl_pkg_w for p in result.points)

    def test_fig9b_structure(self, result):
        # pkg-minus-core ~ constant for compute, larger for memory
        comp_gaps = [p.pkg_minus_core_w for p in result.compute_workloads()]
        mem_gaps = [p.pkg_minus_core_w for p in result.memory_workloads()]
        assert np.std(comp_gaps) / np.mean(comp_gaps) < 0.35
        assert np.mean(mem_gaps) > np.mean(comp_gaps)

    def test_sweep_covers_frequencies(self, result):
        freqs = {p.freq_ghz for p in result.points}
        assert freqs == {1.5, 2.2, 2.5}


def exp_spread(result):
    from repro.core.rapl_quality import RaplQualityExperiment

    return RaplQualityExperiment._mapping_spread(result.points)
