"""Table I and Fig 4: mixed frequencies within a CCX."""

import pytest

from repro.core import MixedFrequencyExperiment, PAPER_TABLE_I


@pytest.fixture(scope="module")
def exp():
    from repro.core import ExperimentConfig

    return MixedFrequencyExperiment(ExperimentConfig(seed=2021, scale=0.25))


@pytest.fixture(scope="module")
def table_result(exp):
    return exp.measure_applied_frequencies()


@pytest.fixture(scope="module")
def l3_result(exp):
    return exp.measure_l3_latencies()


class TestTableI:
    def test_paper_comparison_passes(self, exp, table_result):
        table = exp.compare_with_paper(table_result)
        assert table.all_ok, table.render()

    @pytest.mark.parametrize("set_g", [1.5, 2.2, 2.5])
    def test_rows_within_2mhz(self, table_result, set_g):
        for others_g, paper in PAPER_TABLE_I[set_g].items():
            assert table_result.cell(set_g, others_g) == pytest.approx(
                paper, abs=0.004
            )

    def test_penalty_only_from_faster_neighbours(self, table_result):
        # below/at own frequency: at most the ~1 MHz diagonal shortfall
        assert table_result.cell(2.2, 1.5) == pytest.approx(2.200, abs=0.002)
        assert table_result.cell(2.5, 2.2) >= table_result.cell(2.5, 1.5)


class TestFig4:
    def test_l3_latency_falls_with_faster_neighbours(self, exp, l3_result):
        assert exp.check_l3_monotonicity(l3_result)

    def test_fast_core_latency_unaffected_by_slow_neighbours(self, l3_result):
        # a 2.5 GHz core's latency is ~flat across neighbour settings
        lats = [l3_result.cell(2.5, o) for o in (1.5, 2.2, 2.5)]
        assert max(lats) - min(lats) < 0.5

    def test_latency_scale_plausible(self, l3_result):
        # Zen 2 L3 load-to-use is tens of ns at these clocks
        assert 10.0 < l3_result.cell(1.5, 1.5) < 40.0
