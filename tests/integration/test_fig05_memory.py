"""Fig 5: memory bandwidth/latency vs I/O-die P-state and DRAM clock."""

import pytest

from repro.core import MemoryPerformanceExperiment
from repro.iodie.fclk import FclkMode


@pytest.fixture(scope="module")
def exp():
    from repro.core import ExperimentConfig

    return MemoryPerformanceExperiment(ExperimentConfig(seed=2021))


@pytest.fixture(scope="module")
def bw(exp):
    return exp.measure_bandwidth()


@pytest.fixture(scope="module")
def lat(exp):
    return exp.measure_latency()


class TestFig5:
    def test_paper_comparison_passes(self, exp, bw, lat):
        table = exp.compare_with_paper(bw, lat)
        assert table.all_ok, table.render()

    def test_latency_anchors(self, lat):
        assert lat.at(FclkMode.AUTO, "DDR4-3200") == pytest.approx(92.0, abs=1.0)
        assert lat.at(FclkMode.P0, "DDR4-3200") == pytest.approx(96.0, abs=1.0)

    def test_bandwidth_saturates_at_two_cores(self, bw):
        series = bw.series[("P0", "DDR4-3200")]
        counts = bw.core_counts
        one = series[counts.index(1)]
        two = series[counts.index(2)]
        three = series[counts.index(3)]
        assert two > one * 1.4
        assert three <= two  # saturation + contention

    def test_bandwidth_ordered_by_fclk(self, bw):
        for dram in ("DDR4-2666", "DDR4-3200"):
            p0 = max(bw.series[("P0", dram)])
            p1 = max(bw.series[("P1", dram)])
            p2 = max(bw.series[("P2", dram)])
            assert p0 > p1 > p2

    def test_auto_matches_best_fixed_state(self, bw):
        auto = max(bw.series[("AUTO", "DDR4-3200")])
        p0 = max(bw.series[("P0", "DDR4-3200")])
        assert auto == pytest.approx(p0, rel=0.03)

    def test_latency_crossover_with_memclk(self, lat):
        # P2 beats P0 only at the higher DRAM frequency (§V-D)
        assert lat.at(FclkMode.P2, "DDR4-3200") < lat.at(FclkMode.P0, "DDR4-3200")
        assert lat.at(FclkMode.P2, "DDR4-2666") > lat.at(FclkMode.P0, "DDR4-2666")

    def test_auto_good_everywhere(self, lat):
        for dram in ("DDR4-2666", "DDR4-3200"):
            fixed_best = min(
                lat.at(m, dram) for m in (FclkMode.P0, FclkMode.P1, FclkMode.P2)
            )
            assert lat.at(FclkMode.AUTO, dram) <= fixed_best * 1.01
