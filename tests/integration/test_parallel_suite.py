"""Parallel-equals-serial and cache-identity properties of the suite.

The determinism contract (docs/parallelism.md): for any configuration,
``run_suite(parallel=N)`` serializes byte-identically to the serial
path, and a warm cache hit returns the exact document the cold run
stored.  Checked over several (seed, scale) points on the fast subset
of the registry so the property sweep stays cheap.
"""

from __future__ import annotations

import time
from dataclasses import replace

import pytest

from repro.cache import ResultCache, cache_key
from repro.core.experiment import ExperimentConfig
from repro.core.serialize import document_digest
from repro.core.suite import run_suite, suite_to_dict
from repro.sim.backends import resolve_backend

#: Registry entries that run in well under a second each at small scale.
FAST = [
    "sec5a_idle_sibling",
    "tab1_mixed_frequencies",
    "fig6_firestarter",
    "fig7_idle_power",
    "fig8_cstate_latency",
    "sec7_rapl_update_rate",
]


@pytest.mark.parametrize(
    "seed,scale", [(0, 0.02), (7, 0.01), (2021, 0.03)]
)
def test_parallel_equals_serial_digest(seed, scale):
    cfg = ExperimentConfig(seed=seed, scale=scale)
    serial = suite_to_dict(run_suite(cfg, only=FAST))
    parallel = suite_to_dict(run_suite(cfg, only=FAST, parallel=4))
    assert document_digest(serial) == document_digest(parallel)
    assert serial == parallel


def test_warm_cache_returns_exact_cached_document(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    cfg = ExperimentConfig(seed=5, scale=0.02)
    t0 = time.perf_counter()  # lint: disable=DET001 (test measures host wall-clock speedup)
    cold = suite_to_dict(run_suite(cfg, only=FAST, cache=cache))
    t_cold = time.perf_counter() - t0  # lint: disable=DET001 (test measures host wall-clock speedup)
    assert cache.stats.misses == len(FAST)
    assert cache.stats.stores == len(FAST)

    t0 = time.perf_counter()  # lint: disable=DET001 (test measures host wall-clock speedup)
    warm = suite_to_dict(run_suite(cfg, only=FAST, cache=cache))
    t_warm = time.perf_counter() - t0  # lint: disable=DET001 (test measures host wall-clock speedup)
    assert cache.stats.hits == len(FAST)
    assert warm == cold

    # every table in the warm document IS the stored cache object;
    # run_suite pins the resolved backend name into the config before
    # any cache key is computed (docs/backends.md), so key against the
    # pinned config.
    pinned = replace(cfg, backend=resolve_backend(None).name)
    for name in FAST:
        assert cache.get(cache_key(name, pinned)) == cold["experiments"][name]

    # acceptance floor is 5x; a full hit run does no simulation at all
    assert t_warm * 5.0 < t_cold, f"warm {t_warm:.3f}s vs cold {t_cold:.3f}s"


def test_parallel_run_populates_and_reuses_cache(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    cfg = ExperimentConfig(seed=13, scale=0.02)
    cold = suite_to_dict(run_suite(cfg, only=FAST, parallel=4, cache=cache))
    assert cache.stats.stores == len(FAST)
    warm = suite_to_dict(run_suite(cfg, only=FAST, parallel=4, cache=cache))
    assert cache.stats.hits == len(FAST)
    assert document_digest(warm) == document_digest(cold)
    # and the cached parallel run matches a cache-less serial run
    serial = suite_to_dict(run_suite(cfg, only=FAST))
    assert document_digest(serial) == document_digest(cold)


def test_cache_stats_surface_in_report(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    cfg = ExperimentConfig(seed=1, scale=0.02)
    result = run_suite(cfg, only=["sec5a_idle_sibling"], cache=cache)
    assert result.cache_stats is cache.stats
    assert "cache:" in result.render()
