"""Fig 3 + §V-B: transition delays and their anomalies, end to end."""

import numpy as np
import pytest

from repro.core import FrequencyTransitionExperiment
from repro.units import ghz


@pytest.fixture(scope="module")
def exp():
    from repro.core import ExperimentConfig

    return FrequencyTransitionExperiment(ExperimentConfig(seed=2021))


@pytest.fixture(scope="module")
def down_result(exp):
    return exp.measure_pair(ghz(2.2), ghz(1.5), n_samples=3000)


class TestFig3Histogram:
    def test_paper_comparison_passes(self, exp, down_result):
        table = exp.compare_with_paper(down_result)
        assert table.all_ok, table.render()

    def test_support_is_390_to_1390us(self, down_result):
        lo, hi = down_result.histogram.support
        assert lo == pytest.approx(390.0, abs=30.0)
        assert hi == pytest.approx(1390.0, abs=40.0)

    def test_distribution_flat(self, down_result):
        assert down_result.histogram.uniformity_cv() < 0.25

    def test_slot_period_recoverable_from_width(self, down_result):
        # max - min ~ the SMU update interval (1 ms)
        width_us = down_result.max_us - down_result.min_us
        assert width_us == pytest.approx(1000.0, rel=0.05)

    def test_validation_discards_a_few_percent(self, down_result):
        # the 95 % CI validation rejects ~5 % of samples by construction
        frac = down_result.n_invalid / (down_result.n_invalid + len(down_result.latencies_us))
        assert 0.0 < frac < 0.15


class TestSec5BAnomalies:
    def test_up_switch_sometimes_instant(self, exp):
        res = exp.measure_pair(ghz(2.2), ghz(2.5), n_samples=400)
        assert res.min_us < 10.0  # paper: 1 us (plus probe quantization)
        assert (res.latencies_us < 10.0).mean() > 0.05

    def test_down_switch_sometimes_partial(self, exp):
        res = exp.measure_pair(ghz(2.5), ghz(2.2), n_samples=600)
        assert res.min_us < 385.0  # below the normal minimum
        assert res.min_us > 100.0  # but never instant

    def test_effect_disappears_with_5ms_waits(self, exp):
        up = exp.measure_pair(ghz(2.2), ghz(2.5), n_samples=200, min_wait_ms=5.0)
        down = exp.measure_pair(ghz(2.5), ghz(2.2), n_samples=200, min_wait_ms=5.0)
        assert up.min_us > 300.0
        assert down.min_us > 385.0

    def test_large_gap_pair_has_no_fast_path(self, exp):
        res = exp.measure_pair(ghz(2.5), ghz(1.5), n_samples=300)
        assert res.min_us > 385.0

    def test_up_transitions_faster_than_down(self, exp):
        up = exp.measure_pair(ghz(1.5), ghz(2.2), n_samples=300, min_wait_ms=5.0)
        down = exp.measure_pair(ghz(2.2), ghz(1.5), n_samples=300, min_wait_ms=5.0)
        assert up.min_us < down.min_us  # 360 vs 390 us execution
