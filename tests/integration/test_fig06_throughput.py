"""Fig 6: EDC throttling under FIRESTARTER."""

import pytest

from repro.core import ThroughputLimitExperiment


@pytest.fixture(scope="module")
def exp():
    from repro.core import ExperimentConfig

    return ThroughputLimitExperiment(ExperimentConfig(seed=2021))


@pytest.fixture(scope="module")
def two_thread(exp):
    return exp.measure(smt=True, duration_s=60)


@pytest.fixture(scope="module")
def one_thread(exp):
    return exp.measure(smt=False, duration_s=60)


class TestFig6:
    def test_paper_comparison_passes(self, exp, two_thread, one_thread):
        table = exp.compare_with_paper(two_thread, one_thread)
        assert table.all_ok, table.render()

    def test_frequencies_throttled_below_nominal(self, two_thread, one_thread):
        assert two_thread.mean_freq_ghz == pytest.approx(2.0, abs=0.02)
        assert one_thread.mean_freq_ghz == pytest.approx(2.1, abs=0.02)

    def test_freq_stddev_small(self, two_thread):
        # paper: 3.04 / 0.82 MHz std dev — throttle point is stable
        assert two_thread.std_freq_mhz < 10.0

    def test_smt_raises_throughput_and_power(self, two_thread, one_thread):
        assert two_thread.ipc_per_core > one_thread.ipc_per_core
        assert two_thread.ac_power_w > one_thread.ac_power_w

    def test_rapl_below_tdp(self, two_thread):
        # paper: RAPL reads 170 W while TDP is 180 W
        assert two_thread.rapl_per_pkg_w < 180.0

    def test_future_work_core_scaling(self, exp):
        scaling = exp.core_count_scaling(["EPYC 7302", "EPYC 7502", "EPYC 7742"])
        # more cores -> deeper throttle (§VIII expectation)
        assert scaling["EPYC 7742"] < scaling["EPYC 7502"] < scaling["EPYC 7302"]
