"""Fig 7 + §VI-A/B: idle staircase and the offline anomaly."""

import numpy as np
import pytest

from repro.core import IdlePowerExperiment
from repro.machine import Machine, Quirks


@pytest.fixture(scope="module")
def exp():
    from repro.core import ExperimentConfig

    return IdlePowerExperiment(ExperimentConfig(seed=2021))


@pytest.fixture(scope="module")
def c1_sweep(exp):
    return exp.sweep_c1(step_cpus=list(range(16)))


@pytest.fixture(scope="module")
def c0_sweep(exp):
    return exp.sweep_c0(step_cpus=list(range(16)))


class TestFig7:
    def test_paper_comparison_passes(self, exp, c1_sweep, c0_sweep):
        table = exp.compare_with_paper(c1_sweep, c0_sweep)
        assert table.all_ok, table.render()

    def test_baseline_99w(self, c1_sweep):
        assert c1_sweep.power_w[0] == pytest.approx(99.1, abs=0.3)

    def test_first_c1_step_dominates(self, c1_sweep):
        first = c1_sweep.delta(1)
        rest = np.diff(c1_sweep.power_w[1:])
        assert first > 80.0
        assert all(r < 0.5 for r in rest)

    def test_active_sweep_slope(self, c0_sweep):
        per_core = np.diff(c0_sweep.power_w[1:]).mean()
        assert per_core == pytest.approx(0.33, abs=0.1)

    def test_c0_sweep_at_low_freq_cheaper(self, exp):
        lo = exp.sweep_c0(freq_ghz=1.5, step_cpus=list(range(4)))
        hi = exp.sweep_c0(freq_ghz=2.5, step_cpus=list(range(4)))
        assert lo.power_w[-1] < hi.power_w[-1]


class TestSec6BAnomaly:
    def test_offline_pins_power_at_c1_level(self, exp):
        res = exp.offline_anomaly()
        assert res["offline_w"] > res["baseline_w"] + 80.0
        assert res["restored_w"] == pytest.approx(res["baseline_w"], abs=0.3)

    def test_anomaly_absent_without_quirk(self):
        m = Machine("EPYC 7502", seed=0, quirks=Quirks(offline_parks_in_c1=False))
        baseline = m.measure(10.0).ac_mean_w
        n_cores = m.topology.n_cores
        for cpu in [c for c in m.os.all_cpus() if c >= n_cores]:
            m.os.sysfs.write(f"/sys/devices/system/cpu/cpu{cpu}/online", "0")
        offline = m.measure(10.0).ac_mean_w
        m.shutdown()
        assert offline == pytest.approx(baseline, abs=0.5)
