PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-batched lint lint-json lint-flow lint-effects lint-contracts lint-changed baseline-update baseline-update-effects baseline-update-contracts update-schema-registry ordering-check selfcheck suite-parallel suite-traced golden bench bench-smoke bench-guard bench-backends crosscheck serve service-smoke

# The default gate: static analysis first (DET001/SIM001/... keep the
# cache/parallel code deterministic), then the full pytest tree — which
# includes the golden-snapshot suite regression.
test: lint
	$(PYTHON) -m pytest -x -q

# The whole tier-1 tree again with the batched simulation backend as the
# default (the CI backend-matrix leg; see docs/backends.md).
test-batched:
	REPRO_SIM_BACKEND=batched $(PYTHON) -m pytest -x -q

# Per-module rules over the whole tree, plus the whole-program effects
# and contracts passes over src/repro against their checked-in
# baselines.
lint: lint-effects lint-contracts
	$(PYTHON) -m repro.lint src/repro tests benchmarks examples

lint-json:
	$(PYTHON) -m repro.lint src/repro --format json

# Whole-program dimensional-dataflow + determinism-taint analysis,
# failing only on findings not recorded in the checked-in baseline.
lint-flow:
	$(PYTHON) -m repro.lint src/repro --flow --baseline lint-flow.baseline.json

# Accept the current flow findings as the new baseline; review the JSON
# diff before committing (each entry is a finding you chose to live with).
baseline-update:
	$(PYTHON) -m repro.lint src/repro --flow --baseline lint-flow.baseline.json --update-baseline

# Whole-program effect/escape analysis: per-event allocation, repeated
# attribute lookups and exception control flow in declared hot regions
# (lint-effects.regions.json), obs `is None` guard dominance, and
# repro.parallel pickle safety — vs the checked-in baseline.
lint-effects:
	$(PYTHON) -m repro.lint src/repro --effects --effects-baseline lint-effects.baseline.json

baseline-update-effects:
	$(PYTHON) -m repro.lint src/repro --effects --effects-baseline lint-effects.baseline.json --update-effects-baseline

# Whole-program structural contracts: backend-pair parity
# (lint-contracts.pairs.json), layer-boundary imports, and the schema
# registry snapshot (lint-contracts.schemas.json) — vs the baseline.
lint-contracts:
	$(PYTHON) -m repro.lint src/repro --contracts --contracts-baseline lint-contracts.baseline.json

baseline-update-contracts:
	$(PYTHON) -m repro.lint src/repro --contracts --contracts-baseline lint-contracts.baseline.json --update-contracts-baseline

# Re-snapshot the schema registry after a deliberate schema_version
# bump; review the JSON diff like any other contract change.
update-schema-registry:
	$(PYTHON) -m repro.lint src/repro --contracts --update-schema-registry

# Pre-commit convenience: full analysis, findings reported only for
# files changed vs git HEAD (falls back to a full run without git).
lint-changed:
	$(PYTHON) -m repro.lint src/repro tests benchmarks examples --effects --effects-baseline lint-effects.baseline.json --changed-only

ordering-check:
	$(PYTHON) -m repro.lint --ordering-check --ordering-seeds 1,2,3

selfcheck:
	$(PYTHON) -m repro.cli selfcheck

# Full suite across 4 worker processes with the result cache + counters.
suite-parallel:
	$(PYTHON) -m repro.cli suite --jobs 4 --cache-stats

# Traced smoke suite: two quick entries with the repro.obs bundle
# attached, exporting + validating the Perfetto trace and Prometheus
# metrics artifacts (the CI observability job; see docs/observability.md).
suite-traced:
	$(PYTHON) -m repro.cli suite --no-cache \
	  --only sec5a_idle_sibling --only sec7_rapl_update_rate \
	  --trace suite_trace.json --metrics suite_metrics.prom
	$(PYTHON) -m repro.cli obs validate suite_trace.json suite_metrics.prom.json
	$(PYTHON) -m repro.cli obs summarize suite_trace.json

# Deliberately regenerate the checked-in golden snapshot; review the
# JSON diff before committing (see docs/parallelism.md).
golden:
	$(PYTHON) -m pytest tests/integration/test_golden_suite.py --update-golden -q

# Full microbenchmark registry -> benchmarks/results/BENCH_micro.json
# (the checked-in performance baseline; see docs/performance.md).
bench:
	$(PYTHON) -m repro.bench

# Quick kernels only, 1 rep, reduced scale: proves harness + schema
# stay healthy (the CI job); numbers are not meaningful.
bench-smoke:
	$(PYTHON) -m repro.bench --smoke --out benchmarks/results/BENCH_smoke.json

# Overhead budget check: the obs-disabled dispatch path must keep >=98%
# of bare sim.dispatch throughput (interleaved rounds, median ratio).
bench-guard:
	$(PYTHON) -m repro.bench --guard

# Backend-vs-backend comparison (interleaved rounds, median speedups) ->
# benchmarks/results/BENCH_backends.json (see docs/backends.md).
bench-backends:
	$(PYTHON) -m repro.bench --backends

# Differential cross-check sweep: seeded engine + machine scenarios on
# the reference and batched backends, failing on the first divergence
# (the CI smoke job runs 200; see docs/backends.md).
crosscheck:
	$(PYTHON) -m repro.sim.crosscheck --scenarios 200 --report crosscheck_divergence.json

# Run the HTTP experiment service in the foreground (SIGTERM/Ctrl-C
# drains gracefully; see docs/service.md).
serve:
	$(PYTHON) -m repro.service serve

# End-to-end service demo: daemon subprocess, 8 concurrent clients over
# 4 unique configs, exactly 4 executions (dedup counters), byte-identical
# result documents, graceful SIGTERM drain (the CI job).
service-smoke:
	$(PYTHON) -m repro.service smoke
