PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint lint-json lint-flow baseline-update ordering-check selfcheck suite-parallel suite-traced golden bench bench-smoke

# The default gate: static analysis first (DET001/SIM001/... keep the
# cache/parallel code deterministic), then the full pytest tree — which
# includes the golden-snapshot suite regression.
test: lint
	$(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) -m repro.lint src/repro tests benchmarks examples

lint-json:
	$(PYTHON) -m repro.lint src/repro --format json

# Whole-program dimensional-dataflow + determinism-taint analysis,
# failing only on findings not recorded in the checked-in baseline.
lint-flow:
	$(PYTHON) -m repro.lint src/repro --flow --baseline lint-flow.baseline.json

# Accept the current flow findings as the new baseline; review the JSON
# diff before committing (each entry is a finding you chose to live with).
baseline-update:
	$(PYTHON) -m repro.lint src/repro --flow --baseline lint-flow.baseline.json --update-baseline

ordering-check:
	$(PYTHON) -m repro.lint --ordering-check --ordering-seeds 1,2,3

selfcheck:
	$(PYTHON) -m repro.cli selfcheck

# Full suite across 4 worker processes with the result cache + counters.
suite-parallel:
	$(PYTHON) -m repro.cli suite --jobs 4 --cache-stats

# Traced smoke suite: two quick entries with the repro.obs bundle
# attached, exporting + validating the Perfetto trace and Prometheus
# metrics artifacts (the CI observability job; see docs/observability.md).
suite-traced:
	$(PYTHON) -m repro.cli suite --no-cache \
	  --only sec5a_idle_sibling --only sec7_rapl_update_rate \
	  --trace suite_trace.json --metrics suite_metrics.prom
	$(PYTHON) -m repro.cli obs validate suite_trace.json suite_metrics.prom.json
	$(PYTHON) -m repro.cli obs summarize suite_trace.json

# Deliberately regenerate the checked-in golden snapshot; review the
# JSON diff before committing (see docs/parallelism.md).
golden:
	$(PYTHON) -m pytest tests/integration/test_golden_suite.py --update-golden -q

# Full microbenchmark registry -> benchmarks/results/BENCH_micro.json
# (the checked-in performance baseline; see docs/performance.md).
bench:
	$(PYTHON) -m repro.bench

# Quick kernels only, 1 rep, reduced scale: proves harness + schema
# stay healthy (the CI job); numbers are not meaningful.
bench-smoke:
	$(PYTHON) -m repro.bench --smoke --out benchmarks/results/BENCH_smoke.json
