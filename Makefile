PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint lint-json ordering-check selfcheck

test:
	$(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) -m repro.lint src/repro tests benchmarks examples

lint-json:
	$(PYTHON) -m repro.lint src/repro --format json

ordering-check:
	$(PYTHON) -m repro.lint --ordering-check --ordering-seeds 1,2,3

selfcheck:
	$(PYTHON) -m repro.cli selfcheck
