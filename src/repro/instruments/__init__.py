"""Measurement instruments (§IV).

* :mod:`repro.instruments.lmg670` — the external ZES LMG670 AC power
  analyzer: 20 Sa/s, accuracy ±(0.015 % + 0.0625 W), out-of-band (it
  never perturbs the machine).
* :mod:`repro.instruments.energy` — the ``x86_energy``-style RAPL readout
  library over the emulated MSR file.
* :mod:`repro.instruments.timeline` — post-mortem merging and the paper's
  inner-8-seconds-of-10 averaging rule.
"""

from repro.instruments.lmg670 import Lmg670
from repro.instruments.energy import X86EnergyReader
from repro.instruments.timeline import PowerSeries, inner_window_mean

__all__ = ["Lmg670", "X86EnergyReader", "PowerSeries", "inner_window_mean"]
