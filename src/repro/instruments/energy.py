"""``x86_energy``-style RAPL readout (§IV footnote 4).

The paper reads RAPL through the tud-zih-energy ``x86_energy`` library
rather than raw ``msr`` accesses.  This reader wraps the emulated MSR
file the same way: it converts raw counter values with the unit register,
and differences two readouts handling 32-bit wrap-around.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.msr.definitions import (
    MSR_CORE_ENERGY_STAT,
    MSR_PKG_ENERGY_STAT,
    MSR_RAPL_PWR_UNIT,
)
from repro.units import RAPL_COUNTER_WRAP


@dataclass(frozen=True)
class EnergyReading:
    """A raw counter snapshot plus its decoded value."""

    raw: int
    joules: float


class X86EnergyReader:
    """Reads package/core energy through the MSR interface."""

    def __init__(self, msr_file) -> None:
        self.msr = msr_file
        unit_reg = self.msr.read(0, MSR_RAPL_PWR_UNIT)
        esu = (unit_reg >> 8) & 0x1F
        self.energy_unit_j = 2.0 ** (-esu)

    # --- snapshots ---------------------------------------------------------

    def read_package(self, cpu_id: int) -> EnergyReading:
        """Package energy via any CPU of the package."""
        raw = self.msr.read(cpu_id, MSR_PKG_ENERGY_STAT)
        return EnergyReading(raw, raw * self.energy_unit_j)

    def read_core(self, cpu_id: int) -> EnergyReading:
        """Per-core energy (AMD's core domain is per core, §III-C)."""
        raw = self.msr.read(cpu_id, MSR_CORE_ENERGY_STAT)
        return EnergyReading(raw, raw * self.energy_unit_j)

    # --- differencing ----------------------------------------------------------

    def delta_joules(self, before: EnergyReading, after: EnergyReading) -> float:
        """Energy between two snapshots, handling counter wrap."""
        raw_delta = (after.raw - before.raw) % RAPL_COUNTER_WRAP
        return raw_delta * self.energy_unit_j

    def average_power_w(
        self, before: EnergyReading, after: EnergyReading, duration_s: float
    ) -> float:
        """Mean power between two snapshots."""
        if duration_s <= 0:
            raise ValueError(f"duration must be positive, got {duration_s}")  # EXC001: argument validation
        return self.delta_joules(before, after) / duration_s
