"""Measurement time series and the paper's averaging rules (§IV).

"For quantitative comparisons, we use average power values within the
inner 8 s of a 10 s interval in which one workload configuration is
executed continuously.  This approach avoids inaccuracies due to
misaligned timestamps."  §V-E trims asymmetrically: "We exclude data for
the first 5 s and last 2 s".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MeasurementError


@dataclass(frozen=True)
class PowerSeries:
    """A timestamped power trace from one instrument."""

    times_s: np.ndarray
    power_w: np.ndarray

    def __post_init__(self) -> None:
        if self.times_s.shape != self.power_w.shape:
            raise MeasurementError("times and power arrays differ in shape")

    @property
    def duration_s(self) -> float:
        if self.times_s.size < 2:
            return 0.0
        return float(self.times_s[-1] - self.times_s[0])

    def window(self, t0_s: float, t1_s: float) -> "PowerSeries":
        """Sub-series with t0 <= t < t1."""
        mask = (self.times_s >= t0_s) & (self.times_s < t1_s)
        return PowerSeries(self.times_s[mask], self.power_w[mask])

    def mean_w(self) -> float:
        if self.power_w.size == 0:
            raise MeasurementError("empty power series")
        return float(np.mean(self.power_w))

    def std_w(self) -> float:
        return float(np.std(self.power_w, ddof=1)) if self.power_w.size > 1 else 0.0

    def concat(self, other: "PowerSeries") -> "PowerSeries":
        """Append another series (post-mortem merge step)."""
        return PowerSeries(
            np.concatenate([self.times_s, other.times_s]),
            np.concatenate([self.power_w, other.power_w]),
        )


def inner_window_mean(
    series: PowerSeries,
    *,
    skip_head_s: float = 1.0,
    skip_tail_s: float = 1.0,
) -> float:
    """Mean over the series with head/tail trimmed (the inner-8s rule)."""
    if series.times_s.size == 0:
        raise MeasurementError("empty power series")
    t0 = float(series.times_s[0]) + skip_head_s
    t1 = float(series.times_s[-1]) - skip_tail_s + 1e-12
    inner = series.window(t0, t1)
    if inner.power_w.size == 0:
        raise MeasurementError(
            f"trim ({skip_head_s}+{skip_tail_s}s) leaves no samples in a "
            f"{series.duration_s:.1f}s series"
        )
    return inner.mean_w()
