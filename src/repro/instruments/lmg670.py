"""The ZES LMG670 power analyzer model.

Datasheet behaviour used by the paper (§IV): L60-CH-A1 channels with
accuracy ±(0.015 % of reading + 0.0625 W), active-power values collected
at 20 Sa/s by a *separate* system ("out-of-band data collection avoids
any perturbation") and merged post-mortem.

Error model: a per-instrument systematic component (drawn once per
instrument, uniform within the accuracy band) plus per-sample noise well
inside the band.  The systematic part matters: it means repeated
measurements do not average the error away, exactly like a real analyzer.
"""

from __future__ import annotations

import numpy as np

from repro.instruments.timeline import PowerSeries
from repro.power.calibration import CALIBRATION, Calibration


class Lmg670:
    """Samples true power into a :class:`PowerSeries` with meter error."""

    def __init__(self, rng: np.random.Generator, calibration: Calibration = CALIBRATION) -> None:
        self.cal = calibration
        self.rng = rng
        # Systematic error: fixed for the life of the instrument.
        self._sys_gain = 1.0 + rng.uniform(-0.5, 0.5) * calibration.ac_meter_gain_error
        self._sys_offset_w = rng.uniform(-0.5, 0.5) * calibration.ac_meter_offset_error_w

    @property
    def sample_rate_hz(self) -> float:
        return self.cal.ac_meter_sample_rate_hz

    def measure_series(
        self, true_power_w: np.ndarray, start_s: float = 0.0
    ) -> PowerSeries:
        """Convert a true-power trajectory (already at 20 Sa/s) to readings."""
        true_power_w = np.asarray(true_power_w, dtype=float)
        n = true_power_w.size
        # Per-sample noise: 1/4 of the accuracy band each for gain/offset.
        gain_noise = 1.0 + self.rng.normal(
            0.0, self.cal.ac_meter_gain_error / 4.0, size=n
        )
        offset_noise = self.rng.normal(
            0.0, self.cal.ac_meter_offset_error_w / 4.0, size=n
        )
        readings = (
            true_power_w * self._sys_gain * gain_noise
            + self._sys_offset_w
            + offset_noise
        )
        times = start_s + np.arange(n) / self.sample_rate_hz
        return PowerSeries(times_s=times, power_w=readings)

    def sample_constant(self, true_power_w: float, duration_s: float, start_s: float = 0.0) -> PowerSeries:
        """Readings for a constant true power over ``duration_s``."""
        n = max(1, int(round(duration_s * self.sample_rate_hz)))
        return self.measure_series(np.full(n, true_power_w), start_s)
