"""I/O die P-states (fclk) — §III-C and §V-D.

The I/O die has a voltage/frequency domain decoupled from the cores.  The
BIOS exposes fixed P-states (P0 highest fclk) plus an "Auto" mode in which
a hardware control loop picks the clock — and, crucially for latency,
keeps the fabric clock *synchronized* with the memory clock where
possible.  The paper finds (Fig 5 discussion):

* lower fclk (higher P-state index) costs bandwidth but saves power;
* Auto matches the best fixed state for bandwidth;
* for latency, Auto (92.0 ns) beats fixed P0 (96.0 ns), and at the higher
  DRAM frequency even fixed P2 beats P0 — attributed to "a better match
  between the frequency domains for memory and I/O die".

The model: a fixed P-state pays an asynchronous-crossing penalty unless
``memclk / fclk`` is (close to) an integer ratio; Auto couples fclk to
memclk up to the 1.467 GHz fabric ceiling, leaving only a small residual
mismatch when memclk exceeds the ceiling.
"""

from __future__ import annotations

from enum import Enum

from repro.errors import ConfigurationError
from repro.power.calibration import CALIBRATION, Calibration
from repro.topology.components import IODie
from repro.units import ghz

#: Fixed fclk P-states exposed by the BIOS (P0, P1, P2).
FCLK_PSTATES_HZ: tuple[float, ...] = CALIBRATION.fclk_pstates_hz

#: The fabric-coupled ceiling: above this MEMCLK the domains decouple.
FCLK_COUPLED_CEILING_HZ = ghz(1.467)


class FclkMode(Enum):
    """BIOS I/O-die P-state selection."""

    AUTO = "auto"
    P0 = 0
    P1 = 1
    P2 = 2


class FclkController:
    """Applies an :class:`FclkMode` to an I/O die."""

    def __init__(self, io_die: IODie, calibration: Calibration = CALIBRATION) -> None:
        self.io_die = io_die
        self.cal = calibration
        self.mode = FclkMode.AUTO
        self.apply(self.mode)

    def apply(self, mode: FclkMode) -> None:
        """Set the BIOS option and update the applied fclk."""
        self.mode = mode
        self.io_die.fclk_hz = self.fclk_for(mode, self.io_die.memclk_hz)

    def on_memclk_change(self) -> None:
        """Re-evaluate Auto coupling after a DRAM-frequency change."""
        self.apply(self.mode)

    def fclk_for(self, mode: FclkMode, memclk_hz: float) -> float:
        """The fclk a mode yields with a given memory clock."""
        if mode is FclkMode.AUTO:
            return min(FCLK_COUPLED_CEILING_HZ, memclk_hz)
        try:
            return FCLK_PSTATES_HZ[mode.value]
        except (IndexError, TypeError):
            raise ConfigurationError(f"invalid fclk mode {mode!r}") from None

    # --- domain matching -------------------------------------------------------

    def mismatch_factor(self, memclk_hz: float | None = None) -> float:
        """Asynchronous-crossing severity in [0, 1].

        0 when the domains are synchronized (Auto with MEMCLK at or below
        the fabric ceiling, or a fixed fclk with an integer MEMCLK/fclk
        ratio); 1 for a fully asynchronous crossing.  Auto above the
        ceiling retains a residual factor — the control loop tracks but
        cannot fully couple (this is what makes Auto's 92.0 ns beat fixed
        P0's 96.0 ns while not being perfect).
        """
        memclk = self.io_die.memclk_hz if memclk_hz is None else memclk_hz
        fclk = self.fclk_for(self.mode, memclk)
        if self.mode is FclkMode.AUTO:
            if memclk <= FCLK_COUPLED_CEILING_HZ + 1e6:
                return 0.0
            return self.cal.mem_auto_residual_mismatch
        ratio = memclk / fclk
        if abs(ratio - round(ratio)) < 0.05 and round(ratio) >= 1:
            return 0.0
        return 1.0

    # --- power -------------------------------------------------------------------

    def extra_power_w(self) -> float:
        """I/O-die power relative to the *default* operating point.

        The paper's idle-staircase constants (Fig 7) were measured with
        the Auto fclk at DDR4-3200, i.e. fclk = 1.467 GHz — that power is
        already inside the +81.2 W system-wake term.  This term is the
        *deviation* from that reference: higher I/O die P-states (lower
        fclk) "reduce power consumption but also lower memory bandwidth"
        (§V-D), so it goes negative for P1/P2.
        """
        return self.cal.iodie_w_per_fclk_ghz * (
            (self.io_die.fclk_hz - FCLK_COUPLED_CEILING_HZ) / ghz(1)
        )
