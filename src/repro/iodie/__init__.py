"""I/O-die frequency domain (fclk) and its control policy (§III-C, §V-D)."""

from repro.iodie.fclk import FclkController, FclkMode, FCLK_PSTATES_HZ

__all__ = ["FclkController", "FclkMode", "FCLK_PSTATES_HZ"]
