"""The per-CPU MSR dispatch table.

Components register read/write handlers per address.  A handler receives
the logical CPU id, so one handler can serve core-scoped registers
(APERF) and package-scoped ones (package energy) alike.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import MsrError

ReadHandler = Callable[[int], int]
WriteHandler = Callable[[int, int], None]

_MASK64 = (1 << 64) - 1


class MsrFile:
    """Emulates ``/dev/cpu/N/msr`` access."""

    def __init__(self) -> None:
        self._readers: dict[int, ReadHandler] = {}
        self._writers: dict[int, WriteHandler] = {}
        self._static: dict[int, int] = {}

    # --- registration ------------------------------------------------------

    def register(
        self,
        address: int,
        reader: ReadHandler | None = None,
        writer: WriteHandler | None = None,
    ) -> None:
        """Attach handlers for one MSR address."""
        if reader is not None:
            self._readers[address] = reader
        if writer is not None:
            self._writers[address] = writer

    def register_static(self, address: int, value: int) -> None:
        """Expose a constant, read-only MSR value."""
        self._static[address] = value & _MASK64

    # --- access -------------------------------------------------------------

    def read(self, cpu_id: int, address: int) -> int:
        """Read an MSR on a given logical CPU."""
        if address in self._readers:
            return self._readers[address](cpu_id) & _MASK64
        if address in self._static:
            return self._static[address]
        raise MsrError(address, "read of unimplemented MSR")

    def write(self, cpu_id: int, address: int, value: int) -> None:
        """Write an MSR on a given logical CPU."""
        if address in self._writers:
            self._writers[address](cpu_id, value & _MASK64)
            return
        if address in self._readers or address in self._static:
            raise MsrError(address, "write to read-only MSR")
        raise MsrError(address, "write to unimplemented MSR")

    def implemented(self, address: int) -> bool:
        """True if the address has any handler."""
        return (
            address in self._readers
            or address in self._writers
            or address in self._static
        )
