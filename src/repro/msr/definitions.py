"""AMD family 17h MSR addresses used by the paper's experiments.

Sources: PPR for family 17h model 31h (doc 55803), §2.1.14.3 for the
P-state and C-state base-address registers; the RAPL registers replaced
the Bulldozer-era APM interface (§III-C).
"""

from __future__ import annotations

from repro.errors import MsrError

# architectural (Intel-compatible) counters
MSR_TSC = 0x10
MSR_MPERF = 0xE7
MSR_APERF = 0xE8

# P-states (PPR 2.1.14.3)
MSR_PSTATE_CUR_LIM = 0xC0010061
MSR_PSTATE_CTL = 0xC0010062
MSR_PSTATE_STATUS = 0xC0010063
MSR_PSTATE_0 = 0xC0010064
N_PSTATE_MSRS = 8

# C-state base address (the I/O port range whose reads enter idle states)
MSR_CSTATE_BASE_ADDR = 0xC0010073

# RAPL (Zen replacement for APM)
MSR_RAPL_PWR_UNIT = 0xC0010299
MSR_CORE_ENERGY_STAT = 0xC001029A
MSR_PKG_ENERGY_STAT = 0xC001029B


def pstate_msr_address(index: int) -> int:
    """Address of the P-state definition MSR ``index`` (0..7)."""
    if not 0 <= index < N_PSTATE_MSRS:
        raise MsrError(MSR_PSTATE_0 + max(0, index), f"P-state index {index} out of range")
    return MSR_PSTATE_0 + index


#: Human-readable names for diagnostics.
MSR_NAMES: dict[int, str] = {
    MSR_TSC: "TSC",
    MSR_MPERF: "MPERF",
    MSR_APERF: "APERF",
    MSR_PSTATE_CUR_LIM: "PStateCurLim",
    MSR_PSTATE_CTL: "PStateCtl",
    MSR_PSTATE_STATUS: "PStateStat",
    MSR_CSTATE_BASE_ADDR: "CStateBaseAddr",
    MSR_RAPL_PWR_UNIT: "RAPL_PWR_UNIT",
    MSR_CORE_ENERGY_STAT: "CORE_ENERGY_STAT",
    MSR_PKG_ENERGY_STAT: "PKG_ENERGY_STAT",
}
MSR_NAMES.update({pstate_msr_address(i): f"PStateDef{i}" for i in range(N_PSTATE_MSRS)})
