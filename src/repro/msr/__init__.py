"""Model-specific register (MSR) emulation.

Mirrors the paper's access path: the real experiments read MSRs via the
Linux ``msr`` kernel module (per-CPU device files); here,
:class:`~repro.msr.registers.MsrFile` dispatches per-CPU reads/writes to
handlers the machine registers (P-state table, RAPL counters, APERF/
MPERF).  Addresses follow AMD family 17h (PPR 55803).
"""

from repro.msr.definitions import (
    MSR_APERF,
    MSR_CSTATE_BASE_ADDR,
    MSR_CORE_ENERGY_STAT,
    MSR_MPERF,
    MSR_PKG_ENERGY_STAT,
    MSR_PSTATE_0,
    MSR_PSTATE_CUR_LIM,
    MSR_PSTATE_CTL,
    MSR_PSTATE_STATUS,
    MSR_RAPL_PWR_UNIT,
    MSR_TSC,
    pstate_msr_address,
)
from repro.msr.registers import MsrFile

__all__ = [
    "MsrFile",
    "MSR_TSC",
    "MSR_MPERF",
    "MSR_APERF",
    "MSR_PSTATE_CUR_LIM",
    "MSR_PSTATE_CTL",
    "MSR_PSTATE_STATUS",
    "MSR_PSTATE_0",
    "MSR_CSTATE_BASE_ADDR",
    "MSR_RAPL_PWR_UNIT",
    "MSR_CORE_ENERGY_STAT",
    "MSR_PKG_ENERGY_STAT",
    "pstate_msr_address",
]
