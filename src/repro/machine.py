"""The simulated test system (DESIGN.md §1's global substitution).

:class:`Machine` assembles topology, SMUs, C-state control, the I/O-die
fclk controllers, the ground-truth power model, the RAPL estimator+MSRs,
the OS facade and the external power analyzer into one object that
behaves — through its OS/MSR interfaces — like the paper's dual EPYC 7502
server.

Two operating modes coexist (DESIGN.md §2.9):

* **steady-state** (default): configuration changes settle immediately
  (:meth:`reconfigured`), and :meth:`measure` integrates instruments over
  a whole interval analytically.  All power/RAPL experiments use this.
* **event-driven**: with :attr:`event_driven` set, cpufreq writes route
  through the SMU transition engine with its 1 ms slots, and RAPL MSRs
  update on their 1 ms grid — the timing experiments (Figs 3, 8, the
  RAPL update-rate test) run here with microsecond resolution.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.cstate.controller import CStateController
from repro.errors import ConvergenceWarning
from repro.cstate.package import PackageSleepResolver
from repro.cstate.states import CSTATE_BASE_IO_ADDRESS
from repro.cstate.wakeup import WakeupModel
from repro.instruments.lmg670 import Lmg670
from repro.instruments.timeline import PowerSeries, inner_window_mean
from repro.iodie.fclk import FclkController, FclkMode
from repro.memory.bandwidth import BandwidthModel
from repro.memory.dram import dram_by_name
from repro.memory.latency import LatencyModel
from repro.msr.definitions import (
    MSR_APERF,
    MSR_CORE_ENERGY_STAT,
    MSR_CSTATE_BASE_ADDR,
    MSR_MPERF,
    MSR_PKG_ENERGY_STAT,
    MSR_PSTATE_CUR_LIM,
    MSR_RAPL_PWR_UNIT,
    pstate_msr_address,
)
from repro.msr.registers import MsrFile
from repro.oslayer.cpuidle import MenuGovernor
from repro.oslayer.interrupts import InterruptModel
from repro.oslayer.kernel import Kernel
from repro.oslayer.tracing import TraceBuffer
from repro.power.calibration import CALIBRATION, Calibration
from repro.power.model import PowerModel
from repro.power.thermal import ThermalModel, ThermalState
from repro.pstate.boost import BoostModel
from repro.pstate.resolver import FrequencyResolver
from repro.pstate.table import PStateTable, encode_pstate_msr
from repro.rapl.estimator import RaplEstimator
from repro.rapl.msrs import RaplMsrs, encode_rapl_power_unit
from repro.sim.backends import resolve_backend
from repro.sim.engine import Simulator
from repro.sim.rng import RngFactory
from repro.smu.smu import MasterSmu
from repro.topology.components import Core, HardwareThread
from repro.topology.skus import SKU, build_topology, sku_by_name
from repro.units import NS_PER_S, s as seconds


@dataclass
class Quirks:
    """Behaviour switches for the paper's Rome-specific observations.

    Defaults are the behaviours measured on the test system; flipping
    them gives the Intel-like baselines the paper compares against.
    """

    #: §V-A: idle/offline sibling threads vote on the core frequency.
    offline_threads_vote_on_frequency: bool = True
    #: §VI-B: offlined threads park in C1, blocking system sleep.
    offline_parks_in_c1: bool = True


@dataclass
class MeasurementRecord:
    """Everything one 10 s measurement interval produces (§IV workflow)."""

    duration_s: float
    ac: PowerSeries
    rapl_pkg_w: list[float]
    rapl_core_w: list[float]
    pkg_temps_c: list[float]
    true_power_w: float
    breakdown: dict = field(default_factory=dict)

    @property
    def ac_mean_w(self) -> float:
        """The paper's inner-window average of the AC trace."""
        return inner_window_mean(self.ac)

    @property
    def rapl_pkg_total_w(self) -> float:
        return float(sum(self.rapl_pkg_w))


class Machine:
    """The simulated dual-socket Rome server."""

    def __init__(
        self,
        sku: SKU | str = "EPYC 7502",
        *,
        n_packages: int = 2,
        seed: int = 0,
        calibration: Calibration = CALIBRATION,
        quirks: Quirks | None = None,
        fclk_mode: FclkMode = FclkMode.AUTO,
        dram: str = "DDR4-3200",
        boost_enabled: bool = False,
        variation_sigma: float = 0.0,
        event_order_shuffle: int | None = None,
        backend: str | None = None,
        obs=None,
    ) -> None:
        self.sku = sku_by_name(sku) if isinstance(sku, str) else sku
        self.cal = calibration
        self.quirks = quirks if quirks is not None else Quirks()
        self.rng = RngFactory(seed)
        # Simulation backend (repro.sim.backends): dispatch engine +
        # power-model implementation pair; None resolves through
        # REPRO_SIM_BACKEND, then "reference".
        self.backend = resolve_backend(backend)
        # Event-order shuffle mode (repro.lint.shuffle): randomize
        # same-timestamp tie-breaking with a seeded stream so ordering
        # races surface as result differences, reproducibly per seed.
        if event_order_shuffle is None:
            self.sim = self.backend.create_simulator()
        else:
            self.sim = self.backend.create_simulator(
                tiebreak_rng=self.rng.child(f"event-order-shuffle/{event_order_shuffle}")
            )
        self.topology = build_topology(self.sku, n_packages)

        self.cstates = CStateController(
            self.topology, offline_parks_in_c1=self.quirks.offline_parks_in_c1
        )
        self.sleep = PackageSleepResolver(self.topology, self.cstates)
        self.resolver = FrequencyResolver(
            calibration,
            offline_threads_vote=self.quirks.offline_threads_vote_on_frequency,
        )
        self.smus = [
            MasterSmu(
                self.sim,
                pkg,
                self.sku.edc_limit_a,
                calibration,
                ppt_limit_w=self.sku.ppt_w,
            )
            for pkg in self.topology.packages
        ]
        dram_cfg = dram_by_name(dram)
        for pkg in self.topology.packages:
            pkg.io_die.memclk_hz = dram_cfg.memclk_hz
        self.fclk_controllers = [
            FclkController(pkg.io_die, calibration) for pkg in self.topology.packages
        ]
        for fc in self.fclk_controllers:
            fc.apply(fclk_mode)

        # Manufacturing variation (§VI-A: "the reported numbers ... depend
        # on the processor model, processor variations, and other
        # components"): per-package multipliers on the silicon-dependent
        # power terms, drawn once per machine.
        if variation_sigma > 0.0:
            draws = self.rng.child("pkg-variation").normal(
                1.0, variation_sigma, size=n_packages
            )
            self.pkg_power_factors = [float(max(0.7, d)) for d in draws]
        else:
            self.pkg_power_factors = [1.0] * n_packages

        self.power_model = self.backend.create_power_model(calibration)
        self.power_model.bind(self)
        self.thermal = ThermalModel(calibration)
        self.thermal_state = ThermalState.ambient(n_packages, calibration)
        self.rapl_estimator = RaplEstimator(calibration)
        self.rapl_msrs = RaplMsrs(n_packages, self.topology.n_cores, calibration)
        self.wakeup = WakeupModel(calibration, self.rng.child("wakeup"))
        self.latency_model = LatencyModel(calibration)
        self.bandwidth_model = BandwidthModel(calibration)

        self.pstate_table = PStateTable.from_frequencies(
            list(self.sku.available_freqs_hz), calibration.voltage_at
        )
        self.boost = BoostModel(self.sku, enabled=boost_enabled)
        self.msr = MsrFile()
        self._wire_msrs()

        self.os = Kernel(self)
        self.interrupts = InterruptModel()
        self.cstates.governor = MenuGovernor(self.interrupts)
        self.trace = TraceBuffer()
        self.ac_meter = Lmg670(self.rng.child("lmg670"), calibration)
        self._rapl_noise = self.rng.child("rapl-model")

        #: Monotone configuration epoch; bumped by :meth:`reconfigured`.
        self.state_version = 0
        #: Event-driven mode flag (see module docstring).
        self.event_driven = False
        self._rapl_tick_task = None
        self._observable_mean_hz: dict[int, float] = {}
        self._edc_caps: list[float | None] = [None] * n_packages
        self._rapl_tick_cache: tuple | None = None

        # Every mutation path of power-model inputs must bump
        # state_version (the memoization key — see PowerModel.bind):
        # reconfigured()/on_freq_request() do it directly; C-state
        # re-resolutions and event-mode SMU transition completions land
        # outside those paths, so they get explicit hooks.
        self.cstates.on_change = self._bump_state_version
        for smu in self.smus:
            smu.transitions.on_applied = self._on_transition_applied

        # Observability (repro.obs): None unless an *enabled* bundle is
        # attached, so instrumented paths cost one identity check.
        self._obs = None
        self._obs_track = None
        if obs is not None:
            self.attach_obs(obs)

        self.cstates.refresh()
        self.reconfigured()

    def attach_obs(self, obs) -> None:
        """Instrument this machine with a :class:`repro.obs.Obs` bundle.

        Assigns the machine its own trace track, instruments the
        simulator dispatch loop and the power-model memo, bridges
        :class:`~repro.oslayer.tracing.TraceBuffer` tracepoints onto the
        exported timeline, and registers measure/preheat/RAPL metrics.
        A disabled obs is ignored entirely.
        """
        from repro.obs import COUNT_BUCKETS, effective_obs

        obs = effective_obs(obs)
        if obs is None:
            return
        tracer = obs.tracer
        track = tracer.new_track("machine")
        self._obs = obs
        self._obs_track = track
        self.sim.attach_obs(obs, track=track)
        self.power_model.attach_obs(obs, machine=track)

        metrics = obs.metrics
        self._obs_measures = metrics.counter(
            "machine.measures",
            "Completed measure() intervals",
            "intervals",
            machine=track,
        )
        self._obs_state_version = metrics.gauge(
            "machine.state_version",
            "Configuration epoch (the state_version memo key)",
            "bumps",
            machine=track,
        )
        self._obs_preheat_sweeps = metrics.histogram(
            "machine.preheat_sweeps",
            "Gauss-Seidel sweeps until thermal fixed-point convergence",
            "sweeps",
            buckets=COUNT_BUCKETS,
            machine=track,
        )
        help_ph = "preheat() fixed-point runs by convergence outcome"
        self._obs_preheat_conv = metrics.counter(
            "machine.preheats", help_ph, "runs", machine=track, converged="true"
        )
        self._obs_preheat_unconv = metrics.counter(
            "machine.preheats", help_ph, "runs", machine=track, converged="false"
        )
        help_rapl = "1 ms RAPL ticks by estimator-cache outcome"
        self._obs_rapl_hit = metrics.counter(
            "machine.rapl_ticks", help_rapl, "ticks", machine=track, result="hit"
        )
        self._obs_rapl_compute = metrics.counter(
            "machine.rapl_ticks", help_rapl, "ticks", machine=track, result="compute"
        )

        def _bridge(time_ns, name, cpu_id, payload, _tracer=tracer, _track=track):
            _tracer.instant(
                name,
                cat="tracepoint",
                track=_track,
                sim_ns=time_ns,
                cpu=cpu_id,
                **payload,
            )

        self.trace.sink = _bridge

    # ------------------------------------------------------------------
    # MSR wiring
    # ------------------------------------------------------------------

    def _wire_msrs(self) -> None:
        msr = self.msr
        msr.register_static(MSR_RAPL_PWR_UNIT, encode_rapl_power_unit())
        msr.register_static(MSR_PSTATE_CUR_LIM, self.pstate_table.current_limit)
        msr.register_static(MSR_CSTATE_BASE_ADDR, CSTATE_BASE_IO_ADDRESS)
        for ps in self.pstate_table:
            msr.register_static(pstate_msr_address(ps.index), encode_pstate_msr(ps))
        msr.register(MSR_PKG_ENERGY_STAT, self._read_pkg_energy)
        msr.register(MSR_CORE_ENERGY_STAT, self._read_core_energy)
        msr.register(MSR_APERF, lambda cpu: int(self._thread(cpu).aperf_cycles))
        msr.register(MSR_MPERF, lambda cpu: int(self._thread(cpu).mperf_cycles))

    def _thread(self, cpu_id: int) -> HardwareThread:
        return self.topology.thread(cpu_id)

    def _read_pkg_energy(self, cpu_id: int) -> int:
        pkg = self._thread(cpu_id).core.package
        return self.rapl_msrs.read_pkg_raw(pkg.index)

    def _read_core_energy(self, cpu_id: int) -> int:
        core = self._thread(cpu_id).core
        return self.rapl_msrs.read_core_raw(core.global_index)

    # ------------------------------------------------------------------
    # configuration / resolution
    # ------------------------------------------------------------------

    def on_freq_request(self, thread: HardwareThread) -> None:
        """cpufreq callback: a logical CPU's request changed."""
        if self.event_driven:
            core = thread.core
            target = self.resolver.core_request_hz(core)
            pkg = core.package
            cap = self._edc_caps[pkg.index]
            if cap is not None and core.has_active_thread:
                target = min(target, cap)
            self.smus[pkg.index].transitions.request(core, target)
            self.state_version += 1
        else:
            self.reconfigured()

    def _bump_state_version(self) -> None:
        """Invalidate every ``state_version``-keyed cache."""
        self.state_version += 1

    def _on_transition_applied(self, core: Core, target_hz: float) -> None:
        """SMU transition-engine hook: an event-mode frequency landed."""
        self.state_version += 1

    def reconfigured(self) -> None:
        """Settle the machine after any configuration change.

        Runs the EDC loop per package, resolves frequencies per CCX,
        applies them (instantly, steady-state semantics) and updates the
        L3 and observable-mean caches.
        """
        # Bumped on entry (the pre-change caches must not serve the
        # settling logic below) and again on exit (the settling mutates
        # frequencies and I/O-die sleep after this first bump).
        self.state_version += 1
        self._observable_mean_hz.clear()
        for pkg, smu in zip(self.topology.packages, self.smus):
            boost_decision = self.boost.ceiling_hz(
                pkg, self.thermal_state.temps_c[pkg.index]
            )
            active_requests = [
                self.boost.boosted_target_hz(
                    self.resolver.core_request_hz(core), boost_decision
                )
                for core in pkg.cores()
                if core.has_active_thread
            ]
            cap = None
            if active_requests:
                requested = max(active_requests)
                smu.run_edc_loop(requested)
                smu.run_ppt_loop(
                    requested,
                    self.thermal_state.temps_c[pkg.index],
                    self.power_model.package_dram_traffic_gbs(pkg),
                )
                cap = smu.combined_cap_hz
            self._edc_caps[pkg.index] = cap
            boost_ceiling = boost_decision.ceiling_hz if self.boost.enabled else None
            for ccd in pkg.ccds:
                for ccx in ccd.ccxs:
                    resolved = self.resolver.resolve_ccx(
                        ccx,
                        edc_cap_hz=cap,
                        boost_ceiling_hz=boost_ceiling,
                        nominal_hz=self.sku.nominal_freq_hz,
                    )
                    for core, res in zip(ccx.cores, resolved):
                        if not self.event_driven:
                            core.applied_freq_hz = res.target_hz
                        self._observable_mean_hz[core.global_index] = (
                            res.observable_mean_hz
                        )
                    ccx.l3_freq_hz = self.resolver.l3_target_hz(ccx)
        self.sleep.apply_to_io_dies()
        self.state_version += 1

    def observable_mean_hz(self, core: Core) -> float:
        """Time-averaged clock a perf observer sees for ``core``."""
        cached = self._observable_mean_hz.get(core.global_index)
        if cached is not None and not self.event_driven:
            return cached
        # Event mode: derive from the currently applied frequency.
        return core.applied_freq_hz

    def edc_cap_hz(self, pkg_index: int) -> float | None:
        """The EDC frequency cap currently applied to a package."""
        return self._edc_caps[pkg_index]

    # ------------------------------------------------------------------
    # event-driven helpers
    # ------------------------------------------------------------------

    def enable_event_mode(self, *, rapl_ticks: bool = False) -> None:
        """Switch to event-driven semantics (timing experiments)."""
        self.event_driven = True
        if rapl_ticks and self._rapl_tick_task is None:
            self._rapl_tick_task = self.sim.periodic(
                self.cal.rapl_update_period_ns, self._rapl_tick
            )

    def disable_event_mode(self) -> None:
        """Back to steady-state semantics; settles outstanding state."""
        self.event_driven = False
        if self._rapl_tick_task is not None:
            self._rapl_tick_task.cancel()
            self._rapl_tick_task = None
        self.reconfigured()

    def _rapl_tick(self) -> None:
        # A bulk-accounted measure() interval may already cover this tick's
        # span; depositing again would double-count (and run time backwards).
        if self.sim.now_ns <= self.rapl_msrs.last_update_ns:
            return
        # The estimator inputs are exactly (machine state, temperatures):
        # between configuration changes and measure() intervals both are
        # constant, so consecutive 1 ms ticks reuse the computed powers.
        # The hit path compares against the cached state in place — no
        # per-tick key tuple (lint --effects HOT001 budget).
        cached = self._rapl_tick_cache
        if (
            cached is not None
            and cached[0] == self.state_version
            and cached[1] == self.thermal_state.temps_c
        ):
            pkg_powers, core_powers = cached[2], cached[3]
            if self._obs is not None:
                self._obs_rapl_hit.inc()
        else:
            if self._obs is not None:
                self._obs_rapl_compute.inc()
            pkg_powers, core_powers = self._rapl_tick_compute()
        self.rapl_msrs.tick(pkg_powers, core_powers, self.sim.now_ns)

    def _rapl_tick_compute(self):  # lint: cold (memo-miss estimator sweep)
        """Recompute and cache the per-tick estimator outputs.

        The temperature list is copied into the cache entry: the thermal
        state mutates it in place, and an aliased reference would make
        every future comparison a false hit.
        """
        pkg_powers = [
            self.rapl_estimator.package_power_w(
                pkg,
                self.thermal_state.temps_c[pkg.index],
                dram_traffic_gbs=self.power_model.package_dram_traffic_gbs(pkg),
            )
            for pkg in self.topology.packages
        ]
        core_powers = [
            self.rapl_estimator.core_power_w(core) for core in self.topology.cores()
        ]
        self._rapl_tick_cache = (
            self.state_version,
            list(self.thermal_state.temps_c),
            pkg_powers,
            core_powers,
        )
        return pkg_powers, core_powers

    # ------------------------------------------------------------------
    # thermal
    # ------------------------------------------------------------------

    #: Convergence knobs for the power<->temperature fixed point.  The
    #: 0.01 K tolerance is far below every acceptance band (0.01 K of
    #: package leakage is ~2 mW); the 4-sweep floor matches the legacy
    #: iteration count, keeping results bit-identical at calibrations
    #: where 4 sweeps already converge (the default contraction ratio is
    #: thermal_resistance_k_per_w * leakage_w_per_k_pkg ~= 0.053).
    PREHEAT_TOL_C = 0.01
    PREHEAT_MIN_SWEEPS = 4
    PREHEAT_MAX_SWEEPS = 64

    def preheat(
        self,
        *,
        tol_c: float = PREHEAT_TOL_C,
        max_sweeps: int = PREHEAT_MAX_SWEEPS,
    ) -> float:
        """Settle package temperatures at equilibrium (§V-E's 15 min).

        Power and temperature are mutually dependent — leakage rises
        with temperature, equilibrium temperature rises with power — so
        the steady state is a fixed point, iterated in Gauss-Seidel
        sweeps over the packages until the largest per-sweep temperature
        change drops to ``tol_c`` (at most ``max_sweeps``).  A fixed
        sweep count is *not* sufficient in general: the contraction
        ratio ``thermal_resistance_k_per_w * leakage_w_per_k_pkg``
        approaches 1 at strongly leaky calibrations (and >= 1 means
        thermal runaway with no stable equilibrium at all), so exiting
        unconverged now raises :class:`~repro.errors.ConvergenceWarning`
        instead of silently skewing the leakage term.

        Returns the last sweep's maximum temperature change in K.
        """
        temps = self.thermal_state.temps_c
        delta_c = 0.0
        sweeps = 0
        converged = False
        for sweep in range(1, max_sweeps + 1):
            sweeps = sweep
            delta_c = 0.0
            for pkg in self.topology.packages:
                p = self.power_model.package_power_w(self, pkg, temps)
                new_t = self.thermal.equilibrium_c(p)
                delta_c = max(delta_c, abs(new_t - temps[pkg.index]))
                temps[pkg.index] = new_t
            if sweep >= self.PREHEAT_MIN_SWEEPS and delta_c <= tol_c:
                converged = True
                break
        if not converged:
            warnings.warn(
                f"preheat did not converge: last sweep still moved temperatures "
                f"by {delta_c:.3g} K (> {tol_c:.3g} K tolerance) after "
                f"{max_sweeps} sweeps; the calibration's leakage-thermal "
                f"contraction ratio is "
                f"{self.cal.thermal_resistance_k_per_w * self.cal.leakage_w_per_k_pkg:.3g}",
                ConvergenceWarning,
                stacklevel=2,
            )
        if self._obs is not None:
            self._obs_preheat_sweeps.observe(sweeps)
            if converged:
                self._obs_preheat_conv.inc()
            else:
                self._obs_preheat_unconv.inc()
        return delta_c

    def _evolve_thermals(self, duration_s: float) -> None:
        for pkg in self.topology.packages:
            p = self.power_model.package_power_w(self, pkg, self.thermal_state.temps_c)
            self.thermal_state.temps_c[pkg.index] = self.thermal.evolve_c(
                self.thermal_state.temps_c[pkg.index], p, duration_s
            )

    # ------------------------------------------------------------------
    # steady-state measurement (the §IV 10 s interval workflow)
    # ------------------------------------------------------------------

    def measure(self, duration_s: float = 10.0) -> MeasurementRecord:
        """Run the current configuration for ``duration_s`` and record.

        Follows the paper's procedure: the AC analyzer samples at
        20 Sa/s out-of-band; RAPL counters integrate the SMU model; the
        analysis later applies the inner-window averaging rule.
        """
        if self._obs is None:
            return self._measure_impl(duration_s)
        tracer = self._obs.tracer
        tracer.begin(
            "machine.measure",
            cat="machine",
            sim_ns=self.sim.now_ns,
            machine=self._obs_track,
            duration_s=duration_s,
        )
        try:
            return self._measure_impl(duration_s)
        finally:
            tracer.end(sim_ns=self.sim.now_ns)
            self._obs_measures.inc()
            self._obs_state_version.set(self.state_version)

    def _measure_impl(self, duration_s: float) -> MeasurementRecord:
        temps0 = list(self.thermal_state.temps_c)
        # Temperature trajectory under current power (one-step coupling:
        # power evaluated at initial temps drives the trajectory).
        n_samples = max(1, int(round(duration_s * self.ac_meter.sample_rate_hz)))
        sample_times = np.arange(n_samples) / self.ac_meter.sample_rate_hz

        pkg_powers0 = [
            self.power_model.package_power_w(self, pkg, temps0)
            for pkg in self.topology.packages
        ]
        trajectories = [
            np.array(self.thermal.trajectory_c(temps0[i], pkg_powers0[i], sample_times))
            for i in range(len(temps0))
        ]

        # True AC power at each sample instant (leakage follows temps).
        base_bd = self.power_model.breakdown(self, None)
        base_w = base_bd.total_w
        leak = np.zeros(n_samples)
        for traj in trajectories:
            leak += np.maximum(
                0.0, self.cal.leakage_w_per_k_pkg * (traj - self.cal.reference_temp_c)
            )
        true_series = base_w + leak
        ac = self.ac_meter.measure_series(true_series)

        # RAPL: estimator power integrated over the interval (per package
        # and per core), with small model noise, deposited in bulk.
        rapl_pkg_w = []
        for pkg in self.topology.packages:
            mean_temp = float(np.mean(trajectories[pkg.index]))
            traffic = self.power_model.package_dram_traffic_gbs(pkg)
            p = self.rapl_estimator.package_power_w(
                pkg, mean_temp, dram_traffic_gbs=traffic
            )
            p += self._rapl_noise.normal(0.0, 0.05)
            rapl_pkg_w.append(max(0.0, p))
        rapl_core_w = []
        for core in self.topology.cores():
            mean_temp = float(np.mean(trajectories[core.package.index]))
            p = self.rapl_estimator.core_power_w(core, mean_temp)
            p += self._rapl_noise.normal(0.0, 0.004)
            rapl_core_w.append(max(0.0, p))
        self.rapl_msrs.advance_bulk(
            [p * duration_s for p in rapl_pkg_w],
            [p * duration_s for p in rapl_core_w],
            seconds(duration_s),
        )

        # Advance counters, thermals and the wall clock.
        self._advance_perf_counters(duration_s)
        for i, traj in enumerate(trajectories):
            self.thermal_state.temps_c[i] = float(traj[-1])
        self.sim.run_for(seconds(duration_s))

        return MeasurementRecord(
            duration_s=duration_s,
            ac=ac,
            rapl_pkg_w=rapl_pkg_w,
            rapl_core_w=rapl_core_w,
            pkg_temps_c=list(self.thermal_state.temps_c),
            true_power_w=float(np.mean(true_series)),
            breakdown={
                "platform_base_w": base_bd.platform_base_w,
                "system_wake_w": base_bd.system_wake_w,
                "c1_cores_w": base_bd.c1_cores_w,
                "active_cores_w": base_bd.active_cores_w,
                "workload_dynamic_w": base_bd.workload_dynamic_w,
                "toggle_w": base_bd.toggle_w,
                "dram_active_w": base_bd.dram_active_w,
                "iodie_w": base_bd.iodie_w,
                "leakage_w": float(np.mean(leak)),
            },
        )

    def _advance_perf_counters(self, duration_s: float) -> None:
        """Accumulate aperf/mperf/instruction counters over an interval."""
        for thread in self.topology.threads():
            # Residency accounting runs for every thread (offline threads
            # parked in C1 still accrue C1 time — §VI-B's smoking gun).
            thread.cstate_time_ns[thread.effective_cstate] += duration_s * 1e9
            if thread.effective_cstate != "C0":
                thread.cstate_usage[thread.effective_cstate] += max(
                    1, int(duration_s * 4)
                )
            if not thread.online:
                continue
            if thread.is_active:
                mean_hz = self.observable_mean_hz(thread.core)
                smt = sum(1 for t in thread.core.threads if t.is_active)
                thread.aperf_cycles += mean_hz * duration_s
                thread.mperf_cycles += self.cal.nominal_freq_hz * duration_s
                thread.instructions += (
                    thread.workload.ipc(smt) / smt * mean_hz * duration_s
                )
            elif thread.effective_cstate == "C0":
                thread.aperf_cycles += thread.core.applied_freq_hz * duration_s
                thread.mperf_cycles += self.cal.nominal_freq_hz * duration_s
            # C1/C2: counters halted (§VI-A observation).

    # ------------------------------------------------------------------
    # BIOS-level reconfiguration
    # ------------------------------------------------------------------

    def set_fclk_mode(self, mode: FclkMode) -> None:
        """BIOS I/O-die P-state option (applies to both sockets)."""
        for fc in self.fclk_controllers:
            fc.apply(mode)
        self.reconfigured()

    def set_power_limit_w(self, limit_w: float) -> None:
        """Operator power cap per package (the §II-B capping interface).

        The SMU enforces it against its *modelled* power — see
        :mod:`repro.smu.ppt` for why the wall may disagree.
        """
        for smu in self.smus:
            smu.ppt.limit_w = limit_w
        self.reconfigured()

    def set_dram(self, name: str) -> None:
        """BIOS DRAM speed-grade option."""
        cfg = dram_by_name(name)
        for pkg, fc in zip(self.topology.packages, self.fclk_controllers):
            pkg.io_die.memclk_hz = cfg.memclk_hz
            fc.on_memclk_change()
        self.reconfigured()

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        """Cancel periodic machinery."""
        for smu in self.smus:
            smu.shutdown()
        if self._rapl_tick_task is not None:
            self._rapl_tick_task.cancel()
            self._rapl_tick_task = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Machine {self.sku.name} x{len(self.topology.packages)} "
            f"@{self.sim.now_ns / NS_PER_S:.3f}s>"
        )
