"""Process-pool execution engine for embarrassingly parallel sweeps.

The paper's evaluation is ten independent artifacts; ``run_tasks`` fans
any list of picklable thunks out across worker processes with per-task
timeouts, bounded retries on worker crash, and deterministic result
ordering.  :func:`repro.core.suite.run_suite` builds on it via its
``parallel=N`` argument; see docs/parallelism.md for the execution
model and determinism guarantees.
"""

from repro.parallel.pool import (
    MAX_JOBS,
    Task,
    TaskFailure,
    TaskOutcome,
    run_tasks,
)

__all__ = ["MAX_JOBS", "Task", "TaskFailure", "TaskOutcome", "run_tasks"]
