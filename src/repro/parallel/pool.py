"""Process-pool task runner with timeouts, bounded retries, determinism.

``run_tasks`` fans a list of :class:`Task` thunks out across a
:class:`concurrent.futures.ProcessPoolExecutor` and returns one
:class:`TaskOutcome` per task **in input order**, regardless of
completion order.  Worker misbehaviour is contained, never fatal:

* a task that raises is retried up to the bound, then reported as a
  structured :class:`TaskFailure` (kind ``"error"``);
* a task that exceeds ``timeout_s`` has its worker terminated and is
  retried in isolation (kind ``"timeout"``);
* a worker that dies mid-task (segfault, ``os._exit``) breaks the gang
  pool; survivors are harvested and every unresolved task is re-run in
  an isolated single-worker pool so the crash is attributed to exactly
  the task that causes it (kind ``"crash"``).

Two execution phases keep the common case fast and the failure case
attributable:

1. **Gang phase** — all tasks in one pool, ``jobs`` workers.  Futures
   are awaited in submission order; because waits overlap execution,
   every task gets at least ``timeout_s`` of wall clock from the moment
   the runner starts waiting on it.
2. **Isolation phase** — only tasks left unresolved by the gang phase
   (raised, timed out, or victims of a pool breakage).  Each runs in a
   fresh single-worker pool with an exact per-attempt timeout, retried
   while its attempt budget (``retries + 1`` attempts total) lasts.

Task functions must be picklable (defined at module top level) and
deterministic: the suite integration relies on a parallel run being
byte-identical to a serial one.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import (
    ProcessPoolExecutor,
    TimeoutError as FutureTimeoutError,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.errors import ParallelError

#: Upper bound on gang-pool size however many tasks arrive.
MAX_JOBS = 64

#: How long :func:`_terminate` waits for a SIGTERMed worker to exit
#: before escalating to SIGKILL.  Workers are pure compute, so a well-
#: behaved one dies in milliseconds; the budget only bounds the worst
#: case (e.g. a worker stuck in uninterruptible I/O).
REAP_GRACE_S = 5.0


@dataclass(frozen=True)
class Task:
    """One unit of work: a picklable callable plus its arguments."""

    name: str
    fn: Callable[..., Any]
    args: tuple = ()


def _task_shell(fn: Callable[..., Any], name: str, *args: Any) -> Any:
    """Worker-side envelope run around every task.

    Leaves start/end breadcrumbs (plus the task name as ring context) in
    the worker's flight recorder, and when the task raises, freezes the
    ring into a crash bundle — written only when ``$REPRO_FLIGHTREC_DIR``
    is set — before re-raising the original exception unchanged, so the
    parent's failure classification and message format are untouched.
    Observability imports stay function-local: ``repro.parallel`` is a
    leaf layer at module scope.
    """
    from repro.obs.flightrec import record_crash, recorder

    rec = recorder()
    rec.context["task"] = name
    rec.note("pool.task.start", task=name)
    try:
        result = fn(*args)
    except BaseException:
        record_crash(f"task-failure:{name}")
        raise
    rec.note("pool.task.end", task=name)
    rec.context.pop("task", None)
    return result


@dataclass(frozen=True)
class TaskFailure:
    """Structured description of a task that exhausted its retries."""

    name: str
    kind: str  # "error" | "timeout" | "crash"
    message: str
    attempts: int

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": str(self.name),
            "kind": str(self.kind),
            "message": str(self.message),
            "attempts": int(self.attempts),
        }


@dataclass
class TaskOutcome:
    """Result slot for one task; exactly one of value/failure is set."""

    name: str
    value: Any = None
    failure: TaskFailure | None = None
    attempts: int = 0

    @property
    def ok(self) -> bool:
        return self.failure is None


@dataclass
class _Slot:
    task: Task
    attempts: int = 0
    value: Any = None
    done: bool = False
    last_kind: str = "error"
    last_message: str = ""

    def record_failure(self, kind: str, message: str) -> None:
        self.attempts += 1
        self.last_kind = kind
        self.last_message = message

    def record_success(self, value: Any) -> None:
        self.attempts += 1
        self.value = value
        self.done = True


class _PoolObs:
    """Parent-side instrumentation for one ``run_tasks`` call.

    Workers never see the obs bundle (it is not picklable and must not
    perturb task results); everything here is measured from the parent:
    submit-to-resolution windows per task (one export lane each, so
    concurrent windows stay renderable), phase spans, and outcome /
    retry counters.
    """

    def __init__(self, obs, n_tasks: int) -> None:
        self.tracer = obs.tracer
        self.log = obs.log
        self.track = self.tracer.new_track("pool")
        metrics = obs.metrics
        help_tasks = "Pool tasks by final outcome"
        self.results = {
            kind: metrics.counter("pool.tasks", help_tasks, "tasks", result=kind)
            for kind in ("ok", "error", "timeout", "crash")
        }
        self.retries = metrics.counter(
            "pool.retries", "Task attempts beyond the first", "attempts"
        )
        self.task_wall = metrics.histogram(
            "pool.task_wall_s",
            "Wall time from task submission to resolution",
            "s",
        )
        self._t_submit: dict[int, int] = {}

    def phase(self, name: str, **args):
        return self.tracer.span(name, cat="pool", **args)

    def submitted(self, index: int) -> None:
        self._t_submit[index] = self.tracer.now_ns()

    def resolved(self, index: int, slot: "_Slot", phase: str) -> None:
        t0 = self._t_submit.pop(index, None)
        if t0 is None:
            return
        t1 = self.tracer.now_ns()
        self.task_wall.observe((t1 - t0) / 1e9)
        self.tracer.complete(
            f"pool.task:{slot.task.name}",
            cat="pool",
            track=self.track,
            t0_wall_ns=t0,
            t1_wall_ns=t1,
            lane=index + 1,
            phase=phase,
            outcome="ok" if slot.done else slot.last_kind,
            attempts=slot.attempts,
        )
        if not slot.done:
            self.log.warning(
                "pool.task.failed",
                task=slot.task.name,
                kind=slot.last_kind,
                attempts=slot.attempts,
                phase=phase,
            )

    def flush_harvested(self, slots: list["_Slot"]) -> None:
        for index, slot in enumerate(slots):
            if slot.done and index in self._t_submit:
                self.resolved(index, slot, "gang")

    def finish(self, slots: list["_Slot"]) -> None:
        for slot in slots:
            self.results["ok" if slot.done else slot.last_kind].inc()
            if slot.attempts > 1:
                self.retries.inc(slot.attempts - 1)


def _mp_context():
    """Fork where available: inherits sys.path and test monkeypatches."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX hosts
        return multiprocessing.get_context()


def _terminate(executor: ProcessPoolExecutor) -> None:
    """Abandon a pool whose workers may be stuck: terminate, then reap.

    Terminating alone is not enough — a SIGTERMed child stays a zombie
    until its parent waits on it, so a long run with many timeout-retry
    cycles would accumulate defunct processes (and leak their pids).
    Each worker is therefore joined with a shared :data:`REAP_GRACE_S`
    budget, escalating to SIGKILL for any that ignored SIGTERM.
    """
    processes = list(getattr(executor, "_processes", {}).values())
    executor.shutdown(wait=False, cancel_futures=True)
    for proc in processes:
        try:
            proc.terminate()
        except (OSError, ValueError):  # pragma: no cover - already gone
            pass
    deadline = time.monotonic() + REAP_GRACE_S  # lint: disable=DET001 (host-side process reaping)
    for proc in processes:
        try:
            proc.join(max(0.0, deadline - time.monotonic()))  # lint: disable=DET001 (host-side process reaping)
            if proc.is_alive():  # pragma: no cover - ignored SIGTERM
                proc.kill()
                proc.join()
        except (OSError, ValueError, AssertionError):  # pragma: no cover
            pass


def run_tasks(
    tasks: Sequence[Task],
    *,
    jobs: int | None = None,
    timeout_s: float | None = None,
    retries: int = 1,
    obs=None,
) -> list[TaskOutcome]:
    """Execute ``tasks`` across worker processes; results in input order.

    ``obs`` (a :class:`repro.obs.Obs`) instruments the run from the
    parent side — per-task spans, gang/isolation phase spans, outcome
    and retry counters.  Workers are never instrumented, so results are
    identical with or without it.
    """
    tasks = list(tasks)
    if jobs is not None and jobs < 1:
        raise ParallelError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise ParallelError(f"retries must be >= 0, got {retries}")
    if timeout_s is not None and timeout_s <= 0:
        raise ParallelError(f"timeout_s must be positive, got {timeout_s}")
    names = [t.name for t in tasks]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise ParallelError(f"duplicate task names: {dupes}")
    if not tasks:
        return []

    # Every task runs inside _task_shell so worker crashes leave flight-
    # recorder bundles; the wrapped Task keeps the caller's name, so
    # outcomes and failure messages are unchanged.
    slots = [
        _Slot(task=Task(name=t.name, fn=_task_shell, args=(t.fn, t.name, *t.args)))
        for t in tasks
    ]
    max_attempts = retries + 1
    worker_count = min(len(tasks), jobs or MAX_JOBS, MAX_JOBS)

    pobs = None
    if obs is not None:
        from repro.obs import effective_obs

        if effective_obs(obs) is not None:
            pobs = _PoolObs(obs, len(slots))

    if pobs is None:
        _gang_phase(slots, worker_count, timeout_s)
        _isolation_phase(slots, timeout_s, max_attempts)
    else:
        with pobs.phase("pool.gang", jobs=worker_count, tasks=len(slots)):
            _gang_phase(slots, worker_count, timeout_s, pobs)
        unresolved = sum(1 for slot in slots if not slot.done)
        if unresolved:
            with pobs.phase("pool.isolation", tasks=unresolved):
                _isolation_phase(slots, timeout_s, max_attempts, pobs)
        pobs.finish(slots)

    outcomes: list[TaskOutcome] = []
    for slot in slots:
        if slot.done:
            outcomes.append(
                TaskOutcome(
                    name=slot.task.name, value=slot.value, attempts=slot.attempts
                )
            )
        else:
            outcomes.append(
                TaskOutcome(
                    name=slot.task.name,
                    failure=TaskFailure(
                        name=slot.task.name,
                        kind=slot.last_kind,
                        message=slot.last_message,
                        attempts=slot.attempts,
                    ),
                    attempts=slot.attempts,
                )
            )
            if slot.last_kind in ("timeout", "crash"):
                # The worker never got to dump (it was killed or died),
                # so record the failure from the parent's ring instead.
                from repro.obs.flightrec import record_crash

                record_crash(
                    f"pool.{slot.last_kind}:{slot.task.name}",
                    trace_id=(
                        pobs.tracer.trace_id if pobs is not None else None
                    ),
                )
    return outcomes


def _gang_phase(
    slots: list[_Slot],
    worker_count: int,
    timeout_s: float | None,
    pobs: _PoolObs | None = None,
) -> None:
    """One shared pool, all tasks; unresolved slots fall through."""
    executor = ProcessPoolExecutor(
        max_workers=worker_count, mp_context=_mp_context()
    )
    clean_shutdown = True
    try:
        futures = []
        for index, slot in enumerate(slots):
            futures.append(executor.submit(slot.task.fn, *slot.task.args))
            if pobs is not None:
                pobs.submitted(index)
        for index, (slot, future) in enumerate(zip(slots, futures)):
            try:
                slot.record_success(future.result(timeout=timeout_s))
                if pobs is not None:
                    pobs.resolved(index, slot, "gang")
            except FutureTimeoutError:
                # This task had its full budget; workers may be stuck on
                # it or behind it, so abandon the pool and harvest the
                # rest opportunistically without further waiting.
                slot.record_failure(
                    "timeout", f"no result within {timeout_s} s"
                )
                if pobs is not None:
                    pobs.resolved(index, slot, "gang")
                _harvest_done(slots, futures)
                if pobs is not None:
                    pobs.flush_harvested(slots)
                _terminate(executor)
                clean_shutdown = False
                return
            except BrokenProcessPool:
                # A worker died; attribution is impossible here (every
                # pending future breaks at once), so charge nobody and
                # let the isolation phase identify the culprit.
                _harvest_done(slots, futures)
                if pobs is not None:
                    pobs.flush_harvested(slots)
                _terminate(executor)
                clean_shutdown = False
                return
            except Exception as err:  # noqa: BLE001 - task's own exception
                slot.record_failure("error", f"{type(err).__name__}: {err}")
                if pobs is not None:
                    pobs.resolved(index, slot, "gang")
    finally:
        if clean_shutdown:
            executor.shutdown(wait=True)


def _harvest_done(slots: list[_Slot], futures: list) -> None:
    """Collect results of futures that already finished successfully."""
    for slot, future in zip(slots, futures):
        if slot.done or not future.done():
            continue
        try:
            exc = future.exception(timeout=0)
            if exc is None:
                slot.record_success(future.result(timeout=0))
            elif not isinstance(exc, BrokenProcessPool):
                slot.record_failure("error", f"{type(exc).__name__}: {exc}")
        except (FutureTimeoutError, BrokenProcessPool):
            pass


def _isolation_phase(
    slots: list[_Slot],
    timeout_s: float | None,
    max_attempts: int,
    pobs: _PoolObs | None = None,
) -> None:
    """Retry unresolved tasks one-per-pool for exact attribution."""
    for index, slot in enumerate(slots):
        while not slot.done and slot.attempts < max_attempts:
            executor = ProcessPoolExecutor(
                max_workers=1, mp_context=_mp_context()
            )
            clean_shutdown = True
            try:
                future = executor.submit(slot.task.fn, *slot.task.args)
                if pobs is not None:
                    pobs.submitted(index)
                try:
                    slot.record_success(future.result(timeout=timeout_s))
                except FutureTimeoutError:
                    slot.record_failure(
                        "timeout", f"no result within {timeout_s} s"
                    )
                    _terminate(executor)
                    clean_shutdown = False
                except BrokenProcessPool:
                    slot.record_failure("crash", "worker process died mid-task")
                    clean_shutdown = False
                except Exception as err:  # noqa: BLE001 - task's own exception
                    slot.record_failure(
                        "error", f"{type(err).__name__}: {err}"
                    )
            finally:
                if pobs is not None:
                    pobs.resolved(index, slot, "isolation")
                if clean_shutdown:
                    executor.shutdown(wait=True)
