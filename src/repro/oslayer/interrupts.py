"""Per-CPU wake-up sources (timers, devices, IPIs).

Two uses:

* the residual housekeeping activity on idle threads — the paper's §V-A
  observation of "less than 60000 cycle/s" on an idling hardware thread
  comes from exactly these wake-ups;
* input to the menu governor's sleep-length prediction
  (:mod:`repro.oslayer.cpuidle`): a CPU bombarded by a high-frequency
  timer never sleeps long enough for C2, which is the cheapest way for
  an operator to lose the 81 W deep-sleep saving (§VI-A) without
  touching a single sysfs knob.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Residual wake-up rate of a fully idle (nohz) CPU: RCU, watchdogs,
#: occasional housekeeping timers.
IDLE_RESIDUAL_WAKEUPS_HZ = 4.0

#: Cycles a single wake-up burns (enter kernel, handle, re-idle).
CYCLES_PER_WAKEUP = 12_000.0


@dataclass
class InterruptSource:
    """One registered wake-up source pinned to a CPU."""

    name: str
    cpu_id: int
    rate_hz: float


class InterruptModel:
    """Tracks wake-up sources per logical CPU."""

    def __init__(self) -> None:
        self._sources: dict[str, InterruptSource] = {}

    def register(self, name: str, cpu_id: int, rate_hz: float) -> None:
        """Pin a periodic wake-up source (timer, NIC queue, ...)."""
        if rate_hz <= 0:
            raise ConfigurationError(f"{name}: rate must be positive, got {rate_hz}")
        if name in self._sources:
            raise ConfigurationError(f"interrupt source {name!r} already registered")
        self._sources[name] = InterruptSource(name, cpu_id, rate_hz)

    def unregister(self, name: str) -> None:
        """Remove a source (e.g. the device quiesced)."""
        if name not in self._sources:
            raise ConfigurationError(f"no interrupt source {name!r}")
        del self._sources[name]

    def sources_on(self, cpu_id: int) -> list[InterruptSource]:
        return [s for s in self._sources.values() if s.cpu_id == cpu_id]

    def wakeup_rate_hz(self, cpu_id: int) -> float:
        """Total wake-ups per second an idle CPU sees."""
        return IDLE_RESIDUAL_WAKEUPS_HZ + sum(
            s.rate_hz for s in self.sources_on(cpu_id)
        )

    def idle_cycles_per_s(self, cpu_id: int) -> float:
        """Housekeeping cycle rate of an idle CPU (perf's view, §V-A)."""
        return self.wakeup_rate_hz(cpu_id) * CYCLES_PER_WAKEUP
