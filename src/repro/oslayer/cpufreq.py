"""cpufreq emulation: governors and the userspace setspeed path (§IV).

The paper uses the ``userspace`` governor so the experiment controls
frequencies explicitly.  ``performance`` and ``powersave`` pin the
request at the policy limits; ``schedutil`` is accepted but degenerates
to ``performance`` for active threads (we model no utilization ramp —
no experiment depends on it).
"""

from __future__ import annotations

from enum import Enum

from repro.errors import ConfigurationError, PStateError
from repro.topology.components import HardwareThread


class Governor(Enum):
    """Supported scaling governors."""

    USERSPACE = "userspace"
    PERFORMANCE = "performance"
    POWERSAVE = "powersave"
    SCHEDUTIL = "schedutil"


class CpufreqPolicy:
    """Per-logical-CPU cpufreq policy."""

    def __init__(self, thread: HardwareThread, available_freqs_hz: tuple[float, ...], notify) -> None:
        self.thread = thread
        self.available_freqs_hz = tuple(sorted(available_freqs_hz))
        self.governor = Governor.USERSPACE
        self._notify = notify

    @property
    def scaling_min_hz(self) -> float:
        return self.available_freqs_hz[0]

    @property
    def scaling_max_hz(self) -> float:
        return self.available_freqs_hz[-1]

    def set_governor(self, name: str) -> None:
        """Switch governor (sysfs ``scaling_governor`` write)."""
        try:
            governor = Governor(name)
        except ValueError:
            known = ", ".join(g.value for g in Governor)
            raise ConfigurationError(f"unknown governor {name!r}; known: {known}") from None
        self.governor = governor
        if governor is Governor.PERFORMANCE or governor is Governor.SCHEDUTIL:
            self._apply(self.scaling_max_hz)
        elif governor is Governor.POWERSAVE:
            self._apply(self.scaling_min_hz)

    def set_speed(self, freq_hz: float) -> None:
        """sysfs ``scaling_setspeed``: only valid under userspace."""
        if self.governor is not Governor.USERSPACE:
            raise ConfigurationError(
                f"scaling_setspeed requires the userspace governor "
                f"(cpu{self.thread.cpu_id} uses {self.governor.value})"
            )
        if not any(abs(freq_hz - f) < 1e3 for f in self.available_freqs_hz):
            mhz = ", ".join(f"{f/1e6:.0f}" for f in self.available_freqs_hz)
            raise PStateError(
                f"cpu{self.thread.cpu_id}: {freq_hz/1e6:.0f} MHz not in "
                f"available frequencies [{mhz}] MHz"
            )
        self._apply(freq_hz)

    def _apply(self, freq_hz: float) -> None:
        self.thread.requested_freq_hz = freq_hz
        self._notify(self.thread)
