# lint: disable-file=UNIT001 — the governor's sleep-length prediction is a
# fractional-ns analytic estimate, not an event-engine timestamp.
"""The cpuidle menu governor.

Linux's menu governor predicts how long the CPU will sleep (here: the
inverse of its wake-up rate) and picks the deepest idle state whose
*target residency* fits the prediction — entering a deep state for a
short sleep wastes more energy on the transition than it saves.

Target residencies follow the usual scale for these states: C1 pays off
after ~2 µs, C2 (with its ~22 µs measured exit latency, Fig 8) after
~100 µs.  The operationally interesting regime is a CPU with a
high-frequency wake-up source: above ~10 kHz the predicted sleep drops
under the C2 residency, the governor holds the CPU at C1, and the
system loses the deep-sleep power level (§VI-A's +81 W) — without any
C-state being disabled.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.oslayer.interrupts import InterruptModel
from repro.units import NS_PER_S, us


@dataclass(frozen=True)
class ResidencyEntry:
    """Target residency for one idle state."""

    state: str
    target_residency_ns: int


#: Governor table (deepest first).
RESIDENCY_TABLE: tuple[ResidencyEntry, ...] = (
    ResidencyEntry("C2", us(100)),
    ResidencyEntry("C1", us(2)),
)


class MenuGovernor:
    """Selects idle states from predicted sleep lengths."""

    def __init__(self, interrupts: InterruptModel) -> None:
        self.interrupts = interrupts

    def predicted_sleep_ns(self, cpu_id: int) -> float:
        """Expected time until the next wake-up."""
        rate = self.interrupts.wakeup_rate_hz(cpu_id)
        return NS_PER_S / rate

    def select(self, cpu_id: int, deepest_enabled: str) -> str:
        """The state the governor requests for an idle CPU.

        Never deeper than ``deepest_enabled`` (the sysfs disable mask
        still wins); never deeper than the prediction allows.
        """
        prediction = self.predicted_sleep_ns(cpu_id)
        order = {"C0": 0, "C1": 1, "C2": 2}
        max_depth = order[deepest_enabled]
        for entry in RESIDENCY_TABLE:
            if order[entry.state] > max_depth:
                continue
            if prediction >= entry.target_residency_ns:
                return entry.state
        return "C1" if max_depth >= 1 else "C0"

    def breakeven_rate_hz(self, state: str = "C2") -> float:
        """Wake-up rate above which ``state`` stops being selected."""
        for entry in RESIDENCY_TABLE:
            if entry.state == state:
                return NS_PER_S / entry.target_residency_ns
        raise KeyError(f"no residency entry for {state!r}")  # EXC001: dict-like lookup
