"""The kernel facade: ties sysfs, cpufreq, hotplug, perf and placement.

Experiments interact with the machine almost exclusively through this
object, mirroring how the paper's measurement programs interact with
Linux.  Convenience helpers cover the recurring placement patterns
(pin a workload to a CPU list, fill a CCX, fill cores-then-threads in
the §VI-A sweep order).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.oslayer.cpufreq import CpufreqPolicy
from repro.oslayer.hotplug import Hotplug
from repro.oslayer.perf import PerfStat
from repro.oslayer.procfs import ProcFs
from repro.oslayer.sysfs import SysfsTree
from repro.workloads.base import Workload


class Kernel:
    """OS-level control surface over a :class:`repro.machine.Machine`."""

    def __init__(self, machine) -> None:
        self.machine = machine
        self.sysfs = SysfsTree(self)
        self.proc = ProcFs(machine)
        self.hotplug = Hotplug(self)
        self.perf = PerfStat(machine)
        self._policies: dict[int, CpufreqPolicy] = {}

    # --- cpufreq -------------------------------------------------------------

    def cpufreq_policy(self, cpu_id: int) -> CpufreqPolicy:
        """The cpufreq policy object for a logical CPU."""
        policy = self._policies.get(cpu_id)
        if policy is None:
            thread = self.machine.topology.thread(cpu_id)
            policy = CpufreqPolicy(
                thread,
                self.machine.sku.available_freqs_hz,
                self.machine.on_freq_request,
            )
            self._policies[cpu_id] = policy
        return policy

    def set_frequency(self, cpu_id: int, freq_hz: float) -> None:
        """userspace-governor setspeed for one CPU."""
        self.cpufreq_policy(cpu_id).set_speed(freq_hz)

    def set_all_frequencies(self, freq_hz: float) -> None:
        """Set every logical CPU's request (the paper's baseline step)."""
        for cpu_id in sorted(self.machine.topology.cpus):
            self.set_frequency(cpu_id, freq_hz)

    # --- scheduling / placement -------------------------------------------------

    def run(self, workload: Workload, cpu_ids: list[int]) -> None:
        """Pin ``workload`` to each listed logical CPU."""
        for cpu_id in cpu_ids:
            thread = self.machine.topology.thread(cpu_id)
            if not thread.online:
                raise ConfigurationError(f"cpu{cpu_id} is offline")
            thread.workload = workload
        self.machine.cstates.refresh()
        self.machine.reconfigured()

    def stop(self, cpu_ids: list[int] | None = None) -> None:
        """Remove workloads (all CPUs when ``cpu_ids`` is None)."""
        ids = sorted(self.machine.topology.cpus) if cpu_ids is None else cpu_ids
        for cpu_id in ids:
            self.machine.topology.thread(cpu_id).workload = None
        self.machine.cstates.refresh()
        self.machine.reconfigured()

    # --- interrupts -------------------------------------------------------------

    def register_interrupt(self, name: str, cpu_id: int, rate_hz: float) -> None:
        """Pin a periodic wake-up source to a CPU (timer, NIC queue...).

        High rates keep the CPU out of C2 via the menu governor — see
        :mod:`repro.oslayer.cpuidle`.
        """
        self.machine.interrupts.register(name, cpu_id, rate_hz)
        self.machine.cstates.refresh()
        self.machine.reconfigured()

    def unregister_interrupt(self, name: str) -> None:
        """Remove a wake-up source and let the CPU sleep again."""
        self.machine.interrupts.unregister(name)
        self.machine.cstates.refresh()
        self.machine.reconfigured()

    # --- placement helpers ----------------------------------------------------------

    def cpus_of_ccx(self, ccx_global_index: int, *, smt: bool = False) -> list[int]:
        """Logical CPUs of one CCX (first threads, plus siblings if smt)."""
        for ccx in self.machine.topology.ccxs():
            if ccx.global_index == ccx_global_index:
                ids = [c.threads[0].cpu_id for c in ccx.cores]
                if smt:
                    ids += [c.threads[1].cpu_id for c in ccx.cores]
                return ids
        raise ConfigurationError(f"no such CCX: {ccx_global_index}")

    def first_thread_cpus(self, n_cores: int | None = None) -> list[int]:
        """First hardware thread of every core, compact order."""
        ids = [core.threads[0].cpu_id for core in self.machine.topology.cores()]
        ids.sort()
        return ids if n_cores is None else ids[:n_cores]

    def all_cpus(self) -> list[int]:
        """Every logical CPU id."""
        return sorted(self.machine.topology.cpus)

    def compact_cpus(self, n_threads: int) -> list[int]:
        """Compact placement: fill cores of CCX 0 first, then spill.

        Matches the §V-D STREAM placement ("additional well placed
        threads"): one thread per core, packing CCXs in order.
        """
        ordered: list[int] = []
        for ccx in self.machine.topology.ccxs():
            for core in ccx.cores:
                ordered.append(core.threads[0].cpu_id)
        if n_threads > len(ordered):
            raise ConfigurationError(
                f"requested {n_threads} threads, only {len(ordered)} cores"
            )
        return ordered[:n_threads]
