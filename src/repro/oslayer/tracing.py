"""Kernel-tracepoint-style event recording (lo2s analogue).

The paper's §VI-C methodology logs the ``sched_waking`` tracepoint to
timestamp the wake-up signal (the older ``sched_wake_idle_without_ipi``
event disappeared in newer kernels — reproduced faithfully: it is
*not* available here either).  Components emit events into a
:class:`TraceBuffer`; experiments read them back post-mortem, as lo2s
does with its perf buffers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import ConfigurationError

#: Tracepoints this kernel version exposes.
AVAILABLE_TRACEPOINTS = frozenset(
    {
        "sched_waking",
        "sched_switch",
        "power_cpu_idle",
        "power_cpu_frequency",
    }
)


@dataclass(frozen=True)
class TraceEvent:
    """One tracepoint record."""

    time_ns: int
    name: str
    cpu_id: int
    payload: dict = field(default_factory=dict)


class TraceBuffer:
    """An append-only per-session event buffer with tracepoint filters."""

    def __init__(self, enabled_tracepoints: set[str] | None = None) -> None:
        requested = (
            set(AVAILABLE_TRACEPOINTS)
            if enabled_tracepoints is None
            else set(enabled_tracepoints)
        )
        missing = requested - AVAILABLE_TRACEPOINTS
        if missing:
            # e.g. sched_wake_idle_without_ipi on the paper's 5.4 kernel
            raise ConfigurationError(
                f"tracepoint(s) not available on this kernel: {sorted(missing)}"
            )
        self.enabled = requested
        self._events: list[TraceEvent] = []
        #: Optional mirror for every accepted event (set by
        #: ``Machine.attach_obs`` to bridge tracepoints onto the
        #: ``repro.obs`` timeline).  A sink sees events as they happen,
        #: so :meth:`clear` between experiment phases cannot lose them.
        self.sink = None

    def emit(self, time_ns: int, name: str, cpu_id: int, **payload) -> None:
        """Record an event if its tracepoint is enabled."""
        if name not in self.enabled:
            return
        self._events.append(TraceEvent(time_ns, name, cpu_id, payload))
        if self.sink is not None:
            self.sink(time_ns, name, cpu_id, payload)

    def __len__(self) -> int:
        return len(self._events)

    def events(self, name: str | None = None, cpu_id: int | None = None) -> Iterator[TraceEvent]:
        """Iterate recorded events, optionally filtered."""
        for ev in self._events:
            if name is not None and ev.name != name:
                continue
            if cpu_id is not None and ev.cpu_id != cpu_id:
                continue
            yield ev

    def last(self, name: str) -> TraceEvent:
        """Most recent event of a tracepoint."""
        for ev in reversed(self._events):
            if ev.name == name:
                return ev
        raise LookupError(f"no {name!r} event recorded")  # EXC001: search miss, test-pinned

    def pairwise_latencies_ns(
        self, first: str, second: str
    ) -> list[int]:
        """Latencies from each ``first`` event to the next ``second``.

        This is the §VI-C analysis shape: ``sched_waking`` (caller
        signals) to ``sched_switch`` (callee runs).
        """
        out: list[int] = []
        pending: int | None = None
        for ev in self._events:
            if ev.name == first:
                pending = ev.time_ns
            elif ev.name == second and pending is not None:
                out.append(ev.time_ns - pending)
                pending = None
        return out

    def clear(self) -> None:
        self._events.clear()
