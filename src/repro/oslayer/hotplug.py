"""CPU hotplug (sysfs ``online``) and the §VI-B anomaly.

Offlining a hardware thread removes it from scheduling; on the paper's
Rome system this can leave the thread "elevated ... to C1", pinning the
whole system at the C1 power level until the thread is explicitly
re-onlined.  The C-state controller implements the parking; this module
owns the OS-visible transitions and their side effects (migrating
workloads away, refreshing idle states).
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class Hotplug:
    """Online/offline state machine for logical CPUs."""

    def __init__(self, kernel) -> None:
        self.kernel = kernel

    def set_offline(self, cpu_id: int) -> None:
        """Take a logical CPU offline (``echo 0 > .../online``)."""
        machine = self.kernel.machine
        thread = machine.topology.thread(cpu_id)
        if cpu_id == 0:
            raise ConfigurationError("cpu0 cannot be offlined (boot CPU)")
        if not thread.online:
            return
        if thread.workload is not None:
            # The kernel migrates running tasks away before offlining.
            thread.workload = None
        thread.online = False
        machine.cstates.refresh()
        machine.reconfigured()

    def set_online(self, cpu_id: int) -> None:
        """Bring a logical CPU back online (``echo 1 > .../online``).

        This is the paper's remedy for the anomaly: "Only an explicit
        enabling of the disabled threads will fix this behavior" (§VI-B).
        """
        machine = self.kernel.machine
        thread = machine.topology.thread(cpu_id)
        if thread.online:
            return
        thread.online = True
        machine.cstates.refresh()
        machine.reconfigured()
