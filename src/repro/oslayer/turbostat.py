"""A turbostat-style live status reporter.

``turbostat`` on Linux summarizes per-core frequency, idle-state
residency and RAPL power; operators use it as the first diagnostic for
every effect this paper measures.  :func:`report` renders the same
summary from the simulated machine — the examples use it to show the
machine state the way an operator would see it.
"""

from __future__ import annotations

from repro.core.analysis.tables import format_table
from repro.msr.definitions import MSR_PKG_ENERGY_STAT
from repro.units import RAPL_ENERGY_UNIT_J


def core_rows(machine) -> list[tuple]:
    """One row per core: clock, busy %, idle states, workload."""
    rows = []
    for core in machine.topology.cores():
        busy = sum(1 for t in core.threads if t.is_active)
        states = "/".join(t.effective_cstate for t in core.threads)
        wl = next(
            (t.workload.name for t in core.threads if t.workload is not None),
            "-",
        )
        rows.append(
            (
                f"core{core.global_index}",
                core.package.index,
                core.applied_freq_hz / 1e9,
                f"{50 * busy}%",
                states,
                wl,
            )
        )
    return rows


def package_rows(machine, interval_s: float = 1.0) -> list[tuple]:
    """Per-package RAPL power over a sampling interval."""
    rows = []
    before = [
        machine.msr.read(pkg.threads().__next__().cpu_id, MSR_PKG_ENERGY_STAT)
        for pkg in machine.topology.packages
    ]
    machine.measure(interval_s)
    for pkg, raw0 in zip(machine.topology.packages, before):
        cpu = next(pkg.threads()).cpu_id
        raw1 = machine.msr.read(cpu, MSR_PKG_ENERGY_STAT)
        joules = ((raw1 - raw0) % 2**32) * RAPL_ENERGY_UNIT_J
        rows.append(
            (
                f"package{pkg.index}",
                joules / interval_s,
                machine.thermal_state.temps_c[pkg.index],
                pkg.io_die.fclk_hz / 1e9,
            )
        )
    return rows


def report(machine, *, max_cores: int | None = 8, interval_s: float = 1.0) -> str:
    """The full textual report (truncated to ``max_cores`` core rows)."""
    cores = core_rows(machine)
    shown = cores if max_cores is None else cores[:max_cores]
    core_table = format_table(
        ["core", "pkg", "GHz", "busy", "thread states", "workload"],
        shown,
        float_fmt="{:.2f}",
    )
    if max_cores is not None and len(cores) > max_cores:
        core_table += f"\n... ({len(cores) - max_cores} more cores)"
    pkg_table = format_table(
        ["domain", "RAPL W", "temp C", "fclk GHz"],
        package_rows(machine, interval_s),
        float_fmt="{:.1f}",
    )
    return core_table + "\n\n" + pkg_table
