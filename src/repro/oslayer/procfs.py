"""procfs emulation: /proc/cpuinfo, /proc/interrupts, /proc/stat.

Monitoring tools read these files; rendering them from the machine state
lets such tools (and the examples) run against the simulator unchanged.
The cpuinfo fields mirror what an EPYC 7502 reports on the paper's
Ubuntu 18.04 system.
"""

from __future__ import annotations

from repro.errors import SysfsError


class ProcFs:
    """Renders /proc files from live machine state."""

    def __init__(self, machine) -> None:
        self.machine = machine

    # --- dispatch ----------------------------------------------------------

    def read(self, path: str) -> str:
        """Read one of the supported /proc files."""
        if path == "/proc/cpuinfo":
            return self.cpuinfo()
        if path == "/proc/interrupts":
            return self.interrupts()
        if path == "/proc/stat":
            return self.stat()
        raise SysfsError(path, "no such file")

    # --- /proc/cpuinfo ---------------------------------------------------------

    def cpuinfo(self) -> str:
        """One stanza per *online* logical CPU."""
        m = self.machine
        stanzas = []
        model_number = {"EPYC 7502": 49}.get(m.sku.name, 49)
        for cpu_id in sorted(m.topology.cpus):
            t = m.topology.thread(cpu_id)
            if not t.online:
                continue
            mhz = t.core.applied_freq_hz / 1e6
            stanzas.append(
                "\n".join(
                    [
                        f"processor\t: {cpu_id}",
                        "vendor_id\t: AuthenticAMD",
                        "cpu family\t: 23",
                        f"model\t\t: {model_number}",
                        f"model name\t: AMD {m.sku.name} 32-Core Processor",
                        f"physical id\t: {t.core.package.index}",
                        f"core id\t\t: {t.core.global_index}",
                        f"cpu MHz\t\t: {mhz:.3f}",
                        f"siblings\t: {m.sku.n_cores * 2}",
                        f"cpu cores\t: {m.sku.n_cores}",
                        "cache size\t: 512 KB",
                    ]
                )
            )
        return "\n\n".join(stanzas) + "\n"

    # --- /proc/interrupts ----------------------------------------------------------

    def interrupts(self) -> str:
        """Registered wake-up sources with synthetic counts."""
        m = self.machine
        lines = ["IRQ\tCPU\trate_hz\tsource"]
        sources = sorted(
            (s for cpu in sorted(m.topology.cpus) for s in m.interrupts.sources_on(cpu)),
            key=lambda s: (s.cpu_id, s.name),
        )
        for i, src in enumerate(sources):
            lines.append(f"{i + 16}\t{src.cpu_id}\t{src.rate_hz:.0f}\t{src.name}")
        return "\n".join(lines) + "\n"

    # --- /proc/stat --------------------------------------------------------------------

    def stat(self) -> str:
        """Per-CPU busy/idle split derived from effective states."""
        m = self.machine
        lines = []
        for cpu_id in sorted(m.topology.cpus):
            t = m.topology.thread(cpu_id)
            if not t.online:
                continue
            busy = 100 if t.is_active else 0
            idle = 100 - busy
            lines.append(f"cpu{cpu_id} {busy} 0 0 {idle} 0 0 0 0 0 0")
        return "\n".join(lines) + "\n"
