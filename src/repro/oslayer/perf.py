"""``perf stat``-style counter sampling.

The paper observes frequencies with ``perf stat -e cycles -I 1000`` (§V-A,
§V-C) and collects per-thread throughput in 1 s intervals (§V-E).  The
model returns, per interval, the cycle and instruction counts a perf
session would read:

* an **active** thread accrues cycles at the core's *observable mean*
  frequency (the resolver's Table-I-penalized value) and instructions at
  ``IPC/thread x cycles``;
* an **idle** thread accrues only housekeeping cycles — the paper reports
  "less than 60000 cycle/s" from timer interrupts (§V-A);
* a thread in C1/C2 has halted counters (aperf/mperf/cycles do not
  advance, §VI-A) apart from those interrupt windows;
* an **offline** thread reports nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Housekeeping cycle rate of an idle-but-online thread (§V-A: observed
#: below 60000 cycles/s on the test system).
IDLE_HOUSEKEEPING_CYCLES_PER_S = 55_000.0


@dataclass(frozen=True)
class PerfSample:
    """One interval's counters for one logical CPU."""

    cpu_id: int
    interval_s: float
    cycles: float
    instructions: float

    @property
    def freq_hz(self) -> float:
        """The frequency perf would print (cycles / wall time)."""
        return self.cycles / self.interval_s

    @property
    def ipc(self) -> float:
        """Per-thread instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0


class PerfStat:
    """Samples counters from machine state."""

    def __init__(self, machine) -> None:
        self.machine = machine
        self._rng = machine.rng.child("perf")

    def _thread_rates(self, thread) -> tuple[float, float]:
        """(cycles/s, instructions/s) for a thread in its current state."""
        if not thread.online:
            return 0.0, 0.0
        if thread.is_active:
            core = thread.core
            mean_hz = self.machine.observable_mean_hz(core)
            wl = thread.workload
            smt = sum(1 for t in core.threads if t.is_active)
            inst_rate = wl.ipc(smt) / smt * mean_hz
            return mean_hz, inst_rate
        # idle: housekeeping only — the wake-up sources pinned to the CPU
        # set the rate (a quiet CPU sits below the paper's 60000 cycles/s)
        interrupts = getattr(self.machine, "interrupts", None)
        if interrupts is not None:
            cyc = interrupts.idle_cycles_per_s(thread.cpu_id)
        else:
            cyc = IDLE_HOUSEKEEPING_CYCLES_PER_S
        return cyc, cyc * 0.8

    def sample(self, cpu_ids: list[int], interval_s: float = 1.0, count: int = 1,
               *, jitter_rel: float = 5e-4) -> list[list[PerfSample]]:
        """``count`` intervals of counters for the given CPUs.

        ``jitter_rel`` models interrupt/measurement noise on the counts
        (perf reads are not phase-aligned with the workload).
        """
        out: list[list[PerfSample]] = []
        for _ in range(count):
            row: list[PerfSample] = []
            for cpu_id in cpu_ids:
                thread = self.machine.topology.thread(cpu_id)
                cyc_rate, inst_rate = self._thread_rates(thread)
                noise = 1.0 + self._rng.normal(0.0, jitter_rel)
                row.append(
                    PerfSample(
                        cpu_id=cpu_id,
                        interval_s=interval_s,
                        cycles=max(0.0, cyc_rate * interval_s * noise),
                        instructions=max(0.0, inst_rate * interval_s * noise),
                    )
                )
            out.append(row)
        return out

    def mean_freq_hz(self, cpu_id: int, interval_s: float = 1.0, count: int = 10) -> float:
        """Average observed frequency over ``count`` intervals."""
        samples = self.sample([cpu_id], interval_s, count)
        return float(np.mean([row[0].freq_hz for row in samples]))
