"""A string-path sysfs tree bound to the machine's mechanisms.

The paper's footnotes name the exact files it manipulates:
``/sys/devices/system/cpu/cpu\\d+/cpuidle/state[012]`` for C-states and
``/sys/devices/system/cpu/cpu\\d+/online`` for hardware threads (§IV).
The emulation accepts those paths (plus the cpufreq ones) so experiment
code reads like the shell commands an operator would type.
"""

from __future__ import annotations

import re

from repro.cstate.states import CSTATES
from repro.errors import SysfsError

_CPU_PATH = re.compile(
    r"^/sys/devices/system/cpu/cpu(?P<cpu>\d+)/(?P<rest>.+)$"
)


class SysfsTree:
    """Dispatches reads/writes on sysfs paths to kernel subsystems."""

    def __init__(self, kernel) -> None:
        self.kernel = kernel

    # --- public API -----------------------------------------------------------

    def read(self, path: str) -> str:
        """Read a sysfs file; returns the string content (no newline)."""
        cpu_id, rest = self._split(path)
        return self._dispatch(cpu_id, rest, None, path)

    def write(self, path: str, value: str) -> None:
        """Write a sysfs file (raises :class:`SysfsError` like EINVAL)."""
        cpu_id, rest = self._split(path)
        self._dispatch(cpu_id, rest, value.strip(), path)

    # --- internals ---------------------------------------------------------------

    def _split(self, path: str) -> tuple[int, str]:
        m = _CPU_PATH.match(path)
        if not m:
            raise SysfsError(path, "no such file")
        cpu_id = int(m.group("cpu"))
        if cpu_id not in self.kernel.machine.topology.cpus:
            raise SysfsError(path, "no such CPU")
        return cpu_id, m.group("rest")

    def _dispatch(self, cpu_id: int, rest: str, value: str | None, path: str) -> str:
        k = self.kernel
        if rest == "online":
            if value is None:
                return "1" if k.machine.topology.thread(cpu_id).online else "0"
            if value not in ("0", "1"):
                raise SysfsError(path, f"invalid value {value!r}")
            if value == "1":
                k.hotplug.set_online(cpu_id)
            else:
                k.hotplug.set_offline(cpu_id)
            return ""

        if rest == "cpufreq/scaling_governor":
            policy = k.cpufreq_policy(cpu_id)
            if value is None:
                return policy.governor.value
            policy.set_governor(value)
            return ""

        if rest == "cpufreq/scaling_setspeed":
            policy = k.cpufreq_policy(cpu_id)
            if value is None:
                return str(int(policy.thread.requested_freq_hz / 1e3))
            try:
                khz = float(value)
            except ValueError:
                raise SysfsError(path, f"invalid value {value!r}") from None
            policy.set_speed(khz * 1e3)
            return ""

        if rest == "cpufreq/scaling_available_frequencies":
            policy = k.cpufreq_policy(cpu_id)
            return " ".join(str(int(f / 1e3)) for f in policy.available_freqs_hz)

        if rest == "cpufreq/scaling_cur_freq":
            thread = k.machine.topology.thread(cpu_id)
            return str(int(thread.core.applied_freq_hz / 1e3))

        m = re.match(r"^cpuidle/state(\d+)/(\w+)$", rest)
        if m:
            idx, attr = int(m.group(1)), m.group(2)
            if not 0 <= idx < len(CSTATES):
                raise SysfsError(path, "no such idle state")
            state = CSTATES[idx]
            if attr == "name":
                if value is not None:
                    raise SysfsError(path, "read-only file")
                return state.name
            if attr == "latency":
                if value is not None:
                    raise SysfsError(path, "read-only file")
                return str(state.acpi_latency_ns // 1000)  # sysfs uses us
            if attr == "power":
                if value is not None:
                    raise SysfsError(path, "read-only file")
                return str(int(state.acpi_power_w))
            if attr == "time":
                if value is not None:
                    raise SysfsError(path, "read-only file")
                thread = k.machine.topology.thread(cpu_id)
                return str(int(thread.cstate_time_ns[state.name] / 1000))  # us
            if attr == "usage":
                if value is not None:
                    raise SysfsError(path, "read-only file")
                thread = k.machine.topology.thread(cpu_id)
                return str(thread.cstate_usage[state.name])
            if attr == "disable":
                ctrl = k.machine.cstates
                if value is None:
                    return "1" if ctrl.is_disabled(cpu_id, state.name) else "0"
                if value not in ("0", "1"):
                    raise SysfsError(path, f"invalid value {value!r}")
                if state.name == "C0":
                    raise SysfsError(path, "cannot disable the active state")
                if value == "1":
                    ctrl.disable_state(cpu_id, state.name)
                else:
                    ctrl.enable_state(cpu_id, state.name)
                k.machine.reconfigured()
                return ""
            raise SysfsError(path, "no such attribute")

        raise SysfsError(path, "no such file")
