"""The operating-system facade.

The paper drives every mechanism through standard Linux interfaces
(§IV): the ``userspace`` cpufreq governor, sysfs cpuidle state disabling,
sysfs CPU hotplug, ``perf stat`` sampling and the ``msr`` module.  The
experiments in :mod:`repro.core` use the same interfaces against this
emulation, so the *procedure* of each measurement matches the paper.
"""

from repro.oslayer.kernel import Kernel
from repro.oslayer.cpufreq import CpufreqPolicy, Governor
from repro.oslayer.perf import PerfSample, PerfStat

__all__ = ["Kernel", "CpufreqPolicy", "Governor", "PerfStat", "PerfSample"]
