"""Command-line entry point: ``repro-zen2 <experiment>``.

Runs any of the paper's experiments at a configurable scale and prints
the paper-vs-measured comparison table.  ``repro-zen2 all`` runs the
whole evaluation (the EXPERIMENTS.md content).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core import (
    CStateLatencyExperiment,
    DataPowerExperiment,
    ExperimentConfig,
    FrequencyTransitionExperiment,
    IdlePowerExperiment,
    IdleSiblingExperiment,
    MemoryPerformanceExperiment,
    MixedFrequencyExperiment,
    RaplQualityExperiment,
    RaplUpdateRateExperiment,
    ThroughputLimitExperiment,
)
from repro.core.analysis.tables import format_table
from repro.datasets.green500 import architecture_summary, synthesize_green500
from repro.units import ghz


def _run_fig1(cfg: ExperimentConfig) -> str:
    entries = synthesize_green500(cfg.seed)
    summary = architecture_summary(entries)
    rows = [
        (name, int(s["n"]), s["q1"], s["median"], s["q3"])
        for name, s in summary.items()
    ]
    table = format_table(
        ["architecture", "n", "q1", "median", "q3"], rows, float_fmt="{:.2f}"
    )
    return f"== Fig 1: Green500 2021/07 x86 efficiency (GFlops/W) ==\n{table}"


def _run_sec5a(cfg: ExperimentConfig) -> str:
    exp = IdleSiblingExperiment(cfg)
    return exp.compare_with_paper(exp.measure()).render()


def _run_fig3(cfg: ExperimentConfig) -> str:
    exp = FrequencyTransitionExperiment(cfg)
    res = exp.measure_pair(ghz(2.2), ghz(1.5))
    out = exp.compare_with_paper(res).render()
    out += "\n\nhistogram (25 us bins):\n" + res.histogram.render_ascii(40)
    return out


def _run_tab1(cfg: ExperimentConfig) -> str:
    exp = MixedFrequencyExperiment(cfg)
    return exp.compare_with_paper(exp.measure_applied_frequencies()).render()


def _run_fig4(cfg: ExperimentConfig) -> str:
    exp = MixedFrequencyExperiment(cfg)
    res = exp.measure_l3_latencies()
    rows = [
        (f"set {s} GHz", *(res.cell(s, o) for o in exp.FREQS_GHZ))
        for s in exp.FREQS_GHZ
    ]
    table = format_table(
        ["", *(f"others {o} GHz" for o in exp.FREQS_GHZ)], rows, float_fmt="{:.2f}"
    )
    mono = exp.check_l3_monotonicity(res)
    return (
        "== Fig 4: L3 latency, mixed-frequency CCX (ns) ==\n"
        f"{table}\nL3 latency falls with faster neighbours (1.5 GHz row): {mono}"
    )


def _run_fig5(cfg: ExperimentConfig) -> str:
    exp = MemoryPerformanceExperiment(cfg)
    bw = exp.measure_bandwidth()
    lat = exp.measure_latency()
    out = exp.compare_with_paper(bw, lat).render()
    rows = []
    for (mode, dram), series in sorted(bw.series.items()):
        rows.append((f"{mode} {dram}", *(f"{v:.1f}" for v in series)))
    table = format_table(["config", *map(str, bw.core_counts)], rows)
    return out + "\n\nbandwidth (GB/s) vs cores:\n" + table


def _run_fig6(cfg: ExperimentConfig) -> str:
    exp = ThroughputLimitExperiment(cfg)
    two = exp.measure(smt=True)
    one = exp.measure(smt=False)
    out = exp.compare_with_paper(two, one).render()
    scaling = exp.core_count_scaling()
    out += "\n\nfuture work (throttled GHz by SKU): " + ", ".join(
        f"{k}={v:.2f}" for k, v in scaling.items()
    )
    return out


def _run_fig7(cfg: ExperimentConfig) -> str:
    exp = IdlePowerExperiment(cfg)
    c1 = exp.sweep_c1(step_cpus=list(range(16)))
    c0 = exp.sweep_c0(step_cpus=list(range(16)))
    out = exp.compare_with_paper(c1, c0).render()
    anomaly = exp.offline_anomaly()
    out += (
        "\n\n§VI-B offline anomaly: baseline "
        f"{anomaly['baseline_w']:.1f} W -> offline {anomaly['offline_w']:.1f} W "
        f"-> re-onlined {anomaly['restored_w']:.1f} W"
    )
    return out


def _run_fig8(cfg: ExperimentConfig) -> str:
    exp = CStateLatencyExperiment(cfg)
    return exp.compare_with_paper(exp.measure()).render()


def _run_fig9(cfg: ExperimentConfig) -> str:
    exp = RaplQualityExperiment(cfg)
    return exp.compare_with_paper(exp.measure()).render()


def _run_fig10(cfg: ExperimentConfig) -> str:
    exp = DataPowerExperiment(cfg)
    vx = exp.measure("vxorps")
    shr = exp.measure("shr")
    return exp.compare_with_paper(vx, shr).render()


def _run_rapl_rate(cfg: ExperimentConfig) -> str:
    exp = RaplUpdateRateExperiment(cfg)
    return exp.compare_with_paper(exp.measure()).render()


EXPERIMENTS = {
    "fig1": _run_fig1,
    "sec5a": _run_sec5a,
    "fig3": _run_fig3,
    "tab1": _run_tab1,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "fig9": _run_fig9,
    "fig10": _run_fig10,
    "rapl-rate": _run_rapl_rate,
}


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        # `repro-zen2 lint [...]` forwards to the static-analysis CLI
        # (also reachable as `python -m repro.lint` / `repro-lint`).
        from repro.lint.cli import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "bench":
        # `repro-zen2 bench [...]` forwards to the microbenchmark CLI
        # (also reachable as `python -m repro.bench`).
        from repro.bench.cli import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "obs":
        # `repro-zen2 obs [...]` forwards to the observability inspector
        # (also reachable as `python -m repro.obs`).
        from repro.obs.cli import main as obs_main

        return obs_main(argv[1:])
    if argv and argv[0] == "serve":
        # `repro-zen2 serve [...]` runs the HTTP experiment service
        # (also reachable as `python -m repro.service`).
        from repro.service.cli import main as service_main

        return service_main(["serve", *argv[1:]])

    parser = argparse.ArgumentParser(
        prog="repro-zen2",
        description="Reproduce the CLUSTER 2021 Zen 2 energy-efficiency paper "
        "(run 'repro-zen2 lint --help' for the static-analysis pass, "
        "'repro-zen2 bench --help' for the microbenchmarks, "
        "'repro-zen2 obs --help' for the trace/metrics inspector, "
        "'repro-zen2 serve --help' for the HTTP experiment service)",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all", "suite", "selfcheck"],
        help="which figure/table to reproduce ('suite' runs everything "
        "through the structured runner; 'selfcheck' verifies the "
        "calibration anchors in seconds)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--scale",
        type=float,
        default=0.02,
        help="fraction of the paper's sample counts (1.0 = full scale)",
    )
    parser.add_argument(
        "--backend",
        metavar="NAME",
        default=None,
        help="simulation backend (reference, batched); default resolves "
        "via REPRO_SIM_BACKEND, then 'reference' — results are "
        "backend-independent (see docs/backends.md)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="with 'suite': also write the structured report to PATH",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="with 'suite': run experiments across N worker processes "
        "(default 1 = serial in-process; results are byte-identical)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="with 'suite': recompute everything, bypassing the "
        "content-addressed result cache (REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="with 'suite': print cache hit/miss/latency counters",
    )
    parser.add_argument(
        "--monitor",
        action="store_true",
        help="with 'suite': attach the runtime invariant monitor to every "
        "machine and fail on violations (slower; bypasses the cache)",
    )
    parser.add_argument(
        "--only",
        metavar="NAME",
        action="append",
        help="with 'suite': run only this registry entry (repeatable)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="with 'suite': export a Perfetto-loadable repro.obs/trace "
        "JSON of the run (suite/experiment/measure/dispatch spans)",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        help="with 'suite': write Prometheus text exposition to PATH and "
        "the repro.obs/metrics JSON snapshot to PATH.json",
    )
    args = parser.parse_args(argv)

    if args.backend is not None:
        from repro.errors import ConfigurationError
        from repro.sim.backends import resolve_backend

        try:
            resolve_backend(args.backend)
        except ConfigurationError as exc:
            parser.error(str(exc))

    cfg = ExperimentConfig(seed=args.seed, scale=args.scale, backend=args.backend)

    if args.experiment == "selfcheck":
        from repro.core.selfcheck import selfcheck

        machine = cfg.build_machine()
        table = selfcheck(machine)
        machine.shutdown()
        print(table.render())
        return 0 if table.all_ok else 1

    if args.experiment == "suite":
        from repro.cache import ResultCache
        from repro.core.serialize import dump_json
        from repro.core.suite import (
            run_suite,
            suite_to_dict,
            suite_trace_document,
        )

        cache = None if (args.no_cache or args.monitor) else ResultCache()
        obs = None
        if args.trace or args.metrics:
            from repro.obs import Obs

            obs = Obs()
        result = run_suite(
            cfg,
            only=args.only,
            parallel=args.jobs,
            cache=cache,
            monitor=args.monitor,
            obs=obs,
        )
        print(result.render())
        print(f"\nsuite verdict: {'OK' if result.all_ok else 'FAILURES'}")
        if args.cache_stats and cache is not None:
            import json as _json

            print("cache stats: " + _json.dumps(cache.stats.as_dict(), sort_keys=True))
        if args.json:
            dump_json(suite_to_dict(result), args.json)
            print(f"structured report written to {args.json}")
        if args.trace:
            # Merged timeline: the parent document plus every worker-
            # shipped trace of a parallel run (serial runs merge one).
            dump_json(suite_trace_document(result), args.trace)
            print(f"trace written to {args.trace}")
        if args.metrics:
            with open(args.metrics, "w") as fh:
                fh.write(obs.to_prometheus())
            dump_json(obs.metrics_snapshot(), f"{args.metrics}.json")
            print(
                f"metrics written to {args.metrics} "
                f"(JSON snapshot: {args.metrics}.json)"
            )
        return 0 if result.all_ok else 1

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        t0 = time.time()  # lint: disable=DET001 (wall-clock progress display only)
        print(EXPERIMENTS[name](cfg))
        print(f"[{name}: {time.time() - t0:.1f} s]\n")  # lint: disable=DET001
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
