"""SMU hierarchy: per-die SMUs and the master SMU (§III-C).

Burd et al. (cited in §III-C) describe one SMU per die; a master is
elected to evaluate telemetry from the others and run the package control
loops, trigger frequency changes and drive the external voltage
regulator.  Two observable consequences are reproduced here:

* the master's control cadence *is* the 1 ms frequency-update slot grid
  measured in §V-B (Fig 3) — the :class:`~repro.pstate.transitions.TransitionEngine`
  is owned by the master SMU;
* frequency transitions are slow (390/360 µs) because they are
  *negotiated between SMUs* rather than applied by a central PCU as on
  Intel — the delay constants live in the calibration and are attributed
  to this communication (§V-B discussion).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.calibration import CALIBRATION, Calibration
from repro.pstate.transitions import TransitionEngine
from repro.sim.engine import Simulator
from repro.smu.edc import EdcAssessment, EdcManager
from repro.smu.ppt import PptAssessment, PptManager
from repro.topology.components import Package


@dataclass
class Smu:
    """A per-die management unit; holds die-local telemetry."""

    die_name: str
    #: Most recent die temperature reported to the master (deg C).
    temperature_c: float = 30.0
    #: Most recent die current estimate reported to the master (A).
    current_a: float = 0.0


class MasterSmu:
    """The elected master SMU of one package."""

    def __init__(
        self,
        sim: Simulator,
        package: Package,
        edc_limit_a: float,
        calibration: Calibration = CALIBRATION,
        ppt_limit_w: float | None = None,
    ) -> None:
        self.sim = sim
        self.package = package
        self.cal = calibration
        # One SMU per CCD plus one on the I/O die; the I/O-die SMU is
        # conventionally the master on Rome.
        self.die_smus = [Smu(f"ccd{ccd.index_in_package}") for ccd in package.ccds]
        self.io_smu = Smu("iod")
        self.edc = EdcManager(edc_limit_a, calibration)
        self.ppt = PptManager(
            ppt_limit_w if ppt_limit_w is not None else 1e9, calibration
        )
        self.transitions = TransitionEngine(sim, calibration)
        self._edc_cap_hz: float | None = None
        self._ppt_cap_hz: float | None = None

    # --- telemetry aggregation ------------------------------------------------

    def collect_telemetry(self, pkg_temp_c: float) -> None:
        """Refresh die telemetry (all dies share the package RC node)."""
        for smu in self.die_smus:
            smu.temperature_c = pkg_temp_c
        self.io_smu.temperature_c = pkg_temp_c

    # --- control loops -----------------------------------------------------------

    def run_edc_loop(self, requested_hz: float) -> EdcAssessment:
        """Evaluate EDC for the package and cache the cap."""
        assessment = self.edc.assess(self.package, requested_hz)
        self._edc_cap_hz = assessment.cap_hz
        for smu, ccd in zip(self.die_smus, self.package.ccds):
            smu.current_a = sum(
                self.edc.core_current_a(
                    next((t.workload for t in c.threads if t.is_active), None),
                    sum(1 for t in c.threads if t.is_active),
                    c.applied_freq_hz,
                )
                for c in ccd.cores()
            )
        return assessment

    def run_ppt_loop(
        self, requested_hz: float, temp_c: float | None = None,
        dram_traffic_gbs: float = 0.0,
    ) -> PptAssessment:
        """Evaluate the power limit and cache the cap."""
        assessment = self.ppt.assess(
            self.package, requested_hz, temp_c, dram_traffic_gbs
        )
        self._ppt_cap_hz = assessment.cap_hz
        return assessment

    @property
    def edc_cap_hz(self) -> float | None:
        """Current EDC frequency cap (None when unthrottled)."""
        return self._edc_cap_hz

    @property
    def ppt_cap_hz(self) -> float | None:
        """Current PPT frequency cap (None when unthrottled)."""
        return self._ppt_cap_hz

    @property
    def combined_cap_hz(self) -> float | None:
        """The binding cap: min of the EDC and PPT loops."""
        caps = [c for c in (self._edc_cap_hz, self._ppt_cap_hz) if c is not None]
        return min(caps) if caps else None

    def shutdown(self) -> None:
        """Cancel periodic machinery (machine teardown)."""
        self.transitions.shutdown()
