"""System Management Units (§III-C).

Each die carries an SMU; one is elected master and runs the package
control loops (power, temperature, EDC) and owns the frequency-update
slot grid (Burd et al., reproduced in §V-B's 1 ms interval finding).
"""

from repro.smu.edc import EdcManager, EdcAssessment
from repro.smu.smu import MasterSmu, Smu

__all__ = ["Smu", "MasterSmu", "EdcManager", "EdcAssessment"]
