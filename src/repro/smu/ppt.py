"""Package Power Tracking (PPT) — the SMU's power-capping loop.

The EDC manager (§V-E) guards *current*; the PPT loop guards *power*.
Rountree et al. (cited in §II-B) showed performance under hardware power
bounds; on Zen the SMU enforces the bound by walking the frequency down
until the modelled package power — the same estimator RAPL reports! —
fits the limit.  Two reproducible consequences:

* with the default limit (above TDP) the loop never binds on the test
  system: FIRESTARTER is EDC-limited at 2.0 GHz, not power-limited;
* when an operator lowers the limit (power capping), the *modelled*
  nature of the input matters: workloads whose power RAPL under-states
  (memory-heavy code, biased operand data, §VII) are under-throttled
  relative to their true draw — the cap holds in model-space, not at
  the wall.  ``true_power_excess_w`` quantifies that gap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.calibration import CALIBRATION, Calibration
from repro.rapl.estimator import RaplEstimator
from repro.topology.components import Package
from repro.units import PSTATE_FREQ_STEP_HZ, ghz


@dataclass(frozen=True)
class PptAssessment:
    """Outcome of a PPT evaluation for one package."""

    modelled_power_w: float
    limit_w: float
    cap_hz: float | None
    throttled: bool


class PptManager:
    """Per-package power-limit control loop over the RAPL estimator."""

    def __init__(
        self,
        limit_w: float,
        calibration: Calibration = CALIBRATION,
        estimator: RaplEstimator | None = None,
    ) -> None:
        self.limit_w = limit_w
        self.cal = calibration
        self.estimator = estimator if estimator is not None else RaplEstimator(calibration)

    # --- modelled power at a hypothetical frequency --------------------------

    def modelled_package_power_w(
        self, pkg: Package, freq_hz: float, temp_c: float | None = None,
        dram_traffic_gbs: float = 0.0,
    ) -> float:
        """Estimator power if every active core ran at ``freq_hz``.

        Evaluated without mutating the package: core clocks are swapped
        in and restored (the SMU evaluates its model the same way —
        against hypothetical operating points).
        """
        saved = [core.applied_freq_hz for core in pkg.cores()]
        try:
            for core in pkg.cores():
                if core.has_active_thread:
                    core.applied_freq_hz = freq_hz
            return self.estimator.package_power_w(
                pkg, temp_c, dram_traffic_gbs=dram_traffic_gbs
            )
        finally:
            for core, f in zip(pkg.cores(), saved):
                core.applied_freq_hz = f

    # --- control ------------------------------------------------------------------

    def assess(
        self, pkg: Package, requested_hz: float, temp_c: float | None = None,
        dram_traffic_gbs: float = 0.0,
    ) -> PptAssessment:
        """Highest grid frequency whose modelled power fits the limit."""
        power = self.modelled_package_power_w(pkg, requested_hz, temp_c, dram_traffic_gbs)
        if power <= self.limit_w:
            return PptAssessment(power, self.limit_w, None, False)
        f = requested_hz
        floor = ghz(0.4)
        while f > floor:
            f -= PSTATE_FREQ_STEP_HZ
            power = self.modelled_package_power_w(pkg, f, temp_c, dram_traffic_gbs)
            if power <= self.limit_w:
                return PptAssessment(power, self.limit_w, f, True)
        return PptAssessment(power, self.limit_w, floor, True)

    # --- the model-vs-wall gap -------------------------------------------------------

    def true_power_excess_w(
        self, machine, pkg: Package
    ) -> float:
        """True package power minus the modelled power the loop enforces.

        Positive values mean the cap is violated at the wall even though
        the SMU believes it holds — the §VII accuracy findings turned
        into an operational risk.
        """
        temps = machine.thermal_state.temps_c
        true_w = machine.power_model.package_power_w(machine, pkg, temps)
        traffic = machine.power_model.package_dram_traffic_gbs(pkg)
        modelled = self.estimator.package_power_w(
            pkg, temps[pkg.index], dram_traffic_gbs=traffic
        )
        return true_w - modelled
