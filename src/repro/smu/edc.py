"""The EDC (electrical design current) manager, §V-E / Fig 6.

Suggs et al. describe "an intelligent EDC manager which monitors activity
[...] and throttles execution only when necessary".  The model:

* Per-core current demand = a static part (proportional to core voltage)
  plus a dynamic part proportional to ``IPC x f x edc_weight``.  The SMT
  mode uses a slightly lower dynamic coefficient — two threads sharing a
  front end draw less current per retired instruction, which is also why
  the measured 2-thread operating point (2.0 GHz x 3.56 IPC) carries
  *more* throughput than the 1-thread one (2.1 GHz x 3.23 IPC).
* The manager picks the highest 25 MHz-grid frequency whose package
  demand stays within the SKU's EDC limit.  Workloads with low
  ``edc_weight`` (everything except FIRESTARTER-class code) never hit
  the limit, reproducing "throttles execution only when necessary".

The paper's consequence — throttling is invisible unless you *measure*
the frequency (no documented AVX-frequency ranges on AMD) — is what the
Fig 6 bench demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.calibration import CALIBRATION, Calibration
from repro.topology.components import Package
from repro.units import PSTATE_FREQ_STEP_HZ, ghz


@dataclass(frozen=True)
class EdcAssessment:
    """Outcome of an EDC evaluation for one package."""

    demand_a: float
    limit_a: float
    cap_hz: float | None  # None = no throttling required
    throttled: bool


class EdcManager:
    """Per-package EDC control loop."""

    def __init__(self, limit_a: float, calibration: Calibration = CALIBRATION) -> None:
        self.limit_a = limit_a
        self.cal = calibration

    # --- demand model -----------------------------------------------------

    def core_current_a(self, workload, smt_threads: int, freq_hz: float) -> float:
        """Current demand of one core running ``workload``."""
        cal = self.cal
        v = cal.voltage_at(freq_hz)
        static = cal.edc_static_a_per_core * v
        if workload is None or smt_threads == 0:
            return 0.15 * v  # gated core residual
        coeff = (
            cal.edc_dyn_a_per_ipcghz_1t
            if smt_threads == 1
            else cal.edc_dyn_a_per_ipcghz_2t
        )
        ipc = workload.ipc(smt_threads)
        return static + coeff * ipc * (freq_hz / ghz(1)) * workload.edc_weight

    def package_demand_a(self, pkg: Package, freq_hz: float) -> float:
        """Demand if every active core of ``pkg`` ran at ``freq_hz``."""
        total = 0.0
        for core in pkg.cores():
            smt = sum(1 for t in core.threads if t.is_active)
            wl = next((t.workload for t in core.threads if t.is_active), None)
            f = freq_hz if smt else core.applied_freq_hz
            total += self.core_current_a(wl, smt, f)
        return total

    # --- control ------------------------------------------------------------

    def assess(self, pkg: Package, requested_hz: float) -> EdcAssessment:
        """Find the frequency cap (if any) for a package.

        Walks down the 25 MHz grid from the requested frequency until
        demand fits, mirroring the per-slot decrement behaviour of the
        hardware loop (the observable steady state is the same).
        """
        demand = self.package_demand_a(pkg, requested_hz)
        if demand <= self.limit_a:
            return EdcAssessment(demand, self.limit_a, None, False)
        f = requested_hz
        floor = ghz(0.4)
        while f > floor:
            f -= PSTATE_FREQ_STEP_HZ
            if self.package_demand_a(pkg, f) <= self.limit_a:
                return EdcAssessment(
                    self.package_demand_a(pkg, f), self.limit_a, f, True
                )
        return EdcAssessment(self.package_demand_a(pkg, floor), self.limit_a, floor, True)
