"""Numpy-vectorized ground-truth power model (the ``batched`` backend).

:class:`VectorizedPowerModel` replaces the reference model's per-core
Python arithmetic in ``_compute_breakdown`` with one gather pass over
the topology plus numpy array math over the active cores.  The memo
layer, leakage application, traffic model, and ``package_power_w`` are
inherited unchanged.

Bit-identity with the scalar model is a hard requirement (the golden
suite must stay byte-identical per backend), and it holds by
construction, not by tolerance:

* numpy elementwise ``+ - * /`` on float64 are IEEE-754
  correctly-rounded, exactly like CPython float arithmetic, so each
  per-core *term* is computed with the same operation order and
  association as the scalar loop and yields the same bits;
* the piecewise V-f interpolation is replicated segment by segment with
  the scalar formula (``np.interp`` computes the same mathematical value
  through a different expression and is **not** used);
* the final reduction runs in scalar Python over ``.tolist()`` in
  topology order, because ``np.sum`` pairwise summation associates
  differently from the reference loop's sequential ``+=``.

The cross-check harness compares breakdowns with exact ``==``.
"""

from __future__ import annotations

import numpy as np

from repro.power.calibration import CALIBRATION, Calibration
from repro.power.model import PowerBreakdown, PowerModel


class VectorizedPowerModel(PowerModel):
    """Drop-in :class:`~repro.power.model.PowerModel` with a vectorized
    ``_compute_breakdown`` (see the module docstring for the
    bit-identity argument)."""

    def __init__(self, calibration: Calibration = CALIBRATION) -> None:
        super().__init__(calibration)

    def _v2f_scale_array(self, f_hz: np.ndarray) -> np.ndarray:
        """Elementwise replica of ``Calibration.v2f_scale``.

        Mirrors ``VoltageCurve.voltage`` exactly: end-clamps checked
        first, then first-matching-segment interpolation with the scalar
        formula — so even at interior breakpoints (where the first
        segment's ``v0 + (v1 - v0) * 1.0`` need not equal ``v1`` in
        floats) the selected expression matches the scalar path.
        """
        cal = self.cal
        pts = cal.voltage_curve.points_hz_v
        v = np.empty_like(f_hz)
        done = f_hz <= pts[0][0]
        v[done] = pts[0][1]
        high = (f_hz >= pts[-1][0]) & ~done
        v[high] = pts[-1][1]
        done |= high
        for (f0, v0), (f1, v1) in zip(pts, pts[1:]):
            seg = (f_hz >= f0) & (f_hz <= f1) & ~done
            v[seg] = v0 + (v1 - v0) * (f_hz[seg] - f0) / (f1 - f0)
            done |= seg
        v_nom = cal.voltage_at(cal.nominal_freq_hz)
        return (v * v * f_hz) / (v_nom * v_nom * cal.nominal_freq_hz)

    def _compute_breakdown(self, machine) -> PowerBreakdown:
        """The full topology walk, array math over active cores."""
        cal = self.cal
        topo = machine.topology
        cstates = machine.cstates
        n_pkg = len(topo.packages)

        platform = cal.platform_base_w + cal.dram_idle_w + n_pkg * cal.package_sleep_w

        wake = 0.0 if cstates.system_in_deep_sleep() else cal.system_wake_w

        c1_cores = sum(
            1 for core in topo.cores() if core.deepest_common_cstate_is == "C1"
        )
        c1_w = c1_cores * cal.c1_per_core_w

        factors = getattr(machine, "pkg_power_factors", None)

        # Gather pass: one topology walk collecting per-active-core state
        # into flat columns (the thread scan folds _core_smt_threads and
        # _active_workload into a single pass).
        freqs: list[float] = []
        pkg_factor: list[float] = []
        smt2: list[bool] = []
        has_wl: list[bool] = []
        has_toggle: list[bool] = []
        coeff: list[float] = []
        toggle_rate: list[float] = []
        toggle_width: list[float] = []
        for core in topo.cores():
            smt = 0
            wl = None
            for t in core.threads:
                if t.is_active:
                    smt += 1
                    if wl is None:
                        wl = t.workload
            if smt == 0:
                continue
            freqs.append(core.applied_freq_hz)
            pkg_factor.append(1.0 if factors is None else factors[core.package.index])
            smt2.append(smt == 2)
            if wl is None:
                has_wl.append(False)
                has_toggle.append(False)
                coeff.append(0.0)
                toggle_rate.append(0.0)
                toggle_width.append(0.0)
            else:
                has_wl.append(True)
                has_toggle.append(bool(wl.toggle_width_bits))
                coeff.append(wl.power_coeff(smt))
                toggle_rate.append(wl.toggle_rate)
                toggle_width.append(wl.toggle_width_bits / 256.0)

        active_w = 0.0
        dyn_w = 0.0
        toggle_w = 0.0
        if freqs:
            scale = self._v2f_scale_array(np.array(freqs, dtype=np.float64))
            if factors is not None:
                scale = scale * np.array(pkg_factor)
            core_term = (cal.pause_core_nominal_w * scale).tolist()
            thread_term = (cal.pause_thread_nominal_w * scale).tolist()
            dyn_term = (np.array(coeff) * cal.dyn_w_per_v2ghz * scale).tolist()
            tog_term = (
                cal.toggle_w_per_v2ghz_256b
                * np.array(toggle_rate)
                * np.array(toggle_width)
                * scale
            ).tolist()
            # Reduce in reference order: interleaved core/thread adds per
            # core, skips where the scalar loop skips (a += 0.0 would be
            # bitwise-safe here, but skipping removes the need to argue it).
            for i in range(len(core_term)):
                active_w += core_term[i]
                if smt2[i]:
                    active_w += thread_term[i]
                if has_wl[i]:
                    dyn_w += dyn_term[i]
                    if has_toggle[i]:
                        toggle_w += tog_term[i]
            active_w = max(0.0, active_w + cal.active_first_core_adjust_w)

        dram_w = sum(
            cal.dram_w_per_gbs * self.package_dram_traffic_gbs(pkg)
            for pkg in topo.packages
        )

        iodie_w = 0.0
        if wake > 0.0:
            iodie_w = sum(fc.extra_power_w() for fc in machine.fclk_controllers)

        return PowerBreakdown(
            platform_base_w=platform,
            system_wake_w=wake,
            c1_cores_w=c1_w,
            active_cores_w=active_w,
            workload_dynamic_w=dyn_w,
            toggle_w=toggle_w,
            dram_active_w=dram_w,
            iodie_w=iodie_w,
            leakage_w=0.0,
        )
