# lint: disable-file=UNIT001 — calibration anchors are measured values with
# fractional ns (e.g. 31.2 ns core path); they feed analytic models, never
# the integer event clock.
"""Calibration constants traced to the paper.

Every number in this module carries a comment naming the paper artifact it
comes from (figure, table, or section of Schöne et al., CLUSTER 2021).
Mechanism modules read these constants; the experiment acceptance tests
check that the *measured* values recovered through the simulated
instruments land back on them.  Numbers without a paper source are marked
``# model choice`` — they are internal decompositions chosen so that the
observable totals match the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import ghz, ms, us


@dataclass(frozen=True)
class VoltageCurve:
    """Core voltage as a function of frequency (V-f curve).

    AMD does not publish the VID mapping (§III-B: "voltage ID ... not
    publicly documented"); this is a plausible monotone curve anchored so
    the relative V²f scaling reproduces the power ratios between the
    system's three P-states.   # model choice
    """

    points_hz_v: tuple[tuple[float, float], ...] = (
        (ghz(1.5), 0.85),
        (ghz(2.0), 0.95),
        (ghz(2.2), 1.00),
        (ghz(2.5), 1.10),
    )

    def voltage(self, f_hz: float) -> float:
        """Piecewise-linear interpolation, clamped at the ends."""
        pts = self.points_hz_v
        if f_hz <= pts[0][0]:
            return pts[0][1]
        if f_hz >= pts[-1][0]:
            return pts[-1][1]
        for (f0, v0), (f1, v1) in zip(pts, pts[1:]):
            if f0 <= f_hz <= f1:
                return v0 + (v1 - v0) * (f_hz - f0) / (f1 - f0)
        raise AssertionError("unreachable")  # pragma: no cover  # EXC001: internal invariant, not user-facing


@dataclass(frozen=True)
class Calibration:
    """All paper-sourced constants in one place."""

    # ------------------------------------------------------------------
    # §IV test system
    # ------------------------------------------------------------------
    nominal_freq_hz: float = ghz(2.5)  # §IV: reference frequency
    available_freqs_hz: tuple[float, ...] = (ghz(1.5), ghz(2.2), ghz(2.5))  # §IV
    default_memclk_hz: float = ghz(1.6)  # §IV: "memory is clocked at 1.6 GHz"
    # LMG670 L60-CH-A1 accuracy: +-(0.015 % + 0.0625 W), 20 Sa/s (§IV)
    ac_meter_gain_error: float = 0.015e-2
    ac_meter_offset_error_w: float = 0.0625
    ac_meter_sample_rate_hz: float = 20.0

    # ------------------------------------------------------------------
    # §V-B frequency transitions
    # ------------------------------------------------------------------
    smu_slot_period_ns: int = ms(1)  # Fig 3: 1 ms update interval
    transition_down_ns: int = us(390)  # Fig 3 / §V-B text
    transition_up_ns: int = us(360)  # §V-B: "360 us for increasing frequency"
    #: Fast-return window: returning to the previous frequency while the
    #: voltage is still settling applies ~instantaneously; the effect
    #: disappears with waits >= 5 ms (§V-B).
    voltage_settle_ns: int = ms(5)
    fast_return_ns: int = us(1)  # §V-B: "executed instantaneously (1 us)"
    #: Partially-settled down-switches can complete in as little as 160 us
    #: (§V-B, 2.5 -> 2.2 GHz case).
    partial_transition_min_ns: int = us(160)
    #: Voltage difference below which the fast-return path is possible.
    fast_return_max_dv: float = 0.12  # model choice (covers 2.2<->2.5 only)

    # ------------------------------------------------------------------
    # §V-C Table I: CCX mixed-frequency coupling penalty [MHz]
    # keyed by (set_ghz, max_other_ghz); absent key = no penalty.
    # ------------------------------------------------------------------
    ccx_penalty_mhz: tuple[tuple[tuple[float, float], float], ...] = (
        ((1.5, 2.2), 34.0),  # Table I: 1.466 applied
        ((1.5, 2.5), 72.0),  # Table I: 1.428 applied
        ((2.2, 2.5), 200.0),  # Table I: 2.000 applied
    )
    #: Small constant shortfalls observed even without higher neighbours
    #: (Table I diagonal: 1.5/2.2/2.5 with equal others read 1.499 /
    #: 2.199 / 2.499).
    ccx_equal_shortfall_mhz: tuple[tuple[float, float], ...] = (
        (1.5, 1.0),  # Table I: 1.499 with equal others
        (2.2, 1.0),  # Table I: 2.199 with equal others
        (2.5, 1.0),  # Table I: 2.499 with equal others
    )
    #: Table I, set 2.5: 2.497 with 1.5 GHz others, 2.499 with 2.2 GHz.
    set_2g5_slow_others_shortfall_mhz: float = 3.0
    set_2g5_mid_others_shortfall_mhz: float = 1.0

    # ------------------------------------------------------------------
    # §V-C Fig 4: L3 latency model (cycles)           # model choice
    # latency = core_cycles / f_core + l3_cycles / f_l3
    # ------------------------------------------------------------------
    l3_core_path_cycles: float = 26.0
    l3_array_cycles: float = 13.0

    # ------------------------------------------------------------------
    # §V-D Fig 5: I/O die & memory                     # model choice,
    # anchored to the two latencies the text reports (92.0 / 96.0 ns)
    # ------------------------------------------------------------------
    fclk_pstates_hz: tuple[float, ...] = (ghz(1.467), ghz(1.333), ghz(0.8))
    memclk_options_hz: tuple[float, ...] = (ghz(1.333), ghz(1.6))
    # Anchoring (at core 2.5 GHz, MEMCLK 1.6 GHz): Auto -> 92.0 ns and
    # fixed P0 -> 96.0 ns, the two values §V-D reports; P2 lands between.
    mem_latency_core_path_ns: float = 31.2
    mem_if_hop_cycles: float = 8.0
    mem_dram_fixed_ns: float = 38.2
    mem_dram_clk_cycles: float = 24.0
    mem_sync_penalty_coeff_ns: float = 4.71
    mem_auto_residual_mismatch: float = 0.35
    #: Single-core STREAM-triad bandwidth demand.
    stream_per_core_gbs: float = 22.0
    #: IF read+write payload per fclk cycle per CCD link (32 B read bus).
    if_bytes_per_cycle: float = 32.0
    if_efficiency: float = 0.80
    #: DRAM channel efficiency for STREAM-like streams.  Chosen high
    #: enough that the IF link (not DRAM) limits at fclk P0, reproducing
    #: §V-D's "a higher DRAM frequency does not increase memory bandwidth
    #: significantly".
    dram_channel_efficiency: float = 0.85
    #: Bandwidth degradation per core beyond the saturation point
    #: (§V-D: "additional cores can lead to performance degradation").
    contention_degradation_per_core: float = 0.015

    # ------------------------------------------------------------------
    # §V-E Fig 6: EDC throttling targets
    # ------------------------------------------------------------------
    firestarter_freq_2t_hz: float = ghz(2.0)  # Fig 6
    firestarter_freq_1t_hz: float = ghz(2.1)  # Fig 6
    firestarter_ipc_2t: float = 3.56  # Fig 6 (per core cycle, both threads)
    firestarter_ipc_1t: float = 3.23  # Fig 6
    firestarter_power_2t_w: float = 509.0  # Fig 6 (system AC)
    firestarter_power_1t_w: float = 489.0  # Fig 6
    firestarter_rapl_pkg_w: float = 170.0  # §V-E: RAPL reports 170 W per pkg
    tdp_w: float = 180.0  # §V-E: "TDP is stated to be 180 W"

    # ------------------------------------------------------------------
    # §VI Fig 7: idle power staircase (full-system AC)
    # ------------------------------------------------------------------
    ac_all_c2_w: float = 99.1  # Fig 7 / §VI-A
    ac_first_c1_delta_w: float = 81.2  # §VI-A: +81.2 W for first C1 core
    c1_per_core_w: float = 0.09  # §VI-A
    ac_first_active_w: float = 180.4  # §VI-A (pause loop, others C2)
    active_core_per_w: float = 0.33  # §VI-A at 2.5 GHz
    active_thread_per_w: float = 0.05  # §VI-A at 2.5 GHz

    # ------------------------------------------------------------------
    # §VI / Fig 8: C-state latencies
    # ------------------------------------------------------------------
    acpi_reported_c1_latency_ns: int = us(1)  # §VI: reported 1 us
    acpi_reported_c2_latency_ns: int = us(400)  # §VI: reported 400 us
    c1_wake_cycles: float = 2400.0  # model choice -> 1.6/1.1/0.96 us
    c1_wake_fixed_ns: float = 0.0
    c2_wake_fixed_ns: float = 19_000.0  # model choice -> 20..25 us band
    c2_wake_cycles: float = 8000.0
    remote_wake_extra_ns: float = 1_000.0  # §VI-C: remote adds ~1 us
    wake_jitter_rel_sigma: float = 0.02  # measurement noise, model choice
    wake_outlier_prob: float = 0.02  # Fig 8 outliers, model choice
    wake_outlier_scale: float = 4.0  # model choice
    #: Entry latencies (Ilsche et al. [6] measure entering too): a mwait
    #: C1 entry is a few hundred cycles; the C2 I/O-port entry saves
    #: core state first.                                 # model choice
    c1_entry_cycles: float = 900.0
    c2_entry_fixed_ns: float = 7_000.0
    c2_entry_cycles: float = 3_000.0

    # ------------------------------------------------------------------
    # §VII RAPL
    # ------------------------------------------------------------------
    rapl_update_period_ns: int = ms(1)  # §VII: measured 1 ms update rate
    # Fig 10a: vxorps operand-weight system power spread
    vxorps_ac_spread_w: float = 21.0  # Fig 10a: 21 W between weights 0 and 1
    vxorps_ac_spread_rel: float = 0.076  # Fig 10a: 7.6 %
    vxorps_rapl_spread_rel_max: float = 0.0008  # Fig 10b: within 0.08 %
    shr_ac_spread_rel: float = 0.009  # §VII-B: within 0.9 %
    shr_rapl_core_spread_rel: float = 0.00015  # §VII-B: within 0.015 %

    # ------------------------------------------------------------------
    # Internal power decomposition                       # model choice
    # (chosen so the observable totals above come out right)
    # ------------------------------------------------------------------
    platform_base_w: float = 55.1  # PSU/fans/board/BMC share of 99.1 W
    package_sleep_w: float = 12.0  # per package, in system sleep
    dram_idle_w: float = 20.0  # refresh/self-driven DRAM power
    system_wake_w: float = 81.11  # I/O dies + power planes out of sleep
    #: pause-loop per active core adder at the nominal point (scaled by
    #: V^2 f for other frequencies).
    pause_core_nominal_w: float = 0.33
    pause_thread_nominal_w: float = 0.05
    #: One-time adjustment when any core is active, reconciling the
    #: paper's 180.4 W single-active anchor with the +0.33 W/core slope
    #: (99.1 + 81.11 + 0.33 - 0.14 = 180.4).
    active_first_core_adjust_w: float = -0.14
    #: DRAM active power per GB/s of traffic.
    dram_w_per_gbs: float = 0.35
    #: I/O-die extra power per GHz of fclk above the floor, per package.
    iodie_w_per_fclk_ghz: float = 6.0
    #: Workload dynamic power: W per (V^2 * f[GHz]) per active core, by
    #: workload power coefficient 1.0 (see workloads).
    dyn_w_per_v2ghz: float = 1.0
    #: Toggle (operand Hamming weight) power: W per core at the nominal
    #: V^2f point per unit toggle_rate per 256 bits of toggled datapath.
    #: 0.33 W/core * 64 cores = 21.1 W full-system spread between operand
    #: weights 0 and 1 — the Fig 10a measurement.
    toggle_w_per_v2ghz_256b: float = 0.33
    #: Leakage temperature coefficient per package: relative increase / K.
    leakage_w_per_k_pkg: float = 0.22
    reference_temp_c: float = 45.0
    ambient_temp_c: float = 26.0
    #: Lumped package thermal resistance / capacitance.
    thermal_resistance_k_per_w: float = 0.24
    thermal_capacitance_j_per_k: float = 240.0

    voltage_curve: VoltageCurve = field(default_factory=VoltageCurve)

    # ------------------------------------------------------------------
    # EDC manager                                        # model choice,
    # anchored to Fig 6 throttle points (see repro.smu.edc)
    # ------------------------------------------------------------------
    #: Per-core static current at voltage (A/V).
    edc_static_a_per_core: float = 0.55
    #: Dynamic current coefficient: A per (IPC * f[GHz]) per core, 1-thread
    #: mode; SMT mode amortizes front-end current (§V-E discussion).
    edc_dyn_a_per_ipcghz_1t: float = 0.640
    edc_dyn_a_per_ipcghz_2t: float = 0.610

    def voltage_at(self, f_hz: float) -> float:
        """Core voltage for frequency ``f_hz``."""
        return self.voltage_curve.voltage(f_hz)

    def v2f_scale(self, f_hz: float) -> float:
        """V^2 * f scaling factor relative to the nominal point."""
        v = self.voltage_at(f_hz)
        v_nom = self.voltage_at(self.nominal_freq_hz)
        return (v * v * f_hz) / (v_nom * v_nom * self.nominal_freq_hz)

    def ccx_penalty_hz(self, set_hz: float, max_other_hz: float) -> float:
        """Table I coupling penalty for ``set`` when the CCX max is higher."""
        set_g = round(set_hz / ghz(1), 3)
        other_g = round(max_other_hz / ghz(1), 3)
        for (s, o), mhz_pen in self.ccx_penalty_mhz:
            if (s, o) == (set_g, other_g):
                return mhz_pen * 1e6
        if max_other_hz <= set_hz:
            return 0.0
        # Unlisted combination (non-paper frequency): interpolate on the
        # relative gap, conservative linear model.    # model choice
        gap = (max_other_hz - set_hz) / ghz(1)
        return 50e6 * gap


#: The package-wide calibration singleton.
CALIBRATION = Calibration()
