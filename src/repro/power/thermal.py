"""Lumped thermal model per package.

A single RC node per package: ``C dT/dt = P - (T - T_amb)/R``.  This is
all the fidelity the paper's effects need:

* FIRESTARTER pre-heats for 15 minutes "to create a stable temperature"
  (§V-E) — the RC time constant makes short runs thermally unsettled;
* leakage power rises with temperature, which is the indirect channel
  through which operand-dependent power becomes (barely) visible to RAPL
  (§VII-B: "indirect effects, e.g., an increased temperature based on the
  number of set bits").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.power.calibration import CALIBRATION, Calibration


@dataclass
class ThermalState:
    """Per-package temperatures in degrees Celsius."""

    temps_c: list[float] = field(default_factory=list)

    @classmethod
    def ambient(cls, n_packages: int, calibration: Calibration = CALIBRATION) -> "ThermalState":
        return cls([calibration.ambient_temp_c] * n_packages)


class ThermalModel:
    """Evolution and equilibria of the per-package RC node."""

    def __init__(self, calibration: Calibration = CALIBRATION) -> None:
        self.cal = calibration

    @property
    def time_constant_s(self) -> float:
        """RC time constant (about a minute for the default constants)."""
        return self.cal.thermal_resistance_k_per_w * self.cal.thermal_capacitance_j_per_k

    def equilibrium_c(self, package_power_w: float) -> float:
        """Steady-state temperature under constant package power."""
        return (
            self.cal.ambient_temp_c
            + self.cal.thermal_resistance_k_per_w * package_power_w
        )

    def evolve_c(self, temp_c: float, package_power_w: float, dt_s: float) -> float:
        """Temperature after ``dt_s`` seconds of constant power."""
        if dt_s < 0:
            raise ValueError(f"negative dt {dt_s}")  # EXC001: argument validation
        eq = self.equilibrium_c(package_power_w)
        return eq + (temp_c - eq) * math.exp(-dt_s / self.time_constant_s)

    def trajectory_c(self, temp_c: float, package_power_w: float, times_s) -> list[float]:
        """Temperatures at each of ``times_s`` (seconds from now)."""
        eq = self.equilibrium_c(package_power_w)
        tau = self.time_constant_s
        return [eq + (temp_c - eq) * math.exp(-t / tau) for t in times_s]

    def settle(self, package_power_w: float) -> float:
        """Pre-heated temperature (the §V-E 15-minute warm-up)."""
        return self.equilibrium_c(package_power_w)
