"""Ground-truth system power model.

This model plays the role of *physics* in the reproduction: it is what
the (simulated) ZES LMG670 measures at the wall.  It must therefore
capture everything the paper shows the real machine doing — including the
effects AMD's RAPL model misses (DRAM power, operand-dependent toggling),
because those gaps are the finding of §VII.

Decomposition (constants in :mod:`repro.power.calibration`):

====================  =====================================================
term                  source
====================  =====================================================
platform base         Fig 7: 99.1 W all-C2 floor (with DRAM idle + package
                      sleep shares)
system wake           §VI-A: +81.2 W once any thread leaves C2
C1 cores              §VI-A: +0.09 W per clock-gated-but-awake core
active cores/threads  §VI-A: +0.33 W/core, +0.05 W/extra thread at 2.5 GHz,
                      scaled by V²f at other operating points
workload dynamic      per-core V²f-scaled activity power (Fig 6 totals)
toggle power          operand Hamming weight term (Fig 10a: 21 W spread)
DRAM active           per-GB/s DIMM power (invisible to RAPL, Fig 9a)
I/O die               fclk-dependent uncore power (Fig 5 power statement)
leakage               temperature-dependent, per package
====================  =====================================================
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, fields, replace

from repro.power.calibration import CALIBRATION, Calibration
from repro.topology.components import Core, Package
from repro.units import ghz


@dataclass(frozen=True)
class PowerBreakdown:
    """Itemized system power; ``total_w`` is what the AC meter sees."""

    platform_base_w: float
    system_wake_w: float
    c1_cores_w: float
    active_cores_w: float
    workload_dynamic_w: float
    toggle_w: float
    dram_active_w: float
    iodie_w: float
    leakage_w: float

    @property
    def total_w(self) -> float:
        return sum(getattr(self, f.name) for f in fields(self))


class PowerModel:
    """Computes :class:`PowerBreakdown` from live machine state.

    The model reads the same state the mechanisms maintain: effective
    C-states from the controller, applied frequencies from the cores,
    workload bindings from the threads, fclk from the I/O dies.

    When bound to its :class:`~repro.machine.Machine` (see :meth:`bind`),
    the temperature-independent part of :meth:`breakdown` and the
    per-package :meth:`package_dram_traffic_gbs` are memoized keyed on
    ``Machine.state_version``: every state mutation path (``reconfigured``,
    cpufreq requests, C-state refreshes, event-mode SMU transition
    completions) bumps the version, so a cache hit is exactly a repeat
    evaluation of unchanged state — ``measure()`` and the 1 ms RAPL tick
    stop recomputing the whole topology walk.  Unbound models (or calls
    with a foreign machine) always compute fresh.
    """

    def __init__(self, calibration: Calibration = CALIBRATION) -> None:
        self.cal = calibration
        self._machine_ref: weakref.ref | None = None
        self._bd_version: int | None = None
        self._bd_no_leak: PowerBreakdown | None = None
        self._traffic_version: int | None = None
        self._traffic: dict[int, float] = {}
        self._obs = None

    def bind(self, machine) -> None:
        """Enable ``state_version``-keyed memoization for ``machine``.

        Called once by ``Machine.__init__``; the reference is weak, so
        binding does not keep the machine alive.
        """
        self._machine_ref = weakref.ref(machine)
        self._bd_version = None
        self._traffic_version = None
        self._traffic.clear()

    def _bound_machine(self):
        return self._machine_ref() if self._machine_ref is not None else None

    def attach_obs(self, obs, machine: str = "") -> None:
        """Count memo hits/misses into a :class:`repro.obs.Obs` registry."""
        from repro.obs import effective_obs

        obs = effective_obs(obs)
        if obs is None:
            return
        metrics = obs.metrics
        help_bd = "breakdown() state_version memo lookups"
        help_tr = "package_dram_traffic_gbs() state_version memo lookups"
        self._obs_bd_hits = metrics.counter(
            "power.breakdown_memo", help_bd, "lookups", machine=machine, result="hit"
        )
        self._obs_bd_misses = metrics.counter(
            "power.breakdown_memo", help_bd, "lookups", machine=machine, result="miss"
        )
        self._obs_traffic_hits = metrics.counter(
            "power.traffic_memo", help_tr, "lookups", machine=machine, result="hit"
        )
        self._obs_traffic_misses = metrics.counter(
            "power.traffic_memo", help_tr, "lookups", machine=machine, result="miss"
        )
        self._obs = obs

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _core_smt_threads(self, core: Core) -> int:
        return sum(1 for t in core.threads if t.is_active)

    def _active_workload(self, core: Core):
        for t in core.threads:
            if t.is_active:
                return t.workload
        return None

    def core_dram_demand_gbs(self, core: Core) -> float:
        """DRAM traffic demand of one core's threads."""
        wl = self._active_workload(core)
        if wl is None or wl.dram_gbs_1t == 0.0:
            return 0.0
        smt = self._core_smt_threads(core)
        # A second SMT thread adds ~30 % more outstanding traffic.
        return wl.dram_gbs_1t * (1.0 if smt == 1 else 1.3)

    def package_dram_traffic_gbs(self, pkg: Package, bandwidth_model=None) -> float:
        """Achieved DRAM traffic of a package (demand, capped).

        The cap is the four-quadrant DRAM ceiling; per-link limits are
        the bandwidth model's business and matter for *performance*
        (Fig 5), while for *power* the aggregate is sufficient.
        """
        machine = self._bound_machine()
        if machine is None or bandwidth_model is not None:
            return self._compute_traffic_gbs(pkg)
        version = machine.state_version
        if version != self._traffic_version:
            self._traffic.clear()
            self._traffic_version = version
        cached = self._traffic.get(pkg.index)
        if cached is None:
            cached = self._compute_traffic_gbs(pkg)
            self._traffic[pkg.index] = cached
            if self._obs is not None:
                self._obs_traffic_misses.inc()
        elif self._obs is not None:
            self._obs_traffic_hits.inc()
        return cached

    def _compute_traffic_gbs(self, pkg: Package) -> float:
        demand = sum(self.core_dram_demand_gbs(core) for core in pkg.cores())
        memclk_ghz = pkg.io_die.memclk_hz / ghz(1)
        ceiling = 8 * 8.0 * 2.0 * memclk_ghz * self.cal.dram_channel_efficiency
        return min(demand, ceiling)

    # ------------------------------------------------------------------
    # the model
    # ------------------------------------------------------------------

    def breakdown(self, machine, pkg_temps_c: list[float] | None = None) -> PowerBreakdown:
        """Full-system power for the machine's current state.

        The temperature-independent terms are memoized per
        ``machine.state_version`` when the model is bound to ``machine``
        (see the class docstring); the leakage term is always evaluated
        fresh from ``pkg_temps_c``.
        """
        if machine is self._bound_machine():
            version = machine.state_version
            if version != self._bd_version:
                self._bd_no_leak = self._compute_breakdown(machine)
                self._bd_version = version
                if self._obs is not None:
                    self._obs_bd_misses.inc()
            elif self._obs is not None:
                self._obs_bd_hits.inc()
            bd = self._bd_no_leak
        else:
            bd = self._compute_breakdown(machine)
        if pkg_temps_c is None:
            return bd
        cal = self.cal
        leak_w = 0.0
        for temp in pkg_temps_c:
            leak_w += max(0.0, cal.leakage_w_per_k_pkg * (temp - cal.reference_temp_c))
        if leak_w == 0.0:
            return bd
        return replace(bd, leakage_w=leak_w)

    def _compute_breakdown(self, machine) -> PowerBreakdown:
        """The full topology walk (leakage excluded; see :meth:`breakdown`)."""
        cal = self.cal
        topo = machine.topology
        cstates = machine.cstates
        n_pkg = len(topo.packages)

        platform = cal.platform_base_w + cal.dram_idle_w + n_pkg * cal.package_sleep_w

        wake = 0.0 if cstates.system_in_deep_sleep() else cal.system_wake_w

        # C1 cores: clock-gated but voltage-plane-awake cores.
        c1_cores = sum(
            1 for core in topo.cores() if core.deepest_common_cstate_is == "C1"
        )
        c1_w = c1_cores * cal.c1_per_core_w

        # Per-package silicon variation multipliers (1.0 by default).
        factors = getattr(machine, "pkg_power_factors", None)

        active_w = 0.0
        dyn_w = 0.0
        toggle_w = 0.0
        any_active = False
        for core in topo.cores():
            smt = self._core_smt_threads(core)
            if smt == 0:
                continue
            any_active = True
            scale = cal.v2f_scale(core.applied_freq_hz)
            if factors is not None:
                scale *= factors[core.package.index]
            active_w += cal.pause_core_nominal_w * scale
            if smt == 2:
                active_w += cal.pause_thread_nominal_w * scale
            wl = self._active_workload(core)
            if wl is not None:
                dyn_w += wl.power_coeff(smt) * cal.dyn_w_per_v2ghz * scale
                if wl.toggle_width_bits:
                    toggle_w += (
                        cal.toggle_w_per_v2ghz_256b
                        * wl.toggle_rate
                        * (wl.toggle_width_bits / 256.0)
                        * scale
                    )
        if any_active:
            # The first-core adjustment is negative; at low frequencies it
            # can exceed a lone core's pause power.  Active power is
            # physically non-negative, so clamp.
            active_w = max(0.0, active_w + cal.active_first_core_adjust_w)

        dram_w = sum(
            cal.dram_w_per_gbs * self.package_dram_traffic_gbs(pkg)
            for pkg in topo.packages
        )

        iodie_w = 0.0
        if wake > 0.0:
            # I/O-die fclk power only flows while the system is awake.
            iodie_w = sum(fc.extra_power_w() for fc in machine.fclk_controllers)

        return PowerBreakdown(
            platform_base_w=platform,
            system_wake_w=wake,
            c1_cores_w=c1_w,
            active_cores_w=active_w,
            workload_dynamic_w=dyn_w,
            toggle_w=toggle_w,
            dram_active_w=dram_w,
            iodie_w=iodie_w,
            leakage_w=0.0,
        )

    def system_power_w(self, machine, pkg_temps_c: list[float] | None = None) -> float:
        """Total AC power (the quantity the LMG670 samples)."""
        return self.breakdown(machine, pkg_temps_c).total_w

    def package_power_w(self, machine, pkg: Package, pkg_temps_c: list[float] | None = None) -> float:
        """One package's DC power share — input to the thermal model.

        Splits the breakdown: per-core terms attribute to their package,
        system-level terms split evenly.
        """
        # Only the temperature-independent shared terms are needed here
        # (this package's leakage is added from its own temperature below).
        bd = self.breakdown(machine, None)
        n_pkg = len(machine.topology.packages)
        shared = (bd.system_wake_w * 0.6 + bd.iodie_w) / n_pkg

        cal = self.cal
        core_w = 0.0
        for core in pkg.cores():
            smt = self._core_smt_threads(core)
            if core.deepest_common_cstate_is == "C1":
                core_w += cal.c1_per_core_w
            if smt == 0:
                continue
            scale = cal.v2f_scale(core.applied_freq_hz)
            core_w += cal.pause_core_nominal_w * scale
            if smt == 2:
                core_w += cal.pause_thread_nominal_w * scale
            wl = self._active_workload(core)
            if wl is not None:
                core_w += wl.power_coeff(smt) * cal.dyn_w_per_v2ghz * scale
                if wl.toggle_width_bits:
                    core_w += (
                        cal.toggle_w_per_v2ghz_256b
                        * wl.toggle_rate
                        * (wl.toggle_width_bits / 256.0)
                        * scale
                    )
        pkg_idx = pkg.index
        leak = 0.0
        if pkg_temps_c is not None and pkg_idx < len(pkg_temps_c):
            leak = max(
                0.0,
                cal.leakage_w_per_k_pkg * (pkg_temps_c[pkg_idx] - cal.reference_temp_c),
            )
        return core_w + shared + leak + cal.package_sleep_w
