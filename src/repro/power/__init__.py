"""Ground-truth power modelling.

:mod:`repro.power.calibration` collects every constant the paper reports
(annotated with its source figure/table/section); :mod:`repro.power.model`
turns machine state into the "physical" AC power that the simulated
external power analyzer observes.  The RAPL *estimator* in
:mod:`repro.rapl` is intentionally a different, cruder model — the gap
between the two is the subject of the paper's §VII.
"""

from repro.power.calibration import CALIBRATION, Calibration
from repro.power.model import PowerBreakdown, PowerModel
from repro.power.thermal import ThermalModel, ThermalState

__all__ = [
    "CALIBRATION",
    "Calibration",
    "PowerModel",
    "PowerBreakdown",
    "ThermalModel",
    "ThermalState",
]
