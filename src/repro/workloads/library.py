"""The paper's microbenchmarks as workload descriptors.

Coefficients marked "calibrated" are chosen so that the end-to-end
experiments recover the paper's observables (Figs 6, 7, 9, 10); the
acceptance tests in ``tests/integration`` pin them down.
"""

from __future__ import annotations

from repro.workloads.base import Workload

# ---------------------------------------------------------------------------
# busy loops (§V-A, §VI-A)
# ---------------------------------------------------------------------------

#: ``while(1);`` — a one-instruction branch loop.  Fully core-bound; IPC 1
#: per thread (the branch dominates); modest power.
SPIN = Workload(
    name="spin",
    ipc_1t=1.0,
    ipc_2t=2.0,
    power_coeff_1t=0.55,
    power_coeff_2t=0.75,
    alu_util=0.25,
    edc_weight=0.12,
)

#: Unrolled ``pause`` loop (§VI-A): the paper's C0 reference workload;
#: "more stable and slightly lower power consumption than POLL".
#: Power coefficients are 0 — its cost is carried entirely by the
#: calibrated per-active-core adders of the power model (Fig 7 staircase).
PAUSE_LOOP = Workload(
    name="pause_loop",
    ipc_1t=0.05,
    ipc_2t=0.10,
    power_coeff_1t=0.0,
    power_coeff_2t=0.0,
    alu_util=0.02,
    uses_pause=True,
)

#: Linux idle=poll-style loop: pause plus per-iteration checks; slightly
#: higher and noisier power than PAUSE_LOOP (§VI-A).
POLL = Workload(
    name="poll",
    ipc_1t=0.35,
    ipc_2t=0.60,
    power_coeff_1t=0.06,
    power_coeff_2t=0.10,
    alu_util=0.10,
    uses_pause=True,
)

#: No workload at all (the thread idles into a C-state).  Exists so sweep
#: tables can name the idle configuration.
IDLE = Workload(
    name="idle",
    ipc_1t=0.0,
    ipc_2t=0.0,
    power_coeff_1t=0.0,
    power_coeff_2t=0.0,
    alu_util=0.0,
    ls_util=0.0,
)

# ---------------------------------------------------------------------------
# FIRESTARTER 2 (§V-E, Fig 6)
# ---------------------------------------------------------------------------

#: Maximum-throughput payload: 2x 256-bit FMA per cycle, 256-bit loads and
#: stores, interleaved integer ops, loop sized for L1I (not the op cache),
#: limiting throughput to 4 instructions/cycle (§V-E).  IPC values are the
#: paper's measurements at the throttled operating point (Fig 6).
FIRESTARTER = Workload(
    name="firestarter",
    ipc_1t=3.23,  # Fig 6 (one thread per core)
    ipc_2t=3.56,  # Fig 6 (both threads)
    power_coeff_1t=6.24,  # calibrated -> 489 W system (Fig 6)
    power_coeff_2t=7.30,  # calibrated -> 509 W system (Fig 6)
    simd_width_bits=256,
    fp_util=1.0,
    alu_util=0.85,
    ls_util=0.90,
    l3_util=0.35,
    dram_gbs_1t=0.6,  # touches all memory levels, modest DRAM share
    toggle_width_bits=256,
    edc_weight=1.0,
)

# ---------------------------------------------------------------------------
# memory benchmarks (§V-C, §V-D)
# ---------------------------------------------------------------------------

#: STREAM-Triad (McCalpin): a[i] = b[i] + s*c[i]; bandwidth-bound.
STREAM_TRIAD = Workload(
    name="stream_triad",
    ipc_1t=0.8,
    ipc_2t=0.9,
    freq_scaling=0.15,
    power_coeff_1t=1.1,
    power_coeff_2t=1.25,
    simd_width_bits=256,
    fp_util=0.30,
    alu_util=0.25,
    ls_util=0.95,
    l3_util=0.6,
    dram_gbs_1t=22.0,  # calibrated single-core triad demand (Fig 5)
    edc_weight=0.30,
)


def pointer_chase(level: str = "L3") -> Workload:
    """Dependent-load latency benchmark (Molka et al.), Figs 4 & 5.

    One load in flight at a time: negligible bandwidth, IPC far below 1,
    hardware prefetchers disabled and huge pages used on the real system
    (§V-C) — here that simply means the latency model applies un-prefetched
    access times.
    """
    dram = 0.2 if level == "DRAM" else 0.0
    return Workload(
        name=f"pointer_chase_{level.lower()}",
        ipc_1t=0.05,
        ipc_2t=0.08,
        freq_scaling=0.3,
        power_coeff_1t=0.35,
        power_coeff_2t=0.45,
        ls_util=0.30,
        l3_util=0.8 if level == "L3" else 0.2,
        dram_gbs_1t=dram,
        edc_weight=0.05,
    )


#: Streaming read / write kernels from the §VII-A workload set.
MEMORY_READ = Workload(
    name="memory_read",
    ipc_1t=0.6,
    ipc_2t=0.7,
    freq_scaling=0.1,
    power_coeff_1t=0.9,
    power_coeff_2t=1.0,
    ls_util=0.95,
    l3_util=0.5,
    dram_gbs_1t=18.0,
    edc_weight=0.25,
)

MEMORY_WRITE = Workload(
    name="memory_write",
    ipc_1t=0.5,
    ipc_2t=0.6,
    freq_scaling=0.1,
    power_coeff_1t=0.85,
    power_coeff_2t=0.95,
    ls_util=0.95,
    l3_util=0.5,
    dram_gbs_1t=14.0,
    edc_weight=0.22,
)

# ---------------------------------------------------------------------------
# instruction blocks (§VII)
# ---------------------------------------------------------------------------

_INSTRUCTION_PARAMS: dict[str, dict] = {
    # name: (per-core activity of an unrolled single-instruction loop)
    "sqrt": dict(
        ipc_1t=0.22, ipc_2t=0.40, power_coeff_1t=1.0, power_coeff_2t=1.3,
        simd_width_bits=128, fp_util=0.5, edc_weight=0.18,
    ),
    "add_pd": dict(
        ipc_1t=2.0, ipc_2t=3.0, power_coeff_1t=1.6, power_coeff_2t=2.1,
        simd_width_bits=256, fp_util=0.9, edc_weight=0.40,
        toggle_width_bits=256,
    ),
    "mul_pd": dict(
        ipc_1t=2.0, ipc_2t=3.0, power_coeff_1t=1.9, power_coeff_2t=2.5,
        simd_width_bits=256, fp_util=0.9, edc_weight=0.45,
        toggle_width_bits=256,
    ),
    "vxorps": dict(
        # 256-bit xor: high throughput, low arithmetic power, operand-
        # driven toggling across the full 256-bit datapath (Fig 10).
        # Coefficients put the all-thread system power near 277 W so the
        # 21 W operand spread is the paper's 7.6 %.
        ipc_1t=2.5, ipc_2t=3.2, power_coeff_1t=0.70, power_coeff_2t=0.85,
        simd_width_bits=256, fp_util=0.1, alu_util=0.3, edc_weight=0.30,
        toggle_width_bits=256,
    ),
    "shr": dict(
        # 64-bit scalar shift (§VII-B contrast case).  The benchmark
        # shifts by 0, so the operand is *held* rather than toggled each
        # cycle — the effective data-dependent datapath is narrow (32
        # bits here), reproducing the ~0.9 % AC spread.
        ipc_1t=2.0, ipc_2t=3.0, power_coeff_1t=0.9, power_coeff_2t=1.2,
        simd_width_bits=0, alu_util=0.8, edc_weight=0.20,
        toggle_width_bits=28,
    ),
    "mov_rr": dict(
        ipc_1t=3.5, ipc_2t=4.0, power_coeff_1t=0.8, power_coeff_2t=1.0,
        alu_util=0.6, edc_weight=0.15,
    ),
    "nop": dict(
        ipc_1t=4.0, ipc_2t=4.0, power_coeff_1t=0.5, power_coeff_2t=0.6,
        alu_util=0.2, edc_weight=0.08,
    ),
}


def instruction_block(mnemonic: str, operand_weight: float = 0.5) -> Workload:
    """An unrolled single-instruction loop (§VII methodology).

    ``operand_weight`` is the relative Hamming weight of the operands
    (0, 0.5 or 1 in the paper's experiment); it controls the
    data-dependent toggle power term.
    """
    try:
        params = dict(_INSTRUCTION_PARAMS[mnemonic])
    except KeyError:
        known = ", ".join(sorted(_INSTRUCTION_PARAMS))
        # EXC001: dict-like lookup with suggestion list; tests pin KeyError
        raise KeyError(f"unknown instruction {mnemonic!r}; known: {known}") from None
    return Workload(name=mnemonic, toggle_rate=operand_weight, **params)


#: The §VII-A RAPL-quality workload set (Fig 9): compute-only kernels,
#: memory kernels, busy loops and idle.
WORKLOAD_SET: tuple[Workload, ...] = (
    IDLE,
    PAUSE_LOOP,
    POLL,
    SPIN,
    instruction_block("sqrt"),
    instruction_block("add_pd"),
    instruction_block("mul_pd"),
    instruction_block("vxorps"),
    instruction_block("mov_rr"),
    MEMORY_READ,
    MEMORY_WRITE,
    STREAM_TRIAD,
    FIRESTARTER,
)
