"""Phased applications: sequences of (workload, duration) steps.

HPC applications alternate compute and memory phases; per-phase DVFS
runtimes (Adagio, MERIC — §V-B's motivation) operate on exactly this
structure.  :class:`PhasedApplication` describes the sequence;
:func:`play` executes it on a machine with an optional per-phase tuning
policy and accounts energy/runtime, including the transition-latency
reality check from Fig 3: a frequency request only settles within a
phase that outlives the SMU's worst-case request-to-effect latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import WorkloadError
from repro.units import ghz
from repro.workloads.base import Workload

#: Fig 3 worst case: 1 ms slot wait + 390 us execution.
WORST_CASE_TRANSITION_S = 0.00139


@dataclass(frozen=True)
class Phase:
    """One application phase."""

    workload: Workload
    duration_s: float
    #: Fraction of the phase's work that scales with core frequency.
    freq_sensitivity: float = 1.0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise WorkloadError(f"phase duration must be positive, got {self.duration_s}")
        if not 0.0 <= self.freq_sensitivity <= 1.0:
            raise WorkloadError("freq_sensitivity must be in [0, 1]")


@dataclass
class PhasedApplication:
    """A named sequence of phases."""

    name: str
    phases: list[Phase] = field(default_factory=list)

    def add(self, workload: Workload, duration_s: float, freq_sensitivity: float = 1.0) -> "PhasedApplication":
        self.phases.append(Phase(workload, duration_s, freq_sensitivity))
        return self

    @property
    def total_duration_s(self) -> float:
        return sum(p.duration_s for p in self.phases)


@dataclass(frozen=True)
class PlaybackResult:
    """Energy/runtime accounting of one playback."""

    energy_j: float
    runtime_s: float
    phase_energies_j: tuple[float, ...]

    @property
    def average_power_w(self) -> float:
        return self.energy_j / self.runtime_s if self.runtime_s else 0.0


def play(
    machine,
    app: PhasedApplication,
    cpu_ids: list[int],
    *,
    policy: Callable[[Phase], float] | None = None,
) -> PlaybackResult:
    """Run ``app`` on ``cpu_ids``; ``policy`` maps a phase to a frequency.

    Phases shorter than the worst-case transition latency execute at the
    *previous* frequency — requests cannot land in time (Fig 3).
    """
    energy = 0.0
    runtime = 0.0
    per_phase: list[float] = []
    nominal = machine.sku.nominal_freq_hz
    current_f = nominal
    for phase in app.phases:
        target = nominal if policy is None else policy(phase)
        if phase.duration_s >= WORST_CASE_TRANSITION_S:
            current_f = target
        for cpu in cpu_ids:
            machine.os.set_frequency(cpu, current_f)
        machine.os.run(phase.workload, cpu_ids)

        applied = machine.topology.thread(cpu_ids[0]).core.applied_freq_hz
        slowdown = phase.freq_sensitivity * (ghz(2.5) / applied) + (
            1.0 - phase.freq_sensitivity
        )
        duration = phase.duration_s * slowdown
        power = machine.power_model.system_power_w(
            machine, machine.thermal_state.temps_c
        )
        e = power * duration
        energy += e
        runtime += duration
        per_phase.append(e)
    machine.os.stop(cpu_ids)
    return PlaybackResult(energy, runtime, tuple(per_phase))
