"""Canned phased applications (NPB-flavoured miniatures).

Three recognizable HPC phase structures built on
:class:`~repro.workloads.phases.PhasedApplication`, used by the DVFS
studies and tests.  Names nod to the NAS Parallel Benchmarks the HPC
community (and the paper's DVFS-related citations) habitually use:

* ``ep_like``   — embarrassingly parallel compute, no memory phases;
* ``cg_like``   — sparse-solver shape: short compute, long memory-bound
  sweeps;
* ``bt_like``   — alternating medium phases of both kinds.
"""

from __future__ import annotations

from repro.workloads.library import SPIN, STREAM_TRIAD, instruction_block
from repro.workloads.phases import PhasedApplication


def ep_like(phase_s: float = 0.2, n_iterations: int = 4) -> PhasedApplication:
    """Pure compute: frequency buys performance one-for-one."""
    app = PhasedApplication("ep_like")
    for _ in range(n_iterations):
        app.add(instruction_block("add_pd"), phase_s, freq_sensitivity=1.0)
    return app


def cg_like(phase_s: float = 0.2, n_iterations: int = 4) -> PhasedApplication:
    """Sparse solver: dominated by memory-bound sweeps."""
    app = PhasedApplication("cg_like")
    for _ in range(n_iterations):
        app.add(SPIN, phase_s * 0.25, freq_sensitivity=1.0)
        app.add(STREAM_TRIAD, phase_s, freq_sensitivity=0.1)
    return app


def bt_like(phase_s: float = 0.2, n_iterations: int = 4) -> PhasedApplication:
    """Block-tridiagonal shape: balanced alternation."""
    app = PhasedApplication("bt_like")
    for _ in range(n_iterations):
        app.add(instruction_block("mul_pd"), phase_s, freq_sensitivity=0.9)
        app.add(STREAM_TRIAD, phase_s * 0.5, freq_sensitivity=0.15)
    return app


APPLICATIONS = {
    "ep_like": ep_like,
    "cg_like": cg_like,
    "bt_like": bt_like,
}
