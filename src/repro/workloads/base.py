"""The workload descriptor.

Design note (DESIGN.md §4): on the real machine, a microbenchmark *is*
its instruction stream; in the simulator a workload is the stream's
*activity signature*.  Everything downstream — the ground-truth power
model, the RAPL estimator, the EDC manager, perf counters — consumes only
this signature, exactly as the corresponding hardware units respond only
to activity, not to program text.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import WorkloadError


@dataclass(frozen=True)
class Workload:
    """Activity signature of a microbenchmark.

    Parameters
    ----------
    name:
        Identifier used in experiment tables.
    ipc_1t / ipc_2t:
        Retired instructions per *core* cycle when one / both hardware
        threads of a core execute the workload.  ``ipc_2t`` is the
        per-core total (both threads combined).
    freq_scaling:
        Fraction of throughput that scales with core frequency
        (1.0 = fully core-bound, 0.0 = fully memory-bound).
    power_coeff_1t / power_coeff_2t:
        Dynamic-power weight of the workload per active core at the
        nominal V/f point, in units of
        :attr:`repro.power.calibration.Calibration.dyn_w_per_v2ghz`.
    simd_width_bits:
        Width of the vector datapath the workload keeps busy (0 for
        scalar/no FP).  Drives clock-gating behaviour and toggle power.
    fp_util / alu_util / ls_util:
        Utilization (0..1) of FP pipes, integer ALUs and load/store AGUs;
        inputs to the RAPL activity model.
    dram_gbs_1t:
        Main-memory traffic demand of a single thread (GB/s); actual
        traffic is capped by the memory system.
    l3_util:
        L3 access intensity (0..1), for the uncore part of RAPL.
    toggle_rate:
        Relative operand Hamming weight (0, 0.5, 1 in the §VII-B
        experiments); 0.5 for "random data" workloads.
    toggle_width_bits:
        Datapath bits whose switching depends on operand data (256 for
        vxorps, 64 for shr, 0 for workloads without controlled operands).
    edc_weight:
        Relative electrical-design-current demand (1.0 = FIRESTARTER-class
        full-throughput 256-bit FMA code; see :mod:`repro.smu.edc`).
    uses_pause:
        True for pause-based busy-wait loops (C0 but minimal activity).
    """

    name: str
    ipc_1t: float = 1.0
    ipc_2t: float = 1.2
    freq_scaling: float = 1.0
    power_coeff_1t: float = 1.0
    power_coeff_2t: float = 1.2
    simd_width_bits: int = 0
    fp_util: float = 0.0
    alu_util: float = 0.2
    ls_util: float = 0.1
    dram_gbs_1t: float = 0.0
    l3_util: float = 0.0
    toggle_rate: float = 0.5
    toggle_width_bits: int = 0
    edc_weight: float = 0.0
    uses_pause: bool = False

    def __post_init__(self) -> None:
        if self.ipc_1t < 0 or self.ipc_2t < 0:
            raise WorkloadError(f"{self.name}: IPC must be non-negative")
        if not 0.0 <= self.freq_scaling <= 1.0:
            raise WorkloadError(f"{self.name}: freq_scaling must be in [0, 1]")
        if not 0.0 <= self.toggle_rate <= 1.0:
            raise WorkloadError(f"{self.name}: toggle_rate must be in [0, 1]")
        for attr in ("fp_util", "alu_util", "ls_util", "l3_util"):
            v = getattr(self, attr)
            if not 0.0 <= v <= 1.0:
                raise WorkloadError(f"{self.name}: {attr} must be in [0, 1]")
        if self.power_coeff_1t < 0 or self.power_coeff_2t < 0:
            raise WorkloadError(f"{self.name}: power coefficients must be >= 0")
        if self.edc_weight < 0:
            raise WorkloadError(f"{self.name}: edc_weight must be >= 0")

    # --- derived ---------------------------------------------------------

    def ipc(self, smt_threads: int) -> float:
        """Per-core IPC with ``smt_threads`` threads running this workload."""
        if smt_threads == 1:
            return self.ipc_1t
        if smt_threads == 2:
            return self.ipc_2t
        raise WorkloadError(f"smt_threads must be 1 or 2, got {smt_threads}")

    def power_coeff(self, smt_threads: int) -> float:
        """Per-core dynamic power weight with ``smt_threads`` threads."""
        if smt_threads == 1:
            return self.power_coeff_1t
        if smt_threads == 2:
            return self.power_coeff_2t
        raise WorkloadError(f"smt_threads must be 1 or 2, got {smt_threads}")

    def with_operand_weight(self, weight: float) -> "Workload":
        """Copy of the workload with a different relative Hamming weight."""
        return replace(self, toggle_rate=weight, name=f"{self.name}[w={weight:g}]")

    def with_name(self, name: str) -> "Workload":
        """Copy with a different name (for sweep labelling)."""
        return replace(self, name=name)
