"""Workload descriptors.

A :class:`~repro.workloads.base.Workload` is a declarative description of
the activity pattern a microbenchmark imposes: IPC in 1- and 2-thread SMT
modes, execution-unit utilizations, memory traffic, operand toggle rate,
and EDC current demand.  The paper's benchmarks (while(1), pause loops,
FIRESTARTER, STREAM, pointer chasing, instruction blocks) are provided as
ready-made descriptors and factories.

This is the central substitution of the reproduction: the real machine ran
x86 loops; the simulated machine runs their activity signatures through
the same control and measurement paths (see DESIGN.md §4).
"""

from repro.workloads.base import Workload
from repro.workloads.generator import PayloadSpec, firestarter_spec
from repro.workloads.library import (
    FIRESTARTER,
    IDLE,
    MEMORY_READ,
    MEMORY_WRITE,
    PAUSE_LOOP,
    POLL,
    SPIN,
    STREAM_TRIAD,
    WORKLOAD_SET,
    instruction_block,
    pointer_chase,
)

__all__ = [
    "Workload",
    "PayloadSpec",
    "firestarter_spec",
    "SPIN",
    "PAUSE_LOOP",
    "POLL",
    "IDLE",
    "FIRESTARTER",
    "STREAM_TRIAD",
    "MEMORY_READ",
    "MEMORY_WRITE",
    "WORKLOAD_SET",
    "instruction_block",
    "pointer_chase",
]
