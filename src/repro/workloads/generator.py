"""FIRESTARTER-2-style payload generation (§V-E; Schöne et al., CLUSTER
2021, "FIRESTARTER 2: Dynamic Code Generation for Processor Stress
Tests").

FIRESTARTER builds its stress payload *dynamically*: a sequence of
instruction groups (FMA, load/store to a chosen memory level, integer
ALU fillers) is unrolled until the loop no longer fits the op cache but
still fits L1I, maximizing front-end plus back-end utilization.  The
analog here: a :class:`PayloadSpec` describes the group mix; the
generator derives the activity signature (IPC, unit utilizations, EDC
demand, memory traffic) from Zen 2's structural limits and returns an
ordinary :class:`~repro.workloads.base.Workload`.

The derivation uses the §III-A machine widths: 4-wide retire, two
256-bit FMA pipes, two 256-bit FADD pipes, three AGU ops per cycle (two
loads + one store), 32 B per load/store.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.workloads.base import Workload

#: Zen 2 structural limits (per core cycle).
RETIRE_WIDTH = 4.0
FMA_PIPES = 2.0
LOAD_OPS = 2.0
STORE_OPS = 1.0
BYTES_PER_MEM_OP = 32.0

#: Op-cache capacity in ops; loops below this hit the op cache and lift
#: the front-end limit to 8 ops/cycle (defeating the L1I-pressure trick).
OP_CACHE_OPS = 4096
#: Instruction bytes that fit L1I (32 KiB); beyond this the loop misses.
L1I_BYTES = 32 * 1024
AVG_INSTRUCTION_BYTES = 5.0


@dataclass(frozen=True)
class PayloadSpec:
    """A FIRESTARTER-style instruction-group mix.

    Fractions are of the *instruction stream*; they must sum to 1.
    ``mem_level`` chooses where the load/store group points ("L1", "L2",
    "L3" or "RAM"), which determines achievable IPC and DRAM traffic.
    """

    name: str = "payload"
    fma_fraction: float = 0.5
    load_store_fraction: float = 0.25
    integer_fraction: float = 0.25
    mem_level: str = "L1"
    unrolled_instructions: int = 3000
    operand_hamming_weight: float = 0.5

    def __post_init__(self) -> None:
        total = self.fma_fraction + self.load_store_fraction + self.integer_fraction
        if abs(total - 1.0) > 1e-9:
            raise WorkloadError(f"{self.name}: group fractions sum to {total}, not 1")
        for frac in (self.fma_fraction, self.load_store_fraction, self.integer_fraction):
            if frac < 0:
                raise WorkloadError(f"{self.name}: negative group fraction")
        if self.mem_level not in ("L1", "L2", "L3", "RAM"):
            raise WorkloadError(f"{self.name}: unknown mem level {self.mem_level!r}")
        if self.unrolled_instructions < 16:
            raise WorkloadError(f"{self.name}: loop too short to schedule")

    # --- structural analysis ------------------------------------------------

    @property
    def fits_op_cache(self) -> bool:
        return self.unrolled_instructions <= OP_CACHE_OPS

    @property
    def fits_l1i(self) -> bool:
        return self.unrolled_instructions * AVG_INSTRUCTION_BYTES <= L1I_BYTES

    def front_end_ipc_limit(self) -> float:
        """4-wide from L1I; op-cache loops decode wider; L1I misses halve."""
        if self.fits_op_cache:
            return RETIRE_WIDTH * 1.5
        if self.fits_l1i:
            return RETIRE_WIDTH
        return RETIRE_WIDTH / 2.0

    def back_end_ipc_limit(self) -> float:
        """The binding pipe for the requested mix.

        The memory level throttles the *memory-op* throughput (a stream
        to DRAM sustains a small fraction of the AGU peak), which then
        bounds the whole stream through the group fraction.
        """
        stall = {"L1": 1.0, "L2": 0.75, "L3": 0.45, "RAM": 0.12}[self.mem_level]
        limits = []
        if self.fma_fraction > 0:
            limits.append(FMA_PIPES / self.fma_fraction)
        if self.load_store_fraction > 0:
            limits.append((LOAD_OPS + STORE_OPS) * stall / self.load_store_fraction)
        if self.integer_fraction > 0:
            limits.append(RETIRE_WIDTH / self.integer_fraction)
        return min(limits) if limits else RETIRE_WIDTH

    #: Fraction of the structural limit real schedules sustain (branch
    #: and dependency bubbles); x0.89 puts the canonical FIRESTARTER mix
    #: at the measured 3.56 IPC.
    SCHEDULE_EFFICIENCY = 0.89
    #: One thread leaves additional bubbles SMT would fill (3.23/3.56).
    SINGLE_THREAD_FACTOR = 0.91

    def sustained_ipc(self, smt_threads: int = 2) -> float:
        """Per-core IPC: min of front/back-end limits, SMT-adjusted.

        A single thread cannot keep all pipes fed (speculation gaps); two
        threads fill the bubbles — the 3.23 vs 3.56 structure of Fig 6.
        """
        raw = min(self.front_end_ipc_limit(), self.back_end_ipc_limit(), RETIRE_WIDTH)
        raw *= self.SCHEDULE_EFFICIENCY
        if smt_threads == 1:
            return raw * self.SINGLE_THREAD_FACTOR
        return raw

    def dram_gbs_per_thread(self, freq_ghz: float = 2.5) -> float:
        """Memory traffic for RAM-level payloads."""
        if self.mem_level != "RAM" or self.load_store_fraction == 0:
            return 0.6 if self.mem_level == "L3" else 0.0
        ops_per_cycle = self.sustained_ipc(2) * self.load_store_fraction / 2
        return ops_per_cycle * BYTES_PER_MEM_OP * freq_ghz

    # --- generation ------------------------------------------------------------

    def generate(self) -> Workload:
        """Derive the activity signature as a :class:`Workload`."""
        ipc2 = round(self.sustained_ipc(2), 3)
        ipc1 = round(self.sustained_ipc(1), 3)
        fp_util = min(1.0, self.fma_fraction * ipc2 / FMA_PIPES)
        ls_util = min(1.0, self.load_store_fraction * ipc2 / (LOAD_OPS + STORE_OPS))
        alu_util = min(1.0, self.integer_fraction * ipc2 / RETIRE_WIDTH)
        # EDC demand tracks FP-pipe and AGU pressure; the canonical
        # FIRESTARTER mix lands at ~1.0 (the FIRESTARTER-class reference).
        edc = min(1.0, 0.1 + 0.9 * fp_util + 0.25 * ls_util)
        # Dynamic power weight: normalized so the canonical FIRESTARTER
        # mix reproduces the calibrated descriptor (7.30 at 2 threads).
        coeff2 = 7.30 * (0.45 * fp_util + 0.35 * ls_util + 0.20 * alu_util) / 0.55
        coeff1 = coeff2 * 6.24 / 7.30
        return Workload(
            name=self.name,
            ipc_1t=ipc1,
            ipc_2t=ipc2,
            power_coeff_1t=round(coeff1, 3),
            power_coeff_2t=round(coeff2, 3),
            simd_width_bits=256 if self.fma_fraction > 0 else 0,
            fp_util=round(fp_util, 3),
            alu_util=round(alu_util, 3),
            ls_util=round(ls_util, 3),
            l3_util=0.35 if self.mem_level in ("L3", "RAM") else 0.1,
            dram_gbs_1t=round(self.dram_gbs_per_thread(), 2),
            toggle_rate=self.operand_hamming_weight,
            toggle_width_bits=256 if self.fma_fraction > 0 else 64,
            edc_weight=round(edc, 3),
        )


def firestarter_spec() -> PayloadSpec:
    """The §V-E payload: 2x 256-bit FMA per cycle + loads/stores +
    integer fillers, loop sized past the op cache but inside L1I."""
    return PayloadSpec(
        name="firestarter_generated",
        fma_fraction=0.5,
        load_store_fraction=0.25,
        integer_fraction=0.25,
        mem_level="L1",
        unrolled_instructions=6000,  # > 4096 ops, < L1I capacity
    )
