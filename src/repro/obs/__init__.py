"""repro.obs — unified tracing, metrics, and timeline export.

One :class:`Obs` object bundles the two halves of the observability
layer and is threaded through every subsystem that accepts it
(``Machine(obs=...)``, ``run_suite(obs=...)``, ``run_tasks(obs=...)``,
``ResultCache.attach_obs``, the bench harness):

* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges,
  histograms with fixed bucket layouts; Prometheus text exposition and
  the ``repro.obs/metrics`` v1 JSON snapshot;
* :class:`~repro.obs.tracer.SpanTracer` — nested sim-time+wall-time
  spans and instants in a bounded ring, exported as a Chrome
  trace-event / Perfetto-loadable ``repro.obs/trace`` v1 document.

Instrumented hot paths hold a single reference that is ``None`` unless
an *enabled* Obs is attached, so the disabled path costs one identity
check (budgeted at <= 2 % on ``sim.dispatch``; see the ``obs.overhead``
bench kernel and ``docs/observability.md``).  Observability never feeds
back into simulated state: suite documents are byte-identical with obs
on or off.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.obs.export import (
    merge_trace_documents,
    summarize_metrics,
    summarize_trace,
    trace_document,
)
from repro.obs.flightrec import (
    FlightRecorder,
    dump_bundle,
    flightrec_document,
    record_crash,
    recorder,
    summarize_flightrec,
)
from repro.obs.log import StructuredLogger, log_document
from repro.obs.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.schema import (
    FLIGHTREC_SCHEMA_ID,
    FLIGHTREC_SCHEMA_VERSION,
    LOG_SCHEMA_ID,
    LOG_SCHEMA_VERSION,
    METRICS_SCHEMA_ID,
    METRICS_SCHEMA_VERSION,
    TRACE_SCHEMA_ID,
    TRACE_SCHEMA_VERSION,
    validate_document,
    validate_flightrec_document,
    validate_log_document,
    validate_metrics_document,
    validate_trace_document,
)
from repro.obs.tracer import (
    DEFAULT_MAX_EVENTS,
    HOST_TRACK,
    SpanTracer,
    mint_trace_id,
)

__all__ = [
    "Obs",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "SpanTracer",
    "StructuredLogger",
    "FlightRecorder",
    "mint_trace_id",
    "recorder",
    "record_crash",
    "trace_document",
    "merge_trace_documents",
    "log_document",
    "flightrec_document",
    "dump_bundle",
    "summarize_trace",
    "summarize_metrics",
    "summarize_flightrec",
    "validate_document",
    "validate_metrics_document",
    "validate_trace_document",
    "validate_log_document",
    "validate_flightrec_document",
    "METRICS_SCHEMA_ID",
    "METRICS_SCHEMA_VERSION",
    "TRACE_SCHEMA_ID",
    "TRACE_SCHEMA_VERSION",
    "LOG_SCHEMA_ID",
    "LOG_SCHEMA_VERSION",
    "FLIGHTREC_SCHEMA_ID",
    "FLIGHTREC_SCHEMA_VERSION",
    "LATENCY_BUCKETS_S",
    "COUNT_BUCKETS",
    "DEFAULT_MAX_EVENTS",
    "HOST_TRACK",
]


class Obs:
    """The observability bundle handed to instrumented subsystems.

    An Obs with ``enabled=False`` is accepted everywhere but attaches
    nowhere — subsystems treat it exactly like ``obs=None``, keeping
    the disabled hot path to a single ``is None`` check.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        max_events: int = DEFAULT_MAX_EVENTS,
        clock: Callable[[], int] | None = None,
        trace_id: str | None = None,
        epoch_ns: int | None = None,
        metrics: MetricsRegistry | None = None,
        log_stream: Any | None = None,
        log_path: str | None = None,
    ) -> None:
        self.enabled = enabled
        # metrics= lets the service share one registry across per-job Obs
        # bundles; epoch_ns= puts per-job tracers on the service tracer's
        # time base so cross-object complete() spans align.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = SpanTracer(
            max_events=max_events,
            clock=clock,
            trace_id=trace_id,
            epoch_ns=epoch_ns,
        )
        self.log = StructuredLogger(
            tracer=self.tracer, stream=log_stream, path=log_path, clock=clock
        )

    @property
    def trace_id(self) -> str | None:
        """The request-scoped correlation id (None = uncorrelated)."""
        return self.tracer.trace_id

    # Convenience pass-throughs so call sites read obs.span(...) /
    # obs.counter(...) without reaching into the halves.

    def span(self, name: str, **kwargs: Any):
        return self.tracer.span(name, **kwargs)

    def instant(self, name: str, **kwargs: Any):
        return self.tracer.instant(name, **kwargs)

    def counter(self, name: str, help_text: str = "", unit: str = "", **labels):
        return self.metrics.counter(name, help_text, unit, **labels)

    def gauge(self, name: str, help_text: str = "", unit: str = "", **labels):
        return self.metrics.gauge(name, help_text, unit, **labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        unit: str = "",
        buckets: tuple[float, ...] = LATENCY_BUCKETS_S,
        **labels,
    ):
        return self.metrics.histogram(
            name, help_text, unit, buckets=buckets, **labels
        )

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def trace_document(self, **other_data: Any) -> dict[str, Any]:
        """The ``repro.obs/trace`` v1 document for everything recorded."""
        return trace_document(self.tracer, **other_data)

    def metrics_snapshot(self) -> dict[str, Any]:
        """The ``repro.obs/metrics`` v1 JSON document."""
        return self.metrics.snapshot()

    def log_document(self) -> dict[str, Any]:
        """The ``repro.obs/log`` v1 document for the retained log tail."""
        return log_document(self.log.records())

    def to_prometheus(self) -> str:
        """The Prometheus text exposition of all metric families."""
        return self.metrics.to_prometheus()


def effective_obs(obs: Obs | None) -> Obs | None:
    """Collapse a disabled Obs to ``None`` at attach time.

    Every subsystem boundary calls this once, so hot paths only ever
    test ``self._obs is not None``.
    """
    if obs is not None and obs.enabled:
        return obs
    return None
