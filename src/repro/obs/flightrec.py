# Determinism note: like the tracer, the flight recorder is host-side
# diagnostics — it stamps ring events with the wall clock taken as a
# clock *reference* (perf_counter_ns, so DET001 sees no call site), and
# nothing it records ever flows back into simulated state.
"""Always-on crash flight recorder: a bounded ring of recent events.

Every process keeps one :class:`FlightRecorder` (the module singleton
returned by :func:`recorder`): a fixed-capacity deque of the most recent
observability events — tracer spans and instants (fed by
:class:`~repro.obs.tracer.SpanTracer` whenever tracing is active),
structured log records (fed by :class:`~repro.obs.log.StructuredLogger`),
and unconditional coarse breadcrumbs at cold orchestration boundaries
(suite entry start/end, pool task shells).  The ring costs one deque
append per recorded event and nothing at all on the obs-disabled
simulator dispatch path (the ``obs.flightrec_overhead`` bench kernel
guards the budget).

When something dies — a pool task raises, an invariant trips, a service
job fails — :func:`dump_bundle` freezes the ring into a schema-tagged
``repro.obs/flightrec`` v1 bundle (last-N events, optional metrics
snapshot, config fingerprint and cache-key digests) and writes it to the
directory named by ``$REPRO_FLIGHTREC_DIR`` (no directory configured =
no file, the ring alone).  ``repro-zen2 obs report`` digests bundles;
``repro-zen2 obs validate`` checks them.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.obs.schema import FLIGHTREC_SCHEMA_ID, FLIGHTREC_SCHEMA_VERSION

#: Default ring capacity — enough tail to see what led up to a crash
#: while bounding the bundle to a few hundred KB.
DEFAULT_CAPACITY = 4096

#: Environment variable naming the bundle output directory.
ENV_DIR = "REPRO_FLIGHTREC_DIR"


class FlightRecorder:
    """Bounded ring of recent observability events for one process."""

    def __init__(
        self,
        *,
        capacity: int = DEFAULT_CAPACITY,
        clock: Callable[[], int] | None = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._clock = clock if clock is not None else time.perf_counter_ns
        self._epoch_ns = self._clock()
        self._events: deque[dict[str, Any]] = deque(maxlen=capacity)
        #: Events evicted because the ring was full.
        self.dropped = 0
        #: Free-form process context merged into every bundle (e.g. the
        #: suite entry a worker is running, a service job id).
        self.context: dict[str, Any] = {}

    def push(self, record: dict[str, Any]) -> None:
        """Append one pre-built event dict (tracer span/instant, log record).

        Declared hot in ``lint-effects.regions.json``: fed from the
        tracer commit path, so it must stay one bounded-deque append.
        """
        events = self._events
        if len(events) == self.capacity:
            self.dropped += 1
        events.append(record)

    def note(self, name: str, **fields: Any) -> dict[str, Any]:
        """Record a breadcrumb: cheap, unconditional, cold-path only."""
        record: dict[str, Any] = {
            "kind": "note",
            "name": name,
            "t_wall_ns": self._clock() - self._epoch_ns,
        }
        if fields:
            record["args"] = fields
        self.push(record)
        return record

    def events(self) -> list[dict[str, Any]]:
        """The retained events, oldest first."""
        return list(self._events)

    def clear(self) -> None:
        """Reset the ring (tests and long-lived daemons between jobs)."""
        self._events.clear()
        self.dropped = 0
        self.context.clear()

    def __len__(self) -> int:
        return len(self._events)


#: The per-process always-on recorder.  Workers forked by the pool
#: inherit a copy at fork time and keep recording independently.
_RECORDER = FlightRecorder()

#: Monotonic bundle counter, so one process can dump repeatedly without
#: clobbering earlier bundles (sequence-derived, never wall clock).
_DUMP_SEQ = 0


def recorder() -> FlightRecorder:
    """This process's flight recorder."""
    return _RECORDER


def flightrec_document(
    rec: FlightRecorder,
    reason: str,
    *,
    metrics: dict[str, Any] | None = None,
    config: dict[str, Any] | None = None,
    cache_keys: list[str] | None = None,
    trace_id: str | None = None,
) -> dict[str, Any]:
    """Freeze a recorder into the ``repro.obs/flightrec`` v1 bundle
    (this schema's one writer site)."""
    return {
        "schema": FLIGHTREC_SCHEMA_ID,
        "schema_version": FLIGHTREC_SCHEMA_VERSION,
        "reason": str(reason),
        "pid": os.getpid(),
        "events": rec.events(),
        "dropped": int(rec.dropped),
        "context": dict(rec.context),
        "trace_id": trace_id,
        "metrics": metrics,
        "config": config,
        "cache_keys": sorted(cache_keys or []),
    }


def dump_dir() -> str | None:
    """The configured bundle directory, or None (dumping disabled)."""
    return os.environ.get(ENV_DIR) or None


def dump_bundle(
    doc: dict[str, Any], *, directory: str | None = None
) -> str | None:
    """Write a bundle document to the configured directory.

    Returns the file path, or None when no directory is configured —
    the ring still holds the events, there is just nowhere to put them.
    The write is atomic (rename) so a half-written bundle never passes
    validation.
    """
    global _DUMP_SEQ
    directory = directory if directory is not None else dump_dir()
    if directory is None:
        return None
    os.makedirs(directory, exist_ok=True)
    _DUMP_SEQ += 1
    name = f"flightrec-{os.getpid()}-{_DUMP_SEQ:04d}.json"
    path = os.path.join(directory, name)
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def record_crash(
    reason: str,
    *,
    metrics: dict[str, Any] | None = None,
    config: dict[str, Any] | None = None,
    cache_keys: list[str] | None = None,
    trace_id: str | None = None,
    directory: str | None = None,
) -> str | None:
    """Breadcrumb + bundle in one call — the crash-path convenience.

    Used by the pool task shell, the invariant monitor, and the service
    job-failure path; safe to call with no directory configured.
    """
    rec = recorder()
    rec.note("flightrec.dump", reason=str(reason))
    doc = flightrec_document(
        rec,
        reason,
        metrics=metrics,
        config=config,
        cache_keys=cache_keys,
        trace_id=trace_id,
    )
    return dump_bundle(doc, directory=directory)


def summarize_flightrec(doc: dict[str, Any]) -> str:
    """Human-readable digest of one bundle (``repro-zen2 obs report``)."""
    events = doc.get("events") or []
    kinds: dict[str, int] = {}
    for ev in events:
        if isinstance(ev, dict):
            kind = str(ev.get("kind", "?"))
            kinds[kind] = kinds.get(kind, 0) + 1
    lines = [
        f"flight recorder bundle: pid {doc.get('pid')}, "
        f"{len(events)} event(s), {doc.get('dropped', 0)} dropped",
        f"  reason:   {doc.get('reason')}",
    ]
    if doc.get("trace_id"):
        lines.append(f"  trace_id: {doc['trace_id']}")
    context = doc.get("context") or {}
    if context:
        ctx = ", ".join(f"{k}={v}" for k, v in sorted(context.items()))
        lines.append(f"  context:  {ctx}")
    if kinds:
        mix = ", ".join(f"{k}={n}" for k, n in sorted(kinds.items()))
        lines.append(f"  events:   {mix}")
    config = doc.get("config") or {}
    if config:
        lines.append(f"  config:   {len(config)} fingerprint field(s)")
    cache_keys = doc.get("cache_keys") or []
    if cache_keys:
        lines.append(f"  cache:    {len(cache_keys)} entry key digest(s)")
    metrics = doc.get("metrics")
    if isinstance(metrics, dict):
        lines.append(
            f"  metrics:  {len(metrics.get('metrics', []))} families at dump"
        )
    tail = [ev for ev in events if isinstance(ev, dict)][-8:]
    if tail:
        lines.append("  tail:")
        for ev in tail:
            label = ev.get("name") or ev.get("event") or "?"
            lines.append(f"    {ev.get('kind', '?'):<8s} {label}")
    return "\n".join(lines)
