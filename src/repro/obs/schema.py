"""Schema ids and validators for the ``repro.obs`` export documents.

* ``repro.obs/metrics`` v1 — the JSON snapshot of a
  :class:`~repro.obs.metrics.MetricsRegistry`;
* ``repro.obs/trace`` v1 — the Chrome-trace-event (Perfetto-loadable)
  timeline produced by :mod:`repro.obs.export`;
* ``repro.obs/log`` v1 — a batch of structured JSON-line log records
  from :class:`~repro.obs.log.StructuredLogger`;
* ``repro.obs/flightrec`` v1 — a crash-diagnostic bundle dumped by
  :mod:`repro.obs.flightrec` (last-N ring events, metrics snapshot,
  config and cache-key digests).

Both validators mirror :func:`repro.bench.schema.validate_document`:
they take a parsed JSON object and return a list of human-readable
problems (empty = conforming), re-deriving internal consistency — e.g.
that histogram buckets are cumulative and complete-span events never
partially overlap within a track — rather than only checking shapes.
The CI traced-smoke job and ``repro-zen2 obs validate`` both run them.
"""

from __future__ import annotations

from typing import Any

METRICS_SCHEMA_ID = "repro.obs/metrics"
METRICS_SCHEMA_VERSION = 1

TRACE_SCHEMA_ID = "repro.obs/trace"
TRACE_SCHEMA_VERSION = 1

LOG_SCHEMA_ID = "repro.obs/log"
LOG_SCHEMA_VERSION = 1

FLIGHTREC_SCHEMA_ID = "repro.obs/flightrec"
FLIGHTREC_SCHEMA_VERSION = 1

_METRIC_TYPES = ("counter", "gauge", "histogram")
_EVENT_PHASES = ("X", "i", "M")

#: Severity levels a structured log record may carry, least to most.
LOG_LEVELS = ("debug", "info", "warning", "error")

#: Record kinds the flight-recorder ring accepts: tracer spans and
#: instants, structured log records, and bare breadcrumb notes.
FLIGHTREC_EVENT_KINDS = ("span", "instant", "log", "note")


def _is_num(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _check_labels(labels: Any, where: str, errors: list[str]) -> None:
    if not isinstance(labels, dict):
        errors.append(f"{where}.labels must be an object")
        return
    for key, value in labels.items():
        if not isinstance(key, str) or not isinstance(value, str):
            errors.append(f"{where}.labels must map strings to strings")
            return


# ---------------------------------------------------------------------------
# metrics document
# ---------------------------------------------------------------------------


def validate_metrics_document(doc: object) -> list[str]:
    """Validate a ``repro.obs/metrics`` v1 document."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"document must be a JSON object, got {type(doc).__name__}"]
    if doc.get("schema") != METRICS_SCHEMA_ID:
        errors.append(
            f"schema must be {METRICS_SCHEMA_ID!r}, got {doc.get('schema')!r}"
        )
    if doc.get("schema_version") != METRICS_SCHEMA_VERSION:
        errors.append(
            f"schema_version must be {METRICS_SCHEMA_VERSION}, "
            f"got {doc.get('schema_version')!r}"
        )
    metrics = doc.get("metrics")
    if not isinstance(metrics, list):
        errors.append("metrics must be a list")
        return errors
    seen: set[str] = set()
    for i, fam in enumerate(metrics):
        where = f"metrics[{i}]"
        if not isinstance(fam, dict):
            errors.append(f"{where} must be an object")
            continue
        name = fam.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}.name must be a non-empty string")
        else:
            if name in seen:
                errors.append(f"{where}: duplicate metric name {name!r}")
            seen.add(name)
            where = f"metrics[{name}]"
        kind = fam.get("type")
        if kind not in _METRIC_TYPES:
            errors.append(f"{where}.type must be one of {_METRIC_TYPES}")
            continue
        for key in ("help", "unit"):
            if not isinstance(fam.get(key), str):
                errors.append(f"{where}.{key} must be a string")
        series = fam.get("series")
        if not isinstance(series, list):
            errors.append(f"{where}.series must be a list")
            continue
        if kind == "histogram":
            _validate_histogram_family(fam, series, where, errors)
        else:
            for j, s in enumerate(series):
                swhere = f"{where}.series[{j}]"
                if not isinstance(s, dict):
                    errors.append(f"{swhere} must be an object")
                    continue
                _check_labels(s.get("labels"), swhere, errors)
                value = s.get("value")
                if not _is_num(value):
                    errors.append(f"{swhere}.value must be a number")
                elif kind == "counter" and value < 0:
                    errors.append(f"{swhere}.value must be >= 0 for a counter")
        _check_unique_labels(series, where, errors)
    return errors


def _validate_histogram_family(
    fam: dict, series: list, where: str, errors: list[str]
) -> None:
    buckets = fam.get("buckets")
    if (
        not isinstance(buckets, list)
        or not buckets
        or not all(_is_num(b) for b in buckets)
    ):
        errors.append(f"{where}.buckets must be a non-empty list of numbers")
        return
    if buckets != sorted(buckets) or len(set(buckets)) != len(buckets):
        errors.append(f"{where}.buckets must be strictly increasing")
    for j, s in enumerate(series):
        swhere = f"{where}.series[{j}]"
        if not isinstance(s, dict):
            errors.append(f"{swhere} must be an object")
            continue
        _check_labels(s.get("labels"), swhere, errors)
        counts = s.get("bucket_counts")
        if not isinstance(counts, list) or not all(
            _is_int(c) and c >= 0 for c in counts
        ):
            errors.append(
                f"{swhere}.bucket_counts must be a list of non-negative ints"
            )
            continue
        if len(counts) != len(buckets) + 1:
            errors.append(
                f"{swhere}.bucket_counts must have len(buckets)+1 entries "
                "(the +Inf bucket is last)"
            )
            continue
        if any(a > b for a, b in zip(counts, counts[1:])):
            errors.append(
                f"{swhere}.bucket_counts must be cumulative (non-decreasing)"
            )
        count = s.get("count")
        if not _is_int(count) or count < 0:
            errors.append(f"{swhere}.count must be a non-negative int")
        elif counts[-1] != count:
            errors.append(f"{swhere}: +Inf bucket ({counts[-1]}) != count ({count})")
        if not _is_num(s.get("sum")):
            errors.append(f"{swhere}.sum must be a number")


def _check_unique_labels(series: list, where: str, errors: list[str]) -> None:
    seen: set[tuple] = set()
    for s in series:
        if not isinstance(s, dict) or not isinstance(s.get("labels"), dict):
            continue
        key = tuple(sorted((str(k), str(v)) for k, v in s["labels"].items()))
        if key in seen:
            errors.append(f"{where}: duplicate label set {dict(key)!r}")
        seen.add(key)


# ---------------------------------------------------------------------------
# trace document
# ---------------------------------------------------------------------------


def validate_trace_document(doc: object) -> list[str]:
    """Validate a ``repro.obs/trace`` v1 (Chrome trace event) document."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"document must be a JSON object, got {type(doc).__name__}"]
    if doc.get("schema") != TRACE_SCHEMA_ID:
        errors.append(
            f"schema must be {TRACE_SCHEMA_ID!r}, got {doc.get('schema')!r}"
        )
    if doc.get("schema_version") != TRACE_SCHEMA_VERSION:
        errors.append(
            f"schema_version must be {TRACE_SCHEMA_VERSION}, "
            f"got {doc.get('schema_version')!r}"
        )
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        errors.append("traceEvents must be a list")
        return errors
    span_ids: set[tuple[Any, int]] = set()
    complete: dict[tuple[int, int], list[tuple[float, float]]] = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where} must be an object")
            continue
        ph = ev.get("ph")
        if ph not in _EVENT_PHASES:
            errors.append(f"{where}.ph must be one of {_EVENT_PHASES}")
            continue
        if not isinstance(ev.get("name"), str) or not ev.get("name"):
            errors.append(f"{where}.name must be a non-empty string")
        for key in ("pid", "tid"):
            if not _is_int(ev.get(key)):
                errors.append(f"{where}.{key} must be an integer")
        if "args" in ev and not isinstance(ev["args"], dict):
            errors.append(f"{where}.args must be an object")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not _is_num(ts) or ts < 0:
            errors.append(f"{where}.ts must be a non-negative number")
            continue
        if ph == "X":
            dur = ev.get("dur")
            if not _is_num(dur) or dur < 0:
                errors.append(f"{where}.dur must be a non-negative number")
                continue
            span_id = (ev.get("args") or {}).get("span_id")
            if span_id is not None:
                # Ids are unique per tracer; merged documents remap pids,
                # so uniqueness is scoped to (pid, span_id).
                key = (ev.get("pid"), span_id)
                if key in span_ids:
                    errors.append(f"{where}: duplicate span_id {span_id}")
                span_ids.add(key)
            if _is_int(ev.get("pid")) and _is_int(ev.get("tid")):
                complete.setdefault((ev["pid"], ev["tid"]), []).append(
                    (float(ts), float(ts) + float(dur))
                )
        elif ph == "i" and ev.get("s") not in ("t", "p", "g"):
            errors.append(f"{where}.s must be 't', 'p' or 'g' for an instant")
    for (pid, tid), intervals in sorted(complete.items()):
        errors.extend(_check_nesting(pid, tid, intervals))
    return errors


def _check_nesting(
    pid: int, tid: int, intervals: list[tuple[float, float]]
) -> list[str]:
    """Complete events on one track must nest (contain) — never partially
    overlap — or the viewer renders a corrupted flame graph."""
    stack: list[tuple[float, float]] = []
    for t0, t1 in sorted(intervals):
        while stack and stack[-1][1] <= t0:
            stack.pop()
        if stack and t1 > stack[-1][1]:
            return [
                f"track pid={pid} tid={tid}: span [{t0}, {t1}] partially "
                f"overlaps enclosing span [{stack[-1][0]}, {stack[-1][1]}]"
            ]
        stack.append((t0, t1))
    return []


# ---------------------------------------------------------------------------
# structured-log document
# ---------------------------------------------------------------------------


def _check_log_record(rec: Any, where: str, errors: list[str]) -> None:
    if not isinstance(rec, dict):
        errors.append(f"{where} must be an object")
        return
    if rec.get("level") not in LOG_LEVELS:
        errors.append(f"{where}.level must be one of {LOG_LEVELS}")
    event = rec.get("event")
    if not isinstance(event, str) or not event:
        errors.append(f"{where}.event must be a non-empty string")
    t_wall = rec.get("t_wall_ns")
    if not _is_int(t_wall) or t_wall < 0:
        errors.append(f"{where}.t_wall_ns must be a non-negative integer")
    if not _is_int(rec.get("pid")):
        errors.append(f"{where}.pid must be an integer")
    trace_id = rec.get("trace_id")
    if trace_id is not None and (
        not isinstance(trace_id, str) or not trace_id
    ):
        errors.append(f"{where}.trace_id must be null or a non-empty string")
    span_id = rec.get("span_id")
    if span_id is not None and (not _is_int(span_id) or span_id < 1):
        errors.append(f"{where}.span_id must be null or a positive integer")


def validate_log_document(doc: object) -> list[str]:
    """Validate a ``repro.obs/log`` v1 document."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"document must be a JSON object, got {type(doc).__name__}"]
    if doc.get("schema") != LOG_SCHEMA_ID:
        errors.append(
            f"schema must be {LOG_SCHEMA_ID!r}, got {doc.get('schema')!r}"
        )
    if doc.get("schema_version") != LOG_SCHEMA_VERSION:
        errors.append(
            f"schema_version must be {LOG_SCHEMA_VERSION}, "
            f"got {doc.get('schema_version')!r}"
        )
    if not _is_int(doc.get("pid")):
        errors.append("pid must be an integer")
    records = doc.get("records")
    if not isinstance(records, list):
        errors.append("records must be a list")
        return errors
    for i, rec in enumerate(records):
        _check_log_record(rec, f"records[{i}]", errors)
    return errors


# ---------------------------------------------------------------------------
# flight-recorder bundle
# ---------------------------------------------------------------------------


def validate_flightrec_document(doc: object) -> list[str]:
    """Validate a ``repro.obs/flightrec`` v1 diagnostic bundle."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"document must be a JSON object, got {type(doc).__name__}"]
    if doc.get("schema") != FLIGHTREC_SCHEMA_ID:
        errors.append(
            f"schema must be {FLIGHTREC_SCHEMA_ID!r}, got {doc.get('schema')!r}"
        )
    if doc.get("schema_version") != FLIGHTREC_SCHEMA_VERSION:
        errors.append(
            f"schema_version must be {FLIGHTREC_SCHEMA_VERSION}, "
            f"got {doc.get('schema_version')!r}"
        )
    reason = doc.get("reason")
    if not isinstance(reason, str) or not reason:
        errors.append("reason must be a non-empty string")
    if not _is_int(doc.get("pid")):
        errors.append("pid must be an integer")
    dropped = doc.get("dropped")
    if not _is_int(dropped) or dropped < 0:
        errors.append("dropped must be a non-negative integer")
    trace_id = doc.get("trace_id")
    if trace_id is not None and (
        not isinstance(trace_id, str) or not trace_id
    ):
        errors.append("trace_id must be null or a non-empty string")
    if not isinstance(doc.get("context"), dict):
        errors.append("context must be an object")
    events = doc.get("events")
    if not isinstance(events, list):
        errors.append("events must be a list")
    else:
        for i, ev in enumerate(events):
            where = f"events[{i}]"
            if not isinstance(ev, dict):
                errors.append(f"{where} must be an object")
                continue
            if ev.get("kind") not in FLIGHTREC_EVENT_KINDS:
                errors.append(
                    f"{where}.kind must be one of {FLIGHTREC_EVENT_KINDS}"
                )
            if not isinstance(ev.get("name"), str) and not isinstance(
                ev.get("event"), str
            ):
                errors.append(f"{where} must carry a name or event string")
    metrics = doc.get("metrics")
    if metrics is not None:
        nested = validate_metrics_document(metrics)
        errors.extend(f"metrics: {problem}" for problem in nested)
    config = doc.get("config")
    if config is not None and not isinstance(config, dict):
        errors.append("config must be null or an object (the fingerprint)")
    cache_keys = doc.get("cache_keys")
    if not isinstance(cache_keys, list) or not all(
        isinstance(k, str) and k for k in cache_keys
    ):
        errors.append("cache_keys must be a list of non-empty strings")
    return errors


def sniff_schema(doc: object) -> str | None:
    """The ``schema`` id of a parsed document, if it carries one."""
    if isinstance(doc, dict) and isinstance(doc.get("schema"), str):
        return doc["schema"]
    return None


def validate_document(doc: object) -> list[str]:
    """Dispatch on the document's ``schema`` id."""
    schema = sniff_schema(doc)
    if schema == METRICS_SCHEMA_ID:
        return validate_metrics_document(doc)
    if schema == TRACE_SCHEMA_ID:
        return validate_trace_document(doc)
    if schema == LOG_SCHEMA_ID:
        return validate_log_document(doc)
    if schema == FLIGHTREC_SCHEMA_ID:
        return validate_flightrec_document(doc)
    return [
        f"unknown or missing schema id {schema!r}; expected one of "
        f"{METRICS_SCHEMA_ID!r}, {TRACE_SCHEMA_ID!r}, {LOG_SCHEMA_ID!r}, "
        f"{FLIGHTREC_SCHEMA_ID!r}"
    ]
