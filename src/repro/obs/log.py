# Determinism note: log records are host-side diagnostics — they carry
# wall timestamps (perf_counter_ns taken as a clock *reference*, so
# DET001 sees no call site) relative to the logger's epoch, and nothing
# logged ever feeds back into simulated state.
"""Structured JSON-line logging with trace correlation.

A :class:`StructuredLogger` emits one dict per event: a fixed envelope
(``t_wall_ns``, ``level``, ``event``, ``pid``) plus trace correlation
(``trace_id`` from the bound tracer, ``span_id`` of the innermost open
span at the call site) plus the caller's free-form fields.  Every record
goes three places:

* a bounded in-memory tail (for :func:`log_document` export);
* the process :mod:`~repro.obs.flightrec` ring (so crashes replay the
  recent log alongside spans);
* optionally a sink — any ``.write()`` stream or a file path — as one
  JSON line per record (``jq``-able, ``sort_keys`` so identical events
  serialize identically).

``repro.service`` and ``repro.parallel`` log through the Obs bundle's
``obs.log``; the export envelope is schema-tagged ``repro.obs/log`` v1
with :func:`log_document` as its single writer.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from typing import Any, Callable, TextIO

from repro.errors import ConfigurationError
from repro.obs.schema import LOG_LEVELS, LOG_SCHEMA_ID, LOG_SCHEMA_VERSION
from repro.obs.tracer import SpanTracer

#: In-memory record tail kept for log_document export.
DEFAULT_MAX_RECORDS = 10_000

#: Envelope keys a caller's **fields may not override.
_RESERVED = ("t_wall_ns", "level", "event", "pid", "trace_id", "span_id")


class StructuredLogger:
    """JSON-line logger bound to (at most) one tracer for correlation."""

    def __init__(
        self,
        *,
        tracer: SpanTracer | None = None,
        stream: TextIO | None = None,
        path: str | None = None,
        max_records: int = DEFAULT_MAX_RECORDS,
        clock: Callable[[], int] | None = None,
    ) -> None:
        if max_records < 1:
            raise ConfigurationError(
                f"max_records must be >= 1, got {max_records}"
            )
        if stream is not None and path is not None:
            raise ConfigurationError("pass either stream= or path=, not both")
        self._tracer = tracer
        self._clock = clock if clock is not None else time.perf_counter_ns
        self._epoch_ns = (
            tracer.epoch_ns if tracer is not None else self._clock()
        )
        self._records: deque[dict[str, Any]] = deque(maxlen=max_records)
        self._stream = stream
        self._path = path
        self._file: TextIO | None = None
        self.dropped = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def _sink(self) -> TextIO | None:
        if self._stream is not None:
            return self._stream
        if self._path is not None and self._file is None:
            self._file = open(self._path, "a")
        return self._file

    def log(self, level: str, event: str, **fields: Any) -> dict[str, Any]:
        """Record one structured event; returns the record dict."""
        if level not in LOG_LEVELS:
            raise ConfigurationError(
                f"level must be one of {LOG_LEVELS}, got {level!r}"
            )
        if not event:
            raise ConfigurationError("event must be a non-empty string")
        bad = [key for key in fields if key in _RESERVED]
        if bad:
            raise ConfigurationError(
                f"field name(s) {bad} collide with the record envelope"
            )
        tracer = self._tracer
        record: dict[str, Any] = {
            "t_wall_ns": self._clock() - self._epoch_ns,
            "level": level,
            "event": event,
            "pid": os.getpid(),
            "trace_id": tracer.trace_id if tracer is not None else None,
            "span_id": (
                tracer.current_span_id if tracer is not None else None
            ),
        }
        record.update(fields)
        if len(self._records) == self._records.maxlen:
            self.dropped += 1
        self._records.append(record)
        from repro.obs.flightrec import recorder

        recorder().push({"kind": "log", **record})
        sink = self._sink()
        if sink is not None:
            sink.write(json.dumps(record, sort_keys=True) + "\n")
            sink.flush()
        return record

    def debug(self, event: str, **fields: Any) -> dict[str, Any]:
        return self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> dict[str, Any]:
        return self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> dict[str, Any]:
        return self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> dict[str, Any]:
        return self.log("error", event, **fields)

    # ------------------------------------------------------------------
    # access / export
    # ------------------------------------------------------------------

    def records(self) -> list[dict[str, Any]]:
        """The retained record tail, oldest first."""
        return list(self._records)

    def close(self) -> None:
        """Close a path-opened sink (idempotent; streams stay open)."""
        if self._file is not None:
            self._file.close()
            self._file = None

    def __len__(self) -> int:
        return len(self._records)


def log_document(records: list[dict[str, Any]]) -> dict[str, Any]:
    """The ``repro.obs/log`` v1 envelope (this schema's one writer)."""
    return {
        "schema": LOG_SCHEMA_ID,
        "schema_version": LOG_SCHEMA_VERSION,
        "pid": os.getpid(),
        "records": list(records),
    }
