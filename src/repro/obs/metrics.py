"""Metrics registry: counters, gauges, histograms with labeled series.

The registry is the numeric half of :mod:`repro.obs` (the span tracer is
the other).  It follows the Prometheus data model — a *family* per metric
name, one *series* per label combination — but stays deliberately small:

* **Counter** — monotonically non-decreasing accumulator (``inc``);
* **Gauge** — last-written value (``set``);
* **Histogram** — fixed, immutable bucket layout declared at family
  creation; observations land in cumulative buckets plus ``sum``/``count``.

Two export forms, both schema-stable:

* :meth:`MetricsRegistry.to_prometheus` — the text exposition format
  (``# HELP`` / ``# TYPE`` / ``name{labels} value``), loadable by any
  Prometheus scraper or ``promtool``;
* :meth:`MetricsRegistry.snapshot` — a schema-versioned JSON document
  (``repro.obs/metrics`` v1) validated by
  :func:`repro.obs.schema.validate_metrics_document`.

Determinism: the registry holds plain dicts keyed by insertion order and
sorted label tuples; identical instrumented runs produce byte-identical
snapshots.  Nothing here reads a clock — latency observations are handed
in by callers.
"""

from __future__ import annotations

import math
from typing import Any, Iterator

from repro.errors import ConfigurationError

#: Canonical latency bucket layout (seconds): 1 us .. ~100 s, factor 10
#: with a 3x midpoint — wide enough for cache lookups and suite runs alike.
LATENCY_BUCKETS_S = (
    1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3,
    1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0, 30.0, 100.0,
)

#: Canonical count bucket layout (events per batch, queue depths, ...).
COUNT_BUCKETS = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1_000.0, 2_000.0, 5_000.0, 10_000.0, 50_000.0, 100_000.0,
)

_VALID_TYPES = ("counter", "gauge", "histogram")


def _check_name(name: str) -> str:
    if not name or not all(
        ch.isalnum() or ch in "._" for ch in name
    ) or name[0] in "._0123456789":
        raise ConfigurationError(
            f"invalid metric name {name!r}: use dotted lowercase identifiers "
            "(e.g. 'sim.events_dispatched')"
        )
    return name


def prometheus_name(name: str) -> str:
    """Mangle a dotted metric name into the Prometheus charset."""
    return "repro_" + name.replace(".", "_")


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Series:
    """One (family, label-set) time series."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: tuple[tuple[str, str], ...]) -> None:
        self.labels = labels
        self.value = 0.0


class _HistogramSeries:
    """Cumulative bucket counts plus sum/count for one label set."""

    __slots__ = ("labels", "bucket_counts", "sum", "count")

    def __init__(
        self, labels: tuple[tuple[str, str], ...], n_buckets: int
    ) -> None:
        self.labels = labels
        # One slot per finite bound plus the +Inf overflow bucket.
        self.bucket_counts = [0] * (n_buckets + 1)
        self.sum = 0.0
        self.count = 0


class Counter:
    """Handle for one counter series."""

    __slots__ = ("_series",)

    def __init__(self, series: _Series) -> None:
        self._series = series

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter increments must be >= 0, got {amount}"
            )
        self._series.value += amount

    @property
    def value(self) -> float:
        return self._series.value


class Gauge:
    """Handle for one gauge series."""

    __slots__ = ("_series",)

    def __init__(self, series: _Series) -> None:
        self._series = series

    def set(self, value: float) -> None:
        self._series.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._series.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._series.value -= amount

    @property
    def value(self) -> float:
        return self._series.value


class Histogram:
    """Handle for one histogram series (fixed bucket layout)."""

    __slots__ = ("_series", "_bounds")

    def __init__(self, series: _HistogramSeries, bounds: tuple[float, ...]) -> None:
        self._series = series
        self._bounds = bounds

    def observe(self, value: float) -> None:
        s = self._series
        # Buckets are cumulative (Prometheus semantics): every bucket
        # whose upper bound admits the value counts it; +Inf always does.
        for i, bound in enumerate(self._bounds):
            if value <= bound:
                s.bucket_counts[i] += 1
        s.bucket_counts[-1] += 1
        s.sum += value
        s.count += 1

    @property
    def count(self) -> int:
        return self._series.count

    @property
    def sum(self) -> float:
        return self._series.sum


class MetricFamily:
    """All series of one metric name."""

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        unit: str = "",
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        self.name = _check_name(name)
        if kind not in _VALID_TYPES:
            raise ConfigurationError(f"unknown metric type {kind!r}")
        self.kind = kind
        self.help_text = help_text
        self.unit = unit
        if kind == "histogram":
            if not buckets:
                raise ConfigurationError(
                    f"histogram {name!r} needs a fixed bucket layout"
                )
            ordered = tuple(float(b) for b in buckets)
            if list(ordered) != sorted(set(ordered)):
                raise ConfigurationError(
                    f"histogram {name!r} buckets must be strictly increasing"
                )
            if any(math.isinf(b) for b in ordered):
                raise ConfigurationError(
                    f"histogram {name!r}: +Inf bucket is implicit, do not list it"
                )
            self.buckets = ordered
        else:
            if buckets is not None:
                raise ConfigurationError(
                    f"{kind} {name!r} does not take buckets"
                )
            self.buckets = None
        self._series: dict[tuple[tuple[str, str], ...], Any] = {}

    def labels(self, **labels: str) -> Counter | Gauge | Histogram:
        """The series handle for one label combination (created on demand)."""
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            if self.kind == "histogram":
                series = _HistogramSeries(key, len(self.buckets))
            else:
                series = _Series(key)
            self._series[key] = series
        if self.kind == "counter":
            return Counter(series)
        if self.kind == "gauge":
            return Gauge(series)
        return Histogram(series, self.buckets)

    def series(self) -> Iterator[Any]:
        """All series, sorted by label tuple for stable export."""
        for key in sorted(self._series):
            yield self._series[key]


class MetricsRegistry:
    """Ordered collection of metric families, one per name."""

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        unit: str,
        buckets: tuple[float, ...] | None = None,
    ) -> MetricFamily:
        fam = self._families.get(name)
        if fam is not None:
            if fam.kind != kind:
                raise ConfigurationError(
                    f"metric {name!r} already registered as {fam.kind}, "
                    f"requested {kind}"
                )
            return fam
        fam = MetricFamily(name, kind, help_text, unit, buckets)
        self._families[name] = fam
        return fam

    def counter(self, name: str, help_text: str = "", unit: str = "", **labels) -> Counter:
        """A counter series (family auto-registered on first use)."""
        return self._family(name, "counter", help_text, unit).labels(**labels)

    def gauge(self, name: str, help_text: str = "", unit: str = "", **labels) -> Gauge:
        """A gauge series."""
        return self._family(name, "gauge", help_text, unit).labels(**labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        unit: str = "",
        buckets: tuple[float, ...] = LATENCY_BUCKETS_S,
        **labels,
    ) -> Histogram:
        """A histogram series with a fixed bucket layout."""
        return self._family(name, "histogram", help_text, unit, buckets).labels(
            **labels
        )

    def families(self) -> list[MetricFamily]:
        return list(self._families.values())

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """The schema-versioned JSON document (``repro.obs/metrics`` v1)."""
        from repro.obs.schema import METRICS_SCHEMA_ID, METRICS_SCHEMA_VERSION

        metrics = []
        for fam in self._families.values():
            entry: dict[str, Any] = {
                "name": fam.name,
                "type": fam.kind,
                "help": fam.help_text,
                "unit": fam.unit,
            }
            if fam.kind == "histogram":
                entry["buckets"] = list(fam.buckets)
                entry["series"] = [
                    {
                        "labels": dict(s.labels),
                        "bucket_counts": list(s.bucket_counts),
                        "sum": s.sum,
                        "count": s.count,
                    }
                    for s in fam.series()
                ]
            else:
                entry["series"] = [
                    {"labels": dict(s.labels), "value": s.value}
                    for s in fam.series()
                ]
            metrics.append(entry)
        return {
            "schema": METRICS_SCHEMA_ID,
            "schema_version": METRICS_SCHEMA_VERSION,
            "metrics": metrics,
        }

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (0.0.4)."""
        lines: list[str] = []
        for fam in self._families.values():
            pname = prometheus_name(fam.name)
            help_text = fam.help_text or fam.name
            if fam.unit:
                help_text += f" [{fam.unit}]"
            lines.append(f"# HELP {pname} {_escape_help(help_text)}")
            lines.append(f"# TYPE {pname} {fam.kind}")
            if fam.kind == "histogram":
                for s in fam.series():
                    bounds = [*fam.buckets, math.inf]
                    for bound, count in zip(bounds, s.bucket_counts):
                        le = "+Inf" if math.isinf(bound) else _fmt_value(bound)
                        labels = _fmt_labels((*s.labels, ("le", le)))
                        lines.append(f"{pname}_bucket{labels} {count}")
                    lines.append(
                        f"{pname}_sum{_fmt_labels(s.labels)} {_fmt_value(s.sum)}"
                    )
                    lines.append(
                        f"{pname}_count{_fmt_labels(s.labels)} {s.count}"
                    )
            else:
                for s in fam.series():
                    lines.append(
                        f"{pname}{_fmt_labels(s.labels)} {_fmt_value(s.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _fmt_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in labels)
    return "{" + inner + "}"
