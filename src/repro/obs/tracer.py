# Determinism note: the tracer is host-side observability — it
# timestamps spans with the wall clock (perf_counter_ns, taken as a
# clock *reference*, so DET001 sees no call site here) by design.  Wall
# times flow only into exported trace documents, never into simulated
# state, and span/event ids are sequence-derived so identical runs get
# identical ids (the determinism golden test pins suite output with
# tracing on vs off).
"""Span tracer: nested sim-time+wall-time spans with ring-buffered events.

A :class:`SpanTracer` records two record kinds into one bounded ring
buffer (oldest records are dropped once ``max_events`` is reached, and
the drop count is kept):

* **spans** — named, nested intervals.  Each span carries wall-clock
  start/end (nanoseconds relative to the tracer's epoch) and, where the
  instrumentation site has a simulator at hand, the sim-time interval it
  covered.  Only *completed* spans enter the buffer, so an exported
  trace never contains a dangling begin.
* **instants** — point events: invariant-monitor findings (with a
  ``severity`` label), bridged :class:`~repro.oslayer.tracing.TraceBuffer`
  tracepoints (``sched_waking``, ``power_cpu_frequency``, ...), pool
  retries, and the like.

Ids are derived from a per-tracer sequence counter — never from the wall
clock — so two identical runs assign identical ids (``repro.obs/trace``
documents differ only in the timings themselves).  Export to the
Chrome-trace-event / Perfetto-loadable JSON form lives in
:mod:`repro.obs.export`.
"""

from __future__ import annotations

import hashlib
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from repro.errors import ConfigurationError

#: Default ring capacity — ~200k records keeps a full suite run while
#: bounding memory to tens of MB.
DEFAULT_MAX_EVENTS = 200_000

#: Track name every host-side (orchestration) record lands on.
HOST_TRACK = "host"


def mint_trace_id(*parts: Any) -> str:
    """A deterministic 16-hex-char trace id from content parts.

    Content-derived (never wall clock), so identical runs mint identical
    ids: the suite hashes its config fingerprint, the service hashes the
    job id + job key.  Workers inherit the id through the trace context
    the parent ships with each :class:`repro.parallel.Task`.
    """
    blob = "\x1f".join(str(p) for p in parts)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


class SpanTracer:
    """Bounded recorder of completed spans and instant events."""

    def __init__(
        self,
        *,
        max_events: int = DEFAULT_MAX_EVENTS,
        clock: Callable[[], int] | None = None,
        trace_id: str | None = None,
        epoch_ns: int | None = None,
    ) -> None:
        if max_events < 1:
            raise ConfigurationError(
                f"max_events must be >= 1, got {max_events}"
            )
        self.max_events = max_events
        self._clock = clock if clock is not None else time.perf_counter_ns
        self._epoch_ns = epoch_ns if epoch_ns is not None else self._clock()
        self._records: deque[dict[str, Any]] = deque(maxlen=max_events)
        self._seq = 0
        self._stack: list[dict[str, Any]] = []
        #: Records dropped because the ring was full.
        self.dropped = 0
        self._track_counters: dict[str, int] = {}
        #: Request-scoped correlation id carried into exported documents
        #: and every structured log record (None = uncorrelated tracer).
        self.trace_id = trace_id
        from repro.obs.flightrec import recorder

        self._flightrec = recorder()

    # ------------------------------------------------------------------
    # identity / clocks
    # ------------------------------------------------------------------

    def _next_id(self) -> int:
        self._seq += 1
        return self._seq

    def now_ns(self) -> int:
        """Wall time relative to the tracer's epoch."""
        return self._clock() - self._epoch_ns

    @property
    def epoch_ns(self) -> int:
        """The absolute clock value this tracer's timestamps are relative
        to.  Passing it to another tracer's ``epoch_ns=`` puts both on
        one time base (the service does this per traced job, so HTTP
        accept / queue wait / suite spans land on a shared axis)."""
        return self._epoch_ns

    @property
    def current_span_id(self) -> int | None:
        """Id of the innermost open span (log correlation), or None."""
        return self._stack[-1]["id"] if self._stack else None

    def new_track(self, prefix: str) -> str:
        """A fresh deterministic track label (``prefix0``, ``prefix1``, ...).

        Used by :meth:`repro.machine.Machine.attach_obs` so every machine
        built during a traced run gets its own stable per-run identity.
        """
        index = self._track_counters.get(prefix, 0)
        self._track_counters[prefix] = index + 1
        return f"{prefix}{index}"

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def _append(self, record: dict[str, Any]) -> None:
        if len(self._records) == self.max_events:
            self.dropped += 1
        self._records.append(record)
        # Mirror every committed record into the process flight recorder
        # (one bounded-deque append; the record dict is shared, not
        # copied).  Costs nothing on the obs-disabled path — no tracer,
        # no commit.
        self._flightrec.push(record)

    def begin(
        self,
        name: str,
        *,
        cat: str = "host",
        track: str = HOST_TRACK,
        sim_ns: int | None = None,
        **args: Any,
    ) -> dict[str, Any]:
        """Open a span; pair with :meth:`end`.  Prefer :meth:`span`."""
        parent = self._stack[-1]["id"] if self._stack else 0
        record = {
            "kind": "span",
            "id": self._next_id(),
            "parent": parent,
            "name": name,
            "cat": cat,
            "track": track,
            "t0_wall_ns": self.now_ns(),
            "t1_wall_ns": None,
            "args": dict(args),
        }
        if sim_ns is not None:
            record["t0_sim_ns"] = int(sim_ns)
        self._stack.append(record)
        return record

    def end(self, *, sim_ns: int | None = None, **args: Any) -> dict[str, Any]:
        """Close the innermost open span and commit it to the ring."""
        if not self._stack:
            raise ConfigurationError("SpanTracer.end() without an open span")
        record = self._stack.pop()
        record["t1_wall_ns"] = self.now_ns()
        if sim_ns is not None:
            record["t1_sim_ns"] = int(sim_ns)
        if args:
            record["args"].update(args)
        self._append(record)
        return record

    @contextmanager
    def span(
        self,
        name: str,
        *,
        cat: str = "host",
        track: str = HOST_TRACK,
        sim_ns: int | None = None,
        **args: Any,
    ) -> Iterator[dict[str, Any]]:
        """Context manager around :meth:`begin`/:meth:`end`."""
        record = self.begin(name, cat=cat, track=track, sim_ns=sim_ns, **args)
        try:
            yield record
        finally:
            # The record is still on top unless the body misused
            # begin/end; unwind to it so nesting stays consistent.
            while self._stack and self._stack[-1] is not record:
                self.end()
            if self._stack:
                self.end()

    def complete(
        self,
        name: str,
        *,
        cat: str = "host",
        track: str = HOST_TRACK,
        t0_wall_ns: int,
        t1_wall_ns: int | None = None,
        sim_t0_ns: int | None = None,
        sim_t1_ns: int | None = None,
        lane: int | None = None,
        **args: Any,
    ) -> dict[str, Any]:
        """Commit an already-finished span without touching the stack.

        Hot instrumentation sites (``Simulator.run_until``) use this so
        a batch that dispatched nothing costs no record at all, and no
        stack push/pop happens per batch.  ``lane`` routes concurrent
        spans (e.g. one per pool task) onto separate export threads so
        they cannot partially overlap within one thread.
        """
        record = {
            "kind": "span",
            "id": self._next_id(),
            "parent": self._stack[-1]["id"] if self._stack else 0,
            "name": name,
            "cat": cat,
            "track": track,
            "t0_wall_ns": t0_wall_ns,
            "t1_wall_ns": self.now_ns() if t1_wall_ns is None else t1_wall_ns,
            "args": dict(args),
        }
        if sim_t0_ns is not None:
            record["t0_sim_ns"] = int(sim_t0_ns)
        if sim_t1_ns is not None:
            record["t1_sim_ns"] = int(sim_t1_ns)
        if lane is not None:
            record["lane"] = int(lane)
        self._append(record)
        return record

    def instant(
        self,
        name: str,
        *,
        cat: str = "host",
        track: str = HOST_TRACK,
        sim_ns: int | None = None,
        cpu: int | None = None,
        severity: str | None = None,
        **args: Any,
    ) -> dict[str, Any]:
        """Record a point event."""
        parent = self._stack[-1]["id"] if self._stack else 0
        record = {
            "kind": "instant",
            "id": self._next_id(),
            "parent": parent,
            "name": name,
            "cat": cat,
            "track": track,
            "t_wall_ns": self.now_ns(),
            "args": dict(args),
        }
        if sim_ns is not None:
            record["t_sim_ns"] = int(sim_ns)
        if cpu is not None:
            record["cpu"] = int(cpu)
        if severity is not None:
            record["severity"] = str(severity)
        self._append(record)
        return record

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------

    def records(self) -> list[dict[str, Any]]:
        """All committed records, in commit order."""
        return list(self._records)

    def spans(self, name: str | None = None) -> list[dict[str, Any]]:
        return [
            r
            for r in self._records
            if r["kind"] == "span" and (name is None or r["name"] == name)
        ]

    def instants(self, name: str | None = None) -> list[dict[str, Any]]:
        return [
            r
            for r in self._records
            if r["kind"] == "instant" and (name is None or r["name"] == name)
        ]

    @property
    def open_depth(self) -> int:
        """Number of currently open (not yet committed) spans."""
        return len(self._stack)

    def __len__(self) -> int:
        return len(self._records)
