"""Export :class:`~repro.obs.tracer.SpanTracer` records to Chrome trace JSON.

The output is the Chrome trace-event format (the ``{"traceEvents": [...]}``
object form), which both ``chrome://tracing`` and Perfetto load directly.
Top-level ``schema``/``schema_version`` keys tag it as ``repro.obs/trace``
v1 — trace viewers ignore unknown keys, and ``repro-zen2 obs validate``
dispatches on them.

Track model
-----------

* The ``host`` track becomes pid 1 on the **wall-clock** axis
  (microseconds since the tracer epoch): suite → experiment → measure
  spans nest on tid 1.
* Every other track (one per machine, assigned by
  :meth:`SpanTracer.new_track`) becomes its own process on the
  **sim-time** axis: dispatch spans and invariant findings land on tid 0
  (``sim``), and bridged :class:`~repro.oslayer.tracing.TraceBuffer`
  tracepoints land on one merged thread per CPU (tid = cpu + 1), so
  ``sched_waking`` / ``power_cpu_frequency`` events from different
  tracepoints share a single per-CPU Perfetto track.

Records that carry a sim-time interval keep their wall-clock interval in
``args`` (and vice versa), so neither clock is lost in export.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConfigurationError
from repro.obs.schema import TRACE_SCHEMA_ID, TRACE_SCHEMA_VERSION
from repro.obs.tracer import HOST_TRACK, SpanTracer

_HOST_PID = 1
_HOST_TID = 1
_SIM_TID = 0


def _track_pids(tracer: SpanTracer) -> dict[str, int]:
    pids = {HOST_TRACK: _HOST_PID}
    for record in tracer.records():
        track = record["track"]
        if track not in pids:
            pids[track] = _HOST_PID + len(pids)
    return pids


def _span_event(
    record: dict[str, Any], pid: int, labels: dict[tuple[int, int], str]
) -> dict[str, Any]:
    args = dict(record["args"])
    args["span_id"] = record["id"]
    if record["parent"]:
        args["parent_id"] = record["parent"]
    sim_axis = (
        record["track"] != HOST_TRACK
        and "t0_sim_ns" in record
        and "t1_sim_ns" in record
    )
    if sim_axis:
        ts = record["t0_sim_ns"] / 1000.0
        dur = (record["t1_sim_ns"] - record["t0_sim_ns"]) / 1000.0
        args["wall_dur_ns"] = record["t1_wall_ns"] - record["t0_wall_ns"]
        tid = _SIM_TID
        labels.setdefault((pid, tid), "sim")
    else:
        ts = record["t0_wall_ns"] / 1000.0
        dur = (record["t1_wall_ns"] - record["t0_wall_ns"]) / 1000.0
        if "t0_sim_ns" in record:
            args["sim_t0_ns"] = record["t0_sim_ns"]
        if "t1_sim_ns" in record:
            args["sim_t1_ns"] = record["t1_sim_ns"]
        tid = record.get("lane", _HOST_TID)
        if pid == _HOST_PID:
            labels.setdefault((pid, tid), "orchestration")
        else:
            labels.setdefault((pid, tid), f"lane{tid}")
    return {
        "name": record["name"],
        "cat": record["cat"],
        "ph": "X",
        "ts": ts,
        "dur": dur,
        "pid": pid,
        "tid": tid,
        "args": args,
    }


def _instant_event(
    record: dict[str, Any], pid: int, labels: dict[tuple[int, int], str]
) -> dict[str, Any]:
    args = dict(record["args"])
    if record["parent"]:
        args["parent_id"] = record["parent"]
    if "severity" in record:
        args["severity"] = record["severity"]
    sim_axis = record["track"] != HOST_TRACK and "t_sim_ns" in record
    if sim_axis:
        ts = record["t_sim_ns"] / 1000.0
        if "cpu" in record:
            tid = record["cpu"] + 1
            # cpu labels win over lane labels if a tid is shared.
            labels[(pid, tid)] = f"cpu{record['cpu']}"
        else:
            tid = _SIM_TID
            labels.setdefault((pid, tid), "sim")
    else:
        ts = record["t_wall_ns"] / 1000.0
        if "t_sim_ns" in record:
            args["sim_t_ns"] = record["t_sim_ns"]
        tid = _HOST_TID
        labels.setdefault((pid, tid), "orchestration" if pid == _HOST_PID else f"lane{tid}")
    return {
        "name": record["name"],
        "cat": record["cat"],
        "ph": "i",
        "s": "t",
        "ts": ts,
        "pid": pid,
        "tid": tid,
        "args": args,
    }


def _metadata_events(
    pids: dict[str, int], labels: dict[tuple[int, int], str]
) -> list[dict[str, Any]]:
    events: list[dict[str, Any]] = []
    for track, pid in pids.items():
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": track},
            }
        )
    for (pid, tid), label in sorted(labels.items()):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": label},
            }
        )
    return events


def _trace_envelope(
    events: list[dict[str, Any]], other: dict[str, Any]
) -> dict[str, Any]:
    """The single ``repro.obs/trace`` envelope writer (CON020: one
    schema, one emitting site — both export paths funnel through here)."""
    return {
        "schema": TRACE_SCHEMA_ID,
        "schema_version": TRACE_SCHEMA_VERSION,
        "displayTimeUnit": "ms",
        "traceEvents": events,
        "otherData": other,
    }


def trace_document(tracer: SpanTracer, **other_data: Any) -> dict[str, Any]:
    """Build the ``repro.obs/trace`` v1 document for a tracer's records."""
    pids = _track_pids(tracer)
    labels: dict[tuple[int, int], str] = {}
    body: list[dict[str, Any]] = []
    for record in tracer.records():
        pid = pids[record["track"]]
        if record["kind"] == "span":
            body.append(_span_event(record, pid, labels))
        else:
            body.append(_instant_event(record, pid, labels))
    events = _metadata_events(pids, labels) + body
    other = {"records": len(body), "dropped": tracer.dropped}
    if tracer.trace_id is not None:
        other["trace_id"] = tracer.trace_id
    other.update(other_data)
    return _trace_envelope(events, other)


def merge_trace_documents(
    docs: list[dict[str, Any]], labels: list[str | None] | None = None
) -> dict[str, Any]:
    """Merge trace documents into one, remapping pids to avoid collisions.

    Events keep their per-document timestamps (each document's host epoch
    is its own zero); process names gain a ``run<N>:`` prefix when more
    than one document is merged so the origin stays visible.  ``labels``
    (one per document, None entries fall back to ``run<N>``) replace the
    default prefixes — the suite labels worker documents by entry name,
    the service by job id.  When every input carries the same
    ``otherData.trace_id`` the merged document keeps it, so one request's
    cross-process timeline stays correlated end to end.
    """
    if labels is not None and len(labels) != len(docs):
        raise ConfigurationError(
            f"labels must match docs: {len(labels)} label(s) for "
            f"{len(docs)} document(s)"
        )
    events: list[dict[str, Any]] = []
    other: dict[str, Any] = {"merged": len(docs)}
    trace_ids: set[str] = set()
    next_pid = 1
    for i, doc in enumerate(docs):
        prefix = None
        if labels is not None and labels[i] is not None:
            prefix = labels[i]
        elif len(docs) > 1:
            prefix = f"run{i}"
        remap: dict[int, int] = {}
        for ev in doc.get("traceEvents", []):
            pid = ev.get("pid")
            if pid not in remap:
                remap[pid] = next_pid
                next_pid += 1
            out = dict(ev)
            out["pid"] = remap[pid]
            if (
                prefix is not None
                and len(docs) > 1
                and out.get("ph") == "M"
                and out.get("name") == "process_name"
            ):
                out["args"] = {
                    "name": f"{prefix}:{(ev.get('args') or {}).get('name', '?')}"
                }
            events.append(out)
        doc_other = doc.get("otherData") or {}
        other["dropped"] = other.get("dropped", 0) + doc_other.get("dropped", 0)
        if isinstance(doc_other.get("trace_id"), str):
            trace_ids.add(doc_other["trace_id"])
    other["records"] = sum(
        1 for ev in events if ev.get("ph") != "M"
    )
    if len(trace_ids) == 1:
        other["trace_id"] = trace_ids.pop()
    return _trace_envelope(events, other)


def summarize_trace(doc: dict[str, Any]) -> str:
    """Human-readable per-track / per-name digest of a trace document."""
    tracks: dict[int, str] = {}
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") == "M" and ev.get("name") == "process_name":
            tracks[ev["pid"]] = (ev.get("args") or {}).get("name", "?")
    spans: dict[tuple[str, str], list[float]] = {}
    instants: dict[tuple[str, str], int] = {}
    for ev in doc.get("traceEvents", []):
        ph = ev.get("ph")
        track = tracks.get(ev.get("pid"), str(ev.get("pid")))
        key = (track, ev.get("name", "?"))
        if ph == "X":
            spans.setdefault(key, []).append(float(ev.get("dur", 0.0)))
        elif ph == "i":
            instants[key] = instants.get(key, 0) + 1
    lines = []
    other = doc.get("otherData") or {}
    lines.append(
        f"trace: {other.get('records', '?')} records, "
        f"{other.get('dropped', 0)} dropped, {len(tracks)} tracks"
    )
    for (track, name), durs in sorted(spans.items()):
        total = sum(durs)
        lines.append(
            f"  span    {track:>12s}  {name:<28s} "
            f"n={len(durs):<6d} total={total / 1e6:.3f}s "
            f"max={max(durs) / 1e6:.3f}s"
        )
    for (track, name), n in sorted(instants.items()):
        lines.append(f"  instant {track:>12s}  {name:<28s} n={n}")
    return "\n".join(lines)


def summarize_metrics(doc: dict[str, Any]) -> str:
    """Human-readable digest of a metrics snapshot document."""
    lines = [f"metrics: {len(doc.get('metrics', []))} families"]
    for fam in doc.get("metrics", []):
        name = fam.get("name", "?")
        kind = fam.get("type", "?")
        for s in fam.get("series", []):
            labels = ",".join(
                f"{k}={v}" for k, v in sorted((s.get("labels") or {}).items())
            )
            suffix = f"{{{labels}}}" if labels else ""
            if kind == "histogram":
                value = f"count={s.get('count')} sum={s.get('sum'):.6g}"
            else:
                value = f"{s.get('value'):.6g}"
            lines.append(f"  {kind:<9s} {name}{suffix} = {value}")
    return "\n".join(lines)
