"""``repro-zen2 obs`` — inspector for exported observability documents.

Subcommands:

* ``summarize FILE`` — per-track span/instant digest of a trace, or a
  family digest of a metrics snapshot (schema-sniffed);
* ``validate FILE [FILE ...]`` — run the bundled schema validators;
  exits 1 listing every problem found (CI runs this on the traced
  smoke-suite artifacts);
* ``merge OUT IN [IN ...]`` — merge trace documents into one
  Perfetto-loadable file, remapping process ids so runs stay distinct;
* ``report PATH [PATH ...]`` — digest crash flight-recorder bundles:
  each PATH is a bundle file or a directory to scan for
  ``flightrec-*.json`` (e.g. ``$REPRO_FLIGHTREC_DIR`` after a failure).
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

from repro.core.serialize import dump_json, load_json
from repro.obs.export import (
    merge_trace_documents,
    summarize_metrics,
    summarize_trace,
)
from repro.obs.flightrec import summarize_flightrec
from repro.obs.schema import (
    FLIGHTREC_SCHEMA_ID,
    LOG_SCHEMA_ID,
    METRICS_SCHEMA_ID,
    TRACE_SCHEMA_ID,
    sniff_schema,
    validate_document,
)


def _load(path: str) -> object:
    try:
        return load_json(path)
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}") from exc  # EXC001: CLI boundary, exits with a message not a traceback


def _cmd_summarize(args: argparse.Namespace) -> int:
    doc = _load(args.file)
    schema = sniff_schema(doc)
    if schema == TRACE_SCHEMA_ID:
        print(summarize_trace(doc))
    elif schema == METRICS_SCHEMA_ID:
        print(summarize_metrics(doc))
    elif schema == FLIGHTREC_SCHEMA_ID:
        print(summarize_flightrec(doc))
    elif schema == LOG_SCHEMA_ID:
        records = doc.get("records") or []
        levels: dict[str, int] = {}
        for rec in records:
            if isinstance(rec, dict):
                level = str(rec.get("level", "?"))
                levels[level] = levels.get(level, 0) + 1
        mix = ", ".join(f"{k}={n}" for k, n in sorted(levels.items()))
        print(f"log: {len(records)} record(s) from pid {doc.get('pid')}"
              + (f" ({mix})" if mix else ""))
    else:
        print(f"error: {args.file}: unknown schema {schema!r}", file=sys.stderr)
        return 1
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    status = 0
    for path in args.files:
        problems = validate_document(_load(path))
        if problems:
            status = 1
            print(f"{path}: INVALID")
            for problem in problems:
                print(f"  {problem}")
        else:
            print(f"{path}: ok ({sniff_schema(_load(path))})")
    return status


def _cmd_merge(args: argparse.Namespace) -> int:
    docs = []
    for path in args.inputs:
        doc = _load(path)
        if sniff_schema(doc) != TRACE_SCHEMA_ID:
            print(
                f"error: {path}: not a {TRACE_SCHEMA_ID} document",
                file=sys.stderr,
            )
            return 1
        docs.append(doc)
    merged = merge_trace_documents(docs)
    dump_json(merged, args.out)
    print(
        f"merged {len(docs)} traces "
        f"({merged['otherData']['records']} records) -> {args.out}"
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    paths: list[str] = []
    for target in args.paths:
        if os.path.isdir(target):
            paths.extend(
                sorted(glob.glob(os.path.join(target, "flightrec-*.json")))
            )
        else:
            paths.append(target)
    if not paths:
        print("no flight-recorder bundles found")
        return 0
    status = 0
    for i, path in enumerate(paths):
        if i:
            print()
        doc = _load(path)
        problems = validate_document(doc)
        if problems or sniff_schema(doc) != FLIGHTREC_SCHEMA_ID:
            status = 1
            print(f"{path}: INVALID")
            for problem in problems:
                print(f"  {problem}")
            continue
        print(f"{path}:")
        print(summarize_flightrec(doc))
    return status


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-zen2 obs",
        description="Inspect repro.obs trace/metrics documents",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("summarize", help="digest a trace or metrics document")
    p.add_argument("file")
    p.set_defaults(fn=_cmd_summarize)

    p = sub.add_parser("validate", help="run the bundled schema validators")
    p.add_argument("files", nargs="+", metavar="FILE")
    p.set_defaults(fn=_cmd_validate)

    p = sub.add_parser("merge", help="merge trace documents into one")
    p.add_argument("out")
    p.add_argument("inputs", nargs="+", metavar="IN")
    p.set_defaults(fn=_cmd_merge)

    p = sub.add_parser(
        "report", help="digest crash flight-recorder bundles"
    )
    p.add_argument(
        "paths", nargs="+", metavar="PATH",
        help="bundle file, or directory to scan for flightrec-*.json",
    )
    p.set_defaults(fn=_cmd_report)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
