"""Shared SARIF 2.1.0 writer and merged rule catalogue.

One emitter for every pass: per-module rules, the flow, effects and
contracts whole-program analyses, and the engine-level LINT rules all
publish their metadata through :func:`rule_catalogue`, and every lint
invocation — single-pass or combined — produces a single SARIF run
carrying the merged catalogue.  ``--list-rules`` prints the same table,
so the CLI, the SARIF log, and the docs cannot drift apart.
"""

from __future__ import annotations

import json

from repro.lint.engine import LintReport

TOOL_NAME = "repro-lint"
TOOL_URI = "https://example.invalid/repro-zen2"


def rule_titles() -> dict[str, str]:
    """rule id -> one-line title, across every pass this tool can run."""
    from repro.lint.contracts import CONTRACTS_RULE_TITLES
    from repro.lint.effects import EFFECTS_RULE_TITLES
    from repro.lint.engine import SUPPRESSION_REASON_RULE, UNUSED_SUPPRESSION_RULE
    from repro.lint.flow import FLOW_RULE_TITLES
    from repro.lint.rules import rules_by_id

    titles: dict[str, str] = {
        rule_id: cls.title for rule_id, cls in rules_by_id().items()
    }
    titles.update(FLOW_RULE_TITLES)
    titles.update(EFFECTS_RULE_TITLES)
    titles.update(CONTRACTS_RULE_TITLES)
    titles[UNUSED_SUPPRESSION_RULE] = "unused lint suppression comment"
    titles[SUPPRESSION_REASON_RULE] = (
        "reason-requiring suppression without a reason= token"
    )
    return titles


def rule_catalogue() -> list[dict]:
    """SARIF rule metadata for every rule this tool can emit."""
    return [
        {"id": rule_id, "shortDescription": {"text": title}}
        for rule_id, title in sorted(rule_titles().items())
    ]


def format_sarif(report: LintReport) -> str:
    """SARIF 2.1.0 log for code-scanning upload and IDE ingestion."""
    results = [
        {
            "ruleId": f.rule,
            "level": "warning" if f.severity == "warning" else "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path.replace("\\", "/"),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": max(f.line, 1),
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        for f in report.findings
    ]
    log = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_URI,
                        "rules": rule_catalogue(),
                    }
                },
                "columnKind": "utf16CodeUnits",
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)
