"""Human, JSON, and SARIF rendering of lint reports."""

from __future__ import annotations

import json

from repro.lint.engine import LintReport


def format_human(report: LintReport) -> str:
    """Compiler-style one-line-per-finding output with a summary."""
    lines = [finding.render() for finding in report.findings]
    counts = report.counts_by_rule()
    by_rule = ", ".join(f"{rule}={n}" for rule, n in sorted(counts.items()))
    summary = (
        f"{len(report.findings)} finding(s)"
        + (f" [{by_rule}]" if by_rule else "")
        + f", {report.suppressed} suppressed, {report.files_checked} file(s) checked"
    )
    lines.append(summary)
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    """Machine-readable report (stable key order for diffing in CI)."""
    payload = {
        "files_checked": report.files_checked,
        "suppressed": report.suppressed,
        "counts_by_rule": dict(sorted(report.counts_by_rule().items())),
        "findings": [finding.to_dict() for finding in report.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_rule_catalogue() -> list[dict]:
    """SARIF rule metadata for every rule this tool can emit."""
    from repro.lint.effects import EFFECTS_RULE_TITLES
    from repro.lint.engine import SUPPRESSION_REASON_RULE, UNUSED_SUPPRESSION_RULE
    from repro.lint.flow import FLOW_RULE_TITLES
    from repro.lint.rules import rules_by_id

    titles: dict[str, str] = {
        rule_id: cls.title for rule_id, cls in rules_by_id().items()
    }
    titles.update(FLOW_RULE_TITLES)
    titles.update(EFFECTS_RULE_TITLES)
    titles[UNUSED_SUPPRESSION_RULE] = "unused lint suppression comment"
    titles[SUPPRESSION_REASON_RULE] = (
        "effects-rule suppression without a reason= token"
    )
    return [
        {"id": rule_id, "shortDescription": {"text": title}}
        for rule_id, title in sorted(titles.items())
    ]


def format_sarif(report: LintReport) -> str:
    """SARIF 2.1.0 log for code-scanning upload and IDE ingestion."""
    results = [
        {
            "ruleId": f.rule,
            "level": "warning" if f.severity == "warning" else "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path.replace("\\", "/"),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": max(f.line, 1),
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        for f in report.findings
    ]
    log = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro-zen2",
                        "rules": _sarif_rule_catalogue(),
                    }
                },
                "columnKind": "utf16CodeUnits",
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)
