"""Human, JSON, and SARIF rendering of lint reports."""

from __future__ import annotations

import json

from repro.lint.engine import LintReport


def format_human(report: LintReport) -> str:
    """Compiler-style one-line-per-finding output with a summary."""
    lines = [finding.render() for finding in report.findings]
    counts = report.counts_by_rule()
    by_rule = ", ".join(f"{rule}={n}" for rule, n in sorted(counts.items()))
    summary = (
        f"{len(report.findings)} finding(s)"
        + (f" [{by_rule}]" if by_rule else "")
        + f", {report.suppressed} suppressed, {report.files_checked} file(s) checked"
    )
    lines.append(summary)
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    """Machine-readable report (stable key order for diffing in CI)."""
    payload = {
        "files_checked": report.files_checked,
        "suppressed": report.suppressed,
        "counts_by_rule": dict(sorted(report.counts_by_rule().items())),
        "findings": [finding.to_dict() for finding in report.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def format_sarif(report: LintReport) -> str:
    """SARIF 2.1.0 log (delegates to the shared :mod:`repro.lint.sarif`
    writer so every pass shares one run and rule catalogue)."""
    from repro.lint.sarif import format_sarif as _format_sarif

    return _format_sarif(report)
