"""OBS001: every obs use must sit behind the single ``is None`` guard.

PR 5's instrumentation contract is that the disabled path pays exactly
one identity check: ``self._obs`` is either ``None`` or an enabled
bundle, and every metrics/tracer touch (``self._obs``,
``self._obs_dispatched``, ...) happens only where that check has already
proven the bundle attached.  This pass machine-checks the contract with
a straight-line dominance walk per function:

* a ``Compare(X._obs, Is/IsNot, None)`` condition splits the state of
  the base expression into null / non-null branches (``and`` chains and
  ``not`` supported; a terminating null branch — ``return``/``raise`` —
  promotes the rest of the function to non-null);
* loads of ``X._obs`` members (``.tracer`` etc.) or of ``X._obs_*``
  attributes outside a non-null region are violations;
* a method whose *only* unguarded uses hang off ``self`` is excused when
  every resolved call site in the program sits inside a caller's
  non-null region (the ``_run_instrumented`` pattern: run_until guards,
  the helper uses) — but only if at least one call site resolves;
* uses inside the *null* branch are always violations (the guard proves
  the bundle absent there).

Assignments are tracked: ``X._obs = None`` forces null, a non-None
constant forces non-null, anything else resets to unknown.
"""

from __future__ import annotations

import ast
import copy
from dataclasses import dataclass, field

from repro.lint.findings import Finding
from repro.lint.flow.graph import FuncInfo, Program
from repro.lint.effects.summaries import Resolver

RULE_OBS_GUARD = "OBS001"

_NULL = "null"
_NONNULL = "nonnull"
_UNKNOWN = "unknown"


def _render(node: ast.expr) -> str | None:
    """Stable text for a simple base expression (``self._obs`` etc.)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _obs_root(node: ast.Attribute) -> tuple[str, str] | None:
    """(guard render, base render) when ``node`` is an obs use.

    ``self._obs.tracer`` and ``self._obs_dispatched`` both guard on
    ``self._obs``; the base render ("self") identifies the receiver for
    the caller-guarded excusal.
    """
    if node.attr == "_obs" or node.attr.startswith("_obs_"):
        base = _render(node.value)
        if base is None:
            return None
        return (f"{base}._obs", base)
    return None


@dataclass
class _Use:
    node: ast.Attribute
    guard: str  # render of the X._obs expression that must be non-null
    base: str  # render of the receiver (for self-rooted excusal)
    anti: bool  # inside the proven-null branch


@dataclass
class _FuncResult:
    func: FuncInfo
    unguarded: list[_Use] = field(default_factory=list)
    #: callee qname -> [True if the call site sat in a non-null region
    #: of the *callee receiver's* guard]
    call_guard_states: dict[str, list[bool]] = field(default_factory=dict)


def _guard_from_condition(cond: ast.expr) -> dict[str, tuple[str, str]]:
    """guard render -> (state in then-branch, state in else-branch)."""
    out: dict[str, tuple[str, str]] = {}
    if isinstance(cond, ast.Compare) and len(cond.ops) == 1:
        if isinstance(cond.left, ast.Attribute) and cond.left.attr == "_obs":
            render = _render(cond.left)
            comparator = cond.comparators[0]
            if render is not None and (
                isinstance(comparator, ast.Constant) and comparator.value is None
            ):
                if isinstance(cond.ops[0], ast.Is):
                    out[render] = (_NULL, _NONNULL)
                elif isinstance(cond.ops[0], ast.IsNot):
                    out[render] = (_NONNULL, _NULL)
    elif isinstance(cond, ast.UnaryOp) and isinstance(cond.op, ast.Not):
        for render, (then, other) in _guard_from_condition(cond.operand).items():
            out[render] = (other, then)
    elif isinstance(cond, ast.BoolOp) and isinstance(cond.op, ast.And):
        # `a._obs is not None and ...`: the then-branch has every
        # operand's then-state; the else-branch proves nothing.
        for value in cond.values:
            for render, (then, _) in _guard_from_condition(value).items():
                out[render] = (then, _UNKNOWN)
    return out


def _terminates(body: list[ast.stmt]) -> bool:
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


class _GuardWalker:
    """Statement-ordered walk of one function tracking guard states."""

    def __init__(self, func: FuncInfo, resolver: Resolver, program: Program):
        self.func = func
        self.resolver = resolver
        self.program = program
        self.result = _FuncResult(func)
        self.local_types = resolver.local_class_types(func)

    def run(self) -> _FuncResult:
        self._walk_body(self.func.body, {})
        return self.result

    # -- expression side ---------------------------------------------------

    def _scan_expr(self, node: ast.expr | None, env: dict[str, str]) -> None:
        if node is None:
            return
        for sub in ast.walk(node):
            if isinstance(sub, ast.Attribute) and isinstance(sub.ctx, ast.Load):
                root = _obs_root(sub)
                if root is None:
                    continue
                guard, base = root
                state = env.get(guard, _UNKNOWN)
                # A bare `X._obs` load is only a use when dereferenced
                # (`X._obs.tracer`); the deref is the *parent* attribute,
                # which also matches `_obs_root` via its `.value` — so a
                # lone `self._obs` comparison never lands here with
                # attr == "_obs" dereferenced.  Guard comparisons are
                # stripped by the caller before scanning.
                if state == _NULL:
                    self.result.unguarded.append(_Use(sub, guard, base, True))
                elif state != _NONNULL:
                    self.result.unguarded.append(_Use(sub, guard, base, False))
            elif isinstance(sub, ast.Call):
                self._record_call_state(sub, env)

    def _record_call_state(self, call: ast.Call, env: dict[str, str]) -> None:
        resolved = self.resolver.resolve_call(call, self.func, self.local_types)
        if resolved is None or resolved.kind != "func":
            return
        receiver = None
        if isinstance(call.func, ast.Attribute):
            receiver = _render(call.func.value)
        if receiver is None:
            return
        state = env.get(f"{receiver}._obs", _UNKNOWN)
        self.result.call_guard_states.setdefault(resolved.target, []).append(
            state == _NONNULL
        )

    def _strip_guard_compares(self, node: ast.expr) -> ast.expr:
        """Replace `X._obs is None` compares with a constant so the obs
        attribute inside the guard itself is not counted as a use."""
        class _Strip(ast.NodeTransformer):
            def visit_Compare(self, cmp: ast.Compare):  # noqa: N802
                if (
                    len(cmp.ops) == 1
                    and isinstance(cmp.left, ast.Attribute)
                    and cmp.left.attr == "_obs"
                    and isinstance(cmp.comparators[0], ast.Constant)
                    and cmp.comparators[0].value is None
                    and isinstance(cmp.ops[0], (ast.Is, ast.IsNot))
                ):
                    return ast.copy_location(ast.Constant(value=True), cmp)
                return self.generic_visit(cmp)

        return _Strip().visit(copy.deepcopy(node))

    # -- statement side ----------------------------------------------------

    def _walk_body(self, body: list[ast.stmt], env: dict[str, str]) -> None:
        for stmt in body:
            self._walk_stmt(stmt, env)

    def _walk_stmt(self, stmt: ast.stmt, env: dict[str, str]) -> None:
        if isinstance(stmt, ast.If):
            branch_states = _guard_from_condition(stmt.test)
            self._scan_expr(self._strip_guard_compares(stmt.test), env)
            then_env = dict(env)
            else_env = dict(env)
            for render, (then, other) in branch_states.items():
                then_env[render] = then
                else_env[render] = other
            self._walk_body(stmt.body, then_env)
            self._walk_body(stmt.orelse, else_env)
            if _terminates(stmt.body) and not stmt.orelse:
                # `if X._obs is None: return` promotes the fall-through.
                env.update(else_env)
            elif _terminates(stmt.orelse) and not _terminates(stmt.body):
                env.update(then_env)
            else:
                for render in branch_states:
                    env[render] = _UNKNOWN
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_expr(stmt.iter, env)
            self._invalidate_assigned(stmt, env)
            self._walk_body(stmt.body, env)
            self._walk_body(stmt.orelse, env)
            return
        if isinstance(stmt, ast.While):
            self._scan_expr(self._strip_guard_compares(stmt.test), env)
            self._invalidate_assigned(stmt, env)
            self._walk_body(stmt.body, env)
            self._walk_body(stmt.orelse, env)
            return
        if isinstance(stmt, (ast.Try,)):
            self._walk_body(stmt.body, env)
            for handler in stmt.handlers:
                self._walk_body(handler.body, dict(env))
            self._walk_body(stmt.orelse, env)
            self._walk_body(stmt.finalbody, env)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan_expr(item.context_expr, env)
            self._walk_body(stmt.body, env)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes get their own walk (if registered)
        if isinstance(stmt, ast.Assign):
            self._scan_expr(stmt.value, env)
            for target in stmt.targets:
                self._apply_assign(target, stmt.value, env)
            return
        if isinstance(stmt, ast.AugAssign):
            self._scan_expr(stmt.value, env)
            self._scan_expr(stmt.target, env)
            return
        if isinstance(stmt, ast.AnnAssign):
            self._scan_expr(stmt.value, env)
            if stmt.value is not None:
                self._apply_assign(stmt.target, stmt.value, env)
            return
        if isinstance(stmt, (ast.Return, ast.Expr)):
            self._scan_expr(stmt.value, env)
            return
        if isinstance(stmt, (ast.Raise,)):
            self._scan_expr(stmt.exc, env)
            self._scan_expr(stmt.cause, env)
            return
        if isinstance(stmt, (ast.Assert,)):
            self._scan_expr(self._strip_guard_compares(stmt.test), env)
            self._scan_expr(stmt.msg, env)
            return
        if isinstance(stmt, ast.Delete):
            return
        # Fallback: scan any expressions hanging off the statement.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._scan_expr(child, env)

    def _apply_assign(
        self, target: ast.expr, value: ast.expr, env: dict[str, str]
    ) -> None:
        render = _render(target) if isinstance(target, ast.Attribute) else None
        if render is None or not render.endswith("._obs"):
            return
        if isinstance(value, ast.Constant) and value.value is None:
            env[render] = _NULL
        elif isinstance(value, ast.Constant):
            env[render] = _NONNULL
        else:
            env[render] = _UNKNOWN

    def _invalidate_assigned(self, loop: ast.stmt, env: dict[str, str]) -> None:
        """Drop guard states the loop body may rewrite."""
        for node in ast.walk(loop):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Attribute):
                        render = _render(target)
                        if render is not None and render in env:
                            del env[render]


def check_guards(program: Program) -> list[Finding]:
    """OBS001 findings for every registered function in the program."""
    results: dict[str, _FuncResult] = {}
    #: callee qname -> accumulated guard states across every caller.
    call_states: dict[str, list[bool]] = {}
    for module in program.modules.values():
        resolver = Resolver(program, module)
        funcs = list(module.functions.values())
        for cls in module.classes.values():
            funcs.extend(cls.methods.values())
        for func in funcs:
            result = _GuardWalker(func, resolver, program).run()
            results[func.qname] = result
            for callee, states in result.call_guard_states.items():
                call_states.setdefault(callee, []).extend(states)

    findings: list[Finding] = []
    for qname, result in results.items():
        if not result.unguarded:
            continue
        self_param = result.func.params[0].name if result.func.params else None
        callers = call_states.get(qname, [])
        caller_guarded = bool(callers) and all(callers)
        for use in result.unguarded:
            if use.anti:
                reason = (
                    f"'{use.guard}' is proven None on this branch; the obs "
                    "bundle cannot be attached here"
                )
            elif (
                caller_guarded
                and self_param is not None
                and use.base.split(".")[0] == self_param
            ):
                continue  # every resolved call site is inside a guard
            else:
                reason = (
                    f"not dominated by an '{use.guard} is None' guard; the "
                    "disabled path must pay exactly one identity check"
                )
            findings.append(
                Finding(
                    path=result.func.path,
                    line=use.node.lineno,
                    col=use.node.col_offset,
                    rule=RULE_OBS_GUARD,
                    message=f"obs use '{_render(use.node)}' {reason}",
                )
            )
    return findings
