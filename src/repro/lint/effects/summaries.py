"""Per-function effect summaries and the call-resolution substrate.

For every function in the linked :class:`~repro.lint.flow.graph.Program`
this module computes a :class:`EffectSummary`: which effects the body
performs *directly* (allocates / raises / mutates-global /
reads-wall-clock / calls-obs / crosses-process), which names escape the
frame, and the resolved project-internal call edges.  A fixpoint pass
then folds callee summaries into transitive bits.

Resolution follows the flow pass's zero-false-positive contract: a call
the linker cannot pin down contributes no effect (it only bumps the
``unresolved_calls`` counter), so widening stays silent instead of
guessing.  The hot-path rules (:mod:`repro.lint.effects.hotpath`) walk
the *direct* sites plus call edges themselves so cold boundaries can
terminate propagation; the transitive bits here serve the summary API
and report stats.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.flow.graph import FuncInfo, Program, _build_function, _dotted_parts
from repro.lint.flow.intrinsics import taint_source

#: Builtin calls that construct a fresh object per call.
BUILTIN_ALLOCATORS = {
    "list",
    "dict",
    "set",
    "tuple",
    "frozenset",
    "sorted",
    "str",
    "bytes",
    "bytearray",
    "format",
    "repr",
}

#: Resolved dotted prefixes that put work on another process.
_PROCESS_PREFIXES = ("repro.parallel",)
_PROCESS_DOTTED = {
    "concurrent.futures.ProcessPoolExecutor",
    "multiprocessing.Pool",
    "multiprocessing.Process",
    "subprocess.run",
    "subprocess.Popen",
    "subprocess.check_output",
    "subprocess.check_call",
    "os.fork",
}

#: Unpacking assignments like ``a, b = x, y`` with few elements compile
#: to register rotations, not a tuple build — exempt from HOT001.
_PAIR_UNPACK_MAX = 3


@dataclass(frozen=True)
class AllocSite:
    """One direct allocation inside a function body."""

    line: int
    col: int
    kind: str  # human description: "tuple display", "list comprehension", ...


@dataclass(frozen=True)
class Resolved:
    """Outcome of resolving one call expression."""

    kind: str  # "func" | "class" | "external"
    target: str  # project qname or external dotted name
    func: FuncInfo | None = None


@dataclass
class CallEdge:
    """One resolved call from a function to another project function."""

    line: int
    col: int
    callee: str  # qname in Program.functions


@dataclass
class EffectSummary:
    """What one function does to the world, directly and transitively."""

    qname: str
    func: FuncInfo
    alloc_sites: list[AllocSite] = field(default_factory=list)
    raises: bool = False
    mutates_global: bool = False
    reads_wall_clock: bool = False
    calls_obs: bool = False
    crosses_process: bool = False
    escapes: set[str] = field(default_factory=set)
    calls: list[CallEdge] = field(default_factory=list)
    unresolved_calls: int = 0
    # Transitive closure over resolved call edges (fixpoint-filled).
    t_allocates: bool = False
    t_raises: bool = False
    t_mutates_global: bool = False
    t_reads_wall_clock: bool = False
    t_calls_obs: bool = False
    t_crosses_process: bool = False

    @property
    def allocates(self) -> bool:
        return bool(self.alloc_sites)

    def effect_names(self) -> set[str]:
        """Transitive effect labels, for the summary API and tests."""
        labels = set()
        for name, flag in (
            ("allocates", self.t_allocates),
            ("raises", self.t_raises),
            ("mutates-global", self.t_mutates_global),
            ("reads-wall-clock", self.t_reads_wall_clock),
            ("calls-obs", self.t_calls_obs),
            ("crosses-process", self.t_crosses_process),
        ):
            if flag:
                labels.add(name)
        return labels


class Resolver:
    """Best-effort call/name resolution against one module's namespace."""

    def __init__(self, program: Program, module) -> None:
        self.program = program
        self.module = module

    def local_class_types(self, func: FuncInfo) -> dict[str, str]:
        """Locals provably holding instances: ``x = ClassName(...)``."""
        types: dict[str, str] = {}
        for node in ast.walk(_body_holder(func)):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not (isinstance(target, ast.Name) and isinstance(node.value, ast.Call)):
                continue
            resolved = self._resolve_callable(node.value.func, func, {})
            if resolved is not None and resolved.kind == "class":
                types[target.id] = resolved.target
            elif target.id in types:
                del types[target.id]
        return types

    def resolve_call(
        self, call: ast.Call, func: FuncInfo, local_types: dict[str, str]
    ) -> Resolved | None:
        return self._resolve_callable(call.func, func, local_types)

    def _resolve_callable(
        self, node: ast.expr, func: FuncInfo, local_types: dict[str, str]
    ) -> Resolved | None:
        program, module = self.program, self.module
        if isinstance(node, ast.Name):
            name = node.id
            if name in module.functions:
                target = module.functions[name]
                return Resolved("func", target.qname, target)
            if name in module.classes:
                return Resolved("class", module.classes[name].qname)
            if name in func.local_names:
                return None  # a local callable: opaque
            dotted = module.bindings.get(name)
            if dotted is not None:
                if dotted in program.functions:
                    return Resolved("func", dotted, program.functions[dotted])
                if dotted in program.classes:
                    return Resolved("class", dotted)
                return Resolved("external", dotted)
            return None
        parts = _dotted_parts(node)
        if parts is None:
            return None
        head, rest = parts[0], parts[1:]
        if head == "self" and func.cls is not None and len(parts) == 2:
            method = program.method_of(func.cls.qname, parts[1])
            if method is not None:
                return Resolved("func", method.qname, method)
            return None
        if head in local_types and len(parts) == 2:
            method = program.method_of(local_types[head], parts[1])
            if method is not None:
                return Resolved("func", method.qname, method)
            return None
        if head in func.local_names:
            return None
        if head in module.classes and len(parts) == 2:
            method = program.method_of(module.classes[head].qname, parts[1])
            if method is not None:
                return Resolved("func", method.qname, method)
            return None
        base = module.bindings.get(head)
        if base is None:
            return None
        dotted = ".".join([base, *rest])
        if dotted in program.functions:
            return Resolved("func", dotted, program.functions[dotted])
        if dotted in program.classes:
            return Resolved("class", dotted)
        if base in program.classes and len(rest) == 1:
            method = program.method_of(base, rest[0])
            if method is not None:
                return Resolved("func", method.qname, method)
        return Resolved("external", dotted)


def _body_holder(func: FuncInfo) -> ast.AST:
    if func.node is not None:
        return func.node
    return ast.Module(body=func.body, type_ignores=[])


def _exempt_nodes(body: list[ast.stmt]) -> set[int]:
    """ids of nodes inside ``raise``/``assert`` statements (error paths
    allocate freely — the exception itself already allocates)."""
    exempt: set[int] = set()
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Raise, ast.Assert)):
                for sub in ast.walk(node):
                    exempt.add(id(sub))
    return exempt


def _pair_unpack_values(body: list[ast.stmt]) -> set[int]:
    """ids of tuple displays on the RHS of small unpacking assignments."""
    values: set[int] = set()
    for stmt in body:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Tuple)
                and isinstance(node.value, ast.Tuple)
                and len(node.value.elts) <= _PAIR_UNPACK_MAX
            ):
                values.add(id(node.value))
    return values


_DISPLAY_KINDS = {
    ast.List: "list display",
    ast.Dict: "dict display",
    ast.Set: "set display",
    ast.ListComp: "list comprehension",
    ast.SetComp: "set comprehension",
    ast.DictComp: "dict comprehension",
    ast.GeneratorExp: "generator expression",
}

_MUTATING_METHODS = {
    "append",
    "extend",
    "add",
    "update",
    "setdefault",
    "insert",
    "remove",
    "discard",
    "clear",
    "pop",
    "popitem",
}


def summarize_function(
    func: FuncInfo, resolver: Resolver, program: Program
) -> EffectSummary:
    """Direct effects of one function body (no transitive folding)."""
    summary = EffectSummary(qname=func.qname, func=func)
    local_types = resolver.local_class_types(func)
    exempt = _exempt_nodes(func.body)
    pair_unpacks = _pair_unpack_values(func.body)
    global_names: set[str] = set()
    module_level = set(resolver.module.bindings)
    if resolver.module.body is not None:
        module_level |= resolver.module.body.local_names
    module_level -= func.local_names

    def add_alloc(node: ast.AST, kind: str) -> None:
        if id(node) not in exempt:
            summary.alloc_sites.append(
                AllocSite(line=node.lineno, col=node.col_offset, kind=kind)
            )

    def handle_call(node: ast.Call) -> None:
        resolved = resolver.resolve_call(node, func, local_types)
        if resolved is None:
            fn = node.func
            if isinstance(fn, ast.Name) and fn.id in BUILTIN_ALLOCATORS:
                if fn.id not in func.local_names:
                    add_alloc(node, f"{fn.id}() call")
            elif (
                isinstance(fn, ast.Attribute)
                and fn.attr in ("format", "join")
                and isinstance(fn.value, (ast.Constant, ast.JoinedStr))
            ):
                add_alloc(node, f"str.{fn.attr}() on a constant")
            else:
                summary.unresolved_calls += 1
            return
        if resolved.kind == "class":
            cls_name = resolved.target.rsplit(".", 1)[-1]
            add_alloc(node, f"{cls_name}(...) construction")
            init = program.method_of(resolved.target, "__init__")
            if init is not None:
                summary.calls.append(
                    CallEdge(node.lineno, node.col_offset, init.qname)
                )
            return
        if resolved.kind == "func":
            summary.calls.append(
                CallEdge(node.lineno, node.col_offset, resolved.target)
            )
            return
        # External call: match known effect sources.
        dotted = resolved.target
        taint = taint_source(dotted, node)
        if taint is not None and taint[0] == "wall-clock":
            summary.reads_wall_clock = True
        if dotted.startswith("repro.obs"):
            summary.calls_obs = True
        if dotted in _PROCESS_DOTTED or dotted.startswith(_PROCESS_PREFIXES):
            summary.crosses_process = True

    def visit(node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            add_alloc(node, f"closure definition '{node.name}'")
            # The nested body runs only when called; captured locals
            # escape into the closure cells, though.
            for sub in ast.walk(node):
                if (
                    isinstance(sub, ast.Name)
                    and isinstance(sub.ctx, ast.Load)
                    and sub.id in func.local_names
                ):
                    summary.escapes.add(sub.id)
            return
        if isinstance(node, ast.Lambda):
            add_alloc(node, "lambda definition")
            return
        if isinstance(node, ast.Global):
            global_names.update(node.names)
        elif isinstance(node, ast.Call):
            handle_call(node)
        elif isinstance(node, ast.Raise):
            summary.raises = True
        elif type(node) in _DISPLAY_KINDS:
            if not (isinstance(node, ast.List) and not isinstance(node.ctx, ast.Load)):
                add_alloc(node, _DISPLAY_KINDS[type(node)])
        elif isinstance(node, ast.Tuple) and isinstance(node.ctx, ast.Load):
            if id(node) not in pair_unpacks:
                add_alloc(node, "tuple display")
        elif isinstance(node, ast.JoinedStr):
            add_alloc(node, "f-string formatting")
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
            if isinstance(node.left, ast.Constant) and isinstance(
                node.left.value, str
            ):
                add_alloc(node, "%-string formatting")
        elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            if node.attr == "_obs" or node.attr.startswith("_obs_"):
                summary.calls_obs = True
        elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            if isinstance(node.value, ast.Name):
                summary.escapes.add(node.value.id)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id in global_names:
                    summary.mutates_global = True
                base = target
                while isinstance(base, (ast.Attribute, ast.Subscript)):
                    base = base.value
                if (
                    base is not target
                    and isinstance(base, ast.Name)
                    and base.id in module_level
                ):
                    summary.mutates_global = True
                if isinstance(
                    target, (ast.Attribute, ast.Subscript)
                ) and isinstance(node.value, ast.Name):
                    summary.escapes.add(node.value.id)
        for child in ast.iter_child_nodes(node):
            visit(child)

    holder = _body_holder(func)
    for stmt in func.body:
        visit(stmt)
    # Mutating method calls on module-level names (state.append(x), ...).
    for node in ast.walk(holder):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATING_METHODS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in module_level
        ):
            summary.mutates_global = True
    summary.alloc_sites.sort(key=lambda s: (s.line, s.col))
    summary.calls.sort(key=lambda e: (e.line, e.col))
    return summary


def region_func_info(program: Program, region) -> FuncInfo:
    """The FuncInfo for a hot region, building one for nested functions
    the program graph does not register (bench kernel callbacks)."""
    known = program.functions.get(region.qname)
    if known is not None:
        return known
    module = program.modules[region.module_name]
    cls = program.classes.get(region.cls_qname) if region.cls_qname else None
    return _build_function(region.node, region.qname, module, cls)


def summarize_program(program: Program) -> dict[str, EffectSummary]:
    """Effect summaries for every registered function, transitively."""
    summaries: dict[str, EffectSummary] = {}
    for module in program.modules.values():
        resolver = Resolver(program, module)
        for func in module.functions.values():
            summaries[func.qname] = summarize_function(func, resolver, program)
        for cls in module.classes.values():
            for method in cls.methods.values():
                summaries[method.qname] = summarize_function(
                    method, resolver, program
                )
    _fixpoint(summaries)
    return summaries


_EFFECT_BITS = (
    ("t_allocates", lambda s: s.allocates),
    ("t_raises", lambda s: s.raises),
    ("t_mutates_global", lambda s: s.mutates_global),
    ("t_reads_wall_clock", lambda s: s.reads_wall_clock),
    ("t_calls_obs", lambda s: s.calls_obs),
    ("t_crosses_process", lambda s: s.crosses_process),
)


def _fixpoint(summaries: dict[str, EffectSummary]) -> int:
    """Fold callee effect bits into callers until stable."""
    for summary in summaries.values():
        for attr, direct in _EFFECT_BITS:
            setattr(summary, attr, direct(summary))
    rounds = 0
    changed = True
    while changed:
        changed = False
        rounds += 1
        for summary in summaries.values():
            for edge in summary.calls:
                callee = summaries.get(edge.callee)
                if callee is None:
                    continue
                for attr, _ in _EFFECT_BITS:
                    if getattr(callee, attr) and not getattr(summary, attr):
                        setattr(summary, attr, True)
                        changed = True
    return rounds
