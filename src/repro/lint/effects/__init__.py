"""Whole-program effect, escape and hot-path budget analysis.

Public surface (mirroring :mod:`repro.lint.flow`):

* :data:`EFFECTS_RULE_IDS` / :data:`EFFECTS_RULE_TITLES` — the rules
  this pass can emit (HOT001-HOT003, OBS001, PAR001).
* :func:`analyze_modules` — run the analysis over already-parsed
  modules, with digest-keyed result caching and optional baseline
  filtering.
* :func:`analyze_paths` — convenience wrapper for tests and tooling.
* :func:`summarize_paths` — just the per-function effect summaries, for
  programmatic consumers.

The cache key hashes every module's source, the analyzer version *and*
the region manifest, so editing ``lint-effects.regions.json`` is as
invalidating as editing code.  Cached documents replay recorded
suppression usage so LINT001 stays exact on hits.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import CacheError
from repro.lint.engine import ParsedModule
from repro.lint.findings import Finding
from repro.lint.flow.baseline import load_baseline, split_baselined, write_baseline
from repro.lint.flow.graph import build_program
from repro.lint.effects.guards import RULE_OBS_GUARD, check_guards
from repro.lint.effects.hotpath import (
    RULE_HOT_ALLOC,
    RULE_HOT_ATTR,
    RULE_HOT_EXC,
    check_regions,
)
from repro.lint.effects.parsafe import RULE_PAR_UNSAFE, check_submissions
from repro.lint.effects.regions import collect_regions, manifest_digest_text
from repro.lint.effects.summaries import EffectSummary, summarize_program

#: Bump to invalidate every cached analysis result.
EFFECTS_VERSION = 1

EFFECTS_RULE_TITLES: dict[str, str] = {
    RULE_HOT_ALLOC: "per-event allocation inside a declared hot region",
    RULE_HOT_ATTR: "repeated dynamic attribute lookup in a hot loop",
    RULE_HOT_EXC: "exception-based control flow on the hot path",
    RULE_OBS_GUARD: "obs use not dominated by the 'is None' guard",
    RULE_PAR_UNSAFE: "un-picklable or fork-unsafe value into repro.parallel",
}

EFFECTS_RULE_IDS = set(EFFECTS_RULE_TITLES)


@dataclass
class EffectsReport:
    """Outcome of one whole-program effects analysis."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    modules: int = 0
    functions: int = 0
    regions: int = 0
    cache_hit: bool = False
    duration_s: float = 0.0

    def stats(self) -> dict[str, Any]:
        return {
            "modules": self.modules,
            "functions": self.functions,
            "regions": self.regions,
            "findings": len(self.findings),
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "cache_hit": self.cache_hit,
            "duration_s": round(self.duration_s, 3),
        }


def effects_cache_key(
    modules: Sequence[ParsedModule], manifest_path: str | None
) -> str:
    """Digest of analyzer version, every source, and the region manifest."""
    hasher = hashlib.sha256()
    hasher.update(f"effects-v{EFFECTS_VERSION}".encode())
    hasher.update(manifest_digest_text(manifest_path).encode())
    for parsed in sorted(modules, key=lambda m: m.path):
        digest = hashlib.sha256(parsed.source.encode("utf-8")).hexdigest()
        hasher.update(json.dumps([parsed.path, digest]).encode())
    return f"linteffects-{hasher.hexdigest()}"


def _open_cache():
    from repro.cache.store import ResultCache

    try:
        return ResultCache()
    except CacheError:
        return None


def _analyze(
    modules: list[ParsedModule], manifest_path: str | None
) -> tuple[EffectsReport, dict[str, Any]]:
    """Run the analyzer; returns the report and a cacheable document."""
    program = build_program(modules)
    summaries = summarize_program(program)
    regions = collect_regions(program, manifest_path)

    raw: list[Finding] = []
    raw.extend(check_regions(program, summaries, regions))
    raw.extend(check_guards(program))
    raw.extend(check_submissions(program))
    for qname in regions.unmatched:
        raw.append(
            Finding(
                path=manifest_path or "lint-effects.regions.json",
                line=1,
                col=0,
                rule=RULE_HOT_ALLOC,
                message=(
                    f"hot-region manifest entry '{qname}' matched no "
                    "function in the analyzed set; fix the qualified name "
                    "or drop the entry"
                ),
            )
        )
    raw.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    by_path = {m.path: m for m in modules}
    kept: list[Finding] = []
    suppressed = 0
    uses: list[list] = []
    for finding in raw:
        parsed = by_path.get(finding.path)
        if parsed is not None:
            before = set(parsed.suppressions.used)
            if parsed.suppressions.suppresses(finding):
                suppressed += 1
                for line, rule in parsed.suppressions.used - before:
                    uses.append([finding.path, line, rule])
                continue
        kept.append(finding)
    report = EffectsReport(
        findings=kept,
        suppressed=suppressed,
        modules=len(program.modules),
        functions=len(program.functions),
        regions=len(regions.regions),
    )
    doc = {
        "version": EFFECTS_VERSION,
        "findings": [f.to_dict() for f in kept],
        "suppressed": suppressed,
        "suppression_uses": uses,
        "modules": report.modules,
        "functions": report.functions,
        "regions": report.regions,
    }
    return report, doc


def _replay(doc: dict[str, Any], modules: list[ParsedModule]) -> EffectsReport:
    """Rebuild a report from a cached document, replaying suppressions."""
    by_path = {m.path: m for m in modules}
    for path, line, rule in doc.get("suppression_uses", []):
        parsed = by_path.get(path)
        if parsed is not None:
            parsed.suppressions.mark_used(line, rule)
    findings = [Finding(**f) for f in doc.get("findings", [])]
    return EffectsReport(
        findings=findings,
        suppressed=int(doc.get("suppressed", 0)),
        modules=int(doc.get("modules", 0)),
        functions=int(doc.get("functions", 0)),
        regions=int(doc.get("regions", 0)),
        cache_hit=True,
    )


def analyze_modules(
    modules: Sequence[ParsedModule],
    *,
    use_cache: bool = True,
    baseline_path: str | None = None,
    update_baseline: bool = False,
    manifest_path: str | None = None,
) -> EffectsReport:
    """Whole-program effects analysis over parsed modules.

    The baseline is applied *after* the cache, exactly like the flow
    pass: cached documents store raw findings, so editing the baseline
    never forces a re-analysis.
    """
    started = time.perf_counter()  # lint: disable=DET001 (host-side analysis timing)
    analyzable = [m for m in modules if m.ctx is not None]
    cache = _open_cache() if use_cache else None
    key = effects_cache_key(analyzable, manifest_path) if cache is not None else ""
    report: EffectsReport | None = None
    if cache is not None:
        try:
            doc = cache.get(key)
        except CacheError:
            doc = None
        if doc is not None and doc.get("version") == EFFECTS_VERSION:
            report = _replay(doc, analyzable)
    if report is None:
        report, doc = _analyze(analyzable, manifest_path)
        if cache is not None:
            try:
                cache.put(key, doc)
            except CacheError:
                pass

    if baseline_path is not None:
        if update_baseline:
            write_baseline(baseline_path, report.findings)
        accepted = load_baseline(baseline_path)
        report.findings, report.baselined = split_baselined(
            report.findings, accepted
        )
    report.duration_s = time.perf_counter() - started  # lint: disable=DET001 (host-side analysis timing)
    return report


def analyze_paths(paths: Sequence[str], **kwargs: Any) -> EffectsReport:
    """Parse every python file under ``paths`` and analyze them."""
    from repro.lint.engine import iter_python_files, parse_module, read_source

    modules = [
        parse_module(read_source(path), path) for path in iter_python_files(paths)
    ]
    return analyze_modules(modules, **kwargs)


def summarize_paths(paths: Sequence[str]) -> dict[str, EffectSummary]:
    """Per-function effect summaries for programmatic consumers."""
    from repro.lint.engine import iter_python_files, parse_module, read_source

    modules = [
        parse_module(read_source(path), path) for path in iter_python_files(paths)
    ]
    program = build_program([m for m in modules if m.ctx is not None])
    return summarize_program(program)
