"""PAR001: un-picklable or fork-unsafe values into task submission.

:mod:`repro.parallel` ships work to worker *processes*: the callable and
every argument cross the pickle boundary.  Lambdas and nested functions
do not pickle; open file handles and thread locks pickle or fork into
broken states.  This pass inspects every call that resolves to
``repro.parallel.pool.Task`` / ``run_tasks`` (plus direct
``ProcessPoolExecutor.submit`` style calls are out of scope — the pool
module owns that boundary) and checks the submitted callable and its
argument tuple, following simple local provenance (``f = open(...)``,
``lock = threading.Lock()``, ``with open(...) as f:``).

``functools.partial(fn, ...)`` is unwrapped one level so the common
"bind config into a module-level function" idiom is checked, not
blocked.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding
from repro.lint.flow.graph import Program, _dotted_parts
from repro.lint.effects.summaries import Resolver

RULE_PAR_UNSAFE = "PAR001"

#: Resolved dotted names whose *result* must not cross the boundary.
_UNSAFE_FACTORIES = {
    "open": "an open file handle",
    "threading.Lock": "a threading lock",
    "threading.RLock": "a threading lock",
    "threading.Condition": "a threading condition",
    "threading.Semaphore": "a threading semaphore",
    "threading.Event": "a threading event",
    "multiprocessing.Lock": "a multiprocessing lock",
    "multiprocessing.RLock": "a multiprocessing lock",
}

#: Submission targets: (qname, fn position, args keyword).
_SUBMIT_TARGETS = {
    "repro.parallel.pool.Task": ("fn", "args"),
    "repro.parallel.Task": ("fn", "args"),
}


def _factory_kind(call: ast.Call, resolver: Resolver, func, local_types) -> str | None:
    """What unsafe thing ``call`` constructs, if any."""
    fn = call.func
    if isinstance(fn, ast.Name) and fn.id == "open":
        if fn.id not in func.local_names:
            return _UNSAFE_FACTORIES["open"]
    parts = _dotted_parts(fn) if not isinstance(fn, ast.Name) else [fn.id]
    if parts is not None:
        resolved = resolver.resolve_call(call, func, local_types)
        if resolved is not None and resolved.kind == "external":
            return _UNSAFE_FACTORIES.get(resolved.target)
    return None


class _Provenance:
    """Local name -> unsafe-kind map from straight-line assignments."""

    def __init__(self, func, resolver: Resolver, local_types) -> None:
        self.kinds: dict[str, str] = {}
        self.local_defs: set[str] = set()
        holder = func.node if func.node is not None else None
        nodes = ast.walk(holder) if holder is not None else iter(())
        for node in nodes:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not holder:
                    self.local_defs.add(node.name)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    if isinstance(node.value, ast.Call):
                        kind = _factory_kind(
                            node.value, resolver, func, local_types
                        )
                        if kind is not None:
                            self.kinds[target.id] = kind
                            continue
                    if isinstance(node.value, ast.Lambda):
                        self.kinds[target.id] = "a lambda"
                        continue
                    self.kinds.pop(target.id, None)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if (
                        isinstance(item.optional_vars, ast.Name)
                        and isinstance(item.context_expr, ast.Call)
                    ):
                        kind = _factory_kind(
                            item.context_expr, resolver, func, local_types
                        )
                        if kind is not None:
                            self.kinds[item.optional_vars.id] = kind


def _check_value(
    node: ast.expr,
    prov: _Provenance,
    resolver: Resolver,
    func,
    local_types,
    role: str,
) -> str | None:
    """Why ``node`` must not cross the process boundary, or None."""
    if isinstance(node, ast.Lambda):
        return f"a lambda as the {role} does not pickle"
    if isinstance(node, ast.GeneratorExp):
        return f"a generator expression as the {role} does not pickle"
    if isinstance(node, ast.Name):
        if node.id in prov.local_defs:
            return (
                f"nested function '{node.id}' as the {role} does not pickle "
                "(move it to module level)"
            )
        kind = prov.kinds.get(node.id)
        if kind is not None:
            return f"{kind} ('{node.id}') as the {role} is fork-unsafe"
        return None
    if isinstance(node, ast.Call):
        kind = _factory_kind(node, resolver, func, local_types)
        if kind is not None:
            return f"{kind} as the {role} is fork-unsafe"
    return None


def _submission_payload(
    call: ast.Call, resolver: Resolver, func, local_types
) -> tuple[ast.expr | None, list[ast.expr]] | None:
    """(fn expr, arg exprs) when ``call`` submits work, else None."""
    resolved = resolver.resolve_call(call, func, local_types)
    if resolved is None:
        return None
    # "class" when repro.parallel.pool is in the analyzed set, "external"
    # when a program merely imports it (fixtures, downstream users).
    if resolved.kind in ("class", "external") and resolved.target in _SUBMIT_TARGETS:
        fn_kw, args_kw = _SUBMIT_TARGETS[resolved.target]
        fn_expr: ast.expr | None = None
        arg_exprs: list[ast.expr] = []
        positional = list(call.args)
        if len(positional) >= 2:
            fn_expr = positional[1]  # Task(name, fn, args)
        if len(positional) >= 3:
            arg_exprs.append(positional[2])
        for kw in call.keywords:
            if kw.arg == fn_kw:
                fn_expr = kw.value
            elif kw.arg == args_kw:
                arg_exprs.append(kw.value)
        flat: list[ast.expr] = []
        for expr in arg_exprs:
            if isinstance(expr, (ast.Tuple, ast.List)):
                flat.extend(expr.elts)
            else:
                flat.append(expr)
        return fn_expr, flat
    return None


def _unwrap_partial(
    fn_expr: ast.expr, resolver: Resolver, func, local_types
) -> tuple[ast.expr, list[ast.expr]]:
    """``functools.partial(g, a, b)`` -> (g, [a, b]); otherwise identity."""
    if isinstance(fn_expr, ast.Call):
        resolved = resolver.resolve_call(fn_expr, func, local_types)
        if (
            resolved is not None
            and resolved.kind == "external"
            and resolved.target == "functools.partial"
            and fn_expr.args
        ):
            return fn_expr.args[0], list(fn_expr.args[1:])
    return fn_expr, []


def check_submissions(program: Program) -> list[Finding]:
    """PAR001 findings across every function in the program."""
    findings: list[Finding] = []
    for module in program.modules.values():
        resolver = Resolver(program, module)
        funcs = list(module.functions.values())
        for cls in module.classes.values():
            funcs.extend(cls.methods.values())
        if module.body is not None:
            funcs.append(module.body)
        for func in funcs:
            local_types = resolver.local_class_types(func)
            prov = _Provenance(func, resolver, local_types)
            holder = func.node
            nodes = (
                ast.walk(holder)
                if holder is not None
                else (n for stmt in func.body for n in ast.walk(stmt))
            )
            for node in nodes:
                if not isinstance(node, ast.Call):
                    continue
                payload = _submission_payload(node, resolver, func, local_types)
                if payload is None:
                    continue
                fn_expr, arg_exprs = payload
                checks: list[tuple[ast.expr, str]] = []
                if fn_expr is not None:
                    inner, bound = _unwrap_partial(
                        fn_expr, resolver, func, local_types
                    )
                    checks.append((inner, "task callable"))
                    checks.extend((b, "bound partial argument") for b in bound)
                checks.extend((a, "task argument") for a in arg_exprs)
                for expr, role in checks:
                    why = _check_value(
                        expr, prov, resolver, func, local_types, role
                    )
                    if why is not None:
                        findings.append(
                            Finding(
                                path=func.path,
                                line=expr.lineno,
                                col=expr.col_offset,
                                rule=RULE_PAR_UNSAFE,
                                message=(
                                    f"fork-unsafe task submission: {why}; "
                                    "values crossing repro.parallel must "
                                    "be picklable module-level objects"
                                ),
                            )
                        )
    return findings
