"""Hot-path budget rules: HOT001 (allocation), HOT002 (repeated dynamic
attribute lookup), HOT003 (exception-based control flow).

Each declared hot region (:mod:`repro.lint.effects.regions`) is checked
directly, then its resolved call graph is walked breadth-first; a callee
that allocates makes the *call site in the region* the finding location,
with the witness chain in the message.  Cold boundaries (``# lint:
cold`` / manifest ``cold`` entries) terminate the walk: a region may
call a cold slow path freely because the fast path never takes it.
"""

from __future__ import annotations

import ast

from repro.lint.findings import SEVERITY_WARNING, Finding
from repro.lint.effects.regions import HotRegion, RegionSet
from repro.lint.effects.summaries import (
    EffectSummary,
    Resolver,
    region_func_info,
    summarize_function,
)

RULE_HOT_ALLOC = "HOT001"
RULE_HOT_ATTR = "HOT002"
RULE_HOT_EXC = "HOT003"

#: Call-chain depth bound for the reachability walk (defensive only; the
#: real tree's hot chains are one or two deep).
_MAX_DEPTH = 12

#: Minimum repeated loads of the same loop-invariant attribute before
#: HOT002 suggests hoisting it to a local.
_HOT002_MIN_LOADS = 2


def _summary_for(
    qname: str,
    program,
    summaries: dict[str, EffectSummary],
    extra: dict[str, EffectSummary],
) -> EffectSummary | None:
    if qname in summaries:
        return summaries[qname]
    return extra.get(qname)


def _region_summary(
    region: HotRegion,
    program,
    summaries: dict[str, EffectSummary],
    extra: dict[str, EffectSummary],
) -> EffectSummary:
    """The region's own summary — computed on demand for nested functions
    the program graph does not register."""
    known = _summary_for(region.qname, program, summaries, extra)
    if known is not None:
        return known
    func = region_func_info(program, region)
    module = program.modules[region.module_name]
    summary = summarize_function(func, Resolver(program, module), program)
    extra[region.qname] = summary
    return summary


def check_regions(
    program,
    summaries: dict[str, EffectSummary],
    regions: RegionSet,
) -> list[Finding]:
    findings: list[Finding] = []
    extra: dict[str, EffectSummary] = {}
    for region in regions.regions:
        summary = _region_summary(region, program, summaries, extra)
        findings.extend(_check_direct_allocs(region, summary))
        findings.extend(
            _check_transitive_allocs(region, summary, summaries, regions)
        )
        findings.extend(_check_exception_flow(region))
        findings.extend(_check_attr_lookups(region, summary))
    return findings


def _label(region: HotRegion) -> str:
    suffix = f" ({region.reason})" if region.reason else ""
    return f"hot region {region.qname}{suffix}"


def _check_direct_allocs(
    region: HotRegion, summary: EffectSummary
) -> list[Finding]:
    return [
        Finding(
            path=region.path,
            line=site.line,
            col=site.col,
            rule=RULE_HOT_ALLOC,
            message=(
                f"per-event allocation ({site.kind}) inside {_label(region)}; "
                "hoist it out of the hot path or mark the slow path "
                "'# lint: cold'"
            ),
        )
        for site in summary.alloc_sites
    ]


def _check_transitive_allocs(
    region: HotRegion,
    summary: EffectSummary,
    summaries: dict[str, EffectSummary],
    regions: RegionSet,
) -> list[Finding]:
    """BFS over resolved call edges; report the region-level call site of
    the first chain reaching an allocating callee."""
    findings: list[Finding] = []
    seen: set[str] = {region.qname}
    # Queue entries: (callee qname, call site in the region, chain names).
    queue: list[tuple[str, tuple[int, int], list[str]]] = []
    for edge in summary.calls:
        if edge.callee not in regions.cold:
            queue.append((edge.callee, (edge.line, edge.col), [region.qname]))
    reported: set[tuple[int, int]] = set()
    depth = 0
    while queue and depth < _MAX_DEPTH:
        depth += 1
        next_queue: list[tuple[str, tuple[int, int], list[str]]] = []
        for callee, site, chain in queue:
            if callee in seen:
                continue
            seen.add(callee)
            callee_summary = summaries.get(callee)
            if callee_summary is None:
                continue  # unresolvable: stay silent
            if callee_summary.alloc_sites and site not in reported:
                reported.add(site)
                first = callee_summary.alloc_sites[0]
                witness = " -> ".join([*chain, callee])
                findings.append(
                    Finding(
                        path=region.path,
                        line=site[0],
                        col=site[1],
                        rule=RULE_HOT_ALLOC,
                        message=(
                            f"call chain {witness} allocates "
                            f"({first.kind} at line {first.line} of "
                            f"{callee_summary.func.path}) inside "
                            f"{_label(region)}; mark the callee "
                            "'# lint: cold' if the fast path never takes it"
                        ),
                    )
                )
                continue  # the chain is reported; don't descend further
            for edge in callee_summary.calls:
                if edge.callee not in regions.cold:
                    next_queue.append((edge.callee, site, [*chain, callee]))
        queue = next_queue
    return findings


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    return len(handler.body) == 1 and isinstance(handler.body[0], ast.Raise)


def _check_exception_flow(region: HotRegion) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(region.node):
        if not isinstance(node, ast.Try):
            continue
        if not node.handlers:
            continue  # try/finally: cleanup, not control flow
        if all(_handler_reraises(h) for h in node.handlers):
            continue  # annotate-and-reraise is not control flow
        findings.append(
            Finding(
                path=region.path,
                line=node.lineno,
                col=node.col_offset,
                rule=RULE_HOT_EXC,
                message=(
                    f"exception-based control flow inside {_label(region)}; "
                    "CPython exception handling costs dozens of ns per "
                    "event — test the condition explicitly instead"
                ),
            )
        )
    return findings


def _loop_assigned_names(loop: ast.For | ast.While) -> set[str]:
    """Names rebound anywhere inside the loop (targets included)."""
    names: set[str] = set()
    for node in ast.walk(loop):
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            names.add(node.id)
        elif isinstance(node, ast.alias):
            names.add(node.asname or node.name.split(".")[0])
    return names


def _check_attr_lookups(
    region: HotRegion, summary: EffectSummary
) -> list[Finding]:
    """HOT002: the same ``invariant.attr`` looked up repeatedly in a loop."""
    findings: list[Finding] = []
    # Nested loops are both walked; report each (site, attribute) once.
    reported: set[tuple[int, int, str, str]] = set()
    for loop in ast.walk(region.node):
        if not isinstance(loop, (ast.For, ast.While)):
            continue
        rebound = _loop_assigned_names(loop)
        loads: dict[tuple[str, str], list[ast.Attribute]] = {}
        call_funcs = {
            id(node.func)
            for node in ast.walk(loop)
            if isinstance(node, ast.Call)
        }
        for node in ast.walk(loop):
            if not (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Name)
            ):
                continue
            if id(node) in call_funcs:
                continue  # a.b(...) — bound-method call, idiomatic
            if node.value.id in rebound:
                continue  # base varies per iteration
            loads.setdefault((node.value.id, node.attr), []).append(node)
        for (base, attr), nodes in sorted(loads.items()):
            if len(nodes) < _HOT002_MIN_LOADS:
                continue
            first = min(nodes, key=lambda n: (n.lineno, n.col_offset))
            key = (first.lineno, first.col_offset, base, attr)
            if key in reported:
                continue
            reported.add(key)
            findings.append(
                Finding(
                    path=region.path,
                    line=first.lineno,
                    col=first.col_offset,
                    rule=RULE_HOT_ATTR,
                    message=(
                        f"attribute '{base}.{attr}' looked up {len(nodes)} "
                        f"times per iteration inside {_label(region)}; "
                        f"hoist it to a local before the loop"
                    ),
                    severity=SEVERITY_WARNING,
                )
            )
    return findings
