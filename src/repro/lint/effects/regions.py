"""Hot-region declarations: the committed manifest plus inline markers.

A *hot region* is a function whose body must stay allocation-light and
effect-free — the dispatch loop, the event-queue pop path, the PowerModel
memo path, the per-event bench callbacks.  Two declaration mechanisms
feed the same set:

* the **region manifest** (``lint-effects.regions.json``), a committed
  JSON file naming functions by qualified name — the reviewable source
  of truth for the production hot set;
* an inline ``# lint: hot`` comment on (or directly above) a ``def``
  line — the only way to mark *nested* functions (bench kernel
  callbacks), and handy in fixture corpora.

``# lint: cold`` (or a manifest ``cold`` entry) marks a *boundary*: a
function that is deliberately off the hot budget (a memo-miss slow path,
the obs-enabled dispatch loop).  Hot-path propagation stops there — a
hot region may call a cold function without a finding, because the
region's fast path never takes that call.

Both markers accept free-form text after the keyword, recorded as the
region's reason (``# lint: hot (per-event dispatch callback)``).
"""

from __future__ import annotations

import ast
import json
import os
import re
from dataclasses import dataclass, field

from repro.errors import LintError
from repro.lint.findings import _comment_lines

#: Default manifest filename, looked up in the working directory.
DEFAULT_MANIFEST = "lint-effects.regions.json"

MANIFEST_VERSION = 1

_HOT_RE = re.compile(r"#\s*lint:\s*hot\b\s*(.*)")
_COLD_RE = re.compile(r"#\s*lint:\s*cold\b\s*(.*)")


@dataclass
class HotRegion:
    """One declared hot function: where it lives and why it is hot."""

    qname: str
    module_name: str
    path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    reason: str = ""
    source: str = "manifest"  # "manifest" | "marker"
    #: Qualified name of the owning class, when the region is a method.
    cls_qname: str | None = None


@dataclass
class RegionSet:
    """Every declared hot region and cold boundary in one analysis run."""

    regions: list[HotRegion] = field(default_factory=list)
    cold: set[str] = field(default_factory=set)
    #: Manifest entries that matched no function in the analyzed set —
    #: surfaced as findings so a rename cannot silently drop coverage.
    unmatched: list[str] = field(default_factory=list)

    def is_cold(self, qname: str) -> bool:
        return qname in self.cold


def load_manifest(path: str | None) -> tuple[dict[str, str], dict[str, str]]:
    """(hot qname -> reason, cold qname -> reason) from the manifest.

    ``path=None`` falls back to :data:`DEFAULT_MANIFEST` when present;
    an explicitly-named missing file is an error, a missing default is
    an empty manifest (marker-only operation).
    """
    if path is None:
        if not os.path.exists(DEFAULT_MANIFEST):
            return {}, {}
        path = DEFAULT_MANIFEST
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        raise LintError(f"cannot read region manifest {path}: {err}") from err
    if not isinstance(doc, dict):
        raise LintError(f"region manifest {path}: top level must be an object")
    hot: dict[str, str] = {}
    cold: dict[str, str] = {}
    for key, sink in (("regions", hot), ("cold", cold)):
        for entry in doc.get(key, []):
            if not isinstance(entry, dict) or "function" not in entry:
                raise LintError(
                    f"region manifest {path}: every '{key}' entry needs a "
                    "'function' qualified name"
                )
            sink[str(entry["function"])] = str(entry.get("reason", ""))
    return hot, cold


def manifest_digest_text(path: str | None) -> str:
    """Canonical manifest text for the result-cache key ("" when absent)."""
    hot, cold = load_manifest(path)
    return json.dumps([sorted(hot.items()), sorted(cold.items())])


def _marker_lines(source: str) -> tuple[dict[int, str], dict[int, str]]:
    """(hot line -> reason, cold line -> reason) for one module."""
    hot: dict[int, str] = {}
    cold: dict[int, str] = {}
    for lineno, text in _comment_lines(source):
        hot_match = _HOT_RE.search(text)
        if hot_match:
            hot[lineno] = hot_match.group(1).strip().strip("()")
        cold_match = _COLD_RE.search(text)
        if cold_match:
            cold[lineno] = cold_match.group(1).strip().strip("()")
    return hot, cold


def _marked(node: ast.AST, markers: dict[int, str]) -> str | None:
    """The marker reason if ``node``'s def line (or the line above, or a
    decorator line) carries a marker."""
    lines = {node.lineno, node.lineno - 1}
    lines.update(d.lineno for d in getattr(node, "decorator_list", []))
    for lineno in lines:
        if lineno in markers:
            return markers[lineno]
    return None


def _walk_functions(module):
    """Yield (qname, cls_qname, node) for every def in a module, nested
    included (nested defs get ``<qname>.<locals>.<name>`` names)."""

    def inner(node: ast.AST, prefix: str, cls_qname: str | None):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = f"{prefix}.{child.name}"
                yield qname, cls_qname, child
                yield from inner(child, f"{qname}.<locals>", cls_qname)
            elif isinstance(child, ast.ClassDef):
                cq = f"{prefix}.{child.name}"
                yield from inner(child, cq, cq)

    yield from inner(module.parsed.ctx.tree, module.name, None)


def collect_regions(program, manifest_path: str | None) -> RegionSet:
    """Resolve the manifest plus inline markers against ``program``."""
    hot_manifest, cold_manifest = load_manifest(manifest_path)
    regions = RegionSet(cold=set(cold_manifest))
    matched: set[str] = set()
    for module in program.modules.values():
        hot_marks, cold_marks = _marker_lines(module.parsed.source)
        scan_markers = bool(hot_marks) or bool(cold_marks)
        if not scan_markers and not hot_manifest:
            continue
        for qname, cls_qname, node in _walk_functions(module):
            reason: str | None = None
            source = "manifest"
            if qname in hot_manifest:
                reason = hot_manifest[qname]
                matched.add(qname)
            elif scan_markers:
                reason = _marked(node, hot_marks)
                source = "marker"
            if reason is not None:
                regions.regions.append(
                    HotRegion(
                        qname=qname,
                        module_name=module.name,
                        path=module.parsed.path,
                        node=node,
                        reason=reason,
                        source=source,
                        cls_qname=cls_qname,
                    )
                )
            if scan_markers and _marked(node, cold_marks) is not None:
                regions.cold.add(qname)
    regions.unmatched = sorted(set(hot_manifest) - matched)
    regions.regions.sort(key=lambda r: (r.path, r.node.lineno))
    return regions
