"""UNIT001 — suffix-driven unit and representation checking.

The codebase encodes units in trailing name suffixes (``units.py``'s
conventions: ``*_ns`` integer nanoseconds, ``*_w``/``*_hz``/``*_j``/
``*_v`` float watts/hertz/joules/volts, ...).  This rule makes the
convention machine-checked:

* annotations: a ``*_ns`` parameter/return/variable must not be
  annotated ``float``; float-unit suffixes must not be annotated ``int``;
* representation drift: assigning a float literal or a true-division
  result to a ``*_ns`` name loses the integer-time guarantee — wrap in
  ``round()``/``int()`` or use a :mod:`repro.units` converter;
* cross-suffix flow: assigning ``x_ns = y_us`` or calling
  ``f(time_ns=y_us)`` mixes scales/dimensions without a conversion.

The check is name-driven and deliberately conservative: only bare
names/attributes with a recognized suffix participate, so untyped
helpers never false-positive.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.findings import Finding
from repro.lint.rules import LintRule, ModuleContext, register

#: suffix -> (dimension, scale-token).  Scale tokens are only compared
#: for equality; conversions between any two distinct entries must go
#: through repro.units.
SUFFIXES: dict[str, tuple[str, str]] = {
    "ns": ("time", "ns"),
    "us": ("time", "us"),
    "ms": ("time", "ms"),
    "s": ("time", "s"),
    "hz": ("frequency", "hz"),
    "khz": ("frequency", "khz"),
    "mhz": ("frequency", "mhz"),
    "ghz": ("frequency", "ghz"),
    "w": ("power", "w"),
    "mw": ("power", "mw"),
    "j": ("energy", "j"),
    "v": ("voltage", "v"),
    "mv": ("voltage", "mv"),
    "a": ("current", "a"),
    "c": ("temperature", "c"),
    "k": ("temperature", "k"),
}

#: The one integer-representation suffix (DESIGN.md §7: integer time).
INT_SUFFIXES = {"ns"}
#: Suffixes whose values are physical floats.
FLOAT_SUFFIXES = {"w", "hz", "j", "v", "mw", "khz", "mhz", "ghz", "a", "mv"}

#: Calls whose result is acceptable for an ``*_ns`` target: explicit
#: integer coercions and the repro.units time converters.
INT_PRODUCING_CALLS = {"int", "round", "len", "floor", "ceil", "us", "ms", "s", "seconds", "index"}


def suffix_of(name: str) -> str | None:
    """The recognized unit suffix of ``name``, if any."""
    if "_" not in name:
        return None
    tail = name.rsplit("_", 1)[1].lower()
    return tail if tail in SUFFIXES else None


def _target_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _annotation_names(node: ast.expr | None) -> set[str]:
    """Bare type names in a simple annotation (``float``, ``int | None``)."""
    if node is None:
        return set()
    if isinstance(node, ast.Name):
        return {node.id}
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_names(node.left) | _annotation_names(node.right)
    if isinstance(node, ast.Constant) and node.value is None:
        return set()
    return set()  # subscripted / complex annotations: out of scope


def _is_int_producing_call(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else None
    )
    return name in INT_PRODUCING_CALLS


def _float_hazard(node: ast.expr) -> str | None:
    """Why ``node``'s value is a float, if statically evident."""
    if _is_int_producing_call(node):
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return f"float literal {node.value!r}"
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return "true division (float result)"
        if isinstance(node.op, (ast.Add, ast.Sub, ast.Mult, ast.Mod, ast.Pow)):
            return _float_hazard(node.left) or _float_hazard(node.right)
    if isinstance(node, ast.UnaryOp):
        return _float_hazard(node.operand)
    return None


@register
class UnitSuffixRule(LintRule):
    rule_id = "UNIT001"
    title = "unit-suffix consistency (types, conversions, int nanoseconds)"

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(self._check_signature(ctx, node))
            elif isinstance(node, ast.AnnAssign):
                findings.extend(self._check_annotation(ctx, node.target, node.annotation))
                if node.value is not None:
                    findings.extend(self._check_assign(ctx, node.target, node.value))
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    findings.extend(self._check_assign_target(ctx, target, node.value))
            elif isinstance(node, ast.AugAssign):
                findings.extend(self._check_assign(ctx, node.target, node.value, aug=True))
            elif isinstance(node, ast.Call):
                findings.extend(self._check_call(ctx, node))
        return findings

    # --- annotations -------------------------------------------------------

    def _check_signature(self, ctx, node) -> list[Finding]:
        findings = []
        args = [*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs]
        for arg in args:
            findings.extend(self._check_annotation(ctx, arg, arg.annotation, name=arg.arg))
        if node.returns is not None:
            findings.extend(
                self._check_annotation(ctx, node, node.returns, name=node.name, kind="return of")
            )
        return findings

    def _check_annotation(self, ctx, node, annotation, *, name=None, kind="") -> list[Finding]:
        if name is None:
            name = _target_name(node) if isinstance(node, ast.expr) else None
        if name is None:
            return []
        suffix = suffix_of(name)
        if suffix is None:
            return []
        names = _annotation_names(annotation)
        label = f"{kind} {name}".strip() if kind else name
        if suffix in INT_SUFFIXES and "float" in names:
            return [
                ctx.finding(
                    node,
                    self.rule_id,
                    f"'{label}' carries integer-nanosecond suffix '_{suffix}' "
                    "but is annotated float (integer time keeps the event "
                    "engine exact)",
                )
            ]
        if suffix in FLOAT_SUFFIXES and "int" in names:
            return [
                ctx.finding(
                    node,
                    self.rule_id,
                    f"'{label}' carries float-unit suffix '_{suffix}' but is "
                    "annotated int",
                )
            ]
        return []

    # --- assignments -------------------------------------------------------

    def _check_assign_target(self, ctx, target, value) -> list[Finding]:
        """Dispatch one assignment target, unpacking tuples pairwise.

        ``t_ns, f_hz = delay_us, clock_mhz`` checks each (target, value)
        pair; starred targets and arity mismatches stay out of scope.
        """
        if isinstance(target, (ast.Tuple, ast.List)):
            findings: list[Finding] = []
            if isinstance(value, (ast.Tuple, ast.List)) and len(
                value.elts
            ) == len(target.elts):
                for t, v in zip(target.elts, value.elts):
                    if not isinstance(t, ast.Starred):
                        findings.extend(self._check_assign_target(ctx, t, v))
            return findings
        return self._check_assign(ctx, target, value)

    def _check_assign(self, ctx, target, value, *, aug=False) -> list[Finding]:
        name = _target_name(target)
        if name is None:
            return []
        suffix = suffix_of(name)
        if suffix is None:
            return []
        findings = []
        if suffix in INT_SUFFIXES:
            hazard = _float_hazard(value)
            if hazard:
                op = "augmented with" if aug else "assigned"
                findings.append(
                    ctx.finding(
                        target,
                        self.rule_id,
                        f"integer-nanosecond name '{name}' {op} {hazard}; "
                        "wrap in round()/int() or use a repro.units converter",
                    )
                )
        source = _target_name(value) if isinstance(value, (ast.Name, ast.Attribute)) else None
        if source is not None:
            other = suffix_of(source)
            if other is not None and other != suffix:
                findings.append(
                    ctx.finding(
                        target,
                        self.rule_id,
                        self._mismatch_message(name, suffix, source, other),
                    )
                )
        return findings

    # --- calls -------------------------------------------------------------

    def _check_call(self, ctx, node: ast.Call) -> list[Finding]:
        findings = []
        for kw in node.keywords:
            if kw.arg is None:
                continue
            suffix = suffix_of(kw.arg)
            if suffix is None:
                continue
            source = (
                _target_name(kw.value)
                if isinstance(kw.value, (ast.Name, ast.Attribute))
                else None
            )
            if source is None:
                continue
            other = suffix_of(source)
            if other is not None and other != suffix:
                findings.append(
                    ctx.finding(
                        kw.value,
                        self.rule_id,
                        self._mismatch_message(kw.arg, suffix, source, other),
                    )
                )
        return findings

    def _mismatch_message(self, dst: str, dst_suffix: str, src: str, src_suffix: str) -> str:
        dst_dim, dst_scale = SUFFIXES[dst_suffix]
        src_dim, src_scale = SUFFIXES[src_suffix]
        if dst_dim != src_dim:
            detail = f"{src_dim} value into a {dst_dim} slot"
        else:
            detail = f"{src_scale} value into a {dst_scale} slot (scale mismatch)"
        return (
            f"'{src}' flows into '{dst}' without conversion: {detail}; "
            "convert via repro.units"
        )
