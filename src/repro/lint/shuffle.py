"""Event-order shuffle mode: a race detector for the discrete-event engine.

The event queue breaks same-timestamp ties in scheduling order — a
*stable* order the machine model may rely on only where DESIGN.md says
it may.  Any *other* dependence on tie-breaking is an ordering race: a
refactor that changes scheduling order would silently change results.

Shuffle mode randomizes the tie-break (seeded through
:class:`repro.sim.rng.RngFactory`, so each shuffle seed is itself
reproducible) and re-runs a scenario.  If a digest of the scenario's
observable results differs between the stable order and any shuffle
seed, the scenario depends on event ordering beyond the documented
contract.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Sequence


def digest(text: str) -> str:
    """Stable short digest of an observable-result rendering."""
    return hashlib.sha256(text.encode()).hexdigest()[:16]


@dataclass
class OrderingReport:
    """Digests of one scenario under stable and shuffled tie-breaking."""

    scenario: str
    digests: dict[str, str] = field(default_factory=dict)

    @property
    def deterministic(self) -> bool:
        return len(set(self.digests.values())) <= 1

    def mismatches(self) -> list[str]:
        baseline = self.digests.get("stable")
        return [
            label
            for label, value in self.digests.items()
            if baseline is not None and value != baseline
        ]

    def render(self) -> str:
        verdict = (
            "order-independent"
            if self.deterministic
            else f"ORDERING RACE (mismatched: {', '.join(self.mismatches())})"
        )
        rows = "\n".join(
            f"  {label:>10}: {value}" for label, value in self.digests.items()
        )
        return f"== event-order shuffle: {self.scenario} ==\n{rows}\n{verdict}"


def ordering_check(
    run: Callable[[int | None], str],
    *,
    scenario: str = "scenario",
    seeds: Sequence[int] = (1, 2, 3),
) -> OrderingReport:
    """Run ``run(shuffle_seed)`` under stable + shuffled orders.

    ``run`` receives ``None`` for the stable baseline, then each shuffle
    seed, and returns any string capturing the observable results.
    """
    report = OrderingReport(scenario=scenario)
    report.digests["stable"] = digest(run(None))
    for seed in seeds:
        report.digests[f"shuffle[{seed}]"] = digest(run(seed))
    return report


def selfcheck_ordering(
    sku: str = "EPYC 7502",
    *,
    n_packages: int = 2,
    machine_seed: int = 0,
    seeds: Sequence[int] = (1, 2, 3),
) -> OrderingReport:
    """The canned race check: machine selfcheck under shuffled ordering."""
    # Imported here: repro.core.selfcheck itself imports the monitor.
    from repro.core.selfcheck import selfcheck
    from repro.machine import Machine

    def run(shuffle_seed: int | None) -> str:
        machine = Machine(
            sku,
            n_packages=n_packages,
            seed=machine_seed,
            event_order_shuffle=shuffle_seed,
        )
        try:
            return selfcheck(machine).render()
        finally:
            machine.shutdown()

    return ordering_check(run, scenario=f"selfcheck {sku}", seeds=seeds)
