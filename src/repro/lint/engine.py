"""File discovery, parsing, rule dispatch and suppression filtering."""

from __future__ import annotations

import ast
import os
import tokenize
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.errors import LintError
from repro.lint.findings import SEVERITY_WARNING, Finding, SuppressionIndex
from repro.lint.rules import LintRule, ModuleContext, all_rules

#: Pruned while walking directory arguments.  ``fixtures`` holds test
#: *data* — deliberately-buggy inputs — linted only when named directly.
_SKIP_DIRS = {
    "__pycache__",
    ".git",
    ".hypothesis",
    ".pytest_cache",
    "build",
    "dist",
    "fixtures",
}

#: Engine-level rule: a ``# lint: disable=RULE`` that excused nothing.
UNUSED_SUPPRESSION_RULE = "LINT001"


@dataclass
class ParsedModule:
    """One source file, parsed once and shared by every analysis pass."""

    path: str
    source: str
    suppressions: SuppressionIndex
    ctx: ModuleContext | None = None
    parse_finding: Finding | None = None


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    #: Statistics of the whole-program flow analysis, when it ran
    #: (module/function counts, fixpoint rounds, cache status).
    flow: dict[str, Any] | None = None

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def clean(self) -> bool:
        return not self.errors

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts


def iter_python_files(paths: Sequence[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                found.append(path)
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs if d not in _SKIP_DIRS)
                found.extend(
                    os.path.join(root, f) for f in sorted(files) if f.endswith(".py")
                )
        else:
            raise LintError(f"no such file or directory: {path}")
    return sorted(set(found))


def read_source(path: str) -> str:
    """Read a Python source file the way the interpreter would.

    ``tokenize.open`` honours a PEP 263 ``# -*- coding: ... -*-`` cookie
    and a UTF-8/UTF-16 BOM, defaulting to UTF-8 — never the platform
    default encoding, so results do not depend on the host locale.
    """
    try:
        with tokenize.open(path) as handle:
            return handle.read()
    except (SyntaxError, UnicodeDecodeError) as err:
        # A bogus cookie or undecodable bytes: surface as a lint error
        # rather than crashing the whole run.
        raise LintError(f"cannot decode {path}: {err}") from err


def parse_module(source: str, path: str = "<string>") -> ParsedModule:
    """Parse one source string into the shared per-module record."""
    parsed = ParsedModule(
        path=path, source=source, suppressions=SuppressionIndex(source)
    )
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        parsed.parse_finding = Finding(
            path=path,
            line=err.lineno or 1,
            col=(err.offset or 0) + 1,
            rule="PARSE",
            message=f"syntax error: {err.msg}",
        )
        return parsed
    parsed.ctx = ModuleContext(path, source, tree)
    return parsed


def _apply_rules(
    parsed: ParsedModule, rules: Sequence[LintRule]
) -> tuple[list[Finding], int]:
    """Run ``rules`` over one parsed module, filtering suppressions."""
    if parsed.ctx is None:
        assert parsed.parse_finding is not None
        return [parsed.parse_finding], 0
    kept: list[Finding] = []
    suppressed = 0
    for rule in rules:
        for finding in rule.check(parsed.ctx):
            if parsed.suppressions.suppresses(finding):
                suppressed += 1
            else:
                kept.append(finding)
    return kept, suppressed


def unused_suppression_findings(
    parsed: ParsedModule, checkable: set[str]
) -> tuple[list[Finding], int]:
    """LINT001 warnings for stale suppressions in one module.

    A LINT001 finding is itself suppressible (``# lint:
    disable=LINT001`` on the stale comment's line), which the second
    return value counts.
    """
    kept: list[Finding] = []
    suppressed = 0
    for lineno, rule in parsed.suppressions.unused(checkable):
        finding = Finding(
            path=parsed.path,
            line=lineno,
            col=1,
            rule=UNUSED_SUPPRESSION_RULE,
            message=(
                f"suppression of {rule} never matched a finding; "
                "remove the stale '# lint: disable' comment"
            ),
            severity=SEVERITY_WARNING,
        )
        if parsed.suppressions.suppresses(finding):
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Iterable[LintRule] | None = None,
    *,
    unused_check: bool = True,
) -> tuple[list[Finding], int]:
    """Lint one source string; returns (findings, n_suppressed)."""
    rules = list(rules) if rules is not None else all_rules()
    parsed = parse_module(source, path)
    kept, suppressed = _apply_rules(parsed, rules)
    if unused_check and parsed.ctx is not None:
        checkable = {rule.rule_id for rule in rules}
        stale, stale_suppressed = unused_suppression_findings(parsed, checkable)
        kept.extend(stale)
        suppressed += stale_suppressed
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept, suppressed


def lint_paths(
    paths: Sequence[str],
    rules: Iterable[LintRule] | None = None,
    *,
    unused_check: bool = True,
    flow: bool = False,
    flow_cache: bool = True,
    baseline: str | None = None,
    update_baseline: bool = False,
) -> LintReport:
    """Lint every python file under ``paths``.

    With ``flow=True`` the whole-program dimensional-dataflow analysis
    (:mod:`repro.lint.flow`) runs over the same parsed modules and its
    DIM/DET findings join the report; ``baseline`` names a baseline file
    whose known findings are filtered out (``update_baseline`` rewrites
    it from the current run instead).
    """
    rules = list(rules) if rules is not None else all_rules()
    report = LintReport()
    modules: list[ParsedModule] = []
    for path in iter_python_files(paths):
        parsed = parse_module(read_source(path), path)
        modules.append(parsed)
        findings, suppressed = _apply_rules(parsed, rules)
        report.findings.extend(findings)
        report.suppressed += suppressed
        report.files_checked += 1

    checkable = {rule.rule_id for rule in rules}
    if flow:
        from repro.lint.flow import FLOW_RULE_IDS, analyze_modules

        flow_report = analyze_modules(
            modules,
            use_cache=flow_cache,
            baseline_path=baseline,
            update_baseline=update_baseline,
        )
        report.findings.extend(flow_report.findings)
        report.suppressed += flow_report.suppressed
        report.flow = flow_report.stats()
        checkable |= FLOW_RULE_IDS

    if unused_check:
        for parsed in modules:
            if parsed.ctx is None:
                continue
            stale, stale_suppressed = unused_suppression_findings(parsed, checkable)
            report.findings.extend(stale)
            report.suppressed += stale_suppressed

    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report
