"""File discovery, parsing, rule dispatch and suppression filtering."""

from __future__ import annotations

import ast
import os
import subprocess
import tokenize
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.errors import LintError
from repro.lint.findings import (
    _FILE_RE,
    _LINE_RE,
    _comment_lines,
    _split,
    SEVERITY_WARNING,
    Finding,
    SuppressionIndex,
)
from repro.lint.rules import LintRule, ModuleContext, all_rules

#: Pruned while walking directory arguments.  ``fixtures`` holds test
#: *data* — deliberately-buggy inputs — linted only when named directly.
_SKIP_DIRS = {
    "__pycache__",
    ".git",
    ".hypothesis",
    ".pytest_cache",
    "build",
    "dist",
    "fixtures",
}

#: Engine-level rule: a ``# lint: disable=RULE`` that excused nothing.
UNUSED_SUPPRESSION_RULE = "LINT001"

#: Engine-level rule: an effects-rule suppression without a ``reason=``.
SUPPRESSION_REASON_RULE = "LINT002"

#: Rule-id prefixes whose suppressions must carry a ``reason=`` token.
#: Effects and contracts findings gate perf, isolation and structural
#: invariants; excusing one without a recorded justification defeats
#: the review trail.
REASON_REQUIRED_PREFIXES = ("HOT", "OBS", "PAR", "CON")


@dataclass
class ParsedModule:
    """One source file, parsed once and shared by every analysis pass."""

    path: str
    source: str
    suppressions: SuppressionIndex
    ctx: ModuleContext | None = None
    parse_finding: Finding | None = None


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    #: Statistics of the whole-program flow analysis, when it ran
    #: (module/function counts, fixpoint rounds, cache status).
    flow: dict[str, Any] | None = None
    #: Statistics of the whole-program effects analysis, when it ran
    #: (module/function/region counts, cache status).
    effects: dict[str, Any] | None = None
    #: Statistics of the whole-program contracts analysis, when it ran
    #: (pair/layer/schema counts, cache status).
    contracts: dict[str, Any] | None = None

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def clean(self) -> bool:
        return not self.errors

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts


def iter_python_files(paths: Sequence[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                found.append(path)
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs if d not in _SKIP_DIRS)
                found.extend(
                    os.path.join(root, f) for f in sorted(files) if f.endswith(".py")
                )
        else:
            raise LintError(f"no such file or directory: {path}")
    return sorted(set(found))


def read_source(path: str) -> str:
    """Read a Python source file the way the interpreter would.

    ``tokenize.open`` honours a PEP 263 ``# -*- coding: ... -*-`` cookie
    and a UTF-8/UTF-16 BOM, defaulting to UTF-8 — never the platform
    default encoding, so results do not depend on the host locale.
    """
    try:
        with tokenize.open(path) as handle:
            return handle.read()
    except (SyntaxError, UnicodeDecodeError) as err:
        # A bogus cookie or undecodable bytes: surface as a lint error
        # rather than crashing the whole run.
        raise LintError(f"cannot decode {path}: {err}") from err


def parse_module(source: str, path: str = "<string>") -> ParsedModule:
    """Parse one source string into the shared per-module record."""
    parsed = ParsedModule(
        path=path, source=source, suppressions=SuppressionIndex(source)
    )
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        parsed.parse_finding = Finding(
            path=path,
            line=err.lineno or 1,
            col=(err.offset or 0) + 1,
            rule="PARSE",
            message=f"syntax error: {err.msg}",
        )
        return parsed
    parsed.ctx = ModuleContext(path, source, tree)
    return parsed


def _apply_rules(
    parsed: ParsedModule, rules: Sequence[LintRule]
) -> tuple[list[Finding], int]:
    """Run ``rules`` over one parsed module, filtering suppressions."""
    if parsed.ctx is None:
        assert parsed.parse_finding is not None
        return [parsed.parse_finding], 0
    kept: list[Finding] = []
    suppressed = 0
    for rule in rules:
        for finding in rule.check(parsed.ctx):
            if parsed.suppressions.suppresses(finding):
                suppressed += 1
            else:
                kept.append(finding)
    return kept, suppressed


def unused_suppression_findings(
    parsed: ParsedModule, checkable: set[str]
) -> tuple[list[Finding], int]:
    """LINT001 warnings for stale suppressions in one module.

    A LINT001 finding is itself suppressible (``# lint:
    disable=LINT001`` on the stale comment's line), which the second
    return value counts.
    """
    kept: list[Finding] = []
    suppressed = 0
    for lineno, rule in parsed.suppressions.unused(checkable):
        finding = Finding(
            path=parsed.path,
            line=lineno,
            col=1,
            rule=UNUSED_SUPPRESSION_RULE,
            message=(
                f"suppression of {rule} never matched a finding; "
                "remove the stale '# lint: disable' comment"
            ),
            severity=SEVERITY_WARNING,
        )
        if parsed.suppressions.suppresses(finding):
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed


def suppression_reason_findings(parsed: ParsedModule) -> tuple[list[Finding], int]:
    """LINT002 findings: effects-rule suppressions must state a reason.

    Any ``# lint: disable[-file]=`` comment naming a HOT/OBS/PAR rule
    must carry a ``reason=`` token in the same comment, e.g.::

        x = (a, b)  # lint: disable=HOT001 reason=hoisted by caller

    Purely syntactic, so it runs whether or not the effects pass does.
    """
    kept: list[Finding] = []
    suppressed = 0
    for lineno, text in _comment_lines(parsed.source):
        match = _FILE_RE.search(text) or _LINE_RE.search(text)
        if match is None:
            continue
        needing = sorted(
            rule
            for rule in _split(match.group(1))
            if rule.startswith(REASON_REQUIRED_PREFIXES)
        )
        if not needing or "reason=" in text:
            continue
        finding = Finding(
            path=parsed.path,
            line=lineno,
            col=1,
            rule=SUPPRESSION_REASON_RULE,
            message=(
                f"suppression of {', '.join(needing)} lacks a 'reason=' "
                "token; effects-rule suppressions must record their "
                "justification inline"
            ),
        )
        if parsed.suppressions.suppresses(finding):
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed


def changed_files() -> set[str] | None:
    """Absolute paths changed vs HEAD (tracked diffs plus untracked).

    Returns ``None`` when git is unavailable or the working directory is
    not a repository — callers fall back to a full run.
    """
    def _git(*args: str) -> str:
        return subprocess.run(
            ["git", *args],
            capture_output=True,
            text=True,
            check=True,
            timeout=30,
        ).stdout

    try:
        top = _git("rev-parse", "--show-toplevel").strip()
        listing = _git("diff", "--name-only", "HEAD") + _git(
            "ls-files", "--others", "--exclude-standard"
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return {
        os.path.abspath(os.path.join(top, line.strip()))
        for line in listing.splitlines()
        if line.strip()
    }


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Iterable[LintRule] | None = None,
    *,
    unused_check: bool = True,
) -> tuple[list[Finding], int]:
    """Lint one source string; returns (findings, n_suppressed)."""
    rules = list(rules) if rules is not None else all_rules()
    parsed = parse_module(source, path)
    kept, suppressed = _apply_rules(parsed, rules)
    reasoned, reason_suppressed = suppression_reason_findings(parsed)
    kept.extend(reasoned)
    suppressed += reason_suppressed
    if unused_check and parsed.ctx is not None:
        checkable = {rule.rule_id for rule in rules} | {SUPPRESSION_REASON_RULE}
        stale, stale_suppressed = unused_suppression_findings(parsed, checkable)
        kept.extend(stale)
        suppressed += stale_suppressed
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept, suppressed


def lint_paths(
    paths: Sequence[str],
    rules: Iterable[LintRule] | None = None,
    *,
    unused_check: bool = True,
    flow: bool = False,
    flow_cache: bool = True,
    baseline: str | None = None,
    update_baseline: bool = False,
    effects: bool = False,
    effects_cache: bool = True,
    effects_baseline: str | None = None,
    update_effects_baseline: bool = False,
    regions: str | None = None,
    contracts: bool = False,
    contracts_cache: bool = True,
    contracts_baseline: str | None = None,
    update_contracts_baseline: bool = False,
    pairs: str | None = None,
    schema_registry: str | None = None,
    update_schema_registry: bool = False,
    changed_only: bool = False,
) -> LintReport:
    """Lint every python file under ``paths``.

    With ``flow=True`` the whole-program dimensional-dataflow analysis
    (:mod:`repro.lint.flow`) runs over the same parsed modules and its
    DIM/DET findings join the report; ``baseline`` names a baseline file
    whose known findings are filtered out (``update_baseline`` rewrites
    it from the current run instead).

    With ``effects=True`` the whole-program effect/hot-path analysis
    (:mod:`repro.lint.effects`) runs too, with its own baseline
    (``effects_baseline`` / ``update_effects_baseline``) and region
    manifest (``regions``; defaults to ``lint-effects.regions.json``
    in the working directory when present).

    With ``contracts=True`` the whole-program structural-contract
    analysis (:mod:`repro.lint.contracts`) runs too: backend-pair
    parity against the ``pairs`` manifest (default
    ``lint-contracts.pairs.json``), layer-boundary imports, and the
    schema registry against ``schema_registry`` (default
    ``lint-contracts.schemas.json``; ``update_schema_registry``
    rewrites it from the tree first).

    ``changed_only`` restricts reported findings to files changed vs
    ``git HEAD`` (plus untracked files).  Every file is still *parsed*
    — the whole-program passes need the complete module set — but
    per-module rules run only on the changed seeds and whole-program
    findings outside them are dropped, so a warm pre-commit run stays
    fast and quiet.  Without git the full run happens.
    """
    rules = list(rules) if rules is not None else all_rules()
    report = LintReport()
    modules: list[ParsedModule] = []
    seeds: set[str] | None = None
    if changed_only:
        changed = changed_files()
        if changed is not None:
            seeds = changed

    def in_seeds(path: str) -> bool:
        return seeds is None or os.path.abspath(path) in seeds

    seeded: list[ParsedModule] = []
    for path in iter_python_files(paths):
        parsed = parse_module(read_source(path), path)
        modules.append(parsed)
        if not in_seeds(path):
            continue
        seeded.append(parsed)
        findings, suppressed = _apply_rules(parsed, rules)
        report.findings.extend(findings)
        report.suppressed += suppressed
        report.files_checked += 1
        reasoned, reason_suppressed = suppression_reason_findings(parsed)
        report.findings.extend(reasoned)
        report.suppressed += reason_suppressed

    checkable = {rule.rule_id for rule in rules} | {SUPPRESSION_REASON_RULE}
    if flow:
        from repro.lint.flow import FLOW_RULE_IDS, analyze_modules

        flow_report = analyze_modules(
            modules,
            use_cache=flow_cache,
            baseline_path=baseline,
            update_baseline=update_baseline,
        )
        report.findings.extend(
            f for f in flow_report.findings if in_seeds(f.path)
        )
        report.suppressed += flow_report.suppressed
        report.flow = flow_report.stats()
        checkable |= FLOW_RULE_IDS

    if effects:
        from repro.lint.effects import EFFECTS_RULE_IDS
        from repro.lint.effects import analyze_modules as analyze_effects

        effects_report = analyze_effects(
            modules,
            use_cache=effects_cache,
            baseline_path=effects_baseline,
            update_baseline=update_effects_baseline,
            manifest_path=regions,
        )
        report.findings.extend(
            f for f in effects_report.findings if in_seeds(f.path)
        )
        report.suppressed += effects_report.suppressed
        report.effects = effects_report.stats()
        checkable |= EFFECTS_RULE_IDS

    if contracts:
        from repro.lint.contracts import CONTRACTS_RULE_IDS
        from repro.lint.contracts import analyze_modules as analyze_contracts

        contracts_report = analyze_contracts(
            modules,
            use_cache=contracts_cache,
            baseline_path=contracts_baseline,
            update_baseline=update_contracts_baseline,
            manifest_path=pairs,
            registry_path=schema_registry,
            update_registry=update_schema_registry,
        )
        report.findings.extend(
            f for f in contracts_report.findings if in_seeds(f.path)
        )
        report.suppressed += contracts_report.suppressed
        report.contracts = contracts_report.stats()
        checkable |= CONTRACTS_RULE_IDS

    if unused_check:
        for parsed in seeded:
            if parsed.ctx is None:
                continue
            stale, stale_suppressed = unused_suppression_findings(parsed, checkable)
            report.findings.extend(stale)
            report.suppressed += stale_suppressed

    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report
