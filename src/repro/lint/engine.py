"""File discovery, parsing, rule dispatch and suppression filtering."""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import LintError
from repro.lint.findings import Finding, SuppressionIndex
from repro.lint.rules import LintRule, ModuleContext, all_rules

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "build", "dist"}


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def clean(self) -> bool:
        return not self.errors

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts


def iter_python_files(paths: Sequence[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                found.append(path)
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs if d not in _SKIP_DIRS)
                found.extend(
                    os.path.join(root, f) for f in sorted(files) if f.endswith(".py")
                )
        else:
            raise LintError(f"no such file or directory: {path}")
    return sorted(set(found))


def lint_source(
    source: str, path: str = "<string>", rules: Iterable[LintRule] | None = None
) -> tuple[list[Finding], int]:
    """Lint one source string; returns (findings, n_suppressed)."""
    rules = list(rules) if rules is not None else all_rules()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        finding = Finding(
            path=path,
            line=err.lineno or 1,
            col=(err.offset or 0) + 1,
            rule="PARSE",
            message=f"syntax error: {err.msg}",
        )
        return [finding], 0
    ctx = ModuleContext(path, source, tree)
    suppressions = SuppressionIndex(source)
    kept: list[Finding] = []
    suppressed = 0
    for rule in rules:
        for finding in rule.check(ctx):
            if suppressions.suppresses(finding):
                suppressed += 1
            else:
                kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept, suppressed


def lint_paths(
    paths: Sequence[str], rules: Iterable[LintRule] | None = None
) -> LintReport:
    """Lint every python file under ``paths``."""
    rules = list(rules) if rules is not None else all_rules()
    report = LintReport()
    for path in iter_python_files(paths):
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
        findings, suppressed = lint_source(source, path, rules)
        report.findings.extend(findings)
        report.suppressed += suppressed
        report.files_checked += 1
    return report
