"""``python -m repro.lint`` / ``repro-lint`` / ``repro-zen2 lint``.

Exit codes: 0 clean, 1 unsuppressed error findings (or a failed
ordering check), 2 usage errors.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import LintError
from repro.lint.engine import lint_paths
from repro.lint.formatters import format_human, format_json, format_sarif
from repro.lint.rules import all_rules, rules_by_id


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Simulator-aware static analysis for the repro codebase",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=["human", "json", "sarif"],
        default="human",
        help="output format",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help="also run the whole-program dimensional-dataflow and "
        "determinism-taint analysis (rules DIM001-DIM003, DET002)",
    )
    parser.add_argument(
        "--no-flow-cache",
        action="store_true",
        help="bypass the flow-analysis result cache (forces a cold run)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="baseline file of accepted flow findings; matching findings "
        "are filtered from the report (implies --flow)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the --baseline file from this run's flow findings",
    )
    parser.add_argument(
        "--effects",
        action="store_true",
        help="also run the whole-program effect and hot-path budget "
        "analysis (rules HOT001-HOT003, OBS001, PAR001)",
    )
    parser.add_argument(
        "--no-effects-cache",
        action="store_true",
        help="bypass the effects-analysis result cache (forces a cold run)",
    )
    parser.add_argument(
        "--effects-baseline",
        metavar="FILE",
        help="baseline file of accepted effects findings; matching "
        "findings are filtered from the report (implies --effects)",
    )
    parser.add_argument(
        "--update-effects-baseline",
        action="store_true",
        help="rewrite the --effects-baseline file from this run's "
        "effects findings",
    )
    parser.add_argument(
        "--regions",
        metavar="FILE",
        help="hot-region manifest for --effects (default: "
        "lint-effects.regions.json in the working directory, if present)",
    )
    parser.add_argument(
        "--contracts",
        action="store_true",
        help="also run the whole-program structural-contract analysis "
        "(rules CON001-CON002 backend parity, CON010 layer boundaries, "
        "CON020-CON021 schema registry)",
    )
    parser.add_argument(
        "--no-contracts-cache",
        action="store_true",
        help="bypass the contracts-analysis result cache (forces a cold run)",
    )
    parser.add_argument(
        "--contracts-baseline",
        metavar="FILE",
        help="baseline file of accepted contracts findings; matching "
        "findings are filtered from the report (implies --contracts)",
    )
    parser.add_argument(
        "--update-contracts-baseline",
        action="store_true",
        help="rewrite the --contracts-baseline file from this run's "
        "contracts findings",
    )
    parser.add_argument(
        "--pairs",
        metavar="FILE",
        help="backend-pair/layer manifest for --contracts (default: "
        "lint-contracts.pairs.json in the working directory, if present)",
    )
    parser.add_argument(
        "--schema-registry",
        metavar="FILE",
        help="schema registry snapshot for --contracts (default: "
        "lint-contracts.schemas.json in the working directory, if present)",
    )
    parser.add_argument(
        "--update-schema-registry",
        action="store_true",
        help="rewrite the schema registry snapshot from the analyzed "
        "tree before checking (implies --contracts)",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="report findings only for files changed vs git HEAD "
        "(falls back to a full run outside a git checkout)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--ordering-check",
        action="store_true",
        help="also run the event-order shuffle race detector (re-runs the "
        "machine selfcheck under randomized same-timestamp tie-breaking)",
    )
    parser.add_argument(
        "--ordering-seeds",
        default="1,2,3",
        metavar="S1,S2,...",
        help="shuffle seeds for --ordering-check (default: 1,2,3)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        from repro.lint.sarif import rule_titles

        for rule_id, title in sorted(rule_titles().items()):
            print(f"{rule_id}  {title}")
        return 0

    if args.update_baseline and not args.baseline:
        print("repro-lint: --update-baseline requires --baseline", file=sys.stderr)
        return 2
    if args.update_effects_baseline and not args.effects_baseline:
        print(
            "repro-lint: --update-effects-baseline requires --effects-baseline",
            file=sys.stderr,
        )
        return 2
    if args.update_contracts_baseline and not args.contracts_baseline:
        print(
            "repro-lint: --update-contracts-baseline requires "
            "--contracts-baseline",
            file=sys.stderr,
        )
        return 2

    try:
        select = (
            [r.strip() for r in args.select.split(",") if r.strip()]
            if args.select
            else None
        )
        rules = all_rules(select)
        report = lint_paths(
            args.paths,
            rules,
            flow=args.flow or args.baseline is not None,
            flow_cache=not args.no_flow_cache,
            baseline=args.baseline,
            update_baseline=args.update_baseline,
            effects=args.effects or args.effects_baseline is not None,
            effects_cache=not args.no_effects_cache,
            effects_baseline=args.effects_baseline,
            update_effects_baseline=args.update_effects_baseline,
            regions=args.regions,
            contracts=args.contracts
            or args.contracts_baseline is not None
            or args.update_schema_registry,
            contracts_cache=not args.no_contracts_cache,
            contracts_baseline=args.contracts_baseline,
            update_contracts_baseline=args.update_contracts_baseline,
            pairs=args.pairs,
            schema_registry=args.schema_registry,
            update_schema_registry=args.update_schema_registry,
            changed_only=args.changed_only,
        )
    except LintError as err:
        print(f"repro-lint: {err}", file=sys.stderr)
        return 2

    formatters = {"json": format_json, "sarif": format_sarif, "human": format_human}
    print(formatters[args.format](report))
    status = 0 if report.clean else 1

    if args.ordering_check:
        from repro.lint.shuffle import selfcheck_ordering

        seeds = tuple(int(s) for s in args.ordering_seeds.split(",") if s.strip())
        ordering = selfcheck_ordering(seeds=seeds)
        print(ordering.render())
        if not ordering.deterministic:
            status = 1

    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
