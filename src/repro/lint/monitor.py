"""Runtime invariant sanitizer for a running :class:`~repro.machine.Machine`.

The static rules catch *code* that could go wrong; the monitor catches
*state* that did.  Attach it to a machine and it re-checks the physical
invariants after every event batch (``Simulator.run_until``) and every
steady-state settle (``Machine.reconfigured``):

1. **Power sanity** — every breakdown term is non-negative, and the
   silicon share (C1 + active + dynamic + toggle power) fits inside the
   per-package PPT envelope with margin.
2. **P-state grid** — every applied core frequency lies on the 25 MHz
   P-state grid (or equals the current EDC cap in event mode) and within
   the SKU's [min P-state, boost ceiling] band.
3. **RAPL monotonicity** — energy counters only move forward (modulo
   the 32-bit wrap), never faster than physics allows, and never while
   the RAPL clock stands still.
4. **C-state legality** — effective states are known, active threads
   are in C0, offline threads park where the §VI-B quirk says they park.
5. **Energy ≈ ∫ power** — between two checks, the per-package RAPL
   energy delta implies a mean power consistent with the estimator's
   instantaneous power at the window edges (a wide band: its job is to
   catch unit errors — a ms/s mix-up is a 1000x miss — not model noise).

The monitor is opt-in and detachable; ``selfcheck`` runs with it
attached in collecting mode, so every CI run sweeps the invariants.
"""

from __future__ import annotations

from repro.cstate.states import depth_of
from repro.errors import InvariantViolation
from repro.units import (
    NS_PER_S,
    RAPL_COUNTER_WRAP,
    RAPL_ENERGY_UNIT_J,
    snap_to_pstate_grid,
)

#: Grid tolerance: well below the 25 MHz step but above float rounding.
_GRID_TOL_HZ = 1e3

_KNOWN_CSTATES = ("C0", "C1", "C2")


class InvariantMonitor:
    """Asserts the machine's physical invariants between event batches."""

    def __init__(
        self,
        machine,
        *,
        raise_on_violation: bool = True,
        power_envelope_margin: float = 1.25,
        energy_band_factor: float = 3.0,
        energy_band_abs_j: float = 5.0,
        obs=None,
    ) -> None:
        self.machine = machine
        self.raise_on_violation = raise_on_violation
        self.power_envelope_margin = power_envelope_margin
        self.energy_band_factor = energy_band_factor
        self.energy_band_abs_j = energy_band_abs_j
        self.checks_run = 0
        #: All violation messages ever observed (collecting mode).
        self.violations: list[str] = []
        self._attached = False
        # The baseline snapshot is taken lazily (at attach() or the
        # first check()): constructing a monitor used to run a full
        # estimator sweep even when monitoring never happened.
        self._baselined = False
        self._obs = None
        if obs is not None:
            self.attach_obs(obs)

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------

    def attach(self) -> "InvariantMonitor":
        """Hook ``run_until`` and ``reconfigured`` to check after each."""
        if self._attached:
            return self
        if not self._baselined:
            self._snapshot()
            self._baselined = True
        machine, sim = self.machine, self.machine.sim
        self._orig_run_until = sim.run_until
        self._orig_reconfigured = machine.reconfigured

        def run_until_checked(time_ns: int) -> None:
            self._orig_run_until(time_ns)
            self.check()

        def reconfigured_checked() -> None:
            self._orig_reconfigured()
            self.check()

        sim.run_until = run_until_checked
        machine.reconfigured = reconfigured_checked
        self._attached = True
        return self

    def detach(self) -> None:
        """Remove the hooks; the machine behaves as before."""
        if not self._attached:
            return
        self.machine.sim.run_until = self._orig_run_until
        self.machine.reconfigured = self._orig_reconfigured
        self._attached = False

    def attach_obs(self, obs) -> None:
        """Mirror findings into a :class:`repro.obs.Obs` bundle.

        Each violation becomes a structured ``invariant.violation``
        instant with ``severity="error"`` on the machine's trace track
        (sim-time axis) when the machine is itself instrumented, else on
        the host track.
        """
        from repro.obs import effective_obs

        obs = effective_obs(obs)
        if obs is None:
            return
        self._obs = obs
        metrics = obs.metrics
        self._obs_checks = metrics.counter(
            "invariant.checks", "InvariantMonitor invariant sweeps", "checks"
        )
        self._obs_violations = metrics.counter(
            "invariant.violations", "Invariant violations observed", "violations"
        )

    def _emit_findings(self, found: list[str]) -> None:
        self._obs_checks.inc()
        if not found:
            return
        self._obs_violations.inc(len(found))
        track = getattr(self.machine, "_obs_track", None)
        for message in found:
            if track is not None:
                self._obs.tracer.instant(
                    "invariant.violation",
                    cat="invariant",
                    track=track,
                    sim_ns=self.machine.sim.now_ns,
                    severity="error",
                    message=message,
                )
            else:
                self._obs.tracer.instant(
                    "invariant.violation",
                    cat="invariant",
                    severity="error",
                    message=message,
                )

    # ------------------------------------------------------------------
    # checking
    # ------------------------------------------------------------------

    def check(self) -> list[str]:
        """Run every invariant; returns (and records) new violations.

        Checkers run independently: state corrupt enough to crash one
        checker (or the models it consults) is itself a violation, and
        must not mask what the remaining checkers would find.
        """
        if not self._baselined:
            self._snapshot()
            self._baselined = True
        found: list[str] = []
        for checker in (
            self._check_cstates,
            self._check_pstate_grid,
            self._check_rapl_monotonic,
            self._check_power_breakdown,
        ):
            try:
                checker(found)
            except Exception as err:  # noqa: BLE001 — report, don't mask
                found.append(f"{checker.__name__} crashed: {err!r}")
        try:
            self._snapshot()
        except Exception as err:  # noqa: BLE001
            found.append(f"state snapshot failed: {err!r}")
        self.checks_run += 1
        self.violations.extend(found)
        if self._obs is not None:
            self._emit_findings(found)
        if found:
            # Freeze the flight-recorder ring so the event tail leading
            # up to the violation survives (bundle written only when
            # $REPRO_FLIGHTREC_DIR is set; no-op otherwise).
            from repro.obs.flightrec import record_crash

            trace_id = None
            if self._obs is not None:
                trace_id = self._obs.tracer.trace_id
            record_crash(
                f"invariant-violation:{found[0]}", trace_id=trace_id
            )
        if found and self.raise_on_violation:
            raise InvariantViolation(found)
        return found

    def _snapshot(self) -> None:
        rapl = self.machine.rapl_msrs
        self._prev_pkg_raw = [counter.raw for counter in rapl.pkg]
        self._prev_core_raw = [counter.raw for counter in rapl.core]
        self._prev_update_ns = rapl.last_update_ns
        self._prev_est_pkg_w = self._estimator_pkg_powers()

    def _estimator_pkg_powers(self) -> list[float]:
        machine = self.machine
        return [
            machine.rapl_estimator.package_power_w(
                pkg,
                machine.thermal_state.temps_c[pkg.index],
                dram_traffic_gbs=machine.power_model.package_dram_traffic_gbs(pkg),
            )
            for pkg in machine.topology.packages
        ]

    # --- invariant 1: power breakdown ----------------------------------

    def _check_power_breakdown(self, found: list[str]) -> None:
        machine = self.machine
        bd = machine.power_model.breakdown(machine, machine.thermal_state.temps_c)
        for name in (
            "platform_base_w",
            "system_wake_w",
            "c1_cores_w",
            "active_cores_w",
            "workload_dynamic_w",
            "toggle_w",
            "dram_active_w",
            "iodie_w",
            "leakage_w",
        ):
            value = getattr(bd, name)
            if value < -1e-9:
                found.append(f"power breakdown term {name} is negative ({value:.3f} W)")
        n_pkg = len(machine.topology.packages)
        silicon_w = bd.c1_cores_w + bd.active_cores_w + bd.workload_dynamic_w + bd.toggle_w
        envelope_w = n_pkg * machine.sku.ppt_w * self.power_envelope_margin
        if silicon_w > envelope_w:
            found.append(
                f"silicon power {silicon_w:.1f} W exceeds the PPT envelope "
                f"{envelope_w:.1f} W ({n_pkg} x {machine.sku.ppt_w:.0f} W "
                f"x {self.power_envelope_margin:g})"
            )

    # --- invariant 2: P-state grid -------------------------------------

    def _check_pstate_grid(self, found: list[str]) -> None:
        machine = self.machine
        freqs = machine.pstate_table.frequencies_hz()
        lo_hz = min(freqs) - _GRID_TOL_HZ
        hi_hz = max(max(freqs), machine.sku.boost_freq_hz) + _GRID_TOL_HZ
        for core in machine.topology.cores():
            f_hz = core.applied_freq_hz
            if not lo_hz <= f_hz <= hi_hz:
                found.append(
                    f"core {core.global_index} applied frequency "
                    f"{f_hz / 1e9:.4f} GHz outside [{lo_hz / 1e9:.3f}, "
                    f"{hi_hz / 1e9:.3f}] GHz"
                )
                continue
            cap_hz = machine.edc_cap_hz(core.package.index)
            on_grid = abs(f_hz - snap_to_pstate_grid(f_hz)) <= _GRID_TOL_HZ
            at_cap = cap_hz is not None and abs(f_hz - cap_hz) <= _GRID_TOL_HZ
            if not on_grid and not at_cap:
                found.append(
                    f"core {core.global_index} applied frequency "
                    f"{f_hz / 1e6:.3f} MHz is off the 25 MHz P-state grid"
                )

    # --- invariant 3 + 5: RAPL counters --------------------------------

    def _check_rapl_monotonic(self, found: list[str]) -> None:
        rapl = self.machine.rapl_msrs
        if rapl.last_update_ns < self._prev_update_ns:
            found.append(
                f"RAPL update clock moved backwards ({self._prev_update_ns} ns "
                f"-> {rapl.last_update_ns} ns)"
            )
            return
        dt_s = (rapl.last_update_ns - self._prev_update_ns) / NS_PER_S
        est_now_w = self._estimator_pkg_powers()
        for index, counter in enumerate(rapl.pkg):
            delta_j = (
                (counter.raw - self._prev_pkg_raw[index]) % RAPL_COUNTER_WRAP
            ) * RAPL_ENERGY_UNIT_J
            if delta_j == 0.0:
                continue
            if dt_s == 0.0:
                found.append(
                    f"RAPL pkg{index} counter advanced {delta_j:.3f} J while "
                    "the update clock stood still"
                )
                continue
            # Energy ~ integral of power: band around the estimator power
            # at the window edges (wide — catches unit errors, not noise).
            p_edge_w = max(self._prev_est_pkg_w[index], est_now_w[index], 1.0)
            ceiling_j = (
                self.energy_band_factor * p_edge_w * dt_s + self.energy_band_abs_j
            )
            if delta_j > ceiling_j:
                found.append(
                    f"RAPL pkg{index} deposited {delta_j:.1f} J over "
                    f"{dt_s:.3f} s but estimator power is {p_edge_w:.1f} W "
                    f"(ceiling {ceiling_j:.1f} J) — energy != integral of power"
                )
        for index, counter in enumerate(rapl.core):
            if counter.raw != self._prev_core_raw[index] and dt_s == 0.0:
                found.append(
                    f"RAPL core{index} counter advanced while the update "
                    "clock stood still"
                )
                break

    # --- invariant 4: C-state legality ---------------------------------

    def _check_cstates(self, found: list[str]) -> None:
        machine = self.machine
        parks_in = "C1" if machine.cstates.offline_parks_in_c1 else "C2"
        for thread in machine.topology.threads():
            state = thread.effective_cstate
            if state not in _KNOWN_CSTATES:
                found.append(
                    f"cpu{thread.cpu_id} in unknown C-state {state!r}"
                )
                continue
            if thread.is_active and state != "C0":
                found.append(
                    f"cpu{thread.cpu_id} runs a workload but sits in {state}"
                )
            if not thread.online and state != parks_in:
                found.append(
                    f"offline cpu{thread.cpu_id} in {state}, expected "
                    f"{parks_in} (offline_parks_in_c1="
                    f"{machine.cstates.offline_parks_in_c1})"
                )
            if thread.online and thread.workload is None:
                # An idle thread may be demoted (shallower than requested)
                # but never promoted deeper than the OS asked for.
                if depth_of(state) > depth_of(thread.requested_cstate):
                    found.append(
                        f"cpu{thread.cpu_id} sleeps deeper ({state}) than "
                        f"requested ({thread.requested_cstate})"
                    )
