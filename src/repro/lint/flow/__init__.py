"""Whole-program dimensional-dataflow and determinism-taint analysis.

Public surface:

* :data:`FLOW_RULE_IDS` / :data:`FLOW_RULE_TITLES` — the rules this
  pass can emit (DIM001..DIM003, DET002).
* :func:`analyze_modules` — run the analysis over already-parsed
  modules (shared with the base lint engine), with result caching keyed
  on per-module source digests and optional baseline filtering.
* :func:`analyze_paths` — convenience wrapper for tests and tooling.

The result cache makes warm runs cheap: the cache key hashes every
module's source text plus the analyzer version, so any edit anywhere in
the analyzed set invalidates it.  Cached documents replay the recorded
suppression usage so LINT001 (stale-suppression) stays exact on hits.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import CacheError
from repro.lint.engine import ParsedModule
from repro.lint.findings import Finding
from repro.lint.flow.analysis import (
    RULE_BARE_LITERAL,
    RULE_DIM_MISMATCH,
    RULE_FLOAT_INTO_NS,
    RULE_TAINTED_STATE,
    analyze_program,
)
from repro.lint.flow.baseline import load_baseline, split_baselined, write_baseline
from repro.lint.flow.graph import build_program

#: Bump to invalidate every cached analysis result.
FLOW_VERSION = 1

FLOW_RULE_TITLES: dict[str, str] = {
    RULE_DIM_MISMATCH: "dimension-mismatched arithmetic or cross-call flow",
    RULE_BARE_LITERAL: "bare numeric literal into a dimensioned parameter",
    RULE_FLOAT_INTO_NS: "float value reaching integer-nanosecond state",
    RULE_TAINTED_STATE: "nondeterminism taint reaching simulator state",
}

FLOW_RULE_IDS = set(FLOW_RULE_TITLES)


@dataclass
class FlowReport:
    """Outcome of one whole-program flow analysis."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    modules: int = 0
    functions: int = 0
    rounds: int = 0
    cache_hit: bool = False
    duration_s: float = 0.0

    def stats(self) -> dict[str, Any]:
        return {
            "modules": self.modules,
            "functions": self.functions,
            "rounds": self.rounds,
            "findings": len(self.findings),
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "cache_hit": self.cache_hit,
            "duration_s": round(self.duration_s, 3),
        }


def flow_cache_key(modules: Sequence[ParsedModule]) -> str:
    """Digest of the analyzer version and every module's source."""
    hasher = hashlib.sha256()
    hasher.update(f"flow-v{FLOW_VERSION}".encode())
    for parsed in sorted(modules, key=lambda m: m.path):
        digest = hashlib.sha256(parsed.source.encode("utf-8")).hexdigest()
        hasher.update(json.dumps([parsed.path, digest]).encode())
    return f"lintflow-{hasher.hexdigest()}"


def _open_cache():
    from repro.cache.store import ResultCache

    try:
        return ResultCache()
    except CacheError:
        return None


def _analyze(modules: list[ParsedModule]) -> tuple[FlowReport, dict[str, Any]]:
    """Run the analyzer; returns the report and a cacheable document."""
    program = build_program(modules)
    analyzer = analyze_program(program)
    by_path = {m.path: m for m in modules}
    kept: list[Finding] = []
    suppressed = 0
    uses: list[list] = []
    for finding in analyzer.findings:
        parsed = by_path.get(finding.path)
        if parsed is not None:
            before = set(parsed.suppressions.used)
            if parsed.suppressions.suppresses(finding):
                suppressed += 1
                for line, rule in parsed.suppressions.used - before:
                    uses.append([finding.path, line, rule])
                continue
            # `suppresses` marks usage even for partial matches; record
            # nothing on the kept path (no usage was added).
        kept.append(finding)
    report = FlowReport(
        findings=kept,
        suppressed=suppressed,
        modules=len(program.modules),
        functions=len(program.functions),
        rounds=analyzer.rounds,
    )
    doc = {
        "version": FLOW_VERSION,
        "findings": [f.to_dict() for f in kept],
        "suppressed": suppressed,
        "suppression_uses": uses,
        "modules": report.modules,
        "functions": report.functions,
        "rounds": report.rounds,
    }
    return report, doc


def _replay(doc: dict[str, Any], modules: list[ParsedModule]) -> FlowReport:
    """Rebuild a report from a cached document, replaying suppressions."""
    by_path = {m.path: m for m in modules}
    for path, line, rule in doc.get("suppression_uses", []):
        parsed = by_path.get(path)
        if parsed is not None:
            parsed.suppressions.mark_used(line, rule)
    findings = [Finding(**f) for f in doc.get("findings", [])]
    return FlowReport(
        findings=findings,
        suppressed=int(doc.get("suppressed", 0)),
        modules=int(doc.get("modules", 0)),
        functions=int(doc.get("functions", 0)),
        rounds=int(doc.get("rounds", 0)),
        cache_hit=True,
    )


def analyze_modules(
    modules: Sequence[ParsedModule],
    *,
    use_cache: bool = True,
    baseline_path: str | None = None,
    update_baseline: bool = False,
) -> FlowReport:
    """Whole-program flow analysis over parsed modules.

    The baseline is applied *after* the cache: cached documents store
    raw (suppression-filtered) findings, so editing the baseline file
    never needs a re-analysis.
    """
    started = time.perf_counter()  # lint: disable=DET001 (host-side analysis timing)
    analyzable = [m for m in modules if m.ctx is not None]
    cache = _open_cache() if use_cache else None
    key = flow_cache_key(analyzable) if cache is not None else ""
    report: FlowReport | None = None
    if cache is not None:
        try:
            doc = cache.get(key)
        except CacheError:
            doc = None
        if doc is not None and doc.get("version") == FLOW_VERSION:
            report = _replay(doc, analyzable)
    if report is None:
        report, doc = _analyze(analyzable)
        if cache is not None:
            try:
                cache.put(key, doc)
            except CacheError:
                pass

    if baseline_path is not None:
        if update_baseline:
            write_baseline(baseline_path, report.findings)
        accepted = load_baseline(baseline_path)
        report.findings, report.baselined = split_baselined(
            report.findings, accepted
        )
    report.duration_s = time.perf_counter() - started  # lint: disable=DET001 (host-side analysis timing)
    return report


def analyze_paths(paths: Sequence[str], **kwargs: Any) -> FlowReport:
    """Parse every python file under ``paths`` and analyze them."""
    from repro.lint.engine import iter_python_files, parse_module, read_source

    modules = [
        parse_module(read_source(path), path) for path in iter_python_files(paths)
    ]
    return analyze_modules(modules, **kwargs)
