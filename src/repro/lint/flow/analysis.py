"""Fixpoint abstract interpreter over the whole-program cell store.

Every function parameter, local, return slot, class attribute and
module-level variable is an addressable *cell*.  Each round evaluates
every statement of every function against the shared store, binding
call arguments to callee parameter cells and reading callee return
cells, until no cell changes (monotone joins over finite-height
lattices guarantee termination).  A final *emit* round re-walks the
program with reporting enabled:

* **DIM001** — dimension-mismatched arithmetic or a dimensioned value
  crossing a call/assignment boundary into a slot of another dimension
  or scale.
* **DIM002** — a bare numeric literal (not 0/±1) passed straight into a
  dimensioned parameter without a :mod:`repro.units` constructor.
* **DIM003** — a definitely-float value flowing through a call or
  name indirection into an integer-nanosecond cell (UNIT001 already
  owns the *direct* literal/division cases).
* **DET002** — a nondeterminism taint (wall-clock, unseeded RNG,
  set-iteration) reaching Machine/Simulator state or event scheduling.
"""

from __future__ import annotations

import ast
from dataclasses import replace

from repro.lint.findings import SEVERITY_WARNING, Finding
from repro.lint.flow.graph import (
    ClassInfo,
    FuncInfo,
    Program,
    _dotted_parts,
)
from repro.lint.flow.intrinsics import (
    MATH_DIM_PRESERVING,
    SCHEDULE_METHODS,
    STATE_BASENAMES,
    UNITS_CONSTANTS,
    UNITS_INTRINSICS,
    Intrinsic,
    rep_from_annotation,
    taint_source,
)
from repro.lint.flow.lattice import (
    BOT,
    BOTTOM,
    DIMENSIONLESS,
    TOP,
    UNKNOWN,
    AbsValue,
    Dim,
    Taint,
    binop,
    dim_for_suffix,
    factors_conflict,
    join,
    join_taints,
    with_taints,
)
from repro.lint.rules_units import FLOAT_SUFFIXES, INT_SUFFIXES, suffix_of

#: Rules this analysis can emit.
RULE_DIM_MISMATCH = "DIM001"
RULE_BARE_LITERAL = "DIM002"
RULE_FLOAT_INTO_NS = "DIM003"
RULE_TAINTED_STATE = "DET002"

_MAX_ROUNDS = 50

_BINOP_NAMES = {
    ast.Add: "add",
    ast.Sub: "sub",
    ast.Mult: "mult",
    ast.Div: "div",
    ast.FloorDiv: "floordiv",
    ast.Mod: "mod",
    ast.Pow: "pow",
}

_INT_BUILTINS = {"int", "round"}


def _annotation_names(node: ast.expr | None) -> set[str]:
    if node is None:
        return set()
    if isinstance(node, ast.Name):
        return {node.id}
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_names(node.left) | _annotation_names(node.right)
    if isinstance(node, ast.Subscript):
        # ``set[int]`` — the outer name carries the container kind.
        return _annotation_names(node.value)
    return set()


def _literal_const(node: ast.expr) -> float | None:
    """The numeric value of a (possibly negated) literal expression."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _literal_const(node.operand)
        return None if inner is None else -inner
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        if isinstance(node.value, bool):
            return None
        return float(node.value)
    return None


def _is_indirect(node: ast.expr | None) -> bool:
    """Whether a value arrived through a name/attribute/call indirection.

    Direct literals and inline arithmetic are UNIT001's jurisdiction;
    DIM003 only reports flows UNIT001 cannot see.
    """
    if isinstance(node, ast.UnaryOp):
        return _is_indirect(node.operand)
    return isinstance(node, (ast.Name, ast.Attribute, ast.Call))


class Analyzer:
    """Whole-program dataflow over the linked :class:`Program`."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.store: dict[tuple, AbsValue] = {}
        self.decl: dict[tuple, AbsValue] = {}
        #: class qname -> attrs any of its methods assign via ``self.X``.
        self.assigned_attrs: dict[str, set[str]] = {}
        self.emit = False
        self.changed = False
        self.rounds = 0
        self.findings: list[Finding] = []
        self._finding_keys: set[tuple] = set()
        self.current: FuncInfo | None = None
        self._globals: set[str] = set()
        self._seed()

    # --- seeding -----------------------------------------------------------

    def _seed(self) -> None:
        for func in self.program.functions.values():
            for index, param in enumerate(func.params):
                cell = ("var", func.qname, param.name)
                value = self._seed_value(param.name, param.annotation, func)
                if index == 0 and func.cls is not None and value.cls is BOTTOM:
                    value = replace(value, cls=func.cls.qname)
                self.decl[cell] = value
            ret = self._seed_value(func.qname.rsplit(".", 1)[-1], func.returns, func)
            self.decl[("ret", func.qname)] = ret
        for cls in self.program.classes.values():
            assigned: set[str] = set(cls.fields)
            for method in cls.methods.values():
                for node in ast.walk(method.node):
                    if (
                        isinstance(node, ast.Attribute)
                        and isinstance(node.ctx, ast.Store)
                        and isinstance(node.value, ast.Name)
                        and node.value.id == "self"
                    ):
                        assigned.add(node.attr)
            self.assigned_attrs[cls.qname] = assigned
            for name, (annotation, _default) in cls.fields.items():
                cell = ("attr", cls.qname, name)
                self.decl[cell] = self._seed_value(name, annotation, None)

    def _seed_value(
        self, name: str, annotation: ast.expr | None, func: FuncInfo | None
    ) -> AbsValue:
        suffix = suffix_of(name)
        if "_PER_" in name.upper():
            # Ratio constants (NS_PER_S, ...) are scale factors, not
            # quantities of the suffix's dimension.
            suffix = None
        dim: object = BOTTOM
        rep: object = BOTTOM
        if suffix is not None:
            dim = dim_for_suffix(suffix)
            if suffix in INT_SUFFIXES:
                rep = "int"
            elif suffix in FLOAT_SUFFIXES:
                rep = "float"
        names = _annotation_names(annotation)
        ann_rep = rep_from_annotation(names)
        if ann_rep is not BOTTOM:
            rep = ann_rep
        cls: object = BOTTOM
        if annotation is not None and func is not None:
            resolved = self._annotation_class(annotation, func)
            if resolved is not None:
                cls = resolved
        container: object = BOTTOM
        if names & {"set", "frozenset", "Set", "FrozenSet", "AbstractSet"}:
            container = "set"
        return AbsValue(dim=dim, rep=rep, cls=cls, container=container)

    def _annotation_class(self, annotation: ast.expr, func: FuncInfo) -> str | None:
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return None
        parts = _dotted_parts(annotation)
        if parts is None:
            return None
        dotted = self._resolve_parts(parts, func)
        if dotted is not None and dotted in self.program.classes:
            return dotted
        return None

    # --- cells -------------------------------------------------------------

    def _cell_decl(self, cell: tuple) -> AbsValue:
        value = self.decl.get(cell)
        if value is None:
            value = self._seed_value(cell[-1], None, None)
            self.decl[cell] = value
        return value

    def read_cell(self, cell: tuple) -> AbsValue:
        if cell not in self.store:
            # Parameters, attributes and module vars start at their
            # declared seed (the entry assumption: trust the suffix).
            # Return slots start at bottom — the body alone defines them,
            # and seeding them would blur e.g. definitely-float results.
            self.store[cell] = BOT if cell[0] == "ret" else self._cell_decl(cell)
        return self.store[cell]

    def bind(
        self,
        cell: tuple,
        value: AbsValue,
        node: ast.AST,
        expr: ast.expr | None,
        *,
        what: str = "",
        skip_dim001: bool = False,
    ) -> None:
        decl = self._cell_decl(cell)
        ddim = decl.dim
        vdim = value.dim
        # A dimensionless value entering a suffixed cell adopts the
        # declared dimension: the suffix names the unit of the raw number.
        if (
            isinstance(ddim, Dim)
            and ddim.kind != "dimensionless"
            and isinstance(vdim, Dim)
            and vdim.kind == "dimensionless"
        ):
            value = replace(value, dim=ddim)
            vdim = ddim
        if self.emit:
            self._check_binding(
                cell, decl, value, node, expr, what, skip_dim001
            )
        current = self.read_cell(cell)
        merged = join(current, value)
        if merged != current:
            self.store[cell] = merged
            self.changed = True

    def _check_binding(
        self,
        cell: tuple,
        decl: AbsValue,
        value: AbsValue,
        node: ast.AST,
        expr: ast.expr | None,
        what: str,
        skip_dim001: bool,
    ) -> None:
        if cell[0] == "ret":
            name = f"return of {cell[1].rsplit('.', 1)[-1]}()"
        else:
            name = cell[-1]
        ddim, vdim = decl.dim, value.dim
        if (
            not skip_dim001
            and isinstance(ddim, Dim)
            and isinstance(vdim, Dim)
            and ddim.kind != "dimensionless"
            and vdim.kind != "dimensionless"
            and not self._unit001_owns(expr, name, what)
        ):
            if ddim.kind != vdim.kind:
                self.report(
                    node,
                    RULE_DIM_MISMATCH,
                    f"{vdim.render()} value flows into '{name}' "
                    f"({what or 'binding'}) declared {ddim.render()}; "
                    "convert via repro.units",
                )
            elif factors_conflict(ddim.factor, vdim.factor):
                self.report(
                    node,
                    RULE_DIM_MISMATCH,
                    f"{vdim.render()} value flows into '{name}' "
                    f"({what or 'binding'}) declared {ddim.render()} "
                    "(same dimension, different scale); convert via "
                    "repro.units",
                )
        if (
            decl.rep == "int"
            and isinstance(ddim, Dim)
            and ddim.kind == "time"
            and value.rep == "float"
            and _is_indirect(expr)
        ):
            self.report(
                node,
                RULE_FLOAT_INTO_NS,
                f"definitely-float value reaches integer-nanosecond "
                f"'{name}' ({what or 'binding'}); wrap in round()/int() "
                "(integer time keeps the event engine exact)",
            )
        if value.taints and self._is_state_cell(cell):
            self._report_taints(
                node,
                value.taints,
                f"simulator state '{cell[1].rsplit('.', 1)[-1]}.{name}'",
            )

    def _unit001_owns(
        self, expr: ast.expr | None, target_name: str, what: str
    ) -> bool:
        """UNIT001 already reports direct suffixed-name-to-name flows."""
        if what not in ("assignment", "keyword argument"):
            return False
        if not isinstance(expr, (ast.Name, ast.Attribute)):
            return False
        source = expr.id if isinstance(expr, ast.Name) else expr.attr
        src = suffix_of(source)
        return src is not None and src != suffix_of(target_name)

    def _is_state_cell(self, cell: tuple) -> bool:
        return cell[0] == "attr" and self.program.is_subclass_of(
            cell[1], STATE_BASENAMES
        )

    # --- reporting ---------------------------------------------------------

    def report(
        self, node: ast.AST, rule: str, message: str, severity: str = "error"
    ) -> None:
        assert self.current is not None
        finding = Finding(
            path=self.current.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
            severity=severity,
        )
        key = (finding.path, finding.line, finding.rule, finding.message)
        if key not in self._finding_keys:
            self._finding_keys.add(key)
            self.findings.append(finding)

    def _report_taints(
        self, node: ast.AST, taints: frozenset, sink: str
    ) -> None:
        detail = "; ".join(t.render() for t in sorted(taints))
        self.report(
            node,
            RULE_TAINTED_STATE,
            f"nondeterministic value reaches {sink}: {detail}; draw from "
            "repro.sim.rng.RngFactory / Simulator.now_ns instead",
        )

    # --- driver ------------------------------------------------------------

    def run(self) -> None:
        order = sorted(self.program.functions)
        bodies = [self.program.functions[q] for q in order]
        for module in self._modules():
            if module.body is not None:
                bodies.append(module.body)
        for round_no in range(_MAX_ROUNDS):
            self.rounds = round_no + 1
            self.changed = False
            self._run_once(bodies)
            if not self.changed:
                break
        self.emit = True
        self._run_once(bodies)
        self.emit = False

    def _modules(self):
        return [self.program.modules[name] for name in sorted(self.program.modules)]

    def _run_once(self, bodies: list[FuncInfo]) -> None:
        for module in self._modules():
            for cls in module.classes.values():
                self._eval_class_defaults(cls)
        for func in bodies:
            self._eval_function(func)

    def _eval_class_defaults(self, cls: ClassInfo) -> None:
        body = cls.module.body
        if body is None:
            return
        self.current = body
        self._globals = set()
        for name, (_annotation, default) in cls.fields.items():
            if default is None:
                continue
            value = self.eval(default, body)
            self.bind(
                ("attr", cls.qname, name),
                value,
                default,
                default,
                what="field default",
            )
        self.current = None

    def _eval_function(self, func: FuncInfo) -> None:
        self.current = func
        self._globals = set()
        for param in func.params:
            if param.default is not None:
                value = self.eval(param.default, func)
                self.bind(
                    ("var", func.qname, param.name),
                    value,
                    param.default,
                    param.default,
                    what="default argument",
                )
        for stmt in func.body:
            self.exec_stmt(stmt, func)
        self.current = None

    # --- statements --------------------------------------------------------

    def exec_stmt(self, stmt: ast.stmt, func: FuncInfo) -> None:
        if isinstance(stmt, ast.Assign):
            self._exec_assign(stmt, func)
        elif isinstance(stmt, ast.AnnAssign):
            self._exec_annassign(stmt, func)
        elif isinstance(stmt, ast.AugAssign):
            self._exec_augassign(stmt, func)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None and func.node is not None:
                value = self.eval(stmt.value, func)
                self.bind(
                    ("ret", func.qname), value, stmt, stmt.value, what="return"
                )
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value, func)
        elif isinstance(stmt, (ast.If, ast.While)):
            self.eval(stmt.test, func)
            for child in [*stmt.body, *stmt.orelse]:
                self.exec_stmt(child, func)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._exec_for(stmt, func)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self.eval(item.context_expr, func)
                if item.optional_vars is not None:
                    self.assign_target(
                        item.optional_vars, value, item.context_expr, func
                    )
            for child in stmt.body:
                self.exec_stmt(child, func)
        elif isinstance(stmt, ast.Try):
            for child in [*stmt.body, *stmt.orelse, *stmt.finalbody]:
                self.exec_stmt(child, func)
            for handler in stmt.handlers:
                for child in handler.body:
                    self.exec_stmt(child, func)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc, func)
        elif isinstance(stmt, ast.Assert):
            self.eval(stmt.test, func)
        elif isinstance(stmt, ast.Global):
            self._globals.update(stmt.names)
        elif isinstance(stmt, ast.Match):
            self.eval(stmt.subject, func)
            for case in stmt.cases:
                for child in case.body:
                    self.exec_stmt(child, func)
        elif isinstance(stmt, ast.Delete):
            pass
        # Nested function/class definitions and imports: out of scope.

    def _exec_assign(self, stmt: ast.Assign, func: FuncInfo) -> None:
        for target in stmt.targets:
            if (
                isinstance(target, (ast.Tuple, ast.List))
                and isinstance(stmt.value, (ast.Tuple, ast.List))
                and len(target.elts) == len(stmt.value.elts)
                and not any(isinstance(e, ast.Starred) for e in target.elts)
                and not any(isinstance(e, ast.Starred) for e in stmt.value.elts)
            ):
                for t_elt, v_elt in zip(target.elts, stmt.value.elts):
                    self.assign_target(t_elt, self.eval(v_elt, func), v_elt, func)
                continue
            value = self.eval(stmt.value, func)
            self.assign_target(target, value, stmt.value, func)

    def _exec_annassign(self, stmt: ast.AnnAssign, func: FuncInfo) -> None:
        if isinstance(stmt.target, ast.Name):
            cell = self._store_cell(stmt.target.id, func)
            if cell is not None and cell not in self.decl:
                self.decl[cell] = self._seed_value(
                    stmt.target.id, stmt.annotation, func
                )
        if stmt.value is not None:
            value = self.eval(stmt.value, func)
            self.assign_target(stmt.target, value, stmt.value, func)

    def _target_cell(self, target: ast.expr, func: FuncInfo) -> tuple | None:
        if isinstance(target, ast.Name):
            return self._store_cell(target.id, func)
        if isinstance(target, ast.Attribute):
            base = self.eval(target.value, func)
            if isinstance(base.cls, str):
                return self._attr_cell(base.cls, target.attr)
        return None

    def _exec_augassign(self, stmt: ast.AugAssign, func: FuncInfo) -> None:
        current = self.eval(stmt.target, func)
        cell = self._target_cell(stmt.target, func)
        if cell is not None:
            decl = self._cell_decl(cell)
            if isinstance(decl.dim, Dim) and decl.dim.kind != "dimensionless":
                # Anchor to the declared dimension: the store may already
                # be widened by the very flow under inspection, which
                # would mask the mismatch at fixpoint.
                current = replace(current, dim=decl.dim)
        value = self.eval(stmt.value, func)
        op = _BINOP_NAMES.get(type(stmt.op))
        if op is None:
            result = UNKNOWN
        else:
            out = binop(op, current, value)
            if self.emit and out.mismatch:
                self.report(
                    stmt, RULE_DIM_MISMATCH, f"dimension mismatch: {out.mismatch}"
                )
            # Only the right-hand side's taints are *new* to the target;
            # re-reporting the cell's own converged taints at every
            # augmented assignment would be noise (bind() re-joins them).
            result = replace(out.value, taints=value.taints)
        self.assign_target(
            target=stmt.target,
            value=result,
            expr=stmt.value,
            func=func,
            skip_dim001=True,
        )

    def _exec_for(self, stmt: ast.For | ast.AsyncFor, func: FuncInfo) -> None:
        iter_val = self.eval(stmt.iter, func)
        element = self._element_of(stmt.iter, iter_val, func)
        self.assign_target(stmt.target, element, None, func)
        for child in [*stmt.body, *stmt.orelse]:
            self.exec_stmt(child, func)

    def _element_of(
        self, iter_expr: ast.expr, iter_val: AbsValue, func: FuncInfo
    ) -> AbsValue:
        if isinstance(iter_expr, (ast.Tuple, ast.List)):
            element = BOT
            for elt in iter_expr.elts:
                if isinstance(elt, ast.Starred):
                    return with_taints(UNKNOWN, iter_val.taints)
                element = join(element, self.eval(elt, func))
            return element
        if isinstance(iter_expr, ast.Call) and isinstance(iter_expr.func, ast.Name):
            name = iter_expr.func.id
            if name == "range":
                taints = frozenset()
                for arg in iter_expr.args:
                    taints = join_taints(taints, self.eval(arg, func).taints)
                return AbsValue(dim=DIMENSIONLESS, rep="int", taints=taints)
            if name == "sorted" and iter_expr.args:
                # sorted() imposes a deterministic order, legitimizing
                # iteration over a set — no set-iteration taint.
                inner = self.eval(iter_expr.args[0], func)
                return with_taints(UNKNOWN, inner.taints)
            if name in ("list", "reversed", "tuple") and iter_expr.args:
                inner = iter_expr.args[0]
                return self._element_of(inner, self.eval(inner, func), func)
        unordered = isinstance(iter_expr, ast.Set) or (
            isinstance(iter_expr, ast.Call)
            and isinstance(iter_expr.func, ast.Name)
            and iter_expr.func.id in ("set", "frozenset")
        )
        if unordered or iter_val.container == "set":
            taint = Taint(
                kind="set-iteration",
                detail="iteration over an unordered set",
                path=func.path,
                line=getattr(iter_expr, "lineno", 1),
            )
            return with_taints(UNKNOWN, join_taints(iter_val.taints, {taint}))
        return with_taints(UNKNOWN, iter_val.taints)

    # --- assignment targets ------------------------------------------------

    def _store_cell(self, name: str, func: FuncInfo) -> tuple | None:
        if func.node is None or name in self._globals:
            return ("mod", func.module.name, name)
        if name in func.local_names:
            return ("var", func.qname, name)
        return ("var", func.qname, name)

    def assign_target(
        self,
        target: ast.expr,
        value: AbsValue,
        expr: ast.expr | None,
        func: FuncInfo,
        *,
        skip_dim001: bool = False,
    ) -> None:
        if isinstance(target, ast.Name):
            cell = self._store_cell(target.id, func)
            if cell is not None:
                self.bind(
                    cell,
                    value,
                    target,
                    expr,
                    what="assignment",
                    skip_dim001=skip_dim001,
                )
        elif isinstance(target, ast.Attribute):
            base = self.eval(target.value, func)
            if isinstance(base.cls, str):
                cell = self._attr_cell(base.cls, target.attr)
                self.bind(
                    cell,
                    value,
                    target,
                    expr,
                    what="attribute assignment",
                    skip_dim001=skip_dim001,
                )
        elif isinstance(target, (ast.Tuple, ast.List)):
            derived = with_taints(UNKNOWN, value.taints)
            for elt in target.elts:
                inner = elt.value if isinstance(elt, ast.Starred) else elt
                self.assign_target(inner, derived, None, func)
        elif isinstance(target, ast.Subscript):
            self.eval(target.value, func)
            self.eval(target.slice, func)
            base = self.eval(target.value, func)
            if (
                self.emit
                and value.taints
                and isinstance(base.cls, str)
                and self.program.is_subclass_of(base.cls, STATE_BASENAMES)
            ):
                self._report_taints(
                    target,
                    value.taints,
                    f"simulator state '{base.cls.rsplit('.', 1)[-1]}[...]'",
                )
        elif isinstance(target, ast.Starred):
            self.assign_target(target.value, value, None, func)

    def _attr_cell(self, cls_qname: str, attr: str) -> tuple:
        """The cell of an instance attribute, keyed by its defining class."""
        seen: set[str] = set()
        queue = [cls_qname]
        while queue:
            qname = queue.pop(0)
            if qname in seen:
                continue
            seen.add(qname)
            cls = self.program.classes.get(qname)
            if cls is None:
                continue
            if attr in self.assigned_attrs.get(qname, ()) or attr in cls.fields:
                return ("attr", qname, attr)
            queue.extend(cls.bases)
        return ("attr", cls_qname, attr)

    # --- expressions -------------------------------------------------------

    def eval(self, node: ast.expr, func: FuncInfo) -> AbsValue:
        if isinstance(node, ast.Constant):
            return self._eval_constant(node)
        if isinstance(node, ast.Name):
            return self._eval_name(node, func)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, func)
        if isinstance(node, ast.Call):
            return self._eval_call(node, func)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node, func)
        if isinstance(node, ast.UnaryOp):
            return self._eval_unaryop(node, func)
        if isinstance(node, ast.IfExp):
            self.eval(node.test, func)
            return join(self.eval(node.body, func), self.eval(node.orelse, func))
        if isinstance(node, ast.BoolOp):
            value = BOT
            for operand in node.values:
                value = join(value, self.eval(operand, func))
            return value
        if isinstance(node, ast.Compare):
            taints = self.eval(node.left, func).taints
            for comparator in node.comparators:
                taints = join_taints(taints, self.eval(comparator, func).taints)
            return AbsValue(dim=DIMENSIONLESS, rep="int", taints=taints)
        if isinstance(node, (ast.Tuple, ast.List)):
            taints = frozenset()
            for elt in node.elts:
                inner = elt.value if isinstance(elt, ast.Starred) else elt
                taints = join_taints(taints, self.eval(inner, func).taints)
            return AbsValue(
                dim=TOP, rep=TOP, cls=TOP, container="list", taints=taints
            )
        if isinstance(node, ast.Set):
            for elt in node.elts:
                self.eval(elt, func)
            return AbsValue(dim=TOP, rep=TOP, cls=TOP, container="set")
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self.eval(key, func)
            for value_node in node.values:
                self.eval(value_node, func)
            return AbsValue(dim=TOP, rep=TOP, cls=TOP, container="dict")
        if isinstance(node, ast.Subscript):
            base = self.eval(node.value, func)
            self.eval(node.slice, func)
            return with_taints(UNKNOWN, base.taints)
        if isinstance(node, ast.NamedExpr):
            value = self.eval(node.value, func)
            self.assign_target(node.target, value, node.value, func)
            return value
        if isinstance(node, ast.JoinedStr):
            for part in node.values:
                if isinstance(part, ast.FormattedValue):
                    self.eval(part.value, func)
            return UNKNOWN
        if isinstance(node, ast.Starred):
            return self.eval(node.value, func)
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            return self._eval_comprehension(node, func)
        if isinstance(node, (ast.Await, ast.Yield, ast.YieldFrom)):
            if getattr(node, "value", None) is not None:
                self.eval(node.value, func)
            return UNKNOWN
        if isinstance(node, ast.Lambda):
            return UNKNOWN
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self.eval(part, func)
            return UNKNOWN
        return UNKNOWN

    def _eval_binop(self, node: ast.BinOp, func: FuncInfo) -> AbsValue:
        left = self.eval(node.left, func)
        right = self.eval(node.right, func)
        op = _BINOP_NAMES.get(type(node.op))
        if op is None:
            return AbsValue(
                dim=TOP, rep=TOP, taints=join_taints(left.taints, right.taints)
            )
        out = binop(op, left, right)
        if self.emit and out.mismatch:
            self.report(
                node, RULE_DIM_MISMATCH, f"dimension mismatch: {out.mismatch}"
            )
        return out.value

    def _eval_unaryop(self, node: ast.UnaryOp, func: FuncInfo) -> AbsValue:
        value = self.eval(node.operand, func)
        if isinstance(node.op, (ast.USub, ast.UAdd)):
            const = value.const
            if const is not None and isinstance(node.op, ast.USub):
                const = -const
            return replace(value, const=const)
        if isinstance(node.op, ast.Not):
            return AbsValue(dim=DIMENSIONLESS, rep="int", taints=value.taints)
        return with_taints(UNKNOWN, value.taints)

    def _eval_comprehension(self, node: ast.expr, func: FuncInfo) -> AbsValue:
        taints = frozenset()
        for gen in node.generators:
            iter_val = self.eval(gen.iter, func)
            element = self._element_of(gen.iter, iter_val, func)
            self.assign_target(gen.target, element, None, func)
            taints = join_taints(taints, element.taints)
            for cond in gen.ifs:
                self.eval(cond, func)
        container = "set" if isinstance(node, ast.SetComp) else "list"
        element_taints = taints
        if isinstance(node, ast.DictComp):
            element_taints = join_taints(
                element_taints, self.eval(node.key, func).taints
            )
            element_taints = join_taints(
                element_taints, self.eval(node.value, func).taints
            )
            container = "dict"
        else:
            element_taints = join_taints(
                element_taints, self.eval(node.elt, func).taints
            )
        return AbsValue(
            dim=TOP, rep=TOP, cls=TOP, container=container, taints=element_taints
        )

    def _eval_constant(self, node: ast.Constant) -> AbsValue:
        value = node.value
        if isinstance(value, bool):
            return AbsValue(dim=DIMENSIONLESS, rep="int", const=float(value))
        if isinstance(value, int):
            return AbsValue(dim=DIMENSIONLESS, rep="int", const=float(value))
        if isinstance(value, float):
            return AbsValue(dim=DIMENSIONLESS, rep="float", const=value)
        return UNKNOWN

    def _maybe_scale_const(self, name: str, value: AbsValue) -> AbsValue:
        """Mark ALL_CAPS numeric constants as deliberate scale factors."""
        if (
            value.const is not None
            and not value.scale_const
            and name == name.upper()
            and isinstance(value.dim, Dim)
            and value.dim.kind == "dimensionless"
        ):
            return replace(value, scale_const=True)
        return value

    def _eval_name(self, node: ast.Name, func: FuncInfo) -> AbsValue:
        name = node.id
        module = func.module
        if func.node is not None and name not in self._globals:
            if name in func.local_names:
                return self.read_cell(("var", func.qname, name))
        if name in module.functions or name in module.classes:
            return UNKNOWN
        # Bindings take priority over module-body names: import aliases
        # are collected into the body's local names too, but their value
        # lives behind the dotted target, not in a module-var cell.
        if name in module.bindings:
            return self._dotted_value(module.bindings[name])
        body = module.body
        if body is not None and name in body.local_names:
            value = self.read_cell(("mod", module.name, name))
            return self._maybe_scale_const(name, value)
        if name in ("True", "False"):
            return AbsValue(dim=DIMENSIONLESS, rep="int", const=float(name == "True"))
        return UNKNOWN

    def _dotted_value(self, dotted: str) -> AbsValue:
        if dotted in UNITS_CONSTANTS:
            return UNITS_CONSTANTS[dotted]
        if dotted in self.program.functions or dotted in self.program.classes:
            return UNKNOWN
        cell = self._module_var_cell(dotted)
        if cell is not None:
            value = self.read_cell(cell)
            return self._maybe_scale_const(cell[-1], value)
        return UNKNOWN

    def _module_var_cell(self, dotted: str) -> tuple | None:
        if "." not in dotted:
            return None
        prefix, name = dotted.rsplit(".", 1)
        module = self.program.modules.get(prefix)
        if module is not None and module.body is not None:
            if name in module.body.local_names:
                return ("mod", prefix, name)
        return None

    def _resolve_parts(self, parts: list[str], func: FuncInfo) -> str | None:
        """Absolute dotted target of a static name chain, if resolvable."""
        head = parts[0]
        module = func.module
        if func.node is not None and head in func.local_names:
            return None
        if head in module.bindings:
            return ".".join([module.bindings[head], *parts[1:]])
        if head in module.functions or head in module.classes:
            return ".".join([module.name, *parts])
        return None

    def _eval_attribute(self, node: ast.Attribute, func: FuncInfo) -> AbsValue:
        parts = _dotted_parts(node)
        if parts is not None:
            dotted = self._resolve_parts(parts, func)
            if dotted is not None:
                return self._dotted_value(dotted)
        base = self.eval(node.value, func)
        if isinstance(base.cls, str):
            method = self.program.method_of(base.cls, node.attr)
            if method is not None and method.is_property:
                return self.read_cell(("ret", method.qname))
            if method is not None:
                return UNKNOWN  # bound method object
            return self.read_cell(self._attr_cell(base.cls, node.attr))
        return UNKNOWN

    # --- calls -------------------------------------------------------------

    def _eval_call(self, node: ast.Call, func: FuncInfo) -> AbsValue:
        callee = node.func
        if isinstance(callee, ast.Name):
            return self._call_name(node, callee.id, func)
        if isinstance(callee, ast.Attribute):
            return self._call_attribute(node, callee, func)
        self._eval_args(node, func)
        return UNKNOWN

    def _eval_args(self, node: ast.Call, func: FuncInfo) -> frozenset:
        taints = frozenset()
        for arg in node.args:
            inner = arg.value if isinstance(arg, ast.Starred) else arg
            taints = join_taints(taints, self.eval(inner, func).taints)
        for kw in node.keywords:
            taints = join_taints(taints, self.eval(kw.value, func).taints)
        return taints

    def _call_name(self, node: ast.Call, name: str, func: FuncInfo) -> AbsValue:
        module = func.module
        if func.node is not None and name in func.local_names:
            self.eval(node.func, func)
            self._eval_args(node, func)
            return UNKNOWN
        if name in module.functions:
            return self._call_function(module.functions[name], node, func)
        if name in module.classes:
            return self._construct(module.classes[name], node, func)
        if name in module.bindings:
            return self._call_dotted(module.bindings[name], node, func)
        return self._call_builtin(name, node, func)

    def _call_attribute(
        self, node: ast.Call, callee: ast.Attribute, func: FuncInfo
    ) -> AbsValue:
        parts = _dotted_parts(callee)
        if parts is not None:
            dotted = self._resolve_parts(parts, func)
            if dotted is not None:
                return self._call_dotted(dotted, node, func)
        base = self.eval(callee.value, func)
        if isinstance(base.cls, str):
            method = self.program.method_of(base.cls, callee.attr)
            if method is not None:
                return self._call_function(
                    method, node, func, self_value=base
                )
        if callee.attr in SCHEDULE_METHODS:
            taints = self._eval_args(node, func)
            if self.emit and taints:
                self._report_taints(
                    node, taints, f"event scheduling via .{callee.attr}(...)"
                )
            return UNKNOWN
        self._eval_args(node, func)
        # A method result on a tainted receiver is tainted: e.g. draws
        # from an unseeded random.Random() instance.
        return with_taints(UNKNOWN, base.taints)

    def _call_dotted(self, dotted: str, node: ast.Call, func: FuncInfo) -> AbsValue:
        if dotted in UNITS_INTRINSICS:
            return self._call_intrinsic(UNITS_INTRINSICS[dotted], dotted, node, func)
        if dotted in self.program.functions:
            return self._call_function(self.program.functions[dotted], node, func)
        if dotted in self.program.classes:
            return self._construct(self.program.classes[dotted], node, func)
        source = taint_source(dotted, node)
        if source is not None:
            self._eval_args(node, func)
            kind, detail = source
            taint = Taint(
                kind=kind,
                detail=detail,
                path=func.path,
                line=getattr(node, "lineno", 1),
            )
            rep = "int" if dotted.endswith("_ns") else TOP
            return AbsValue(dim=TOP, rep=rep, cls=TOP, taints=frozenset({taint}))
        if dotted in MATH_DIM_PRESERVING and node.args:
            value = self.eval(node.args[0], func)
            self._eval_args(node, func)
            return replace(value, rep=MATH_DIM_PRESERVING[dotted], const=None)
        self._eval_args(node, func)
        return UNKNOWN

    def _call_intrinsic(
        self, intr: Intrinsic, dotted: str, node: ast.Call, func: FuncInfo
    ) -> AbsValue:
        taints = frozenset()
        bindings: list[tuple[str, Dim, ast.expr]] = []
        for index, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                self.eval(arg.value, func)
                continue
            if index < len(intr.params):
                pname, pdim = intr.params[index]
                bindings.append((pname, pdim, arg))
        by_name = dict(intr.params)
        for kw in node.keywords:
            if kw.arg is not None and kw.arg in by_name:
                bindings.append((kw.arg, by_name[kw.arg], kw.value))
            else:
                self.eval(kw.value, func)
        short = dotted.rsplit(".", 1)[-1]
        for pname, pdim, arg in bindings:
            value = self.eval(arg, func)
            taints = join_taints(taints, value.taints)
            vdim = value.dim
            if (
                self.emit
                and isinstance(vdim, Dim)
                and vdim.kind != "dimensionless"
                and pdim.kind != "dimensionless"
            ):
                if vdim.kind != pdim.kind:
                    self.report(
                        node,
                        RULE_DIM_MISMATCH,
                        f"{vdim.render()} value passed to '{pname}' of "
                        f"units.{short}() which expects {pdim.render()}",
                    )
                elif factors_conflict(vdim.factor, pdim.factor):
                    self.report(
                        node,
                        RULE_DIM_MISMATCH,
                        f"{vdim.render()} value passed to '{pname}' of "
                        f"units.{short}() which expects {pdim.render()} "
                        "(same dimension, different scale)",
                    )
        return with_taints(intr.ret, taints)

    def _call_function(
        self,
        finfo: FuncInfo,
        node: ast.Call,
        func: FuncInfo,
        self_value: AbsValue | None = None,
    ) -> AbsValue:
        params = list(finfo.params)
        if self_value is not None and params:
            self.bind(
                ("var", finfo.qname, params[0].name),
                self_value,
                node,
                None,
                what="receiver",
                skip_dim001=True,
            )
            params = params[1:]
        index = 0
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                self.eval(arg.value, func)
                index = len(params)  # alignment lost beyond a *args splat
                continue
            value = self.eval(arg, func)
            if index < len(params):
                self._bind_argument(
                    finfo, params[index], value, arg, node, keyword=False
                )
            index += 1
        names = {p.name: p for p in params}
        for kw in node.keywords:
            value = self.eval(kw.value, func)
            if kw.arg is not None and kw.arg in names:
                self._bind_argument(
                    finfo, names[kw.arg], value, kw.value, node, keyword=True
                )
        return self.read_cell(("ret", finfo.qname))

    def _bind_argument(
        self,
        finfo: FuncInfo,
        param,
        value: AbsValue,
        expr: ast.expr,
        node: ast.Call,
        *,
        keyword: bool,
    ) -> None:
        cell = ("var", finfo.qname, param.name)
        decl = self._cell_decl(cell)
        if self.emit:
            literal = _literal_const(expr)
            if (
                literal is not None
                and abs(literal) not in (0.0, 1.0)
                and isinstance(decl.dim, Dim)
                and decl.dim.kind != "dimensionless"
                # Only canonical-scale parameters (SI base or the integer
                # nanosecond convention): display-unit parameters such as
                # ``freq_ghz`` legitimately take literal table keys.
                and decl.dim.factor in (1.0, 1e-9)
            ):
                self.report(
                    expr,
                    RULE_BARE_LITERAL,
                    f"bare numeric literal {literal:g} passed to "
                    f"'{param.name}' of {finfo.qname.rsplit('.', 1)[-1]}() "
                    f"declared {decl.dim.render()}; construct the value via "
                    "repro.units",
                    severity=SEVERITY_WARNING,
                )
        self.bind(
            cell,
            value,
            expr,
            expr,
            what="keyword argument" if keyword else "argument",
        )

    def _construct(
        self, cinfo: ClassInfo, node: ast.Call, func: FuncInfo
    ) -> AbsValue:
        init = self.program.method_of(cinfo.qname, "__init__")
        if init is not None:
            instance = AbsValue(dim=TOP, rep=TOP, cls=cinfo.qname, container=TOP)
            self._call_function(init, node, func, self_value=instance)
        elif cinfo.is_dataclass:
            field_names = list(cinfo.fields)
            for index, arg in enumerate(node.args):
                if isinstance(arg, ast.Starred):
                    self.eval(arg.value, func)
                    break
                value = self.eval(arg, func)
                if index < len(field_names):
                    self.bind(
                        ("attr", cinfo.qname, field_names[index]),
                        value,
                        arg,
                        arg,
                        what="argument",
                    )
            for kw in node.keywords:
                value = self.eval(kw.value, func)
                if kw.arg is not None and kw.arg in cinfo.fields:
                    self.bind(
                        ("attr", cinfo.qname, kw.arg),
                        value,
                        kw.value,
                        kw.value,
                        what="keyword argument",
                    )
        else:
            self._eval_args(node, func)
        return AbsValue(dim=TOP, rep=TOP, cls=cinfo.qname, container=TOP)

    def _call_builtin(self, name: str, node: ast.Call, func: FuncInfo) -> AbsValue:
        if name in _INT_BUILTINS:
            if not node.args:
                return AbsValue(dim=DIMENSIONLESS, rep="int", const=0.0)
            value = self.eval(node.args[0], func)
            for extra in node.args[1:]:
                self.eval(extra, func)
            # round(x, ndigits) returns a float, unlike round(x).
            rep = "float" if (name == "round" and len(node.args) > 1) else "int"
            const = value.const
            if const is not None and rep == "int":
                const = float(int(const)) if name == "int" else float(round(const))
            return replace(value, rep=rep, const=const)
        if name == "float":
            if not node.args:
                return AbsValue(dim=DIMENSIONLESS, rep="float", const=0.0)
            value = self.eval(node.args[0], func)
            return replace(value, rep="float")
        if name == "abs" and len(node.args) == 1:
            value = self.eval(node.args[0], func)
            const = abs(value.const) if value.const is not None else None
            return replace(value, const=const, scale_const=False)
        if name in ("min", "max") and len(node.args) >= 2:
            value = BOT
            for arg in node.args:
                value = join(value, self.eval(arg, func))
            for kw in node.keywords:
                self.eval(kw.value, func)
            return replace(value, const=None, scale_const=False)
        if name == "len":
            self._eval_args(node, func)
            return AbsValue(dim=DIMENSIONLESS, rep="int")
        if name in ("set", "frozenset"):
            self._eval_args(node, func)
            return AbsValue(dim=TOP, rep=TOP, cls=TOP, container="set")
        if name in ("sorted", "list", "tuple", "reversed"):
            self._eval_args(node, func)
            return AbsValue(dim=TOP, rep=TOP, cls=TOP, container="list")
        if name == "dict":
            self._eval_args(node, func)
            return AbsValue(dim=TOP, rep=TOP, cls=TOP, container="dict")
        if name in ("bool", "isinstance", "issubclass", "hasattr"):
            self._eval_args(node, func)
            return AbsValue(dim=DIMENSIONLESS, rep="int")
        taints = self._eval_args(node, func)
        if name in ("sum",):
            return AbsValue(dim=TOP, rep=TOP, cls=TOP, taints=taints)
        return UNKNOWN


def analyze_program(program: Program) -> Analyzer:
    """Run the fixpoint plus reporting pass; returns the analyzer."""
    analyzer = Analyzer(program)
    analyzer.run()
    analyzer.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.message))
    return analyzer
