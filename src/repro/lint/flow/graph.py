"""Whole-program symbol table and call-graph substrate.

:func:`build_program` links every parsed module into one
:class:`Program`: functions and methods under stable qualified names,
classes with their fields and base-class chains, per-module import
bindings, and the module-level statement bodies.  The abstract
interpreter (:mod:`repro.lint.flow.analysis`) resolves names, attribute
chains, calls and method lookups against this structure.

Resolution is deliberately best-effort: anything the linker cannot pin
down stays unresolved and the analysis widens to "unknown" instead of
guessing — the zero-false-positive contract beats coverage.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.engine import ParsedModule
from repro.lint.rules import module_name_for

#: Name of the pseudo-function holding a module's top-level statements.
MODULE_BODY = "<module>"


@dataclass
class Param:
    """One formal parameter: name plus annotation/default AST nodes."""

    name: str
    annotation: ast.expr | None = None
    default: ast.expr | None = None


@dataclass
class FuncInfo:
    """One function, method, or module body in the program."""

    qname: str
    module: "ModuleInfo"
    node: ast.AST | None  # FunctionDef/AsyncFunctionDef; None for <module>
    params: list[Param] = field(default_factory=list)
    body: list[ast.stmt] = field(default_factory=list)
    returns: ast.expr | None = None
    cls: "ClassInfo | None" = None
    is_property: bool = False
    #: Names assigned anywhere in the body (plus params): the local scope.
    local_names: set[str] = field(default_factory=set)

    @property
    def path(self) -> str:
        return self.module.parsed.path


@dataclass
class ClassInfo:
    """One class: methods, annotated/assigned fields, resolved bases."""

    qname: str
    name: str
    module: "ModuleInfo"
    node: ast.ClassDef
    base_names: list[str] = field(default_factory=list)  # pre-link, raw
    bases: list[str] = field(default_factory=list)  # post-link, qnames
    methods: dict[str, FuncInfo] = field(default_factory=dict)
    #: field name -> (annotation, default expr) from the class body.
    fields: dict[str, tuple[ast.expr | None, ast.expr | None]] = field(
        default_factory=dict
    )
    is_dataclass: bool = False


@dataclass
class ModuleInfo:
    """One parsed module: bindings, definitions, module body."""

    name: str
    parsed: ParsedModule
    #: local name -> dotted target ("repro.units.ms", "time", ...).
    bindings: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FuncInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    body: FuncInfo | None = None


@dataclass
class Program:
    """Every module linked together under qualified names."""

    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    functions: dict[str, FuncInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)

    # --- lookups ----------------------------------------------------------

    def method_of(self, class_qname: str, name: str) -> FuncInfo | None:
        """Resolve a method through the (linked) base-class chain."""
        seen: set[str] = set()
        queue = [class_qname]
        while queue:
            qname = queue.pop(0)
            if qname in seen:
                continue
            seen.add(qname)
            cls = self.classes.get(qname)
            if cls is None:
                continue
            if name in cls.methods:
                return cls.methods[name]
            queue.extend(cls.bases)
        return None

    def field_owner(self, class_qname: str, name: str) -> str | None:
        """The class (self or ancestor) declaring field ``name``, if any."""
        seen: set[str] = set()
        queue = [class_qname]
        while queue:
            qname = queue.pop(0)
            if qname in seen:
                continue
            seen.add(qname)
            cls = self.classes.get(qname)
            if cls is None:
                continue
            if name in cls.fields:
                return qname
            queue.extend(cls.bases)
        return None

    def is_subclass_of(self, class_qname: str, basenames: set[str]) -> bool:
        """Whether the class or any ancestor has a basename in ``basenames``."""
        seen: set[str] = set()
        queue = [class_qname]
        while queue:
            qname = queue.pop(0)
            if qname in seen:
                continue
            seen.add(qname)
            if qname.rsplit(".", 1)[-1] in basenames:
                return True
            cls = self.classes.get(qname)
            if cls is not None:
                queue.extend(cls.bases)
        return False


def _decorator_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _collect_params(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[Param]:
    args = node.args
    params = [Param(a.arg, a.annotation) for a in [*args.posonlyargs, *args.args]]
    defaults = args.defaults
    if defaults:
        for param, default in zip(params[-len(defaults) :], defaults):
            param.default = default
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        params.append(Param(arg.arg, arg.annotation, default))
    return params


def _local_names(node: ast.AST, params: list[Param]) -> set[str]:
    """Every name bound in a function body (not descending into defs)."""
    names = {p.name for p in params}

    def visit(stmt_or_expr: ast.AST) -> None:
        for child in ast.iter_child_nodes(stmt_or_expr):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
            ):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    names.add(child.name)
                continue
            if isinstance(child, ast.Name) and isinstance(
                child.ctx, (ast.Store, ast.Del)
            ):
                names.add(child.id)
            elif isinstance(child, ast.alias):
                names.add(child.asname or child.name.split(".")[0])
            visit(child)

    visit(node)
    return names


def _module_bindings(module_name: str, tree: ast.Module) -> dict[str, str]:
    """Import bindings: local name -> dotted absolute target."""
    bindings: dict[str, str] = {}
    package = module_name.rsplit(".", 1)[0] if "." in module_name else ""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    bindings[alias.asname] = alias.name
                else:
                    top = alias.name.split(".")[0]
                    bindings[top] = top
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # Relative import: resolve against the enclosing package.
                parts = module_name.split(".")
                if len(parts) >= node.level:
                    base_parts = parts[: len(parts) - node.level]
                else:
                    base_parts = []
                base = ".".join(base_parts)
                target = f"{base}.{node.module}" if node.module else base
            else:
                target = node.module or package
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                bindings[bound] = f"{target}.{alias.name}" if target else alias.name
    return bindings


def _build_function(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    qname: str,
    module: ModuleInfo,
    cls: ClassInfo | None,
) -> FuncInfo:
    params = _collect_params(node)
    info = FuncInfo(
        qname=qname,
        module=module,
        node=node,
        params=params,
        body=list(node.body),
        returns=node.returns,
        cls=cls,
        is_property=any(
            _decorator_name(d) in ("property", "cached_property")
            for d in node.decorator_list
        ),
        local_names=_local_names(node, params),
    )
    return info


def _build_class(node: ast.ClassDef, qname: str, module: ModuleInfo) -> ClassInfo:
    cls = ClassInfo(
        qname=qname,
        name=node.name,
        module=module,
        node=node,
        is_dataclass=any(
            _decorator_name(d) == "dataclass" for d in node.decorator_list
        ),
    )
    for base in node.bases:
        if isinstance(base, ast.Name):
            cls.base_names.append(base.id)
        elif isinstance(base, ast.Attribute):
            parts = _dotted_parts(base)
            if parts:
                cls.base_names.append(".".join(parts))
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            method = _build_function(stmt, f"{qname}.{stmt.name}", module, cls)
            cls.methods[stmt.name] = method
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            cls.fields[stmt.target.id] = (stmt.annotation, stmt.value)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    cls.fields[target.id] = (None, stmt.value)
    return cls


def _dotted_parts(node: ast.expr) -> list[str] | None:
    """``a.b.c`` -> ["a","b","c"], or None for non-trivial chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def build_program(parsed_modules: list[ParsedModule]) -> Program:
    """Link every parsed module into one :class:`Program`."""
    program = Program()
    for parsed in parsed_modules:
        if parsed.ctx is None:
            continue
        name = module_name_for(parsed.path)
        module = ModuleInfo(name=name, parsed=parsed)
        tree = parsed.ctx.tree
        module.bindings = _module_bindings(name, tree)

        body_stmts: list[ast.stmt] = []
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                func = _build_function(stmt, f"{name}.{stmt.name}", module, None)
                module.functions[stmt.name] = func
            elif isinstance(stmt, ast.ClassDef):
                cls = _build_class(stmt, f"{name}.{stmt.name}", module)
                module.classes[stmt.name] = cls
            else:
                body_stmts.append(stmt)

        body = FuncInfo(
            qname=f"{name}.{MODULE_BODY}",
            module=module,
            node=None,
            body=body_stmts,
        )
        body.local_names = _local_names_module(body_stmts)
        module.body = body
        program.modules[name] = module

    # Register global tables and link base classes.
    for module in program.modules.values():
        for func in module.functions.values():
            program.functions[func.qname] = func
        for cls in module.classes.values():
            program.classes[cls.qname] = cls
            for method in cls.methods.values():
                program.functions[method.qname] = method
    for module in program.modules.values():
        for cls in module.classes.values():
            for base_name in cls.base_names:
                resolved = _resolve_base(base_name, module, program)
                if resolved is not None:
                    cls.bases.append(resolved)
    return program


def _local_names_module(stmts: list[ast.stmt]) -> set[str]:
    holder = ast.Module(body=stmts, type_ignores=[])
    return _local_names(holder, [])


def _resolve_base(base_name: str, module: ModuleInfo, program: Program) -> str | None:
    """Best-effort qname of a base-class reference."""
    head = base_name.split(".")[0]
    rest = base_name.split(".")[1:]
    if not rest and head in module.classes:
        return module.classes[head].qname
    target = module.bindings.get(head)
    if target is None:
        return None
    dotted = ".".join([target, *rest])
    if dotted in program.classes:
        return dotted
    # `from x import C` style: the binding already points at the class.
    if not rest and target in program.classes:
        return target
    return None
